#!/usr/bin/env bash
# verify.sh — driftclean's full verification gate.
#
# Runs, in order: build, go vet, driftlint (the project-native static
# analyzers in internal/lint) and the test suite under the race
# detector. Any diagnostic from any stage fails the gate (nonzero
# exit), which is exactly what CI wants: the paper's drift metrics are
# only meaningful when every run is deterministic and race-free.
#
# Usage: scripts/verify.sh        (from anywhere inside the repo)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build ./cmd/driftserve (serving binary)"
go build -o "$(mktemp -d)/driftserve" ./cmd/driftserve

echo "==> go vet ./..."
go vet ./...

echo "==> driftlint ./..."
go run ./cmd/driftlint ./...

echo "==> driftlint (serving packages)"
go run ./cmd/driftlint ./internal/snapshot/... ./internal/serve/... ./cmd/driftserve/... ./cmd/kbquery/...

echo "==> go test -race (serving: snapshot swap under concurrent readers)"
go test -race -run 'TestSwapUnderConcurrentReaders|TestConcurrentReads|TestCoalescing' \
  ./internal/snapshot ./internal/serve

echo "==> go test -race (parallel pipeline determinism, workers >= 4)"
go test -race -run 'TestPipelineParallelMatchesSerial' .

echo "==> go test -race ./..."
go test -race ./...

echo "==> driftbench smoke (serial vs parallel A/B, writes BENCH_pipeline.json)"
go run ./cmd/driftbench -smoke -out BENCH_pipeline.json

echo "verify: all gates passed"
