#!/usr/bin/env bash
# verify.sh — driftclean's full verification gate.
#
# Runs, in order: build, go vet, driftlint (the project-native static
# analyzers in internal/lint), the chaos/fault-injection suites, the
# hearst fuzz seed corpus, the full test suite under the race detector,
# and a total-statement-coverage ratchet (override with COVER_MIN). Any
# diagnostic from any stage fails the gate (nonzero exit), which is
# exactly what CI wants: the paper's drift metrics are only meaningful
# when every run is deterministic and race-free.
#
# Usage: scripts/verify.sh        (from anywhere inside the repo)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build ./cmd/driftserve (serving binary)"
go build -o "$(mktemp -d)/driftserve" ./cmd/driftserve

echo "==> go vet ./..."
go vet ./...

# The suppression budget is a ratchet: 6 //lint:ignore directives are
# reviewed and justified in-source today. Lowering the number is always
# fine; raising it is a reviewed decision that belongs in this diff.
echo "==> driftlint ./... (suppression budget: 6)"
go run ./cmd/driftlint -maxignores 6 ./...

echo "==> driftlint (serving + snapshot-format packages)"
go run ./cmd/driftlint ./internal/snapshot/... ./internal/serve/... ./internal/kb/... \
  ./cmd/driftserve/... ./cmd/kbquery/... ./cmd/kbsnap/...

echo "==> go test -race (serving: snapshot swap under concurrent readers)"
go test -race -run 'TestSwapUnderConcurrentReaders|TestConcurrentReads|TestCoalescing' \
  ./internal/snapshot ./internal/serve

echo "==> go test -race (sharded serving: router scatter-gather, admission, partitioning)"
go test -race -run 'TestRouter|TestAdmission|TestRing|TestPartition|TestSharded|TestBatchesDoesNotBlock' \
  ./internal/snapshot ./internal/serve ./cmd/driftserve

echo "==> go test -race (parallel pipeline determinism, workers >= 4)"
go test -race -run 'TestPipelineParallelMatchesSerial' .

echo "==> go test -race (chaos: injected faults, panics, reload breaker)"
go test -race ./internal/fault
go test -race -run 'TestChaosDisabledFaultsAreNoOp|TestChaosPanicSurfacesAsReportError' .
go test -race -run 'TestReload|TestQuery' ./internal/serve ./cmd/driftserve

echo "==> fuzz seed corpus (hearst parser + lint CFG + top-k eigensolver + binary snapshot decoder, seeds only)"
go test -run 'FuzzParseSentence' ./internal/hearst
go test -run 'FuzzCFG' ./internal/lint
go test -run 'FuzzEigenSymTopK' ./internal/linalg
go test -run 'FuzzDecode' ./internal/kb/binsnap

echo "==> snapshot format differential (gob vs binary mmap, byte-identical /v1/* responses)"
go test -race -run 'TestFormatsServeIdenticalResponses' ./internal/serve

echo "==> go test -race ./..."
go test -race ./...

echo "==> coverage ratchet (total statement coverage >= ${COVER_MIN:=82.0}%)"
go test -count=1 -coverprofile=/tmp/driftclean-cover.out -coverpkg=./... ./... > /dev/null
total=$(go tool cover -func=/tmp/driftclean-cover.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "    total coverage: ${total}%"
awk -v got="$total" -v min="$COVER_MIN" 'BEGIN { exit got >= min ? 0 : 1 }' || {
  echo "coverage ${total}% fell below the ratchet ${COVER_MIN}%" >&2
  exit 1
}

echo "==> hot-path benchmarks (compile + one iteration each)"
go test -run '^$' -bench . -benchtime=1x \
  ./internal/linalg ./internal/kpca ./internal/rank ./internal/feature

echo "==> driftbench smoke (serial vs parallel A/B + old-vs-new fingerprint check)"
go run ./cmd/driftbench -smoke -check BENCH_pipeline.json -out BENCH_pipeline.smoke.json

echo "==> driftbench ingest smoke (incremental vs from-scratch fingerprint identity)"
go run ./cmd/driftbench -scales ingest-smoke -check BENCH_pipeline.json -out BENCH_ingest.smoke.json

echo "==> driftload smoke (scatter-gather byte-identity across shard counts + latency sweep + snapshot reload comparison)"
go run ./cmd/driftload -smoke -out BENCH_serve.smoke.json
go run ./cmd/driftload -validate BENCH_serve.smoke.json

# The committed full-sweep artifact carries the headline reload claim:
# at scale, reloading the binary snapshot must be >= 10x faster than
# decoding the gob stream.
echo "==> committed serving artifact (schema + 10x binary reload floor)"
go run ./cmd/driftload -validate BENCH_serve.json -minreload 10

echo "verify: all gates passed"
