package driftclean

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the checked-in golden CSVs instead of
// diffing against them: go test -run TestExperimentGoldenFiles -update
var updateGolden = flag.Bool("update", false, "rewrite golden experiment CSVs")

// goldenOptions is the smoke scale the golden files are generated at:
// identical to the determinism-suite scale, so a golden mismatch means
// the experiment *output* changed, not its stability.
func goldenOptions() ExperimentOptions {
	opts := DefaultExperimentOptions()
	opts.Core.World.NumDomains = 2
	opts.Core.World.InstancesPerConceptMin = 40
	opts.Core.World.InstancesPerConceptMax = 80
	opts.Core.Corpus.NumSentences = 8000
	opts.Core.Clean.MaxRounds = 2
	opts.EvalConcepts = 6
	return opts
}

// TestExperimentGoldenFiles regenerates every experiment (table1–table5,
// fig2–fig4, fig5a–fig5c) at smoke scale and byte-diffs the rendered CSV
// against testdata/golden. The pipeline is deterministic end to end, so
// any diff is a real behavior change — review it, then refresh the
// goldens with -update.
func TestExperimentGoldenFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every experiment")
	}
	runner := NewExperimentRunner(goldenOptions())
	for _, id := range ExperimentIDs() {
		table, err := runner.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := table.CSV()
		path := filepath.Join("testdata", "golden", id+".csv")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update to create): %v", id, err)
		}
		if got != string(want) {
			t.Errorf("%s: CSV diverged from golden %s (rerun with -update after reviewing)\ngot:\n%s\nwant:\n%s",
				id, path, got, want)
		}
	}
}
