package driftclean

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// updateGolden regenerates the checked-in golden CSVs instead of
// diffing against them: go test -run TestExperimentGoldenFiles -update
var updateGolden = flag.Bool("update", false, "rewrite golden experiment CSVs")

// goldenOptions is the smoke scale the golden files are generated at:
// identical to the determinism-suite scale, so a golden mismatch means
// the experiment *output* changed, not its stability.
func goldenOptions() ExperimentOptions {
	opts := DefaultExperimentOptions()
	opts.Core.World.NumDomains = 2
	opts.Core.World.InstancesPerConceptMin = 40
	opts.Core.World.InstancesPerConceptMax = 80
	opts.Core.Corpus.NumSentences = 8000
	opts.Core.Clean.MaxRounds = 2
	opts.EvalConcepts = 6
	return opts
}

// TestExperimentGoldenFiles regenerates every experiment (table1–table5,
// fig2–fig4, fig5a–fig5c) at smoke scale and byte-diffs the rendered CSV
// against testdata/golden. The pipeline is deterministic end to end, so
// any diff is a real behavior change — review it, then refresh the
// goldens with -update.
func TestExperimentGoldenFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every experiment")
	}
	runner := NewExperimentRunner(goldenOptions())
	for _, id := range ExperimentIDs() {
		table, err := runner.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := table.CSV()
		path := filepath.Join("testdata", "golden", id+".csv")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update to create): %v", id, err)
		}
		if got == string(want) {
			continue
		}
		// Epsilon fallback: the top-k eigensolver is held to the Jacobi
		// oracle only up to floating-point tolerance, so a golden diff
		// where every numeric cell agrees within goldenEpsilon (and every
		// non-numeric cell is byte-equal) is rounding, not drift.
		if why := csvDiffWithinEpsilon(got, string(want)); why != "" {
			t.Errorf("%s: CSV diverged from golden %s (rerun with -update after reviewing): %s\ngot:\n%s\nwant:\n%s",
				id, path, why, got, want)
		}
	}
}

// goldenEpsilon is the numeric tolerance of the golden-CSV gate. The
// rendered cells carry at most four decimals, so anything below 1e-3
// can only arise from a last-digit rounding flip.
const goldenEpsilon = 1e-3

// csvDiffWithinEpsilon compares two rendered CSVs cell by cell and
// returns "" when they agree — numeric cells within goldenEpsilon,
// everything else byte-equal — or a one-line description of the first
// real divergence.
func csvDiffWithinEpsilon(got, want string) string {
	grows := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wrows := strings.Split(strings.TrimRight(want, "\n"), "\n")
	if len(grows) != len(wrows) {
		return "row count " + strconv.Itoa(len(grows)) + " != " + strconv.Itoa(len(wrows))
	}
	for r := range grows {
		gcells := strings.Split(grows[r], ",")
		wcells := strings.Split(wrows[r], ",")
		if len(gcells) != len(wcells) {
			return "row " + strconv.Itoa(r) + ": column count differs"
		}
		for c := range gcells {
			if gcells[c] == wcells[c] {
				continue
			}
			gv, gerr := strconv.ParseFloat(gcells[c], 64)
			wv, werr := strconv.ParseFloat(wcells[c], 64)
			if gerr != nil || werr != nil {
				return "row " + strconv.Itoa(r) + " col " + strconv.Itoa(c) +
					": non-numeric cell " + gcells[c] + " != " + wcells[c]
			}
			if math.Abs(gv-wv) > goldenEpsilon {
				return "row " + strconv.Itoa(r) + " col " + strconv.Itoa(c) +
					": " + gcells[c] + " vs " + wcells[c] + " exceeds epsilon"
			}
		}
	}
	return ""
}
