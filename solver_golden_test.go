package driftclean

import (
	"testing"

	"driftclean/internal/bench"
	"driftclean/internal/kpca"
)

// Pinned smoke-scale KB fingerprints, one per eigensolver. The jacobi
// value is the fingerprint the pipeline produced before the top-k solver
// existed — the escape hatch must keep reproducing it byte for byte.
// The topk value pins today's default path so unintended numeric drift
// in the new solver shows up as a failure here, not downstream.
const (
	smokeFingerprintJacobi = "83298ece07571319"
	smokeFingerprintTopK   = "31af70aec53caf8f"
	smokeSentences         = 6000
)

func smokeFingerprint(t *testing.T, solver kpca.Solver) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Corpus.NumSentences = smokeSentences
	cfg.Clean.MaxRounds = 1
	cfg.KPCA.Solver = solver
	rep, err := Clean(cfg)
	if err != nil {
		t.Fatalf("smoke pipeline (%v solver) failed: %v", solver, err)
	}
	return bench.Fingerprint(rep.System.KB)
}

// TestJacobiEscapeHatchReproducesLegacyOutput: selecting the Jacobi
// oracle must reproduce the exact pre-top-k pipeline output — the escape
// hatch is only an escape hatch if it restores the old bytes.
func TestJacobiEscapeHatchReproducesLegacyOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale pipeline run")
	}
	if got := smokeFingerprint(t, kpca.SolverJacobi); got != smokeFingerprintJacobi {
		t.Fatalf("jacobi escape hatch fingerprint %s != legacy %s", got, smokeFingerprintJacobi)
	}
}

// TestTopKDefaultFingerprintPinned: the default (top-k) path's smoke
// fingerprint is pinned so solver changes are reviewed deliberately,
// mirroring the driftbench -check gate inside go test.
func TestTopKDefaultFingerprintPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale pipeline run")
	}
	if got := smokeFingerprint(t, kpca.SolverTopK); got != smokeFingerprintTopK {
		t.Fatalf("top-k smoke fingerprint %s != pinned %s", got, smokeFingerprintTopK)
	}
}
