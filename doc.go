// Package driftclean is a from-scratch Go reproduction of "Overcoming
// Semantic Drift in Information Extraction" (Li, Li, Wang, Yang, Zhang,
// Zhou — EDBT 2014): a semantic-based iterative isA extractor in the
// style of Probase, plus the paper's Drifting-Point (DP) detection and
// cleaning machinery that repairs the extractor's semantic drift.
//
// # What semantic drift is
//
// Iterative bootstrapping extractors start from unambiguous "X such as
// a, b and c" sentences and then use what they learned to disambiguate
// harder sentences. Knowledge errors compound: once (chicken isA animal)
// is known, the sentence "food from animals such as pork, beef and
// chicken" resolves to the wrong concept and (pork isA animal) is
// learned, which drags in more food instances — the extraction drifts.
// The paper's insight is that a handful of Drifting Points — polysemous
// instances ("Intentional DPs") and erroneous extractions ("Accidental
// DPs") — cause almost all of the damage, so detecting DPs and rolling
// back what they triggered cleans the knowledge base far better than
// scoring every pair in isolation.
//
// # What this module provides
//
//   - a deterministic synthetic world and Hearst-pattern corpus generator
//     that reproduce the drift mechanism with exact ground truth (the
//     substitution for the paper's 1.68B-page web corpus; see DESIGN.md);
//   - the semantic-based iterative extractor with full trigger
//     provenance, and a knowledge base supporting cascading roll-back;
//   - mutual-exclusion discovery, seed labeling (Rules 1–3), DP features,
//     kernel PCA, and the semi-supervised multi-task detector of
//     Algorithm 1, alongside every baseline the paper compares against;
//   - DP-based cleaning with the Eq 21 sentence re-check;
//   - an experiment runner that regenerates every table and figure of the
//     paper's evaluation section.
//
// # Quick start
//
// The primary entry point is the incremental Session: Open builds the
// world and corpus, each Ingest runs one extract-and-clean checkpoint
// over a sentence batch, and Publish freezes the current KB as an
// immutable generation-stamped snapshot. After every checkpoint the KB
// is bit-identical to a from-scratch run over everything ingested so
// far — analysis is simply re-used for concepts whose features did not
// change.
//
//	ctx := context.Background()
//	sess, err := driftclean.Open(ctx, driftclean.WithConfig(cfg))
//	if err != nil { ... }
//	defer sess.Close()
//	for _, batch := range batches(sess.Sentences()) {
//	    report, err := sess.Ingest(ctx, batch)
//	    if err != nil { ... } // checkpoint rolled back; retry the batch
//	    snap, _ := sess.Publish()
//	    fmt.Printf("gen %d: precision %.2f -> %.2f\n",
//	        snap.Generation(), report.PrecisionBefore, report.PrecisionAfter)
//	}
//
// For the common one-batch case, CleanContext is a thin wrapper that
// opens a session, ingests the whole corpus once, and closes:
//
//	report, err := driftclean.CleanContext(ctx, driftclean.WithConfig(cfg))
//
// See the examples directory for richer scenarios and cmd/experiments
// for table/figure regeneration.
package driftclean
