// Package driftclean is a from-scratch Go reproduction of "Overcoming
// Semantic Drift in Information Extraction" (Li, Li, Wang, Yang, Zhang,
// Zhou — EDBT 2014): a semantic-based iterative isA extractor in the
// style of Probase, plus the paper's Drifting-Point (DP) detection and
// cleaning machinery that repairs the extractor's semantic drift.
//
// # What semantic drift is
//
// Iterative bootstrapping extractors start from unambiguous "X such as
// a, b and c" sentences and then use what they learned to disambiguate
// harder sentences. Knowledge errors compound: once (chicken isA animal)
// is known, the sentence "food from animals such as pork, beef and
// chicken" resolves to the wrong concept and (pork isA animal) is
// learned, which drags in more food instances — the extraction drifts.
// The paper's insight is that a handful of Drifting Points — polysemous
// instances ("Intentional DPs") and erroneous extractions ("Accidental
// DPs") — cause almost all of the damage, so detecting DPs and rolling
// back what they triggered cleans the knowledge base far better than
// scoring every pair in isolation.
//
// # What this module provides
//
//   - a deterministic synthetic world and Hearst-pattern corpus generator
//     that reproduce the drift mechanism with exact ground truth (the
//     substitution for the paper's 1.68B-page web corpus; see DESIGN.md);
//   - the semantic-based iterative extractor with full trigger
//     provenance, and a knowledge base supporting cascading roll-back;
//   - mutual-exclusion discovery, seed labeling (Rules 1–3), DP features,
//     kernel PCA, and the semi-supervised multi-task detector of
//     Algorithm 1, alongside every baseline the paper compares against;
//   - DP-based cleaning with the Eq 21 sentence re-check;
//   - an experiment runner that regenerates every table and figure of the
//     paper's evaluation section.
//
// # Quick start
//
//	cfg := driftclean.DefaultConfig()
//	cfg.Corpus.NumSentences = 50000
//	report, err := driftclean.Clean(cfg)
//	if err != nil { ... }
//	fmt.Printf("precision %.2f -> %.2f\n",
//	    report.PrecisionBefore, report.PrecisionAfter)
//
// See the examples directory for richer scenarios and cmd/experiments
// for table/figure regeneration.
package driftclean
