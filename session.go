package driftclean

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"driftclean/internal/core"
	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/snapshot"
)

// Sentence is one corpus sentence, the unit Ingest batches are made of.
type Sentence = corpus.Sentence

// Session sentinel errors. Match with errors.Is.
var (
	// ErrSessionClosed reports a call on a closed session.
	ErrSessionClosed = errors.New("driftclean: session closed")
	// ErrNoCheckpoint reports that Publish was called before any
	// successful Ingest: there is no cleaned KB to freeze yet.
	ErrNoCheckpoint = errors.New("driftclean: session has no checkpoint to publish")
)

// Session is the primary entry point: a long-lived incremental pipeline
// over an evolving knowledge base. Open builds the synthetic world and
// corpus; each Ingest appends one sentence batch and advances the
// session by one checkpoint — delta extraction (each sentence is parsed
// exactly once), analysis scoped to concepts whose feature vectors
// actually changed, and a fresh detect-and-clean pass — returning the
// same *Report a one-shot run produces. Publish freezes the current
// checkpoint into a generation-stamped immutable *Snapshot for the
// serving layer (serve.Service.Swap).
//
//	sess, err := driftclean.Open(ctx, driftclean.WithConfig(cfg))
//	defer sess.Close()
//	for _, batch := range split(sess.Sentences(), 10) {
//		rep, err := sess.Ingest(ctx, batch)
//		// handle err; rep holds this checkpoint's metrics
//		snap, _ := sess.Publish()
//		svc.Swap(snap)
//	}
//
// Correctness guarantee: after every successful Ingest, the session's
// KB is fingerprint-identical to a from-scratch batch run over the
// concatenation of all ingested batches — the incremental path reuses
// cached work only when input signatures prove the result unchanged.
//
// Failure atomicity: a failed Ingest (error, injected fault, canceled
// context) rolls the session back to the previous checkpoint, so the
// same batch can simply be retried; Publish keeps returning the last
// good checkpoint throughout.
//
// A Session is single-writer: Ingest, Publish and Close must not be
// called concurrently. Snapshots it publishes are immutable and safe
// for any number of concurrent readers.
type Session struct {
	o   options
	sys *System
	ing *core.Ingestor
	// ctx is the active Ingest's context, observed by the cleaning
	// loop's OnRound hook for between-round cancellation.
	ctx    context.Context
	closed bool
}

// Open builds a session: the synthetic world, the corpus (the sentence
// source for Ingest batches, see Sentences) and the evaluation oracle.
// No extraction runs yet — the session's KB starts empty and grows as
// batches are ingested. The detection method defaults to
// DetectMultiTask; override with WithMethod.
func Open(ctx context.Context, opts ...Option) (*Session, error) {
	o := newOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}
	s := &Session{o: o}
	cfg := o.cfg
	cfg.Clean.OnRound = func(round int) bool {
		if s.ctx != nil && s.ctx.Err() != nil {
			return true
		}
		s.o.emit(PhaseClean, round)
		return false
	}
	s.o.emit(PhaseBuild, 0)
	if err := runStage("build", func() {
		s.sys = core.Prepare(cfg)
		s.ing = core.NewIngestor(s.sys, o.method)
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}
	return s, nil
}

// Sentences returns the session's synthetic corpus in order — the
// sentence source callers slice into Ingest batches. The returned slice
// is shared; do not modify it.
func (s *Session) Sentences() []Sentence { return s.sys.Corpus.Sentences }

// System returns the session's system: world, corpus, oracle, and the
// current checkpoint's extraction result and cleaned KB (nil before the
// first successful Ingest).
func (s *Session) System() *System { return s.sys }

// Checkpoints returns the number of successful Ingest calls so far.
func (s *Session) Checkpoints() int { return s.ing.Checkpoints() }

// Ingest appends one sentence batch and advances the session to the
// next checkpoint: delta extraction over the new sentences, a replayed
// batch-equivalent KB, and a full detect-and-clean pass whose analysis
// re-runs only for concepts whose feature vectors changed. It returns
// this checkpoint's evaluated Report (the same schema CleanContext
// returns, measured over everything ingested so far).
//
// An empty (or nil) batch is valid: it re-runs the current checkpoint
// without adding sentences. A checkpoint in which the detector finds no
// DPs returns the fully populated report alongside ErrNoDPsDetected.
// Cancellation is honored between cleaning rounds and reported as
// ErrCanceled; any failure rolls the session back to the previous
// checkpoint, so the batch can be retried.
func (s *Session) Ingest(ctx context.Context, batch []Sentence) (*Report, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(err)
	}
	s.ctx = ctx
	defer func() { s.ctx = nil }()

	rep := &Report{System: s.sys}
	extracted := false
	var st *core.IngestStats
	var ingestErr error
	if err := runStage("ingest", func() {
		st, ingestErr = s.ing.Ingest(batch, func(sys *core.System) {
			rep.PrecisionBefore = sys.Oracle.KBPrecision(sys.KB, nil)
			rep.PairsBefore = sys.KB.NumPairs()
			extracted = true
		})
	}); err != nil {
		if !extracted {
			// The panic hit extraction (parse/replay): like a one-shot
			// run's build stage, there is no partial report to return.
			return nil, err
		}
		return rep, err
	}
	if ingestErr != nil {
		if errors.Is(ingestErr, core.ErrIngestStopped) {
			return nil, canceledErr(ctx.Err())
		}
		return rep, fmt.Errorf("driftclean: cleaning failed: %w", ingestErr)
	}

	s.o.emit(PhaseEvaluate, 0)
	if err := runStage("evaluate", func() {
		evaluateReport(rep, s.sys, st.Result)
	}); err != nil {
		return rep, err
	}
	totalDPs := 0
	for _, rr := range st.Result.Clean.Rounds {
		totalDPs += rr.AccidentalDPs + rr.IntentionalDPs
	}
	if totalDPs == 0 {
		return rep, ErrNoDPsDetected
	}
	return rep, nil
}

// Publish freezes the current checkpoint's cleaned KB into an
// immutable, generation-stamped snapshot, ready for serve.Service.Swap.
// Each call returns a new snapshot with a fresh generation; the session
// may keep ingesting afterwards without affecting published snapshots.
func (s *Session) Publish() (*Snapshot, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.sys.KB == nil {
		return nil, ErrNoCheckpoint
	}
	return snapshot.Freeze(s.sys.KB), nil
}

// Close marks the session closed; subsequent Ingest and Publish calls
// fail with ErrSessionClosed. Reports and snapshots obtained earlier
// remain valid. Close is idempotent and always returns nil.
func (s *Session) Close() error {
	s.closed = true
	return nil
}

// evaluateReport fills a report's after-cleaning metrics from the
// system's oracle and the checkpoint's cleaning result.
func evaluateReport(rep *Report, sys *System, cr *CleanResult) {
	rep.PrecisionAfter = sys.Oracle.KBPrecision(sys.KB, nil)
	rep.PairsAfter = sys.KB.NumPairs()
	rep.Rounds = len(cr.Clean.Rounds)
	rep.Converged = cr.Clean.Converged
	// Merge per-concept metrics in sorted concept order: float sums
	// are order-sensitive, and map order would make the reported
	// metrics drift across runs of the same experiment.
	concepts := make([]string, 0, len(cr.BeforeInstances))
	for concept := range cr.BeforeInstances {
		concepts = append(concepts, concept)
	}
	sort.Strings(concepts)
	per := make([]eval.CleaningMetrics, 0, len(concepts))
	for _, concept := range concepts {
		per = append(per, sys.Oracle.Cleaning(concept, cr.BeforeInstances[concept], sys.KB))
	}
	m := eval.MergeCleaning(per)
	rep.PError, rep.RError, rep.PCorr, rep.RCorr = m.PError, m.RError, m.PCorr, m.RCorr
}
