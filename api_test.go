package driftclean

import (
	"strings"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.World.NumDomains = 3
	cfg.World.InstancesPerConceptMin = 50
	cfg.World.InstancesPerConceptMax = 100
	cfg.Corpus.NumSentences = 15000
	cfg.Clean.MaxRounds = 2
	return cfg
}

func TestCleanEndToEnd(t *testing.T) {
	rep, err := Clean(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("precision %.3f -> %.3f, pairs %d -> %d, rounds %d",
		rep.PrecisionBefore, rep.PrecisionAfter, rep.PairsBefore, rep.PairsAfter, rep.Rounds)
	if rep.PrecisionAfter <= rep.PrecisionBefore {
		t.Errorf("cleaning did not improve precision: %.3f -> %.3f",
			rep.PrecisionBefore, rep.PrecisionAfter)
	}
	if rep.PairsAfter >= rep.PairsBefore {
		t.Error("cleaning removed no pairs")
	}
	if rep.System == nil {
		t.Error("report must retain the system")
	}
	if rep.RCorr <= 0 || rep.PError <= 0 {
		t.Errorf("metrics not populated: %+v", rep)
	}
}

func TestCleanWithAdHoc(t *testing.T) {
	rep, err := CleanWith(smallConfig(), DetectAdHoc2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrecisionAfter < rep.PrecisionBefore-0.01 {
		t.Errorf("ad-hoc cleaning degraded precision: %.3f -> %.3f",
			rep.PrecisionBefore, rep.PrecisionAfter)
	}
}

func TestBuildExposesSystem(t *testing.T) {
	sys := Build(smallConfig())
	if sys.KB.NumPairs() == 0 || sys.World == nil || sys.Corpus.Len() == 0 {
		t.Fatal("Build returned an incomplete system")
	}
}

func TestRunExperimentByID(t *testing.T) {
	opts := DefaultExperimentOptions()
	opts.Core = smallConfig()
	opts.EvalConcepts = 8
	tab, err := RunExperiment("fig5a", opts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig5a" || len(tab.Rows) == 0 {
		t.Fatalf("experiment table = %+v", tab)
	}
	if !strings.Contains(tab.Render(), "iteration") {
		t.Error("render missing header")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}
