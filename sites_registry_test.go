package driftclean

import (
	"path/filepath"
	"testing"

	"driftclean/internal/fault"
	"driftclean/internal/lint"
)

// TestFaultRegistryFresh recomputes the fault-site list from the
// module's sources and compares it to the generated fault.Registry, so
// a drifted sites_gen.go fails plain `go test ./...` even when the
// driftlint gate is not run. Regenerate with:
//
//	go run ./cmd/driftlint -gensites
func TestFaultRegistryFresh(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader().LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	names, err := lint.FaultSiteNames(pkgs)
	if err != nil {
		t.Fatalf("collecting fault sites: %v", err)
	}
	if len(names) == 0 {
		t.Fatal("no fault sites found in the module; the chaos seams are gone")
	}
	if len(names) != len(fault.Registry) {
		t.Fatalf("source registers %d sites, generated Registry lists %d; run `go run ./cmd/driftlint -gensites`\nsource: %v\nregistry: %v",
			len(names), len(fault.Registry), names, fault.Registry)
	}
	for i, name := range names {
		if fault.Registry[i] != name {
			t.Errorf("Registry[%d] = %q, source says %q; run `go run ./cmd/driftlint -gensites`", i, fault.Registry[i], name)
		}
	}
	// The chaos suite keys off the stage prefixes; make sure the derived
	// pipeline list stayed non-trivial.
	if len(pipelineSites) < 5 {
		t.Errorf("pipelineSites derived only %v from the registry", pipelineSites)
	}
}
