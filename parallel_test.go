package driftclean

import (
	"context"
	"errors"
	"testing"

	"driftclean/internal/bench"
)

// TestPipelineParallelMatchesSerial is the end-to-end determinism gate
// for the parallel execution layer, run under -race in CI: the full
// pipeline with Parallelism ≥ 4 must produce byte-identical results to
// the forced-serial path — same corpus, same extraction trajectory, same
// cleaned KB, same report.
func TestPipelineParallelMatchesSerial(t *testing.T) {
	run := func(parallelism int) *Report {
		cfg := DefaultConfig()
		cfg.Corpus.NumSentences = 8000
		cfg.Clean.MaxRounds = 2
		cfg.Parallelism = parallelism
		rep, err := CleanContext(context.Background(), WithConfig(cfg))
		if err != nil && !errors.Is(err, ErrNoDPsDetected) {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return rep
	}

	serial := run(1)
	parallel := run(4)

	sc, pc := serial.System.Corpus, parallel.System.Corpus
	if sc.Len() != pc.Len() {
		t.Fatalf("corpus sizes differ: %d vs %d", sc.Len(), pc.Len())
	}
	for i := range sc.Sentences {
		if sc.Sentences[i] != pc.Sentences[i] {
			t.Fatalf("corpus diverges at sentence %d:\n  serial:   %q\n  parallel: %q",
				i, sc.Sentences[i].Text, pc.Sentences[i].Text)
		}
	}

	se, pe := serial.System.Extraction, parallel.System.Extraction
	if se.Iterations != pe.Iterations || se.Unparseable != pe.Unparseable || se.Unresolved != pe.Unresolved {
		t.Errorf("extraction trajectories differ: serial=%+v parallel=%+v",
			se.PerIteration, pe.PerIteration)
	}
	for i := range se.PerIteration {
		if se.PerIteration[i] != pe.PerIteration[i] {
			t.Errorf("iteration %d stats differ: %+v vs %+v",
				i, se.PerIteration[i], pe.PerIteration[i])
		}
	}

	if sf, pf := bench.Fingerprint(serial.System.KB), bench.Fingerprint(parallel.System.KB); sf != pf {
		t.Errorf("cleaned KBs differ: fingerprint %s vs %s", sf, pf)
	}
	if serial.PairsBefore != parallel.PairsBefore || serial.PairsAfter != parallel.PairsAfter ||
		serial.Rounds != parallel.Rounds || serial.Converged != parallel.Converged {
		t.Errorf("reports differ:\n  serial:   %+v\n  parallel: %+v", summary(serial), summary(parallel))
	}
	//lint:ignore floateq exact equality is the point: serial and parallel runs share every bit
	if serial.PrecisionBefore != parallel.PrecisionBefore || serial.PrecisionAfter != parallel.PrecisionAfter {
		t.Errorf("precision differs: serial %v->%v, parallel %v->%v",
			serial.PrecisionBefore, serial.PrecisionAfter, parallel.PrecisionBefore, parallel.PrecisionAfter)
	}
}

type reportSummary struct {
	pairsBefore, pairsAfter, rounds int
	converged                       bool
}

func summary(r *Report) reportSummary {
	return reportSummary{r.PairsBefore, r.PairsAfter, r.Rounds, r.Converged}
}
