// Command driftclean runs the complete pipeline — synthetic world,
// Hearst corpus, drifted iterative extraction, DP detection, DP-based
// cleaning — and prints a cleaning report.
//
// Usage:
//
//	driftclean [-sentences N] [-domains N] [-seed N] [-method NAME] [-rounds N] [-v]
//
// Methods: multitask (default), semisup, supervised, ridge, adhoc1..adhoc4.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"driftclean"
)

func main() {
	var (
		sentences = flag.Int("sentences", 120000, "number of corpus sentences")
		domains   = flag.Int("domains", 8, "number of generated concept domains")
		seed      = flag.Int64("seed", 1, "world seed (corpus seed derives from it)")
		method    = flag.String("method", "multitask", "detection method: multitask|semisup|supervised|ridge|adhoc1..adhoc4")
		rounds    = flag.Int("rounds", 5, "maximum detect-and-clean rounds")
		verbose   = flag.Bool("v", false, "print per-iteration extraction stats")
		saveKB    = flag.String("savekb", "", "write the cleaned knowledge base (gob) to this file")
	)
	flag.Parse()

	kind, ok := methodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	cfg := driftclean.DefaultConfig()
	cfg.World.Seed = *seed
	cfg.World.NumDomains = *domains
	cfg.Corpus.Seed = *seed + 1
	cfg.Corpus.NumSentences = *sentences
	cfg.Clean.MaxRounds = *rounds

	// Context-first API: ctrl-C cancels between cleaning rounds instead
	// of killing the process mid-mutation.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []driftclean.Option{driftclean.WithConfig(cfg)}
	if *verbose {
		opts = append(opts, driftclean.WithProgress(func(p driftclean.Phase, r driftclean.Round) {
			if p == driftclean.PhaseClean {
				fmt.Fprintf(os.Stderr, "driftclean: %v round %d\n", p, r)
			} else {
				fmt.Fprintf(os.Stderr, "driftclean: %v\n", p)
			}
		}))
	}

	start := time.Now()
	rep, err := driftclean.CleanWithContext(ctx, kind, opts...)
	switch {
	case errors.Is(err, driftclean.ErrNoDPsDetected):
		fmt.Fprintln(os.Stderr, "driftclean: no drifting points detected; nothing to clean")
	case err != nil:
		fmt.Fprintf(os.Stderr, "driftclean: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	sys := rep.System
	fmt.Printf("world:      %d concepts, %d instances\n", len(sys.World.Concepts), sys.World.NumInstances())
	fmt.Printf("corpus:     %d sentences\n", sys.Corpus.Len())
	fmt.Printf("extraction: %d iterations, %d unresolved ambiguous sentences\n",
		sys.Extraction.Iterations, sys.Extraction.Unresolved)
	if *verbose {
		for _, it := range sys.Extraction.PerIteration {
			fmt.Printf("  iteration %2d: +%6d extractions, %7d distinct pairs\n",
				it.Iteration, it.NewExtractions, it.DistinctPairs)
		}
	}
	fmt.Printf("method:     %v\n", kind)
	fmt.Printf("pairs:      %d -> %d (removed %d)\n", rep.PairsBefore, rep.PairsAfter, rep.PairsBefore-rep.PairsAfter)
	fmt.Printf("precision:  %.3f -> %.3f\n", rep.PrecisionBefore, rep.PrecisionAfter)
	fmt.Printf("cleaning:   perror=%.3f rerror=%.3f pcorr=%.3f rcorr=%.3f (%d rounds)\n",
		rep.PError, rep.RError, rep.PCorr, rep.RCorr, rep.Rounds)
	fmt.Printf("elapsed:    %v\n", elapsed.Round(time.Millisecond))
	if *saveKB != "" {
		if err := sys.KB.SaveFile(*saveKB); err != nil {
			fmt.Fprintf(os.Stderr, "driftclean: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved:      %s\n", *saveKB)
	}
}

func methodByName(name string) (driftclean.DetectorKind, bool) {
	switch name {
	case "multitask":
		return driftclean.DetectMultiTask, true
	case "semisup":
		return driftclean.DetectSemiSupervised, true
	case "supervised":
		return driftclean.DetectSupervised, true
	case "ridge":
		return driftclean.DetectRidge, true
	case "adhoc1":
		return driftclean.DetectAdHoc1, true
	case "adhoc2":
		return driftclean.DetectAdHoc2, true
	case "adhoc3":
		return driftclean.DetectAdHoc3, true
	case "adhoc4":
		return driftclean.DetectAdHoc4, true
	default:
		return 0, false
	}
}
