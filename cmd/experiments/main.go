// Command experiments regenerates the tables and figures of the paper's
// evaluation section (Sec 5) on the synthetic substrate.
//
// Usage:
//
//	experiments [-run all|table1|...|fig5c] [-sentences N] [-seed N]
//	            [-eval N] [-csv DIR]
//
// Text tables go to stdout; -csv additionally writes one CSV per
// experiment into DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"driftclean"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment id or 'all': "+strings.Join(driftclean.ExperimentIDs(), ","))
		sentences = flag.Int("sentences", 120000, "number of corpus sentences")
		seed      = flag.Int64("seed", 1, "world seed")
		evalN     = flag.Int("eval", 20, "number of evaluation concepts (the paper uses 20)")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV files")
	)
	flag.Parse()

	opts := driftclean.DefaultExperimentOptions()
	opts.Core.World.Seed = *seed
	opts.Core.Corpus.Seed = *seed + 1
	opts.Core.Corpus.NumSentences = *sentences
	opts.EvalConcepts = *evalN

	ids := driftclean.ExperimentIDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building system (%d sentences)...\n", *sentences)
	runner := driftclean.NewExperimentRunner(opts)
	fmt.Fprintf(os.Stderr, "system ready in %v\n", time.Since(start).Round(time.Millisecond))

	for _, id := range ids {
		t0 := time.Now()
		tab, err := runner.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Fprintf(os.Stderr, "%s done in %v\n", tab.ID, time.Since(t0).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, tab.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))
}
