// Command corpusgen emits a synthetic Hearst-pattern corpus to stdout or
// a file, one sentence per line, for inspection or external tooling. With
// -truth it appends each sentence's hidden ground truth as a comment.
//
// Usage:
//
//	corpusgen [-n N] [-seed N] [-domains N] [-o FILE] [-truth]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"driftclean/internal/corpus"
	"driftclean/internal/world"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of sentences")
		seed    = flag.Int64("seed", 1, "world seed (corpus seed derives from it)")
		domains = flag.Int("domains", 8, "number of generated concept domains")
		out     = flag.String("o", "", "output file (default stdout)")
		truth   = flag.Bool("truth", false, "append ground-truth annotations")
	)
	flag.Parse()

	wcfg := world.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.NumDomains = *domains
	w := world.New(wcfg)

	ccfg := corpus.DefaultConfig()
	ccfg.Seed = *seed + 1
	ccfg.NumSentences = *n
	c := corpus.Generate(w, ccfg)

	var dst *bufio.Writer
	if *out == "" {
		dst = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = bufio.NewWriter(f)
	}
	for _, s := range c.Sentences {
		// bufio errors are sticky; Flush below reports the first one.
		_, _ = dst.WriteString(s.Text)
		if *truth {
			tr := c.Truth(s.ID)
			fmt.Fprintf(dst, "\t# kind=%s concept=%s", tr.Kind, tr.TrueConcept)
			if len(tr.WrongInstances) > 0 {
				fmt.Fprintf(dst, " wrong=%s", strings.Join(tr.WrongInstances, ","))
			}
		}
		_ = dst.WriteByte('\n')
	}
	if err := dst.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}
}
