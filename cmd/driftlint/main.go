// Command driftlint runs driftclean's project-native static analyzers
// (see internal/lint) over the module.
//
// Usage:
//
//	driftlint [-json] [-only a,b] [-list] [packages...]
//
// Packages are go-style local patterns: ./... (default), ./internal/...
// or plain directories. Test files are not analyzed.
//
// Exit codes: 0 — clean; 1 — findings reported; 2 — usage, load or
// type-check error. CI gates on "any nonzero", humans read the text
// output, and -json feeds tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"driftclean/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("driftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		only    = fs.String("only", "", "comma-separated analyzer filter (default: all)")
		list    = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: driftlint [-json] [-only a,b] [-list] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, "driftlint:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "driftlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader().LoadPatterns(root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "driftlint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "driftlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "driftlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// jsonDiag is the stable JSON shape of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so driftlint works from any subdirectory of the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
