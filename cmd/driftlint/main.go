// Command driftlint runs driftclean's project-native static analyzers
// (see internal/lint) over the module.
//
// Usage:
//
//	driftlint [-json] [-only a,b] [-list] [-maxignores n] [-gensites] [packages...]
//
// Packages are go-style local patterns: ./... (default), ./internal/...
// or plain directories. Test files are not analyzed.
//
// -maxignores n is the suppression ratchet: the run fails when the
// analyzed sources carry more than n //lint:ignore directives, so the
// escape hatch cannot silently grow — lowering the budget is easy,
// raising it is a reviewed decision in scripts/verify.sh. When the full
// suite runs (no -only filter), stale directives that suppressed
// nothing are reported as lintdirective findings.
//
// -gensites regenerates internal/fault/sites_gen.go from the fault
// sites found in the analyzed packages; it refuses while any site is
// not a compile-time string.
//
// Exit codes: 0 — clean; 1 — findings reported or ratchet exceeded;
// 2 — usage, load or type-check error. CI gates on "any nonzero",
// humans read the text output, and -json feeds tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"driftclean/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("driftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as a JSON array")
		only       = fs.String("only", "", "comma-separated analyzer filter (default: all)")
		list       = fs.Bool("list", false, "list analyzers and exit")
		maxIgnores = fs.Int("maxignores", -1, "fail when more than this many //lint:ignore directives exist (-1: no limit)")
		genSites   = fs.Bool("gensites", false, "regenerate internal/fault/sites_gen.go from the analyzed packages")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: driftlint [-json] [-only a,b] [-list] [-maxignores n] [-gensites] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, "driftlint:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "driftlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader().LoadPatterns(root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "driftlint:", err)
		return 2
	}

	if *genSites {
		return generateSites(root, pkgs, stdout, stderr)
	}

	// Stale-suppression reporting only makes sense when every analyzer
	// runs: under -only, a directive for an unselected analyzer is
	// silent by construction, not stale.
	res := lint.RunSuite(pkgs, analyzers, lint.Options{ReportStale: *only == ""})
	diags := res.Diags
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "driftlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	failed := len(diags) > 0
	if *maxIgnores >= 0 && res.Ignores > *maxIgnores {
		fmt.Fprintf(stderr, "driftlint: %d //lint:ignore directive(s) exceed the budget of %d; remove suppressions, or raise -maxignores in scripts/verify.sh as a reviewed decision\n", res.Ignores, *maxIgnores)
		failed = true
	}
	if failed {
		if !*jsonOut && len(diags) > 0 {
			fmt.Fprintf(stderr, "driftlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// generateSites rewrites internal/fault/sites_gen.go from the fault
// sites registered in the loaded packages.
func generateSites(root string, pkgs []*lint.Package, stdout, stderr *os.File) int {
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "driftlint: -gensites: no packages loaded")
		return 2
	}
	names, err := lint.FaultSiteNames(pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "driftlint: -gensites:", err)
		return 1
	}
	dir := filepath.Join(root, "internal", "fault")
	if _, err := os.Stat(dir); err != nil {
		fmt.Fprintf(stderr, "driftlint: -gensites: %s: %v\n", dir, err)
		return 2
	}
	path := filepath.Join(dir, "sites_gen.go")
	if err := os.WriteFile(path, lint.GenerateSiteRegistry(names), 0o644); err != nil {
		fmt.Fprintln(stderr, "driftlint: -gensites:", err)
		return 2
	}
	fmt.Fprintf(stdout, "driftlint: wrote %s (%d sites)\n", path, len(names))
	return 0
}

// jsonDiag is the stable JSON shape of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so driftlint works from any subdirectory of the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
