package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runIn executes driftlint's entry point from dir, capturing stdout.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout string) {
	t.Helper()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(orig); err != nil {
			t.Fatal(err)
		}
	}()
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	errf, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer errf.Close()
	code = run(args, out, errf)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// tempModule writes a one-package module and returns its root.
func tempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "code.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodeFindings: a module with a violation exits 1 and reports
// it, in both text and JSON form — the contract scripts/verify.sh and
// CI gate on.
func TestExitCodeFindings(t *testing.T) {
	dir := tempModule(t, `package tmp

func cmp(a, b float64) bool { return a == b }
`)
	code, out := runIn(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code %d on a module with findings, want 1", code)
	}
	if !strings.Contains(out, "[floateq]") || !strings.Contains(out, "code.go:3:") {
		t.Errorf("text output missing the finding: %q", out)
	}

	code, out = runIn(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("-json exit code %d, want 1", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "floateq" || diags[0].Line != 3 {
		t.Errorf("unexpected JSON findings: %+v", diags)
	}
}

// TestExitCodeClean: a clean module exits 0 with no output.
func TestExitCodeClean(t *testing.T) {
	dir := tempModule(t, `package tmp

// Sum is documented.
func Sum(a, b int) int { return a + b }
`)
	code, out := runIn(t, dir, "./...")
	if code != 0 || out != "" {
		t.Fatalf("clean module: exit %d output %q, want 0 and empty", code, out)
	}
}

// TestExitCodeErrors: usage and load errors exit 2, distinct from
// findings, so CI can tell "the gate failed" from "the gate is broken".
func TestExitCodeErrors(t *testing.T) {
	dir := tempModule(t, "package tmp\n")
	if code, _ := runIn(t, dir, "-only", "nosuch", "./..."); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if code, _ := runIn(t, dir, "./nonexistent"); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
	broken := tempModule(t, "package tmp\n\nfunc f() { undeclared() }\n")
	if code, _ := runIn(t, broken, "./..."); code != 2 {
		t.Fatalf("type error: exit %d, want 2", code)
	}
}

// tempModuleFiles writes a multi-file module and returns its root.
func tempModuleFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestMaxIgnoresRatchet: the suppression budget fails the run when the
// directive count exceeds it, and passes at the exact budget.
func TestMaxIgnoresRatchet(t *testing.T) {
	dir := tempModule(t, `package tmp

func cmp(a, b float64) bool {
	//lint:ignore floateq fixture compares sentinels exactly
	return a == b
}
`)
	if code, _ := runIn(t, dir, "-maxignores", "1", "./..."); code != 0 {
		t.Fatalf("one directive within budget 1: exit %d, want 0", code)
	}
	if code, _ := runIn(t, dir, "-maxignores", "0", "./..."); code != 1 {
		t.Fatalf("one directive over budget 0: exit %d, want 1", code)
	}
}

// TestStaleIgnore: a directive that suppresses nothing is reported as a
// lintdirective finding on a full-suite run, but not under -only (where
// the unselected analyzer's silence is expected).
func TestStaleIgnore(t *testing.T) {
	dir := tempModule(t, `package tmp

// Sum is documented.
func Sum(a, b int) int {
	//lint:ignore floateq nothing here actually compares floats
	return a + b
}
`)
	code, out := runIn(t, dir, "./...")
	if code != 1 || !strings.Contains(out, "stale //lint:ignore floateq") {
		t.Fatalf("stale directive not reported: exit %d, out %q", code, out)
	}
	if code, _ := runIn(t, dir, "-only", "norand", "./..."); code != 0 {
		t.Fatalf("-only run must not report stale directives, exit %d", code)
	}
}

// faultModule is a minimal module with a fault package and one
// registered site, for the gensites round trip.
func faultModule(t *testing.T) string {
	return tempModuleFiles(t, map[string]string{
		"internal/fault/fault.go": `// Package fault is a stub injector.
package fault

// Injector decides the fate of site hits.
type Injector struct{}

// Hit registers a hit.
func (in *Injector) Hit(site string) error { return nil }

// Check registers a hit, dropping the verdict.
func (in *Injector) Check(site string) {}
`,
		"pipe.go": `// Package tmp drives the stub injector.
package tmp

import "tmpmod/internal/fault"

// Run touches the one chaos seam.
func Run(inj *fault.Injector) {
	inj.Check("tmp.op")
}
`,
	})
}

// TestGenSites: -gensites writes the registry, after which a full run
// is clean; before it, the missing registry is a faultsite finding.
func TestGenSites(t *testing.T) {
	dir := faultModule(t)
	code, out := runIn(t, dir, "./...")
	if code != 1 || !strings.Contains(out, "no generated Registry variable") {
		t.Fatalf("missing registry not reported: exit %d, out %q", code, out)
	}
	code, out = runIn(t, dir, "-gensites", "./...")
	if code != 0 || !strings.Contains(out, "sites_gen.go (1 sites)") {
		t.Fatalf("-gensites: exit %d, out %q", code, out)
	}
	gen, err := os.ReadFile(filepath.Join(dir, "internal", "fault", "sites_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gen), "\"tmp.op\",") {
		t.Fatalf("generated registry missing the site:\n%s", gen)
	}
	if code, out := runIn(t, dir, "./..."); code != 0 {
		t.Fatalf("fresh registry still dirty: exit %d, out %q", code, out)
	}
	// Drift the source: a second site makes the registry stale again.
	extra := `// Package tmp drives the stub injector.
package tmp

import "tmpmod/internal/fault"

// Run touches two chaos seams now.
func Run(inj *fault.Injector) {
	inj.Check("tmp.op")
	inj.Check("tmp.second")
}
`
	if err := os.WriteFile(filepath.Join(dir, "pipe.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runIn(t, dir, "./..."); code != 1 || !strings.Contains(out, "registry is stale") {
		t.Fatalf("stale registry not reported: exit %d, out %q", code, out)
	}
}

// TestOnlyFilter restricts the run to selected analyzers.
func TestOnlyFilter(t *testing.T) {
	dir := tempModule(t, `package tmp

func cmp(a, b float64) bool { return a == b }
`)
	if code, _ := runIn(t, dir, "-only", "norand", "./..."); code != 0 {
		t.Fatalf("-only norand should not see the floateq finding, exit %d", code)
	}
	if code, _ := runIn(t, dir, "-only", "floateq", "./..."); code != 1 {
		t.Fatalf("-only floateq should report the finding, exit %d", code)
	}
}
