// Command driftbench times the full driftclean pipeline — world →
// corpus → extraction → analysis → cleaning — on the serial path and
// with the worker pools engaged, and writes the comparison to
// BENCH_pipeline.json (schema documented in README.md, "Performance").
//
// Usage:
//
//	driftbench                       # full ladder (small/medium/large)
//	driftbench -smoke                # single tiny scale, for CI
//	driftbench -scales all           # smoke + full ladder + ingest scenarios
//	driftbench -scales ingest        # incremental ingest: per-batch latency
//	                                 # vs a from-scratch rerun (medium corpus)
//	driftbench -scales ingest-smoke  # tiny ingest scenario, for CI
//	driftbench -scales solver-ab     # ladder + Jacobi-solver twins of the
//	                                 # smoke and large scales (eigensolver A/B)
//	driftbench -solver jacobi        # pin all scales to the Jacobi oracle
//	driftbench -out bench.json       # artifact path (default BENCH_pipeline.json)
//	driftbench -check old.json       # fail if any same-named scale's KB
//	                                 # fingerprint differs from old.json
//	driftbench -cpuprofile cpu.pprof # pprof CPU capture of the timed runs
//	driftbench -memprofile mem.pprof # heap profile written after the runs
//
// The exit status is nonzero if any scale's serial and parallel runs
// disagree on the final KB, or if -check finds a fingerprint drift
// against a previous artifact — determinism guarantees are part of what
// this benchmark verifies, not assumptions it makes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"driftclean/internal/bench"
)

func main() {
	smoke := flag.Bool("smoke", false, "run the single tiny CI scale instead of the full ladder")
	scaleSet := flag.String("scales", "", `scale set: "default" (small/medium/large), "smoke", "ingest", "ingest-smoke", "all" (smoke + ladder + ingest), or "solver-ab" (all plus Jacobi-solver twins of smoke and large); overrides -smoke`)
	solver := flag.String("solver", "", `pin every selected scale to one KPCA eigensolver: "topk" (default path) or "jacobi" (the oracle escape hatch; scale names get a "-jacobi" suffix)`)
	out := flag.String("out", "BENCH_pipeline.json", "artifact output path")
	check := flag.String("check", "", "path of a previous artifact; fail if any same-named scale's KB fingerprint differs")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the timed runs to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after the timed runs) to this path")
	flag.Parse()

	scales := bench.DefaultScales()
	var ingestScales []bench.IngestScale
	if *smoke {
		scales = bench.SmokeScales()
	}
	switch *scaleSet {
	case "":
	case "default":
		scales = bench.DefaultScales()
	case "smoke":
		scales = bench.SmokeScales()
	case "ingest":
		scales = nil
		ingestScales = bench.DefaultIngestScales()
	case "ingest-smoke":
		scales = nil
		ingestScales = bench.SmokeIngestScales()
	case "all":
		scales = append(bench.SmokeScales(), bench.DefaultScales()...)
		ingestScales = append(bench.SmokeIngestScales(), bench.DefaultIngestScales()...)
	case "solver-ab":
		// The before/after artifact for the top-k eigensolver: the full
		// ladder on the default path plus Jacobi twins of the endpoints.
		scales = append(bench.SmokeScales(), bench.DefaultScales()...)
		scales = append(scales, bench.JacobiTwins([]bench.Scale{scales[0], scales[len(scales)-1]})...)
		ingestScales = append(bench.SmokeIngestScales(), bench.DefaultIngestScales()...)
	default:
		fmt.Fprintf(os.Stderr, "driftbench: unknown -scales %q (want default, smoke, ingest, ingest-smoke, all or solver-ab)\n", *scaleSet)
		os.Exit(2)
	}
	switch *solver {
	case "", "topk":
	case "jacobi":
		scales = bench.JacobiTwins(scales)
	default:
		fmt.Fprintf(os.Stderr, "driftbench: unknown -solver %q (want topk or jacobi)\n", *solver)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "driftbench: creating cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "driftbench: starting cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	res := bench.Run(scales, func(line string) { fmt.Println(line) })
	bench.RunIngest(res, ingestScales, func(line string) { fmt.Println(line) })

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "driftbench: creating mem profile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "driftbench: writing mem profile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "driftbench: closing mem profile: %v\n", err)
			os.Exit(1)
		}
	}

	if err := res.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ok := true
	if len(res.Scales) > 0 {
		fmt.Printf("\n%-8s %10s %10s %8s  %s\n", "scale", "serial_s", "parallel_s", "speedup", "identical")
		for _, sc := range res.Scales {
			fmt.Printf("%-8s %10.2f %10.2f %7.2fx  %v\n",
				sc.Name, sc.Serial.Stages.Total, sc.Parallel.Stages.Total, sc.Speedup, sc.Identical)
			if !sc.Identical {
				ok = false
			}
		}
	}
	if len(res.Ingest) > 0 {
		fmt.Printf("\n%-14s %10s %12s %8s  %s\n", "ingest", "batch_s", "rerun_s", "speedup", "identical")
		for _, ir := range res.Ingest {
			fmt.Printf("%-14s %10.3f %12.2f %7.2fx  %v\n",
				ir.Name, ir.MeanBatchSeconds, ir.FullRerunSeconds, ir.Speedup, ir.Identical)
			if !ir.Identical {
				ok = false
			}
		}
	}
	fmt.Printf("cpus=%d workers=%d artifact=%s\n", res.CPUs, res.ParallelWorkers, *out)
	if !ok {
		fmt.Fprintln(os.Stderr, "driftbench: paired runs diverged on the final KB — determinism violation")
		os.Exit(1)
	}

	if *check != "" {
		drifts, err := bench.CheckAgainst(res, *check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "driftbench: -check: %v\n", err)
			os.Exit(1)
		}
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, "driftbench: "+d)
		}
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "driftbench: KB fingerprints drifted from %s — byte-identical-output violation\n", *check)
			os.Exit(1)
		}
		fmt.Printf("check: fingerprints match %s on every shared scale\n", *check)
	}
}
