// Command driftbench times the full driftclean pipeline — world →
// corpus → extraction → analysis → cleaning — on the serial path and
// with the worker pools engaged, and writes the comparison to
// BENCH_pipeline.json (schema documented in README.md, "Performance").
//
// Usage:
//
//	driftbench                  # full ladder (small/medium/large)
//	driftbench -smoke           # single tiny scale, for CI
//	driftbench -out bench.json  # artifact path (default BENCH_pipeline.json)
//
// The exit status is nonzero if any scale's serial and parallel runs
// disagree on the final KB — the determinism guarantee is part of what
// this benchmark verifies, not an assumption it makes.
package main

import (
	"flag"
	"fmt"
	"os"

	"driftclean/internal/bench"
)

func main() {
	smoke := flag.Bool("smoke", false, "run the single tiny CI scale instead of the full ladder")
	out := flag.String("out", "BENCH_pipeline.json", "artifact output path")
	flag.Parse()

	scales := bench.DefaultScales()
	if *smoke {
		scales = bench.SmokeScales()
	}
	res := bench.Run(scales, func(line string) { fmt.Println(line) })
	if err := res.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ok := true
	fmt.Printf("\n%-8s %10s %10s %8s  %s\n", "scale", "serial_s", "parallel_s", "speedup", "identical")
	for _, sc := range res.Scales {
		fmt.Printf("%-8s %10.2f %10.2f %7.2fx  %v\n",
			sc.Name, sc.Serial.Stages.Total, sc.Parallel.Stages.Total, sc.Speedup, sc.Identical)
		if !sc.Identical {
			ok = false
		}
	}
	fmt.Printf("cpus=%d workers=%d artifact=%s\n", res.CPUs, res.ParallelWorkers, *out)
	if !ok {
		fmt.Fprintln(os.Stderr, "driftbench: serial and parallel runs diverged — determinism violation")
		os.Exit(1)
	}
}
