package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"driftclean/internal/kb"
	"driftclean/internal/kb/kbio"
)

func testKB() *kb.KB {
	k := kb.New()
	k.AddExtraction(0, "animal", nil, []string{"chicken", "dog"}, nil, 1)
	k.AddExtraction(1, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	return k
}

// exec runs the tool and returns exit code, stdout, stderr.
func exec(t *testing.T, argv ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(argv, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "kb.gob")
	binPath := filepath.Join(dir, "kb.bin")
	backPath := filepath.Join(dir, "back.gob")
	orig := testKB()
	if err := orig.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}

	if code, out, errOut := exec(t, "convert", gobPath, binPath); code != 0 {
		t.Fatalf("convert to binary: code %d, %s%s", code, out, errOut)
	}
	if f, err := kbio.Detect(binPath); err != nil || f != kbio.FormatBinary {
		t.Fatalf("output not binary: %v, %v", f, err)
	}
	if code, out, errOut := exec(t, "convert", binPath, backPath); code != 0 {
		t.Fatalf("convert back to gob: code %d, %s%s", code, out, errOut)
	}
	if f, err := kbio.Detect(backPath); err != nil || f != kbio.FormatGob {
		t.Fatalf("round-trip output not gob: %v, %v", f, err)
	}
	back, _, err := kbio.LoadKB(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Pairs(), orig.Pairs()) || back.Stats() != orig.Stats() {
		t.Fatal("gob→binary→gob round trip changed the KB")
	}
}

func TestConvertExplicitTarget(t *testing.T) {
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "kb.gob")
	if err := testKB().SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	// Explicit same-format target: a normalizing rewrite.
	out := filepath.Join(dir, "norm.gob")
	if code, _, errOut := exec(t, "convert", gobPath, out, "gob"); code != 0 {
		t.Fatalf("code %d: %s", code, errOut)
	}
	if f, _ := kbio.Detect(out); f != kbio.FormatGob {
		t.Fatal("explicit gob target produced non-gob output")
	}
}

func TestInfoAndVerify(t *testing.T) {
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "kb.gob")
	binPath := filepath.Join(dir, "kb.bin")
	if err := testKB().SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := exec(t, "convert", gobPath, binPath); code != 0 {
		t.Fatal(errOut)
	}

	code, out, _ := exec(t, "info", binPath)
	if code != 0 {
		t.Fatalf("info failed: %s", out)
	}
	for _, want := range []string{"format:   binary", "checksum:", "pairs:    3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}
	code, out, _ = exec(t, "info", gobPath)
	if code != 0 || !strings.Contains(out, "format:   gob") {
		t.Fatalf("gob info: code %d\n%s", code, out)
	}

	if code, out, _ = exec(t, "verify", binPath); code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("verify binary: code %d, %s", code, out)
	}
	if code, out, _ = exec(t, "verify", gobPath); code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("verify gob: code %d, %s", code, out)
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "kb.gob")
	binPath := filepath.Join(dir, "kb.bin")
	if err := testKB().SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := exec(t, "convert", gobPath, binPath); code != 0 {
		t.Fatal(errOut)
	}
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(binPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := exec(t, "verify", binPath)
	if code != 1 {
		t.Fatalf("verify of corrupt file: code %d, want 1", code)
	}
	if !strings.Contains(errOut, "corrupt") {
		t.Fatalf("error does not mention corruption: %s", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, argv := range [][]string{
		{}, {"bogus"}, {"convert", "one"}, {"convert", "a", "b", "c", "d"},
		{"convert", "a", "b", "xml"}, {"info"}, {"verify"}, {"info", "a", "b"},
	} {
		if code, _, _ := exec(t, argv...); code != 2 {
			t.Fatalf("argv %v: code %d, want 2", argv, code)
		}
	}
}

func TestOperationalErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing")
	for _, argv := range [][]string{
		{"info", missing}, {"verify", missing},
		{"convert", missing, filepath.Join(t.TempDir(), "out")},
	} {
		if code, _, _ := exec(t, argv...); code != 1 {
			t.Fatalf("argv %v: code %d, want 1", argv, code)
		}
	}
}
