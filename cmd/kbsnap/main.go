// Command kbsnap is the ops tool for saved knowledge-base snapshots:
// convert between the gob stream and the zero-copy binary columnar
// format, inspect a snapshot's header and statistics, and verify
// integrity (checksum plus full structural validation) without loading
// the KB into a server.
//
// Usage:
//
//	kbsnap convert IN OUT [gob|binary]   re-encode IN as OUT (default: the other format)
//	kbsnap info FILE                     format, sizes, stats, checksum
//	kbsnap verify FILE                   validate; exit 0 iff the snapshot is sound
//
// Input formats are auto-detected, so convert also rewrites a snapshot
// in its own format (normalizing it). Output files are published
// atomically, like every snapshot write in this repo.
package main

import (
	"fmt"
	"io"
	"os"

	"driftclean/internal/kb"
	"driftclean/internal/kb/binsnap"
	"driftclean/internal/kb/kbio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point. Exit codes: 0 success, 1 operational
// error (unreadable, corrupt), 2 usage error.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		return usage(stderr)
	}
	cmd, rest := argv[0], argv[1:]
	switch cmd {
	case "convert":
		if len(rest) < 2 || len(rest) > 3 {
			return usage(stderr)
		}
		target := ""
		if len(rest) == 3 {
			target = rest[2]
			if target != "gob" && target != "binary" {
				return usage(stderr)
			}
		}
		return convert(rest[0], rest[1], target, stdout, stderr)
	case "info":
		if len(rest) != 1 {
			return usage(stderr)
		}
		return info(rest[0], stdout, stderr)
	case "verify":
		if len(rest) != 1 {
			return usage(stderr)
		}
		return verify(rest[0], stdout, stderr)
	}
	return usage(stderr)
}

// convert re-encodes src as dst. With no explicit target format, the
// output gets the opposite format of the input — the common migration
// direction either way.
func convert(src, dst, target string, stdout, stderr io.Writer) int {
	k, format, err := kbio.LoadKB(src)
	if err != nil {
		return fail(stderr, "loading %s: %v", src, err)
	}
	if target == "" {
		if format == kbio.FormatGob {
			target = "binary"
		} else {
			target = "gob"
		}
	}
	if target == "binary" {
		err = binsnap.WriteFile(dst, k)
	} else {
		err = k.SaveFile(dst)
	}
	if err != nil {
		return fail(stderr, "writing %s: %v", dst, err)
	}
	st, err := os.Stat(dst)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	fmt.Fprintf(stdout, "converted %s (%s) -> %s (%s), %d bytes, %d pairs\n",
		src, format, dst, target, st.Size(), k.NumPairs())
	return 0
}

// info prints the snapshot's format, sizes and statistics; for binary
// snapshots also the header's version, element counts and checksum.
func info(path string, stdout, stderr io.Writer) int {
	format, err := kbio.Detect(path)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	fmt.Fprintf(stdout, "format:   %s\n", format)
	var stats kb.Stats
	switch format {
	case kbio.FormatBinary:
		v, err := binsnap.Open(path)
		if err != nil {
			return fail(stderr, "opening %s: %v", path, err)
		}
		defer v.Close()
		h := v.Header()
		fmt.Fprintf(stdout, "version:  %d\nbytes:    %d\nchecksum: %08x\n", h.Version, h.FileBytes, h.Checksum)
		fmt.Fprintf(stdout, "strings:  %d\nextractions: %d (total, incl. rolled back)\npair records: %d (incl. zero-count)\n",
			h.Strings, h.Extractions, h.Pairs)
		stats = h.Stats
	default:
		k, _, err := kbio.LoadKB(path)
		if err != nil {
			return fail(stderr, "loading %s: %v", path, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			return fail(stderr, "%v", err)
		}
		fmt.Fprintf(stdout, "bytes:    %d\nextractions: %d (total, incl. rolled back)\n", st.Size(), k.NumExtractions())
		stats = k.Stats()
	}
	fmt.Fprintf(stdout, "concepts: %d\npairs:    %d\ncounts:   %d\nactive extractions: %d\n",
		stats.Concepts, stats.DistinctPairs, stats.TotalCount, stats.ActiveExtractions)
	return 0
}

// verify fully validates the snapshot — for binary files checksum and
// structure via Open, for gob files decode-time validation via LoadKB —
// and reports OK or the precise corruption.
func verify(path string, stdout, stderr io.Writer) int {
	format, err := kbio.Detect(path)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	if format == kbio.FormatBinary {
		v, err := binsnap.Open(path)
		if err != nil {
			return fail(stderr, "%v", err)
		}
		defer v.Close()
		fmt.Fprintf(stdout, "%s: OK (binary, checksum %08x, %d pairs)\n", path, v.Header().Checksum, v.NumPairs())
		return 0
	}
	k, _, err := kbio.LoadKB(path)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	fmt.Fprintf(stdout, "%s: OK (gob, %d pairs)\n", path, k.NumPairs())
	return 0
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: kbsnap convert IN OUT [gob|binary] | info FILE | verify FILE")
	return 2
}

func fail(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "kbsnap: "+format+"\n", args...)
	return 1
}
