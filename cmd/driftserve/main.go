// Command driftserve serves read queries over a knowledge base as
// HTTP/JSON, in one of two modes.
//
// With -kb FILE, a KB saved with driftclean -savekb is frozen into an
// immutable snapshot at startup; POST /v1/reload (or SIGHUP) re-reads
// the file and atomically swaps in a fresh snapshot without dropping
// in-flight requests. Adding -shards N partitions the snapshot by
// concept (consistent hashing) into N independent services behind a
// scatter-gather router: listing queries fan out and merge
// deterministically (responses are byte-identical to the unsharded
// server), point lookups route to the owning shard, and each shard
// reloads, sheds load (-inflight/-queue, HTTP 429) and goes stale
// independently. With -partial, a failing shard degrades scatter-gather
// responses (X-Driftclean-Degraded header) instead of failing them with
// 503.
//
// With -session, the server owns a live incremental pipeline
// (driftclean.Session): POST /v1/ingest appends a sentence batch, runs
// one delta extract-and-clean checkpoint, and hot-swaps the new
// generation in; a failed checkpoint leaves the previous snapshot
// serving, marked stale. The server starts with no snapshot — queries
// return 503 until the first successful ingest.
//
// In both modes, queries run lock-free against the current snapshot
// through an LRU-cached, request-coalescing service.
//
// Usage:
//
//	driftserve -kb FILE   [-shards N] [-partial] [-inflight N] [-queue N] [-addr :8080] [-timeout 5s] [-cache 4096]
//	driftserve -session   [-sentences N] [-addr :8080] [-timeout 5s] [-cache 4096]
//
// Endpoints:
//
//	GET  /v1/stats                               aggregate KB statistics
//	GET  /v1/concepts                            concepts with instance counts
//	GET  /v1/instances?concept=C                 a concept's instances
//	GET  /v1/explain?concept=C&instance=E[&n=N]  provenance of one pair
//	GET  /v1/drifted[?concept=C][&n=N]           deepest provenance chains (fleet-wide without concept)
//	GET  /v1/generation                          serving generation + stale flag
//	POST /v1/ingest                              advance the session pipeline (-session)
//	POST /v1/reload                              hot-reload the KB file (-kb)
//	GET  /debug/vars                             service metrics
//
// The server shuts down gracefully on SIGTERM or SIGINT: it stops
// accepting connections and gives in-flight requests a grace period to
// finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"driftclean"
	"driftclean/internal/corpus"
	"driftclean/internal/kb/kbio"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
)

func main() {
	var (
		kbPath    = flag.String("kb", "", "path to a KB snapshot written with -savekb")
		session   = flag.Bool("session", false, "serve a live incremental pipeline instead of a KB file")
		sentences = flag.Int("sentences", 0, "with -session: corpus size (0 uses the default config)")
		shards    = flag.Int("shards", 0, "with -kb: shard the snapshot by concept across N services behind a scatter-gather router")
		partial   = flag.Bool("partial", false, "with -shards: degrade scatter-gather responses on shard failure instead of answering 503")
		inflight  = flag.Int("inflight", 0, "per-service admission: max concurrently executing queries (0 = unlimited)")
		queue     = flag.Int("queue", 0, "per-service admission: queries queued beyond -inflight before shedding with 429")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request timeout (0 disables; ingest exempt)")
		cache     = flag.Int("cache", serve.DefaultCacheSize, "result cache entries (negative disables)")
	)
	flag.Parse()
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: driftserve -kb FILE [-shards N] [-partial] | -session [-sentences N]  [-addr :8080] [-timeout 5s] [-cache 4096]")
		os.Exit(2)
	}
	if (*kbPath == "") == !*session || flag.NArg() > 0 {
		usage()
	}
	if *session && (*shards > 0 || *partial) {
		fmt.Fprintln(os.Stderr, "driftserve: -shards/-partial require -kb mode (the session pipeline is single-writer)")
		usage()
	}
	logger := log.New(os.Stderr, "driftserve: ", log.LstdFlags)
	admission := serve.Options{CacheSize: *cache, MaxInflight: *inflight, QueueDepth: *queue}
	var err error
	switch {
	case *session:
		err = runSession(*sentences, *addr, *timeout, *cache, logger)
	case *shards > 0:
		err = runSharded(*kbPath, *shards, *partial, *addr, *timeout, admission, logger)
	default:
		err = run(*kbPath, *addr, *timeout, admission, logger)
	}
	if err != nil {
		logger.Print(err)
		os.Exit(1)
	}
}

// run loads the KB, builds the service and serves until SIGTERM/SIGINT.
func run(kbPath, addr string, timeout time.Duration, opts serve.Options, logger *log.Logger) error {
	snap, format, err := kbio.FreezeFile(kbPath)
	if err != nil {
		return err
	}
	svc := serve.New(snap, opts)
	logger.Printf("loaded %s (%s format): generation %d, %d concepts, %d pairs",
		kbPath, format, snap.Generation(), snap.Stats().Concepts, snap.Stats().DistinctPairs)

	// Reloads go through a Reloader: transient load failures are retried
	// with capped exponential backoff, persistent failure opens a circuit
	// breaker, and throughout the service keeps answering queries from
	// the last-good snapshot (marked stale until a reload succeeds).
	reloader := serve.NewReloader(svc, func() (*snapshot.Snapshot, error) {
		return freezeFile(kbPath)
	}, serve.ReloadConfig{})
	reload := func() error {
		if err := reloader.Reload(); err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		next := svc.Current()
		logger.Printf("reloaded %s: generation %d, %d pairs",
			kbPath, next.Generation(), next.Stats().DistinctPairs)
		return nil
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           newHandler(handlerConfig{svc: svc, reload: reload, timeout: timeout}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// SIGHUP hot-reloads the KB file, the classic daemon convention.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := reload(); err != nil {
				logger.Print(err)
			}
		}
	}()

	return serveUntilShutdown(ctx, srv, logger)
}

// runSharded partitions the KB snapshot by concept across a fleet of
// independent services behind a scatter-gather router, then serves the
// fleet through the same handler a single service uses. Each shard has
// its own cache, admission queue, reloader and stale flag: one shard
// failing to reload leaves the other shards fresh, and /v1/reload
// reports every shard's error rather than stopping at the first.
func runSharded(kbPath string, shards int, partial bool, addr string, timeout time.Duration, opts serve.Options, logger *log.Logger) error {
	snap, format, err := kbio.FreezeFile(kbPath)
	if err != nil {
		return err
	}
	ring := serve.NewRing(shards, 0)
	parts := snap.Partition(shards, ring.Owner)
	svcs := make([]*serve.Service, shards)
	reloaders := make([]*serve.Reloader, shards)
	for i := range svcs {
		svcs[i] = serve.New(parts[i], opts)
		shard := i
		// Each shard re-reads the file and freezes its own partition, so
		// one shard's reload failure cannot poison the others' views.
		reloaders[i] = serve.NewReloader(svcs[i], func() (*snapshot.Snapshot, error) {
			next, err := freezeFile(kbPath)
			if err != nil {
				return nil, err
			}
			return next.Partition(shards, ring.Owner)[shard], nil
		}, serve.ReloadConfig{JitterSeed: int64(shard + 1)})
	}
	router := serve.NewRouter(svcs, ring, serve.RouterOptions{AllowPartial: partial})
	logger.Printf("loaded %s (%s format) across %d shards: generation %d, %d concepts, %d pairs",
		kbPath, format, shards, snap.Generation(), snap.Stats().Concepts, snap.Stats().DistinctPairs)

	reload := func() error {
		var errs []error
		for i, rl := range reloaders {
			if err := rl.Reload(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			}
		}
		if err := errors.Join(errs...); err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		logger.Printf("reloaded %s: fleet generation %d", kbPath, router.Generation())
		return nil
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           newHandler(handlerConfig{svc: router, reload: reload, timeout: timeout}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := reload(); err != nil {
				logger.Print(err)
			}
		}
	}()
	return serveUntilShutdown(ctx, srv, logger)
}

// runSession opens a live incremental pipeline and serves it: each POST
// /v1/ingest runs one checkpoint and publishes its snapshot. Queries
// 503 until the first successful ingest.
func runSession(sentences int, addr string, timeout time.Duration, cacheSize int, logger *log.Logger) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	cfg := driftclean.DefaultConfig()
	if sentences > 0 {
		cfg.Corpus.NumSentences = sentences
	}
	logger.Print("building session world and corpus")
	sess, err := driftclean.Open(ctx, driftclean.WithConfig(cfg))
	if err != nil {
		return err
	}
	defer sess.Close()
	corpusLen := len(sess.Sentences())
	logger.Printf("session open: %d corpus sentences, no snapshot until first ingest", corpusLen)

	svc := serve.New(nil, serve.Options{CacheSize: cacheSize})
	ingester := serve.NewIngester(svc, func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		// A checkpoint in which the detector finds nothing is still a
		// committed, publishable checkpoint.
		if _, err := sess.Ingest(ctx, batch); err != nil && !errors.Is(err, driftclean.ErrNoDPsDetected) {
			return nil, err
		}
		return sess.Publish()
	}, nil)

	// cursor tracks how much of the session corpus Count-form requests
	// have consumed; it only advances on success, so a failed batch is
	// re-pulled by the next request.
	var mu sync.Mutex
	cursor := 0
	ingest := func(ctx context.Context, req ingestRequest) (ingestResponse, error) {
		mu.Lock()
		defer mu.Unlock()
		batch := req.Sentences
		remaining := -1
		if req.Count > 0 {
			end := cursor + req.Count
			if end > corpusLen {
				end = corpusLen
			}
			batch = sess.Sentences()[cursor:end]
		}
		gen, err := ingester.Ingest(ctx, batch)
		if err != nil {
			return ingestResponse{}, err
		}
		if req.Count > 0 {
			cursor += len(batch)
			remaining = corpusLen - cursor
		}
		logger.Printf("ingested %d sentences: generation %d", len(batch), gen)
		return ingestResponse{Generation: gen, Ingested: len(batch), Remaining: remaining}, nil
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           newHandler(handlerConfig{svc: svc, ingest: ingest, timeout: timeout}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return serveUntilShutdown(ctx, srv, logger)
}

// serveUntilShutdown listens until the context is canceled, then shuts
// down gracefully with a grace period for in-flight requests.
func serveUntilShutdown(ctx context.Context, srv *http.Server, logger *log.Logger) error {
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", srv.Addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// freezeFile loads a KB file — gob or binary columnar, auto-detected —
// and freezes it into a snapshot. Binary snapshots open zero-copy via
// mmap, so reload cost does not grow with KB size and co-located shard
// replicas share the file's page cache.
func freezeFile(path string) (*snapshot.Snapshot, error) {
	snap, _, err := kbio.FreezeFile(path)
	return snap, err
}
