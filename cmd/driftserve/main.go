// Command driftserve serves read queries over a saved knowledge base
// (see driftclean -savekb) as HTTP/JSON. The KB is frozen into an
// immutable snapshot at startup; queries run lock-free against it
// through an LRU-cached, request-coalescing service. POST /v1/reload
// (or SIGHUP) re-reads the KB file and atomically swaps in a fresh
// snapshot without dropping in-flight requests.
//
// Usage:
//
//	driftserve -kb FILE [-addr :8080] [-timeout 5s] [-cache 4096]
//
// Endpoints:
//
//	GET  /v1/stats                               aggregate KB statistics
//	GET  /v1/concepts                            concepts with instance counts
//	GET  /v1/instances?concept=C                 a concept's instances
//	GET  /v1/explain?concept=C&instance=E[&n=N]  provenance of one pair
//	GET  /v1/drifted?concept=C[&n=N]             deepest provenance chains
//	POST /v1/reload                              hot-reload the KB file
//	GET  /debug/vars                             service metrics
//
// The server shuts down gracefully on SIGTERM or SIGINT: it stops
// accepting connections and gives in-flight requests a grace period to
// finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"driftclean/internal/kb"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
)

func main() {
	var (
		kbPath  = flag.String("kb", "", "path to a KB snapshot written with -savekb (required)")
		addr    = flag.String("addr", ":8080", "listen address")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request timeout (0 disables)")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "result cache entries (negative disables)")
	)
	flag.Parse()
	if *kbPath == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: driftserve -kb FILE [-addr :8080] [-timeout 5s] [-cache 4096]")
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "driftserve: ", log.LstdFlags)
	if err := run(*kbPath, *addr, *timeout, *cache, logger); err != nil {
		logger.Print(err)
		os.Exit(1)
	}
}

// run loads the KB, builds the service and serves until SIGTERM/SIGINT.
func run(kbPath, addr string, timeout time.Duration, cacheSize int, logger *log.Logger) error {
	snap, err := freezeFile(kbPath)
	if err != nil {
		return err
	}
	svc := serve.New(snap, serve.Options{CacheSize: cacheSize})
	logger.Printf("loaded %s: generation %d, %d concepts, %d pairs",
		kbPath, snap.Generation(), snap.Stats().Concepts, snap.Stats().DistinctPairs)

	// Reloads go through a Reloader: transient load failures are retried
	// with capped exponential backoff, persistent failure opens a circuit
	// breaker, and throughout the service keeps answering queries from
	// the last-good snapshot (marked stale until a reload succeeds).
	reloader := serve.NewReloader(svc, func() (*snapshot.Snapshot, error) {
		return freezeFile(kbPath)
	}, serve.ReloadConfig{})
	reload := func() error {
		if err := reloader.Reload(); err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		next := svc.Current()
		logger.Printf("reloaded %s: generation %d, %d pairs",
			kbPath, next.Generation(), next.Stats().DistinctPairs)
		return nil
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           newHandler(handlerConfig{svc: svc, reload: reload, timeout: timeout}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// SIGHUP hot-reloads the KB file, the classic daemon convention.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := reload(); err != nil {
				logger.Print(err)
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// freezeFile loads a KB file and freezes it into a snapshot.
func freezeFile(path string) (*snapshot.Snapshot, error) {
	k, err := kb.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return snapshot.Freeze(k), nil
}
