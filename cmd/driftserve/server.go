package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"driftclean/internal/corpus"
	"driftclean/internal/serve"
)

// handlerConfig wires the HTTP surface to a query backend: a single
// serve.Service or, in -shards mode, a serve.Router scatter-gathering a
// sharded fleet. The handler code is identical either way.
type handlerConfig struct {
	svc serve.Querier
	// reload re-freezes the snapshot from the KB file and swaps it in;
	// nil disables the /v1/reload endpoint.
	reload func() error
	// ingest advances the incremental pipeline by one batch and swaps
	// the new checkpoint's snapshot in; nil (the -kb mode) disables the
	// /v1/ingest endpoint.
	ingest func(ctx context.Context, req ingestRequest) (ingestResponse, error)
	// timeout bounds each request end to end; 0 disables. /v1/ingest is
	// exempt: a checkpoint (extraction replay plus cleaning rounds)
	// legitimately outlives a query budget, and cancellation is still
	// honored through the request context when the client disconnects.
	timeout time.Duration
	// beforeQuery, when non-nil, runs before every /v1 query handler —
	// a test seam for exercising the timeout path deterministically.
	beforeQuery func()
}

// maxIngestBody bounds the /v1/ingest request body (explicit sentence
// batches are test- and demo-sized; the corpus pull form is tiny).
const maxIngestBody = 8 << 20

// ingestRequest is the POST /v1/ingest body. Exactly one of the fields
// must be set: Count pulls the next N unread sentences from the
// server's own corpus (the usual form — the session owns the corpus),
// Sentences submits an explicit batch.
type ingestRequest struct {
	Count     int               `json:"count"`
	Sentences []corpus.Sentence `json:"sentences"`
}

// ingestResponse reports one successfully published checkpoint.
type ingestResponse struct {
	// Generation is the newly published snapshot's generation.
	Generation uint64 `json:"generation"`
	// Ingested is the number of sentences in this batch.
	Ingested int `json:"ingested"`
	// Remaining counts corpus sentences not yet pulled by Count-form
	// requests; -1 for an explicit-batch request.
	Remaining int `json:"remaining"`
}

// generationResponse is the GET /v1/generation payload: which snapshot
// generation is serving and whether it is stale (a newer state exists
// but the last publish attempt failed).
type generationResponse struct {
	Generation uint64 `json:"generation"`
	Stale      bool   `json:"stale"`
}

// errorBody is the JSON error envelope every non-200 response carries.
type errorBody struct {
	Error string `json:"error"`
}

// newHandler builds the full driftserve route table:
//
//	GET  /v1/stats                               aggregate KB statistics
//	GET  /v1/concepts                            concepts with instance counts
//	GET  /v1/instances?concept=C                 a concept's instances
//	GET  /v1/explain?concept=C&instance=E[&n=N]  provenance of one pair
//	GET  /v1/drifted[?concept=C][&n=N]           deepest provenance chains (fleet-wide without concept)
//	GET  /v1/generation                          serving generation + stale flag
//	POST /v1/ingest                              advance the session pipeline (-session)
//	POST /v1/reload                              re-freeze from the -kb file
//	GET  /debug/vars                             service metrics (expvar style)
func newHandler(cfg handlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/stats", query(cfg, func(w http.ResponseWriter, r *http.Request) {
		result, err := cfg.svc.Stats(r.Context())
		respond(w, result, err)
	}))
	mux.Handle("GET /v1/concepts", query(cfg, func(w http.ResponseWriter, r *http.Request) {
		result, err := cfg.svc.Concepts(r.Context())
		respond(w, result, err)
	}))
	mux.Handle("GET /v1/instances", query(cfg, func(w http.ResponseWriter, r *http.Request) {
		concept, ok := requireParam(w, r, "concept")
		if !ok {
			return
		}
		result, err := cfg.svc.Instances(r.Context(), concept)
		respond(w, result, err)
	}))
	mux.Handle("GET /v1/explain", query(cfg, func(w http.ResponseWriter, r *http.Request) {
		concept, ok := requireParam(w, r, "concept")
		if !ok {
			return
		}
		instance, ok := requireParam(w, r, "instance")
		if !ok {
			return
		}
		n, ok := intParam(w, r, "n", 5)
		if !ok {
			return
		}
		result, err := cfg.svc.Explain(r.Context(), concept, instance, n)
		respond(w, result, err)
	}))
	mux.Handle("GET /v1/drifted", query(cfg, func(w http.ResponseWriter, r *http.Request) {
		// concept is optional: scoped ranking when given, fleet-wide
		// ranking (scatter-gathered in -shards mode) when absent.
		concept := r.URL.Query().Get("concept")
		n, ok := intParam(w, r, "n", 10)
		if !ok {
			return
		}
		result, err := cfg.svc.Drifted(r.Context(), concept, n)
		respond(w, result, err)
	}))
	mux.HandleFunc("GET /v1/generation", func(w http.ResponseWriter, r *http.Request) {
		respond(w, generationResponse{
			Generation: cfg.svc.Generation(),
			Stale:      cfg.svc.Stale(),
		}, nil)
	})
	if cfg.reload != nil {
		mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
			if err := cfg.reload(); err != nil {
				status := http.StatusInternalServerError
				if errors.Is(err, serve.ErrBreakerOpen) {
					// The breaker is shedding reload load; the last-good
					// snapshot keeps serving, so this is unavailability of
					// the reload path, not a server fault.
					status = http.StatusServiceUnavailable
				}
				writeError(w, status, err.Error())
				return
			}
			respond(w, map[string]uint64{"generation": cfg.svc.Generation()}, nil)
		})
	}
	mux.Handle("GET /debug/vars", cfg.svc.ExpvarHandler())

	var h http.Handler = mux
	if cfg.timeout > 0 {
		// TimeoutHandler both caps the handler's wall time (503 on
		// expiry) and cancels the request context, which the service's
		// query path observes before computing.
		h = http.TimeoutHandler(h, cfg.timeout, `{"error":"request timed out"}`)
	}
	if cfg.ingest != nil {
		// Ingest is routed around the timeout wrapper: one checkpoint of
		// pipeline work is allowed to take as long as it takes.
		outer := http.NewServeMux()
		outer.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
			var req ingestRequest
			if err := json.NewDecoder(io.LimitReader(r.Body, maxIngestBody)).Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, "malformed ingest request: "+err.Error())
				return
			}
			if (req.Count > 0) == (len(req.Sentences) > 0) {
				writeError(w, http.StatusBadRequest,
					`exactly one of "count" and "sentences" must be set`)
				return
			}
			resp, err := cfg.ingest(r.Context(), req)
			respond(w, resp, err)
		})
		outer.Handle("/", h)
		h = outer
	}
	return h
}

// query wraps a /v1 query handler with the stale marker, the degraded
// marker and the test seam. The X-Driftclean-Stale header is set before
// the handler writes so clients can tell they are reading a last-good
// snapshot that a failed reload has left behind; X-Driftclean-Degraded
// is stamped lazily at first write, because a scatter-gather only knows
// it lost shards after the backend call returns.
func query(cfg handlerConfig, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cfg.svc.Stale() {
			w.Header().Set("X-Driftclean-Stale", "true")
		}
		ctx, gs := serve.WithGatherStatus(r.Context())
		if cfg.beforeQuery != nil {
			cfg.beforeQuery()
		}
		h(&degradedHeaderWriter{ResponseWriter: w, gs: gs}, r.WithContext(ctx))
	})
}

// degradedHeaderWriter stamps X-Driftclean-Degraded on the response the
// moment the first byte or status is written, if the request's gathers
// lost shards by then. Headers are immutable after the first write, so
// the stamp cannot wait for the handler to finish.
type degradedHeaderWriter struct {
	http.ResponseWriter
	gs      *serve.GatherStatus
	stamped bool
}

func (w *degradedHeaderWriter) WriteHeader(status int) {
	w.stamp()
	w.ResponseWriter.WriteHeader(status)
}

func (w *degradedHeaderWriter) Write(b []byte) (int, error) {
	w.stamp()
	return w.ResponseWriter.Write(b)
}

func (w *degradedHeaderWriter) stamp() {
	if !w.stamped {
		w.stamped = true
		if w.gs.Degraded() {
			w.Header().Set("X-Driftclean-Degraded", "true")
		}
	}
}

// respond writes the result as JSON, mapping service errors to HTTP
// status codes: ErrNotFound → 404, ErrOverloaded → 429 (admission shed:
// back off and retry), ErrNoSnapshot / ErrShard / canceled or timed-out
// contexts → 503, anything else → 500.
func respond(w http.ResponseWriter, result any, err error) {
	if err != nil {
		switch {
		case errors.Is(err, serve.ErrNotFound):
			writeError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, serve.ErrOverloaded):
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, serve.ErrNoSnapshot),
			errors.Is(err, serve.ErrShard),
			errors.Is(err, context.Canceled),
			errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(result); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		_ = err
	}
}

// requireParam extracts a mandatory query parameter, writing a 400 when
// it is absent or empty.
func requireParam(w http.ResponseWriter, r *http.Request, name string) (string, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter "+strconv.Quote(name))
		return "", false
	}
	return v, true
}

// intParam parses an optional positive integer parameter, writing a 400
// on malformed values.
func intParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		writeError(w, http.StatusBadRequest, "parameter "+strconv.Quote(name)+" must be a positive integer")
		return 0, false
	}
	return n, true
}

// writeError sends the JSON error envelope with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(errorBody{Error: msg}); err != nil {
		_ = err // response already committed
	}
}
