package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"driftclean/internal/fault"
	"driftclean/internal/kb"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
)

// bigTestKB builds a KB with nc concepts of varied chain depth, big
// enough that consistent hashing spreads it over several shards.
func bigTestKB(nc int) *kb.KB {
	k := kb.New()
	id := 0
	for c := 0; c < nc; c++ {
		concept := "concept-" + strconv.Itoa(c)
		chain := 2 + c%4
		for i := 0; i < chain; i++ {
			inst := "inst-" + strconv.Itoa(i)
			var trig []string
			if i > 0 {
				trig = []string{"inst-" + strconv.Itoa(i-1)}
			}
			k.AddExtraction(id, concept, []string{concept}, []string{inst}, trig, 1)
			id++
		}
	}
	return k
}

// newShardedServer wires a router over snap exactly as runSharded does
// — ring, partition, one service per shard — minus the listener and
// reloaders. perShard gives individual shards special options (chaos).
func newShardedServer(t *testing.T, snap *snapshot.Snapshot, shards int, partial bool, perShard func(i int) serve.Options) (*httptest.Server, *serve.Router) {
	t.Helper()
	ring := serve.NewRing(shards, 0)
	parts := snap.Partition(shards, ring.Owner)
	svcs := make([]*serve.Service, shards)
	for i := range svcs {
		opts := serve.Options{}
		if perShard != nil {
			opts = perShard(i)
		}
		svcs[i] = serve.New(parts[i], opts)
	}
	router := serve.NewRouter(svcs, ring, serve.RouterOptions{AllowPartial: partial})
	ts := httptest.NewServer(newHandler(handlerConfig{svc: router}))
	t.Cleanup(ts.Close)
	return ts, router
}

// TestShardedResponsesByteIdentical: over the same snapshot, the
// sharded server's responses are byte for byte the single server's, at
// every shard count and on every endpoint — the HTTP-level form of the
// tentpole acceptance gate.
func TestShardedResponsesByteIdentical(t *testing.T) {
	snap := snapshot.Freeze(bigTestKB(11))
	single := httptest.NewServer(newHandler(handlerConfig{svc: serve.New(snap, serve.Options{})}))
	t.Cleanup(single.Close)

	urls := []string{
		"/v1/stats",
		"/v1/concepts",
		"/v1/drifted?n=5",
		"/v1/drifted?n=500",
		"/v1/generation",
	}
	for c := 0; c < 11; c++ {
		concept := "concept-" + strconv.Itoa(c)
		urls = append(urls,
			"/v1/instances?concept="+concept,
			"/v1/drifted?concept="+concept+"&n=2",
			"/v1/explain?concept="+concept+"&instance=inst-1",
		)
	}

	for _, shards := range []int{1, 3, 6} {
		ts, _ := newShardedServer(t, snap, shards, false, nil)
		for _, url := range urls {
			wantCode, wantBody := get(t, single.URL+url)
			gotCode, gotBody := get(t, ts.URL+url)
			if gotCode != wantCode || gotBody != wantBody {
				t.Errorf("shards=%d GET %s diverged:\n got %d %s\nwant %d %s",
					shards, url, gotCode, gotBody, wantCode, wantBody)
			}
		}
	}
}

// failingShardOpts fails every query on one shard via fault injection.
func failingShardOpts(bad int) func(i int) serve.Options {
	return func(i int) serve.Options {
		if i == bad {
			return serve.Options{Fault: fault.New(1, map[string]fault.Rule{"serve.*": {ErrProb: 1}})}
		}
		return serve.Options{}
	}
}

// TestShardedStrictFailureIs503: without -partial, a failing shard
// turns every scatter-gather into a clean 503 with the JSON error
// envelope — never a torn merge — while point lookups owned by healthy
// shards keep answering 200.
func TestShardedStrictFailureIs503(t *testing.T) {
	snap := snapshot.Freeze(bigTestKB(11))
	const bad = 1
	ts, router := newShardedServer(t, snap, 3, false, failingShardOpts(bad))

	for _, url := range []string{"/v1/concepts", "/v1/stats", "/v1/drifted?n=5"} {
		code, body := get(t, ts.URL+url)
		if code != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d (%s), want 503", url, code, body)
		}
		var e errorBody
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: not a JSON error envelope: %s", url, body)
		}
	}

	healthyOK, failedErr := false, false
	for c := 0; c < 11; c++ {
		concept := "concept-" + strconv.Itoa(c)
		code, _ := get(t, ts.URL+"/v1/instances?concept="+concept)
		if router.Owner(concept) == bad {
			failedErr = failedErr || code == http.StatusInternalServerError
		} else {
			healthyOK = healthyOK || code == http.StatusOK
			if code != http.StatusOK {
				t.Errorf("healthy-shard lookup %s = %d, want 200", concept, code)
			}
		}
	}
	if !healthyOK || !failedErr {
		t.Errorf("expected both healthy lookups (got %v) and failing-shard errors (got %v)", healthyOK, failedErr)
	}
}

// TestShardedPartialFailureDegrades: with -partial, the same failure
// yields a 200 carrying X-Driftclean-Degraded and exactly the healthy
// shards' concepts.
func TestShardedPartialFailureDegrades(t *testing.T) {
	snap := snapshot.Freeze(bigTestKB(11))
	const bad = 2
	ts, router := newShardedServer(t, snap, 3, true, failingShardOpts(bad))

	resp, err := http.Get(ts.URL + "/v1/concepts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded GET /v1/concepts = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Driftclean-Degraded") != "true" {
		t.Error("degraded response missing X-Driftclean-Degraded header")
	}

	var concepts []serve.ConceptInfo
	if err := json.NewDecoder(resp.Body).Decode(&concepts); err != nil {
		t.Fatal(err)
	}
	wantLost := 0
	for c := 0; c < 11; c++ {
		if router.Owner("concept-"+strconv.Itoa(c)) == bad {
			wantLost++
		}
	}
	if wantLost == 0 {
		t.Fatal("test KB left the failing shard empty; grow the KB")
	}
	if len(concepts) != 11-wantLost {
		t.Errorf("degraded concepts = %d entries, want %d", len(concepts), 11-wantLost)
	}
	for _, ci := range concepts {
		if router.Owner(ci.Name) == bad {
			t.Errorf("degraded listing contains %s from the failed shard", ci.Name)
		}
	}

	// A healthy fleet in partial mode must not stamp the header.
	healthy, _ := newShardedServer(t, snap, 3, true, nil)
	resp2, err := http.Get(healthy.URL + "/v1/concepts")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Driftclean-Degraded") != "" {
		t.Error("healthy fleet stamped X-Driftclean-Degraded")
	}
}

// TestRespondStatusMapping: the sharding/admission sentinels map onto
// their HTTP statuses (e2e shed behavior is covered in internal/serve;
// this pins the transport contract).
func TestRespondStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("q: %w", serve.ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("q: %w", serve.ErrShard), http.StatusServiceUnavailable},
		{fmt.Errorf("q: %w", serve.ErrNoSnapshot), http.StatusServiceUnavailable},
		{fmt.Errorf("q: %w", serve.ErrNotFound), http.StatusNotFound},
		{errors.New("plain failure"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		respond(rec, nil, tc.err)
		if rec.Code != tc.want {
			t.Errorf("respond(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("respond(%v): not a JSON error envelope: %s", tc.err, rec.Body)
		}
	}
}

// TestShardedOverloadSurfacesAs429: a shed query reaches the client as
// 429 through the full sharded HTTP stack. The fault injector stalls
// the one execution slot; with no queue, a concurrent query sheds.
func TestShardedOverloadSurfacesAs429(t *testing.T) {
	snap := snapshot.Freeze(bigTestKB(8))
	ts, _ := newShardedServer(t, snap, 2, false, func(int) serve.Options {
		return serve.Options{MaxInflight: 1, QueueDepth: 0}
	})

	// Saturate both shards' slots with concurrent fleet-wide queries
	// until one arrival finds its shard's slot taken. Distinct n values
	// defeat the result cache and singleflight coalescing.
	codes := make(chan int, 64)
	for i := 0; i < 64; i++ {
		go func(i int) {
			code, _ := get(t, ts.URL+"/v1/drifted?n="+strconv.Itoa(1000+i))
			codes <- code
		}(i)
	}
	saw429 := false
	for i := 0; i < 64; i++ {
		switch code := <-codes; code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			// Overload maps to 429 even when surfaced through a gather:
			// the client's remedy (back off) is the same either way.
			saw429 = true
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if !saw429 {
		t.Skip("no overlap between 64 concurrent queries; nothing shed on this run")
	}
}
