package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"driftclean/internal/kb"
	"driftclean/internal/serve"
)

// writeTestKB saves a small KB (chain under "animal", flat "tool") and
// returns its path.
func writeTestKB(t *testing.T, dir string, extraPairs int) string {
	t.Helper()
	k := kb.New()
	k.AddExtraction(0, "animal", []string{"animal"}, []string{"dog"}, nil, 1)
	k.AddExtraction(1, "animal", []string{"animal"}, []string{"wolf"}, []string{"dog"}, 2)
	k.AddExtraction(2, "animal", []string{"animal"}, []string{"dingo"}, []string{"wolf"}, 3)
	k.AddExtraction(3, "tool", []string{"tool"}, []string{"hammer"}, nil, 1)
	for i := 0; i < extraPairs; i++ {
		k.AddExtraction(10+i, "tool", []string{"tool"}, []string{"t" + strconv.Itoa(i)}, nil, 1)
	}
	path := filepath.Join(dir, "kb.gob")
	if err := k.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestServer wires the real production pieces — load, freeze,
// service, handler, reload — exactly as run() does, minus the listener.
func newTestServer(t *testing.T, cfg handlerConfig, kbPath string) *httptest.Server {
	t.Helper()
	if cfg.svc == nil {
		snap, err := freezeFile(kbPath)
		if err != nil {
			t.Fatal(err)
		}
		svc := serve.New(snap, serve.Options{})
		cfg.svc = svc
		if cfg.reload == nil {
			cfg.reload = func() error {
				next, err := freezeFile(kbPath)
				if err != nil {
					return err
				}
				svc.Swap(next)
				return nil
			}
		}
	}
	ts := httptest.NewServer(newHandler(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// get issues a request and decodes the response body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpointsEndToEnd(t *testing.T) {
	path := writeTestKB(t, t.TempDir(), 0)
	ts := newTestServer(t, handlerConfig{}, path)

	code, body := get(t, ts.URL+"/v1/stats")
	var stats serve.StatsResult
	if code != 200 {
		t.Fatalf("stats: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stats.DistinctPairs != 4 || stats.Stats.Concepts != 2 {
		t.Errorf("stats = %+v", stats)
	}

	code, body = get(t, ts.URL+"/v1/concepts")
	var concepts []serve.ConceptInfo
	if code != 200 {
		t.Fatalf("concepts: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &concepts); err != nil {
		t.Fatal(err)
	}
	if len(concepts) != 2 || concepts[0].Name != "animal" || concepts[0].Instances != 3 {
		t.Errorf("concepts = %+v", concepts)
	}

	code, body = get(t, ts.URL+"/v1/instances?concept=animal")
	var instances []serve.InstanceInfo
	if code != 200 {
		t.Fatalf("instances: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &instances); err != nil {
		t.Fatal(err)
	}
	if len(instances) != 3 || instances[0].Name != "dingo" {
		t.Errorf("instances = %+v", instances)
	}

	code, body = get(t, ts.URL+"/v1/explain?concept=animal&instance=dingo")
	if code != 200 || !strings.Contains(body, `"Chain"`) {
		t.Errorf("explain: %d %s", code, body)
	}

	code, body = get(t, ts.URL+"/v1/drifted?concept=animal&n=2")
	var drifted []serve.DriftedInstance
	if code != 200 {
		t.Fatalf("drifted: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &drifted); err != nil {
		t.Fatal(err)
	}
	if len(drifted) != 2 || drifted[0].Name != "dingo" || drifted[0].Depth != 3 {
		t.Errorf("drifted = %+v", drifted)
	}

	// Fleet-wide form: no concept parameter ranks across every concept
	// and each row carries its concept.
	code, body = get(t, ts.URL+"/v1/drifted?n=3")
	if code != 200 {
		t.Fatalf("fleet-wide drifted: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &drifted); err != nil {
		t.Fatal(err)
	}
	if len(drifted) != 3 || drifted[0].Concept != "animal" || drifted[0].Name != "dingo" || drifted[0].Depth != 3 {
		t.Errorf("fleet-wide drifted = %+v", drifted)
	}

	code, body = get(t, ts.URL+"/debug/vars")
	if code != 200 || !strings.Contains(body, "snapshot_generation") {
		t.Errorf("debug/vars: %d %s", code, body)
	}
}

func TestMalformedRequests(t *testing.T) {
	path := writeTestKB(t, t.TempDir(), 0)
	ts := newTestServer(t, handlerConfig{}, path)

	cases := []struct {
		url  string
		want int
	}{
		{"/v1/instances", 400},                                  // missing concept
		{"/v1/explain?concept=animal", 400},                     // missing instance
		{"/v1/explain?instance=dog", 400},                       // missing concept
		{"/v1/drifted?n=potato", 400},                           // malformed n, fleet-wide form
		{"/v1/drifted?concept=animal&n=potato", 400},            // malformed n
		{"/v1/drifted?concept=animal&n=-3", 400},                // non-positive n
		{"/v1/explain?concept=animal&instance=dog&n=zero", 400}, // malformed n
		{"/v1/instances?concept=spaceship", 404},                // unknown concept
		{"/v1/explain?concept=animal&instance=spoon", 404},      // unknown pair
		{"/v1/drifted?concept=spaceship", 404},                  // unknown concept
		{"/v1/nosuch", 404},                                     // unknown route
	}
	for _, tc := range cases {
		code, body := get(t, ts.URL+tc.url)
		if code != tc.want {
			t.Errorf("GET %s = %d (%s), want %d", tc.url, code, strings.TrimSpace(body), tc.want)
		}
		if tc.want == 400 && !strings.Contains(body, `"error"`) {
			t.Errorf("GET %s: missing JSON error envelope: %s", tc.url, body)
		}
	}

	// Method mismatches: reload is POST-only, queries are GET-only.
	resp, err := http.Get(ts.URL + "/v1/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reload = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats = %d, want 405", resp.StatusCode)
	}
}

func TestHotReload(t *testing.T) {
	dir := t.TempDir()
	path := writeTestKB(t, dir, 0)
	ts := newTestServer(t, handlerConfig{}, path)

	var before serve.StatsResult
	code, body := get(t, ts.URL+"/v1/stats")
	if code != 200 {
		t.Fatal(body)
	}
	if err := json.Unmarshal([]byte(body), &before); err != nil {
		t.Fatal(err)
	}

	// Overwrite the KB file with a bigger KB, then hot-reload.
	writeTestKB(t, dir, 5)
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("reload: %d %s", resp.StatusCode, reloadBody)
	}

	var after serve.StatsResult
	code, body = get(t, ts.URL+"/v1/stats")
	if code != 200 {
		t.Fatal(body)
	}
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Stats.DistinctPairs != before.Stats.DistinctPairs+5 {
		t.Errorf("pairs %d -> %d, want +5", before.Stats.DistinctPairs, after.Stats.DistinctPairs)
	}
	if after.Generation <= before.Generation {
		t.Errorf("generation did not advance: %d -> %d", before.Generation, after.Generation)
	}
}

func TestRequestTimeout(t *testing.T) {
	path := writeTestKB(t, t.TempDir(), 0)
	// The beforeQuery seam guarantees the handler outlives the 1ms
	// budget, so the 503 timeout path is deterministic.
	ts := newTestServer(t, handlerConfig{
		timeout:     time.Millisecond,
		beforeQuery: func() { time.Sleep(100 * time.Millisecond) },
	}, path)

	code, body := get(t, ts.URL+"/v1/stats")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d (%s), want 503", code, body)
	}
	if !strings.Contains(body, "timed out") {
		t.Errorf("timeout body = %s", body)
	}
}

func TestFreezeFileErrors(t *testing.T) {
	if _, err := freezeFile(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Error("freezeFile on a missing file did not error")
	}
}
