package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"driftclean/internal/fault"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
)

// postReload issues POST /v1/reload and returns status and body.
func postReload(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

// TestReloadFaultKeepsServingLastGood: an injected reload failure must
// leave the server answering queries from the last-good snapshot with
// the stale header set, and a later successful reload must recover.
func TestReloadFaultKeepsServingLastGood(t *testing.T) {
	path := writeTestKB(t, t.TempDir(), 0)
	snap, err := freezeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(snap, serve.Options{})
	// Three injected failures: with MaxAttempts 1 the first three Reload
	// calls fail outright, the fourth succeeds.
	inj := fault.New(11, map[string]fault.Rule{"serve.reload": {FailFirst: 3}})
	rl := serve.NewReloader(svc, func() (*snapshot.Snapshot, error) {
		return freezeFile(path)
	}, serve.ReloadConfig{MaxAttempts: 1, BreakerThreshold: 100, Fault: inj,
		Sleep: func(time.Duration) {}})
	ts := newTestServer(t, handlerConfig{svc: svc, reload: rl.Reload}, path)

	status, body := postReload(t, ts.URL)
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted reload: status %d body %s", status, body)
	}
	// Queries still answer from the last-good snapshot, flagged stale.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats during stale window: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Driftclean-Stale"); got != "true" {
		t.Fatalf("X-Driftclean-Stale = %q, want \"true\"", got)
	}

	// Two more failures, then recovery clears the stale marker.
	postReload(t, ts.URL)
	postReload(t, ts.URL)
	if status, body := postReload(t, ts.URL); status != http.StatusOK {
		t.Fatalf("recovery reload: status %d body %s", status, body)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Driftclean-Stale"); got != "" {
		t.Fatalf("stale header still set after recovery: %q", got)
	}
}

// TestReloadBreakerShedsWith503: once the breaker opens, POST /v1/reload
// is shed with 503 and the query surface keeps working.
func TestReloadBreakerShedsWith503(t *testing.T) {
	path := writeTestKB(t, t.TempDir(), 0)
	snap, err := freezeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(snap, serve.Options{})
	loadErr := errors.New("kb file corrupted")
	rl := serve.NewReloader(svc, func() (*snapshot.Snapshot, error) {
		return nil, loadErr
	}, serve.ReloadConfig{MaxAttempts: 1, BreakerThreshold: 2,
		BreakerCooldown: time.Hour, Sleep: func(time.Duration) {}})
	ts := newTestServer(t, handlerConfig{svc: svc, reload: rl.Reload}, path)

	for i := 0; i < 2; i++ {
		if status, _ := postReload(t, ts.URL); status != http.StatusInternalServerError {
			t.Fatalf("failing reload %d: status %d", i, status)
		}
	}
	status, body := postReload(t, ts.URL)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker reload: status %d body %s", status, body)
	}
	if !strings.Contains(body, "breaker") {
		t.Fatalf("open-breaker body does not mention the breaker: %s", body)
	}
	if status, _ := get(t, ts.URL+"/v1/concepts"); status != http.StatusOK {
		t.Fatalf("queries failing while breaker open: status %d", status)
	}
}

// TestQueryChaosAlwaysValidJSON: under a randomized-but-seeded fault
// schedule on every query endpoint, each response — success or injected
// failure — must be well-formed JSON with a sane status code, and once
// the fault window passes every endpoint recovers.
func TestQueryChaosAlwaysValidJSON(t *testing.T) {
	path := writeTestKB(t, t.TempDir(), 0)
	snap, err := freezeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Errors on roughly half the queries for the first 40 hits per site,
	// then a clean tail. Caching is disabled so every request actually
	// reaches the fault site.
	inj := fault.New(99, map[string]fault.Rule{"serve.*": {ErrProb: 0.5, FailFirst: 5}})
	svc := serve.New(snap, serve.Options{CacheSize: -1, Fault: inj})
	ts := newTestServer(t, handlerConfig{svc: svc}, path)

	urls := []string{
		ts.URL + "/v1/stats",
		ts.URL + "/v1/concepts",
		ts.URL + "/v1/instances?concept=animal",
		ts.URL + "/v1/explain?concept=animal&instance=dingo",
		ts.URL + "/v1/drifted?concept=animal",
	}
	var failures int
	for round := 0; round < 40; round++ {
		for _, u := range urls {
			status, body := get(t, u)
			if status != http.StatusOK && status != http.StatusInternalServerError {
				t.Fatalf("%s: unexpected status %d (%s)", u, status, body)
			}
			if !json.Valid([]byte(body)) {
				t.Fatalf("%s: invalid JSON under chaos: %s", u, body)
			}
			if status != http.StatusOK {
				failures++
				if !strings.Contains(body, "injected") {
					t.Fatalf("%s: 500 without the injected-fault marker: %s", u, body)
				}
			}
		}
	}
	if failures == 0 {
		t.Fatal("fault schedule injected no failures — chaos exercised nothing")
	}
	// ErrProb keeps firing forever, so recovery is shown per-request: a
	// bounded number of retries always reaches a 200 for every endpoint.
	for _, u := range urls {
		ok := false
		for try := 0; try < 50 && !ok; try++ {
			status, _ := get(t, u)
			ok = status == http.StatusOK
		}
		if !ok {
			t.Fatalf("%s: no success in 50 tries at ErrProb 0.5", u)
		}
	}
}
