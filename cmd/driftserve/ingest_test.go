package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"driftclean"
	"driftclean/internal/corpus"
	"driftclean/internal/serve"
	"driftclean/internal/snapshot"
)

// newSessionServer wires the real session-mode pieces — Session,
// Service, Ingester, corpus cursor — exactly as runSession does, minus
// the listener, over a small corpus. It returns the test server and the
// session for direct inspection.
func newSessionServer(t *testing.T, failFirst bool) (*httptest.Server, *driftclean.Session) {
	t.Helper()
	cfg := driftclean.DefaultConfig()
	cfg.World.NumDomains = 2
	cfg.World.InstancesPerConceptMin = 40
	cfg.World.InstancesPerConceptMax = 80
	cfg.Corpus.NumSentences = 4000
	cfg.Clean.MaxRounds = 1
	sess, err := driftclean.Open(context.Background(), driftclean.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })

	svc := serve.New(nil, serve.Options{})
	fails := failFirst
	ingester := serve.NewIngester(svc, func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error) {
		if fails {
			fails = false
			return nil, errors.New("synthetic checkpoint failure")
		}
		if _, err := sess.Ingest(ctx, batch); err != nil && !errors.Is(err, driftclean.ErrNoDPsDetected) {
			return nil, err
		}
		return sess.Publish()
	}, nil)

	corpusLen := len(sess.Sentences())
	var mu sync.Mutex
	cursor := 0
	ingest := func(ctx context.Context, req ingestRequest) (ingestResponse, error) {
		mu.Lock()
		defer mu.Unlock()
		batch := req.Sentences
		remaining := -1
		if req.Count > 0 {
			end := cursor + req.Count
			if end > corpusLen {
				end = corpusLen
			}
			batch = sess.Sentences()[cursor:end]
		}
		gen, err := ingester.Ingest(ctx, batch)
		if err != nil {
			return ingestResponse{}, err
		}
		if req.Count > 0 {
			cursor += len(batch)
			remaining = corpusLen - cursor
		}
		return ingestResponse{Generation: gen, Ingested: len(batch), Remaining: remaining}, nil
	}

	ts := httptest.NewServer(newHandler(handlerConfig{svc: svc, ingest: ingest}))
	t.Cleanup(ts.Close)
	return ts, sess
}

// postIngest issues a POST /v1/ingest and decodes the response.
func postIngest(t *testing.T, url string, body string) (int, ingestResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ingestResponse
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	_ = json.Unmarshal(raw.Bytes(), &out)
	return resp.StatusCode, out, raw.String()
}

// generation reads GET /v1/generation.
func generation(t *testing.T, url string) generationResponse {
	t.Helper()
	code, body := get(t, url+"/v1/generation")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/generation = %d: %s", code, body)
	}
	var g generationResponse
	if err := json.Unmarshal([]byte(body), &g); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestIngestEndpointLifecycle drives the session server the way a
// client would: 503 before any snapshot, count-form ingests advancing
// the generation and the corpus cursor, queries answering afterwards.
func TestIngestEndpointLifecycle(t *testing.T) {
	ts, sess := newSessionServer(t, false)

	if code, body := get(t, ts.URL+"/v1/stats"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-ingest stats = %d (%s), want 503", code, body)
	}
	if g := generation(t, ts.URL); g.Generation != 0 || g.Stale {
		t.Fatalf("pre-ingest generation = %+v, want zero and fresh", g)
	}

	code, first, body := postIngest(t, ts.URL, `{"count":2000}`)
	if code != http.StatusOK {
		t.Fatalf("ingest 1 = %d: %s", code, body)
	}
	if first.Ingested != 2000 || first.Remaining != len(sess.Sentences())-2000 || first.Generation == 0 {
		t.Fatalf("ingest 1 response = %+v", first)
	}

	code, second, body := postIngest(t, ts.URL, `{"count":2000}`)
	if code != http.StatusOK {
		t.Fatalf("ingest 2 = %d: %s", code, body)
	}
	if second.Generation <= first.Generation || second.Remaining != len(sess.Sentences())-4000 {
		t.Fatalf("ingest 2 response = %+v after %+v", second, first)
	}

	if g := generation(t, ts.URL); g.Generation != second.Generation || g.Stale {
		t.Fatalf("generation = %+v, want %d and fresh", g, second.Generation)
	}
	if code, body := get(t, ts.URL+"/v1/stats"); code != http.StatusOK || !bytes.Contains([]byte(body), []byte("DistinctPairs")) {
		t.Fatalf("post-ingest stats = %d: %s", code, body)
	}
	if sess.Checkpoints() != 2 {
		t.Fatalf("session checkpoints = %d, want 2", sess.Checkpoints())
	}
}

// TestIngestEndpointValidation rejects malformed bodies and ambiguous
// or empty requests with 400 before touching the pipeline.
func TestIngestEndpointValidation(t *testing.T) {
	ts, _ := newSessionServer(t, false)
	for _, body := range []string{
		"not json",
		`{}`,
		`{"count":0}`,
		`{"count":5,"sentences":[{"ID":1,"Text":"x"}]}`,
	} {
		if code, _, resp := postIngest(t, ts.URL, body); code != http.StatusBadRequest {
			t.Errorf("ingest %q = %d (%s), want 400", body, code, resp)
		}
	}
}

// TestIngestEndpointFailureStaleThenRecover: a failed checkpoint 500s,
// leaves the serving generation untouched but stale, keeps the cursor
// put, and the retried batch succeeds and clears the flag.
func TestIngestEndpointFailureStaleThenRecover(t *testing.T) {
	ts, sess := newSessionServer(t, true)

	// The very first checkpoint fails, exercising recovery from the
	// "no snapshot yet" state as well as from a stale one.
	code, _, body := postIngest(t, ts.URL, `{"count":1500}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("failed ingest = %d: %s", code, body)
	}
	if g := generation(t, ts.URL); g.Generation != 0 || !g.Stale {
		t.Fatalf("after failure generation = %+v, want zero and stale", g)
	}

	code, retry, body := postIngest(t, ts.URL, `{"count":1500}`)
	if code != http.StatusOK {
		t.Fatalf("retry = %d: %s", code, body)
	}
	// The failed request must not have consumed corpus sentences.
	if retry.Ingested != 1500 || retry.Remaining != len(sess.Sentences())-1500 {
		t.Fatalf("retry response = %+v, cursor must not advance on failure", retry)
	}
	if g := generation(t, ts.URL); g.Generation != retry.Generation || g.Stale {
		t.Fatalf("after retry generation = %+v, want %d and fresh", g, retry.Generation)
	}
}
