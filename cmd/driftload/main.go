// Command driftload is the serving load harness: it builds a KB, shards
// it behind the scatter-gather router at every requested shard count,
// verifies that responses are byte-identical across shard counts, then
// sweeps closed-loop (fixed workers) and open-loop (fixed offered rate)
// load over the fleet, reporting exact p50/p99/p999/max latencies per
// cell. The artifact is BENCH_serve.json, next to BENCH_pipeline.json
// (schema documented in DESIGN.md §11).
//
// Usage:
//
//	driftload                        # full sweep (shards 1/2/4/8)
//	driftload -smoke                 # tiny sweep, for CI
//	driftload -out serve.json        # artifact path (default BENCH_serve.json)
//	driftload -sentences N           # corpus size of the KB under load
//	driftload -shards 1,4,16         # shard counts to sweep
//	driftload -duration 2s           # wall time per load cell
//	driftload -seed 7                # query-mix seed
//	driftload -inflight N -queue N   # per-shard admission control
//	driftload -minreload 5           # require binary reload ≥5x faster than gob
//	driftload -validate serve.json   # validate an existing artifact and exit
//
// Alongside the load sweep, the harness saves the KB in both snapshot
// formats (gob and the zero-copy binary columnar format) and measures
// hot-reload latency plus per-replica heap for each; the comparison
// lands in the artifact's "reload" block.
//
// The exit status is nonzero if responses diverge across shard counts
// (sharding must be semantically invisible), if any load cell completes
// no queries or reports incoherent percentiles, if the binary-format
// reload speedup falls below -minreload, or if -validate finds a
// malformed artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"driftclean/internal/bench"
)

func main() {
	smoke := flag.Bool("smoke", false, "run the tiny CI sweep instead of the full one")
	out := flag.String("out", "BENCH_serve.json", "artifact output path")
	sentences := flag.Int("sentences", 0, "corpus size of the KB under load (0 keeps the sweep default)")
	shardsCSV := flag.String("shards", "", `comma-separated shard counts to sweep, e.g. "1,4,16" (empty keeps the sweep default)`)
	duration := flag.Duration("duration", 0, "wall time per load cell (0 keeps the sweep default)")
	seed := flag.Int64("seed", 0, "query-mix seed (0 keeps the sweep default)")
	inflight := flag.Int("inflight", 0, "per-shard admission: max concurrently executing queries (0 = unlimited)")
	queue := flag.Int("queue", 0, "per-shard admission: queued queries beyond -inflight before shedding")
	minReload := flag.Float64("minreload", 0, "fail unless the binary snapshot reloads at least this many times faster than gob (0 = only require not-slower)")
	validate := flag.String("validate", "", "validate an existing artifact at this path and exit")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: driftload [-smoke] [-out FILE] [-sentences N] [-shards 1,4,16] [-duration 2s] [-seed N] [-validate FILE]")
		os.Exit(2)
	}

	if *validate != "" {
		if err := validateArtifact(*validate, *minReload); err != nil {
			fmt.Fprintf(os.Stderr, "driftload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("validate: %s is a well-formed serving artifact\n", *validate)
		return
	}

	cfg := bench.DefaultServeConfig()
	if *smoke {
		cfg = bench.SmokeServeConfig()
	}
	if *sentences > 0 {
		cfg.Sentences = *sentences
	}
	if *shardsCSV != "" {
		counts, err := parseShardCounts(*shardsCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "driftload: %v\n", err)
			os.Exit(2)
		}
		cfg.ShardCounts = counts
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.MaxInflight = *inflight
	cfg.QueueDepth = *queue
	cfg.Progress = func(line string) { fmt.Println(line) }

	res := bench.RunServe(cfg)
	if err := res.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nshard counts %v  identical=%v  cells=%d  artifact=%s\n",
		cfg.ShardCounts, res.Identical, len(res.Cells), *out)
	if rl := res.Reload; rl != nil {
		fmt.Printf("reload p50: gob %dus -> binary %dus (%.1fx faster), heap/replica: gob %d KB -> binary %d KB\n",
			rl.Gob.ReloadP50Micros, rl.Binary.ReloadP50Micros, rl.SpeedupX,
			rl.Gob.HeapBytesPerReplica/1024, rl.Binary.HeapBytesPerReplica/1024)
	}
	if !res.Identical {
		fmt.Fprintf(os.Stderr, "driftload: responses diverged across shard counts: %v — sharding must be semantically invisible\n",
			res.ResponseFingerprint)
		os.Exit(1)
	}
	if err := bench.ValidateServe(res); err != nil {
		fmt.Fprintf(os.Stderr, "driftload: malformed run: %v\n", err)
		os.Exit(1)
	}
	if *minReload > 0 && res.Reload.SpeedupX < *minReload {
		fmt.Fprintf(os.Stderr, "driftload: binary reload speedup %.1fx is below the -minreload %.1fx floor\n",
			res.Reload.SpeedupX, *minReload)
		os.Exit(1)
	}
}

// parseShardCounts parses the -shards CSV into positive ints.
func parseShardCounts(csv string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards %q: each count must be a positive integer", csv)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// validateArtifact loads an artifact from disk and runs the schema and
// coherence checks over it — the CI gate against malformed output. A
// positive minReload additionally enforces the binary-format reload
// speedup floor on the artifact's recorded numbers.
func validateArtifact(path string, minReload float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading artifact: %w", err)
	}
	var res bench.ServeResult
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("parsing artifact %s: %w", path, err)
	}
	if err := bench.ValidateServe(&res); err != nil {
		return fmt.Errorf("artifact %s: %w", path, err)
	}
	if minReload > 0 && res.Reload.SpeedupX < minReload {
		return fmt.Errorf("artifact %s: binary reload speedup %.1fx is below the -minreload %.1fx floor",
			path, res.Reload.SpeedupX, minReload)
	}
	return nil
}
