package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"driftclean/internal/kb"
)

// saveFixtureKB writes a small KB with a drift chain under "animal" and
// a polysemous instance shared with "car", returning the file path.
func saveFixtureKB(t *testing.T) string {
	t.Helper()
	k := kb.New()
	k.AddExtraction(0, "animal", []string{"animal"}, []string{"dog", "jaguar"}, nil, 1)
	k.AddExtraction(1, "animal", []string{"animal"}, []string{"wolf"}, []string{"dog"}, 2)
	k.AddExtraction(2, "animal", []string{"animal"}, []string{"dingo"}, []string{"wolf"}, 3)
	k.AddExtraction(3, "car", []string{"car"}, []string{"jaguar"}, nil, 1)
	path := filepath.Join(t.TempDir(), "kb.gob")
	if err := k.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// exec runs the CLI and captures its streams.
func exec(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(argv, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCommandsHappyPath(t *testing.T) {
	path := saveFixtureKB(t)

	code, out, _ := exec(t, "-kb", path, "stats")
	if code != 0 || !strings.Contains(out, "pairs:    5") {
		t.Errorf("stats: code=%d out=%q", code, out)
	}

	code, out, _ = exec(t, "-kb", path, "concepts")
	if code != 0 || !strings.Contains(out, "animal") || !strings.Contains(out, "car") {
		t.Errorf("concepts: code=%d out=%q", code, out)
	}

	code, out, _ = exec(t, "-kb", path, "instances", "animal")
	if code != 0 || !strings.Contains(out, "dingo") {
		t.Errorf("instances: code=%d out=%q", code, out)
	}

	code, out, _ = exec(t, "-kb", path, "explain", "animal", "dingo")
	if code != 0 || !strings.Contains(out, "provenance chain") {
		t.Errorf("explain: code=%d out=%q", code, out)
	}

	code, out, _ = exec(t, "-kb", path, "drifted", "animal", "2")
	if code != 0 || !strings.Contains(out, "chain depth 3") {
		t.Errorf("drifted: code=%d out=%q", code, out)
	}

	code, out, _ = exec(t, "-kb", path, "subs", "animal", "dog")
	if code != 0 || !strings.Contains(out, "wolf") {
		t.Errorf("subs: code=%d out=%q", code, out)
	}

	code, out, _ = exec(t, "-kb", path, "of", "jaguar")
	if code != 0 || !strings.Contains(out, "animal") || !strings.Contains(out, "car") {
		t.Errorf("of: code=%d out=%q", code, out)
	}
}

// TestUnknownCommandRejected is the regression test for the bug where
// unknown subcommands after valid flags were silently accepted on some
// paths: every unknown command must print usage and exit 2.
func TestUnknownCommandRejected(t *testing.T) {
	path := saveFixtureKB(t)
	for _, argv := range [][]string{
		{"-kb", path, "nosuchcommand"},
		{"-kb", path, "statss"},
		{"-kb", path, "explaim", "animal", "dog"},
	} {
		code, out, stderr := exec(t, argv...)
		if code != 2 {
			t.Errorf("%v: code = %d, want 2", argv, code)
		}
		if !strings.Contains(stderr, "usage:") {
			t.Errorf("%v: no usage on stderr: %q", argv, stderr)
		}
		if out != "" {
			t.Errorf("%v: unexpected stdout %q", argv, out)
		}
	}
}

// TestMalformedArgumentsRejected: wrong arity and trailing garbage are
// usage errors, not silently ignored.
func TestMalformedArgumentsRejected(t *testing.T) {
	path := saveFixtureKB(t)
	for _, argv := range [][]string{
		{"-kb", path},                                   // no command
		{"-kb", path, "instances"},                      // missing concept
		{"-kb", path, "instances", "animal", "extra"},   // trailing garbage
		{"-kb", path, "stats", "extra"},                 // trailing garbage
		{"-kb", path, "explain", "animal"},              // missing instance
		{"-kb", path, "explain", "animal", "dog", "x"},  // trailing garbage
		{"-kb", path, "drifted"},                        // missing concept
		{"-kb", path, "drifted", "animal", "nope"},      // malformed n
		{"-kb", path, "drifted", "animal", "-1"},        // non-positive n
		{"-kb", path, "drifted", "animal", "2", "more"}, // trailing garbage
		{"stats"}, // missing -kb
	} {
		code, _, stderr := exec(t, argv...)
		if code != 2 {
			t.Errorf("%v: code = %d, want 2 (stderr %q)", argv, code, stderr)
		}
	}
}

func TestOperationalErrors(t *testing.T) {
	path := saveFixtureKB(t)
	code, _, stderr := exec(t, "-kb", path, "explain", "animal", "spoon")
	if code != 1 || !strings.Contains(stderr, "not in the KB") {
		t.Errorf("missing pair: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = exec(t, "-kb", filepath.Join(t.TempDir(), "absent.gob"), "stats")
	if code != 1 || !strings.Contains(stderr, "loading") {
		t.Errorf("missing file: code=%d stderr=%q", code, stderr)
	}
}
