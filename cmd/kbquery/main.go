// Command kbquery explores a saved knowledge base (see driftclean
// -savekb): list concepts, list a concept's instances, trace the
// provenance of a pair back to its core evidence, and rank the most
// drift-suspicious instances by provenance depth. It queries through
// the same immutable snapshot layer (internal/snapshot) the driftserve
// HTTP server uses, so CLI and server answers always agree.
//
// Usage:
//
//	kbquery -kb FILE <command> [args]
//
// Commands:
//
//	stats                     aggregate KB statistics
//	concepts                  list concepts with instance counts
//	instances <concept>       list a concept's instances with counts
//	explain <concept> <inst>  provenance of one isA pair
//	drifted <concept> [n]     the n deepest provenance chains (default 10)
//	subs <concept> <inst>     sub-instances triggered by an instance
//	of <instance>             concepts currently holding an instance
//
// Unknown commands, missing arguments and trailing garbage all print
// usage and exit 2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"driftclean/internal/kb/kbio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, load and freeze the KB,
// dispatch the subcommand. It returns the process exit code: 0 on
// success, 1 on operational errors (unreadable KB, missing pair), 2 on
// usage errors.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kbquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kbPath := fs.String("kb", "", "path to a KB snapshot written with -savekb")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if *kbPath == "" || len(args) == 0 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	argc, known := map[string]int{
		"stats": 0, "concepts": 0, "instances": 1,
		"explain": 2, "subs": 2, "of": 1,
	}[cmd]
	switch {
	case cmd == "drifted": // 1 mandatory + 1 optional argument
		if len(rest) < 1 || len(rest) > 2 {
			return usage(stderr)
		}
	case !known || len(rest) != argc:
		return usage(stderr)
	}

	// The KB may be a gob stream or a binary columnar snapshot; kbio
	// sniffs the format, so both open transparently.
	snap, _, err := kbio.FreezeFile(*kbPath)
	if err != nil {
		return fail(stderr, "loading %s: %v", *kbPath, err)
	}

	switch cmd {
	case "stats":
		s := snap.Stats()
		fmt.Fprintf(stdout, "concepts: %d\npairs:    %d\ncounts:   %d\nactive extractions: %d\n",
			s.Concepts, s.DistinctPairs, s.TotalCount, s.ActiveExtractions)
	case "concepts":
		for _, c := range snap.Concepts() {
			fmt.Fprintf(stdout, "%-30s %d instances\n", c, len(snap.Instances(c)))
		}
	case "instances":
		for _, e := range snap.Instances(rest[0]) {
			fmt.Fprintf(stdout, "%-30s count=%d subs=%d\n",
				e, snap.Count(rest[0], e), len(snap.SubInstances(rest[0], e)))
		}
	case "explain":
		ex, ok := snap.Explain(rest[0], rest[1], 5)
		if !ok {
			return fail(stderr, "pair (%s isA %s) not in the KB", rest[1], rest[0])
		}
		fmt.Fprint(stdout, ex.Format())
	case "drifted":
		n := 10
		if len(rest) == 2 {
			v, err := strconv.Atoi(rest[1])
			if err != nil || v <= 0 {
				return usage(stderr)
			}
			n = v
		}
		depth := snap.DriftDepth(rest[0])
		for _, e := range snap.TopDrifted(rest[0], n) {
			fmt.Fprintf(stdout, "%-30s chain depth %d\n", e, depth[e])
		}
	case "subs":
		for _, s := range snap.SubInstances(rest[0], rest[1]) {
			fmt.Fprintf(stdout, "%-30s count=%d\n", s, snap.Count(rest[0], s))
		}
	case "of":
		for _, c := range snap.ConceptsOfInstance(rest[0]) {
			fmt.Fprintf(stdout, "%-30s count=%d\n", c, snap.Count(c, rest[0]))
		}
	}
	return 0
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: kbquery -kb FILE stats|concepts|instances C|explain C E|drifted C [n]|subs C E|of E")
	return 2
}

func fail(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "kbquery: "+format+"\n", args...)
	return 1
}
