// Command kbquery explores a saved knowledge base (see driftclean
// -savekb): list concepts, list a concept's instances, trace the
// provenance of a pair back to its core evidence, and rank the most
// drift-suspicious instances by provenance depth.
//
// Usage:
//
//	kbquery -kb FILE <command> [args]
//
// Commands:
//
//	stats                     aggregate KB statistics
//	concepts                  list concepts with instance counts
//	instances <concept>       list a concept's instances with counts
//	explain <concept> <inst>  provenance of one isA pair
//	drifted <concept> [n]     the n deepest provenance chains (default 10)
//	subs <concept> <inst>     sub-instances triggered by an instance
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"driftclean/internal/kb"
)

func main() {
	kbPath := flag.String("kb", "", "path to a KB snapshot written with -savekb")
	flag.Parse()
	if *kbPath == "" || flag.NArg() == 0 {
		usage()
	}
	k, err := kb.LoadFile(*kbPath)
	if err != nil {
		fail("loading %s: %v", *kbPath, err)
	}
	args := flag.Args()
	switch args[0] {
	case "stats":
		s := k.Stats()
		fmt.Printf("concepts: %d\npairs:    %d\ncounts:   %d\nactive extractions: %d\n",
			s.Concepts, s.DistinctPairs, s.TotalCount, s.ActiveExtractions)
	case "concepts":
		for _, c := range k.Concepts() {
			fmt.Printf("%-30s %d instances\n", c, len(k.Instances(c)))
		}
	case "instances":
		requireArgs(args, 2)
		for _, e := range k.Instances(args[1]) {
			fmt.Printf("%-30s count=%d subs=%d\n", e, k.Count(args[1], e), len(k.SubInstances(args[1], e)))
		}
	case "explain":
		requireArgs(args, 3)
		ex, ok := k.Explain(args[1], args[2], 5)
		if !ok {
			fail("pair (%s isA %s) not in the KB", args[2], args[1])
		}
		fmt.Print(ex.Format())
	case "drifted":
		requireArgs(args, 2)
		n := 10
		if len(args) > 2 {
			if v, err := strconv.Atoi(args[2]); err == nil {
				n = v
			}
		}
		depth := k.DriftDepth(args[1])
		for _, e := range k.TopDrifted(args[1], n) {
			fmt.Printf("%-30s chain depth %d\n", e, depth[e])
		}
	case "subs":
		requireArgs(args, 3)
		for _, s := range k.SubInstances(args[1], args[2]) {
			fmt.Printf("%-30s count=%d\n", s, k.Count(args[1], s))
		}
	default:
		usage()
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kbquery -kb FILE stats|concepts|instances C|explain C E|drifted C [n]|subs C E")
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kbquery: "+format+"\n", args...)
	os.Exit(1)
}
