// Quickstart: build a drifted knowledge base and clean it with the
// paper's DP-based method, in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os/signal"
	"syscall"

	"driftclean"
)

func main() {
	// The default configuration generates a synthetic world (concepts,
	// instances, polysemy), a Hearst-pattern web corpus, and runs the
	// semantic-based iterative extractor — which drifts, exactly like the
	// paper's Fig 5(a). Scale it down a little for a fast demo.
	cfg := driftclean.DefaultConfig()
	cfg.World.NumDomains = 4
	cfg.Corpus.NumSentences = 40000

	// The session API: Open builds the world and corpus, Ingest runs one
	// extract-and-clean checkpoint over a sentence batch — here the whole
	// corpus at once. Ctrl-C cancels cleanly between rounds, and
	// WithProgress streams the pipeline's phases as they start. (For the
	// one-batch case there is also the CleanContext shorthand, which is
	// exactly this sequence.)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	sess, err := driftclean.Open(ctx,
		driftclean.WithConfig(cfg),
		driftclean.WithProgress(func(p driftclean.Phase, r driftclean.Round) {
			if p == driftclean.PhaseClean {
				fmt.Printf("  %v round %d...\n", p, r)
			} else {
				fmt.Printf("  %v...\n", p)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	report, err := sess.Ingest(ctx, sess.Sentences())
	switch {
	case errors.Is(err, driftclean.ErrNoDPsDetected):
		fmt.Println("nothing drifted — the KB was already clean")
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("isA pairs:   %d before, %d after cleaning\n",
		report.PairsBefore, report.PairsAfter)
	fmt.Printf("precision:   %.1f%% -> %.1f%%\n",
		100*report.PrecisionBefore, 100*report.PrecisionAfter)
	fmt.Printf("removal:     %.1f%% of removed pairs were real errors (perror)\n",
		100*report.PError)
	fmt.Printf("coverage:    %.1f%% of all errors were removed (rerror)\n",
		100*report.RError)
	fmt.Printf("collateral:  %.1f%% of correct pairs survived (rcorr)\n",
		100*report.RCorr)
	fmt.Printf("rounds:      %d detect-and-clean rounds\n", report.Rounds)

	// The cleaned system stays available for inspection.
	sys := report.System
	fmt.Printf("\nconcepts in the cleaned KB: %d\n", len(sys.KB.Concepts()))
	fmt.Printf("animals now include: %v ...\n", head(sys.KB.Instances("animal"), 8))
}

func head(xs []string, n int) []string {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}
