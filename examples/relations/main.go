// Relations: the paper's future-work claim ("adopt our method to
// overcome semantic drift happening to other types of relations") made
// concrete. The DP machinery never looks inside the relation — it needs
// (head, tail) pairs with trigger provenance and class-level exclusion —
// so any binary relation extracted by enumeration patterns maps onto the
// pipeline. This example builds a located-in world: heads are regions,
// tails are places, polysemous border towns play the chicken role, and
// "places in X such as ..." sentences drift exactly like isA.
//
//	go run ./examples/relations
package main

import (
	"context"
	"fmt"
	"log"

	"driftclean"
	"driftclean/internal/world"
)

func main() {
	// A located-in world expressed through the world generator: each
	// "concept" is a region, each "instance" a place located in it.
	// PolysemyPerConcept creates border towns claimed by two regions —
	// the Intentional-DP analogue; sub-concepts are districts within a
	// region; aliases are renamed regions ("Holland"/"Netherlands").
	cfg := driftclean.DefaultConfig()
	cfg.World = world.Config{
		Seed:                   11,
		NumDomains:             5, // continents: regions drift within one
		ConceptsPerDomainMin:   4,
		ConceptsPerDomainMax:   6,
		InstancesPerConceptMin: 80,
		InstancesPerConceptMax: 200,
		PolysemyPerConcept:     5,   // border towns
		SimilarAliasRate:       0.2, // renamed regions
		SubConceptRate:         0.3, // districts
		TailSizeMax:            15,
	}
	cfg.Corpus.NumSentences = 50000

	fmt.Println("extracting located-in(region, place) with iterative bootstrapping...")
	report, err := driftclean.CleanContext(context.Background(), driftclean.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairs:     %d -> %d\n", report.PairsBefore, report.PairsAfter)
	fmt.Printf("precision: %.1f%% -> %.1f%% (border-town drift cleaned)\n",
		100*report.PrecisionBefore, 100*report.PrecisionAfter)
	fmt.Printf("perror=%.3f rerror=%.3f rcorr=%.3f\n",
		report.PError, report.RError, report.RCorr)

	// The drift anatomy is identical: deep provenance chains mark places
	// dragged across a border by a polysemous trigger.
	sys := report.System
	var region string
	for _, c := range sys.KB.Concepts() {
		if region == "" || len(sys.KB.Instances(c)) > len(sys.KB.Instances(region)) {
			region = c
		}
	}
	fmt.Printf("\ndeepest provenance chains in region %q after cleaning:\n", region)
	depth := sys.KB.DriftDepth(region)
	for _, place := range sys.KB.TopDrifted(region, 5) {
		fmt.Printf("  %-25s depth %d\n", place, depth[place])
	}
}
