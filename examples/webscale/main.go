// Webscale: a larger run that shows the drift dynamics the paper reports
// at web scale (Fig 5a): pair volume multiplying across iterations while
// precision decays, then recovering after DP cleaning. Also reports
// throughput figures for each pipeline stage.
//
//	go run ./examples/webscale [-sentences N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"driftclean"
)

func main() {
	sentences := flag.Int("sentences", 200000, "corpus size")
	flag.Parse()

	cfg := driftclean.DefaultConfig()
	cfg.World.NumDomains = 10
	cfg.Corpus.NumSentences = *sentences
	cfg.Clean.MaxRounds = 3

	t0 := time.Now()
	sys := driftclean.Build(cfg)
	buildTime := time.Since(t0)

	fmt.Printf("corpus: %d sentences, extracted %d distinct pairs in %d iterations (%v, %.0f sentences/s)\n",
		sys.Corpus.Len(), sys.KB.NumPairs(), sys.Extraction.Iterations,
		buildTime.Round(time.Millisecond),
		float64(sys.Corpus.Len())/buildTime.Seconds())

	fmt.Println("\niteration  pairs    precision   (the paper's Fig 5a shape)")
	for _, it := range sys.Extraction.PerIteration {
		prec := precisionUpTo(sys, it.Iteration)
		fmt.Printf("%9d  %7d  %.3f  %s\n", it.Iteration, it.DistinctPairs, prec, bar(prec))
	}

	t1 := time.Now()
	if _, err := sys.CleanDPs(driftclean.DetectMultiTask); err != nil {
		log.Fatal(err)
	}
	cleanTime := time.Since(t1)
	final := sys.Oracle.KBPrecision(sys.KB, nil)
	fmt.Printf("\nafter DP cleaning: %d pairs, precision %.3f %s (%v)\n",
		sys.KB.NumPairs(), final, bar(final), cleanTime.Round(time.Millisecond))
}

func precisionUpTo(sys *driftclean.System, iter int) float64 {
	correct, total := 0, 0
	for _, c := range sys.KB.Concepts() {
		for _, e := range sys.KB.InstancesAtIteration(c, iter) {
			total++
			if sys.Oracle.PairCorrect(c, e) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func bar(v float64) string {
	n := int(v * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
