// Streaming: the web is crawled continuously, so a Probase-style system
// extends its KB batch by batch instead of rebuilding. This example
// drives the incremental Session API through monthly "crawl batches":
// each Ingest runs one delta extract-and-clean checkpoint (analysis
// re-runs only for concepts whose features changed), and each checkpoint
// is published as a generation-stamped snapshot — exactly what a serving
// layer would hot-swap in.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"driftclean"
)

func main() {
	cfg := driftclean.DefaultConfig()
	cfg.World.NumDomains = 4
	cfg.Corpus.NumSentences = 60000

	ctx := context.Background()
	sess, err := driftclean.Open(ctx, driftclean.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// The session owns the corpus; slice it into crawl batches. After
	// every Ingest the KB is bit-identical to a from-scratch run over
	// everything ingested so far — the checkpoints just cost less.
	sents := sess.Sentences()
	const batches = 6
	per := len(sents) / batches
	var rep *driftclean.Report
	fmt.Println("batch  pairs    precision        gen")
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = len(sents)
		}
		rep, err = sess.Ingest(ctx, sents[lo:hi])
		if err != nil && !errors.Is(err, driftclean.ErrNoDPsDetected) {
			// A failed checkpoint rolls back; the same batch could simply
			// be retried. For a demo, bail.
			log.Fatal(err)
		}
		snap, err := sess.Publish()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %7d  %.3f -> %.3f  %d\n",
			b+1, rep.PairsAfter, rep.PrecisionBefore, rep.PrecisionAfter, snap.Generation())
	}

	// The last checkpoint's report carries the same metrics a one-shot
	// CleanContext run over the whole corpus would have produced.
	fmt.Printf("\nDP cleaning: precision %.3f -> %.3f (%d pairs remain, %d checkpoints)\n",
		rep.PrecisionBefore, rep.PrecisionAfter, rep.PairsAfter, sess.Checkpoints())
}
