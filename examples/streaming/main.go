// Streaming: the web is crawled continuously, so a Probase-style system
// extends its KB batch by batch instead of rebuilding. This example
// feeds the corpus in monthly "crawl batches", extends the KB after each,
// watches drift accumulate, and runs DP cleaning at the end.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"driftclean"
	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/world"
)

func main() {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 4
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 60000
	c := corpus.Generate(w, ccfg)
	oracle := eval.NewOracle(w, c)

	const batches = 6
	x := extract.NewExtractor(extract.DefaultConfig())
	per := c.Len() / batches
	fmt.Println("batch  pairs    precision  pending")
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = c.Len()
		}
		x.Add(c.Sentences[lo:hi])
		x.Extend()
		fmt.Printf("%5d  %7d  %.3f      %d\n",
			b+1, x.KB().NumPairs(), oracle.KBPrecision(x.KB(), nil), x.Pending())
	}

	// Hand the streamed KB to the cleaning pipeline. The System wrapper
	// normally builds its own extraction; here we substitute the streamed
	// result and clean in place.
	cfg := driftclean.DefaultConfig()
	sys := &driftclean.System{
		Cfg:        cfg,
		World:      w,
		Corpus:     c,
		Extraction: x.Result(),
		KB:         x.KB(),
		Oracle:     oracle,
	}
	before := oracle.KBPrecision(sys.KB, nil)
	if _, err := sys.CleanDPs(driftclean.DetectMultiTask); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDP cleaning: precision %.3f -> %.3f (%d pairs remain)\n",
		before, oracle.KBPrecision(sys.KB, nil), sys.KB.NumPairs())
}
