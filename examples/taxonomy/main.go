// Taxonomy: drive the lower-level packages directly — build a custom
// world, inspect discovered mutual exclusions against ground truth, sweep
// the seed-labeling threshold k (the paper's Fig 5b), and compare the
// three ranking models (the paper's Table 2) — all without the top-level
// pipeline wrapper.
//
//	go run ./examples/taxonomy
package main

import (
	"fmt"

	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/mutex"
	"driftclean/internal/rank"
	"driftclean/internal/seedlabel"
	"driftclean/internal/world"
)

func main() {
	// A custom world: fewer, bigger domains with aggressive polysemy.
	wcfg := world.DefaultConfig()
	wcfg.Seed = 42
	wcfg.NumDomains = 4
	wcfg.InstancesPerConceptMin = 150
	wcfg.InstancesPerConceptMax = 400
	wcfg.PolysemyPerConcept = 6
	w := world.New(wcfg)
	fmt.Printf("world: %d concepts, %d instances, %d domains\n",
		len(w.Concepts), w.NumInstances(), len(w.Domains))

	ccfg := corpus.DefaultConfig()
	ccfg.Seed = 43
	ccfg.NumSentences = 60000
	c := corpus.Generate(w, ccfg)
	res := extract.Run(c, extract.DefaultConfig())
	oracle := eval.NewOracle(w, c)
	fmt.Printf("extraction: %d pairs, precision %.3f\n",
		res.KB.NumPairs(), oracle.KBPrecision(res.KB, nil))

	// Mutual-exclusion discovery vs ground truth.
	mx := mutex.Analyze(res.KB, mutex.DefaultConfig())
	agree, total := 0, 0
	names := w.ConceptNames()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if !mx.Covered(names[i]) || !mx.Covered(names[j]) {
				continue
			}
			total++
			if mx.Exclusive(names[i], names[j]) == w.ExclusiveTruth(names[i], names[j]) {
				agree++
			}
		}
	}
	fmt.Printf("exclusion discovery: %.1f%% agreement with ground truth over %d covered pairs\n",
		100*float64(agree)/float64(total), total)

	// Fig 5b in miniature: the seed threshold trade-off.
	fmt.Println("\nk   seed-precision  label-rate")
	for k := 1; k <= 8; k++ {
		lab := seedlabel.New(res.KB, mx, seedlabel.Config{K: k})
		good, seeds, insts := 0, 0, 0
		for _, concept := range res.KB.Concepts() {
			insts += len(res.KB.Instances(concept))
			for e, lbl := range lab.Seeds(concept) {
				seeds++
				if oracle.SeedLabelCorrect(res.KB, concept, e, lbl) {
					good++
				}
			}
		}
		fmt.Printf("%d   %.3f           %.3f\n",
			k, float64(good)/float64(seeds), float64(seeds)/float64(insts))
	}

	// Table 2 in miniature on the concept with the most extracted pairs.
	big := ""
	for _, concept := range res.KB.Concepts() {
		if big == "" || len(res.KB.Instances(concept)) > len(res.KB.Instances(big)) {
			big = concept
		}
	}
	g := rank.BuildGraph(res.KB, big)
	models := map[string]rank.Scores{
		"frequency":   rank.Frequency(res.KB, big),
		"pagerank":    rank.PageRank(g, rank.DefaultConfig()),
		"random walk": rank.RandomWalk(g, rank.DefaultConfig()),
	}
	fmt.Printf("\nranking %q (%d instances): p@100\n", big, len(res.KB.Instances(big)))
	for _, name := range []string{"frequency", "pagerank", "random walk"} {
		p := oracle.PrecisionAtK(big, models[name].Ranked(), 100)
		fmt.Printf("  %-12s %.3f\n", name, p)
	}
}
