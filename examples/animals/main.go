// Animals: the paper's running example, end to end. The synthetic world
// embeds the paper's own concepts — animal, food, pet — with chicken,
// duck and turkey as polysemous bridges. This example shows drift
// happening under "animal" (food instances leaking in via chicken-style
// triggers), then walks through the Eq 21 sentence re-check on a drifted
// extraction, and finally cleans the KB and prints what got rolled back.
//
//	go run ./examples/animals
package main

import (
	"fmt"
	"log"
	"sort"

	"driftclean"
	"driftclean/internal/clean"
	"driftclean/internal/rank"
)

func main() {
	cfg := driftclean.DefaultConfig()
	cfg.World.NumDomains = 3
	cfg.Corpus.NumSentences = 40000

	fmt.Println("== extraction (drifts like the paper's Fig 1) ==")
	sys := driftclean.Build(cfg)
	before := sys.KB.Instances("animal")
	wrongBefore := wrongUnder(sys, "animal")
	fmt.Printf("animal instances after extraction: %d (%d are drifting errors)\n",
		len(before), len(wrongBefore))
	fmt.Printf("sample errors that drifted into animal: %v\n", head(wrongBefore, 8))

	// Eq 21 walkthrough on a genuinely drifted extraction, like the
	// paper's Example 1 ("food from animals such as pork, beef and
	// chicken").
	fmt.Println("\n== Eq 21 sentence re-check ==")
	showEq21(sys)

	// Full DP cleaning.
	fmt.Println("\n== DP cleaning ==")
	if _, err := sys.CleanDPs(driftclean.DetectMultiTask); err != nil {
		log.Fatal(err)
	}
	after := sys.KB.Instances("animal")
	wrongAfter := wrongUnder(sys, "animal")
	fmt.Printf("animal instances after cleaning: %d (%d errors remain)\n",
		len(after), len(wrongAfter))
	removed := diff(before, after)
	fmt.Printf("rolled back from animal: %d pairs, e.g. %v\n", len(removed), head(removed, 8))
}

// showEq21 finds an ambiguous extraction whose chosen concept loses the
// Eq 21 re-check and prints the per-candidate scores.
func showEq21(sys *driftclean.System) {
	cache := map[string]rank.Scores{}
	scoresOf := func(c string) rank.Scores {
		if s, ok := cache[c]; ok {
			return s
		}
		s := rank.RandomWalk(rank.BuildGraph(sys.KB, c), rank.DefaultConfig())
		cache[c] = s
		return s
	}
	for id := 0; id < sys.KB.NumExtractions(); id++ {
		ex := sys.KB.Extraction(id)
		if !ex.Active || len(ex.Candidates) < 2 || len(ex.Triggers) == 0 {
			continue
		}
		if clean.ExtractionPassesCheck(sys.KB, ex, scoresOf) {
			continue
		}
		truth := sys.Corpus.Truth(ex.SentenceID)
		if truth.TrueConcept == ex.Concept {
			continue // want a real drift case for the demo
		}
		fmt.Printf("sentence:  %q\n", sys.Corpus.Sentences[ex.SentenceID].Text)
		fmt.Printf("resolved:  %q (triggered by %v) — WRONG, truth is %q\n",
			ex.Concept, ex.Triggers, truth.TrueConcept)
		for _, c := range ex.Candidates {
			s := clean.SentenceScore(ex.Instances, c, ex.Candidates, scoresOf)
			fmt.Printf("  Score(s, %s) = %.3f\n", c, s)
		}
		fmt.Println("the re-check prefers the other candidate; the extraction is rolled back")
		return
	}
	fmt.Println("(no failing extraction found at this scale)")
}

func wrongUnder(sys *driftclean.System, concept string) []string {
	var out []string
	for _, e := range sys.KB.Instances(concept) {
		if !sys.Oracle.PairCorrect(concept, e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

func diff(before, after []string) []string {
	in := map[string]bool{}
	for _, e := range after {
		in[e] = true
	}
	var out []string
	for _, e := range before {
		if !in[e] {
			out = append(out, e)
		}
	}
	return out
}

func head(xs []string, n int) []string {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}
