// Package world builds the synthetic ground-truth universe that substitutes
// for the paper's 1.68-billion-page web corpus (see DESIGN.md §1).
//
// A World is a taxonomy of concepts and instances with exactly the
// structures that cause semantic drift in iterative isA extraction:
//
//   - domains: clusters of related concepts that co-occur in ambiguous
//     "such as" sentences (animal/food/pet, country/city/company, ...);
//     concepts from different domains are irrelevant to each other;
//   - mutual exclusion: distinct concepts in a domain are mutually
//     exclusive in ground truth unless one is an alias or sub-concept of
//     the other;
//   - polysemous instances: instances that genuinely belong to two
//     mutually exclusive concepts (chicken ∈ animal ∩ food) — the seeds of
//     Intentional Drifting Points (paper Def. 3);
//   - highly-similar aliases: concept pairs sharing most instances
//     (country/nation) used by Sec 3.2.1 of the paper;
//   - sub-concepts: instances that are themselves concepts with their own
//     instance sets (dog ⊂ animal), which enable the "other than"
//     mis-parse hazard behind Accidental DPs (paper Def. 4).
//
// The world also carries a partial NER-style lexicon used by the
// Type-Checking baseline (a substitution for Stanford NER, DESIGN.md §1).
//
// Everything is generated from an explicit seed and is fully deterministic.
package world

import (
	"fmt"
	"math/rand"
	"sort"
)

// Concept is a semantic class with a ground-truth instance set.
type Concept struct {
	ID        int
	Name      string   // single-token surface form (underscores join words)
	Domain    int      // index into World.Domains
	Instances []string // ground-truth members, sorted
	SimilarOf int      // ID of the concept this one aliases, or -1
	ParentOf  int      // ID of the parent concept when this is a sub-concept, or -1
	Tail      bool     // true for deliberately tiny "tail" concepts

	members map[string]struct{}
}

// Has reports whether instance e truly belongs to the concept.
func (c *Concept) Has(e string) bool {
	_, ok := c.members[e]
	return ok
}

// Size returns the number of ground-truth instances.
func (c *Concept) Size() int { return len(c.Instances) }

// World is the complete synthetic ground truth.
type World struct {
	Concepts []*Concept
	Domains  [][]int // concept IDs per domain

	byName      map[string]*Concept
	conceptsOf  map[string][]int // instance -> concept IDs (ground truth)
	nerType     map[string]int   // partial instance -> domain lexicon for the TCh baseline
	nerCoverage float64
	cfg         Config
}

// Config controls world generation. Zero values are replaced by the
// defaults from DefaultConfig.
type Config struct {
	Seed int64

	// NumDomains is the number of generated concept clusters, in addition
	// to the hand-named domain that reproduces the paper's animal/food
	// running example.
	NumDomains int
	// ConceptsPerDomain bounds the number of exclusive concepts per domain.
	ConceptsPerDomainMin, ConceptsPerDomainMax int
	// InstancesPerConcept bounds ground-truth class sizes.
	InstancesPerConceptMin, InstancesPerConceptMax int
	// PolysemyPerConcept is how many instances of each concept are shared
	// with a mutually exclusive concept in the same domain.
	PolysemyPerConcept int
	// SimilarAliasRate is the probability that a concept receives a
	// highly-similar alias concept sharing SimilarShare of its instances.
	SimilarAliasRate float64
	SimilarShare     float64
	// SubConceptRate is the probability that a concept receives a
	// sub-concept built from a subset of its instances.
	SubConceptRate  float64
	SubConceptShare float64
	// TailConceptsPerDomain adds tiny concepts (paper's "key u.s. export").
	TailConceptsPerDomain int
	TailSizeMax           int
	// NERCoverage is the fraction of instances present in the gazetteer
	// used by the Type-Checking baseline; NERNoise is the fraction of
	// those entries carrying a wrong type.
	NERCoverage float64
	NERNoise    float64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		NumDomains:             8,
		ConceptsPerDomainMin:   3,
		ConceptsPerDomainMax:   6,
		InstancesPerConceptMin: 120,
		InstancesPerConceptMax: 600,
		PolysemyPerConcept:     4,
		SimilarAliasRate:       0.25,
		SimilarShare:           0.8,
		SubConceptRate:         0.3,
		SubConceptShare:        0.15,
		TailConceptsPerDomain:  1,
		TailSizeMax:            20,
		NERCoverage:            0.2,
		NERNoise:               0.02,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.NumDomains == 0 {
		c.NumDomains = d.NumDomains
	}
	if c.ConceptsPerDomainMin == 0 {
		c.ConceptsPerDomainMin = d.ConceptsPerDomainMin
	}
	if c.ConceptsPerDomainMax == 0 {
		c.ConceptsPerDomainMax = d.ConceptsPerDomainMax
	}
	if c.InstancesPerConceptMin == 0 {
		c.InstancesPerConceptMin = d.InstancesPerConceptMin
	}
	if c.InstancesPerConceptMax == 0 {
		c.InstancesPerConceptMax = d.InstancesPerConceptMax
	}
	if c.PolysemyPerConcept == 0 {
		c.PolysemyPerConcept = d.PolysemyPerConcept
	}
	if c.SimilarAliasRate == 0 {
		c.SimilarAliasRate = d.SimilarAliasRate
	}
	if c.SimilarShare == 0 {
		c.SimilarShare = d.SimilarShare
	}
	if c.SubConceptRate == 0 {
		c.SubConceptRate = d.SubConceptRate
	}
	if c.SubConceptShare == 0 {
		c.SubConceptShare = d.SubConceptShare
	}
	if c.TailConceptsPerDomain == 0 {
		c.TailConceptsPerDomain = d.TailConceptsPerDomain
	}
	if c.TailSizeMax == 0 {
		c.TailSizeMax = d.TailSizeMax
	}
	if c.NERCoverage == 0 {
		c.NERCoverage = d.NERCoverage
	}
	if c.NERNoise == 0 {
		c.NERNoise = d.NERNoise
	}
}

// New generates a world from cfg. The same Config always yields the same
// world.
func New(cfg Config) *World {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		byName:      make(map[string]*Concept),
		conceptsOf:  make(map[string][]int),
		nerCoverage: cfg.NERCoverage,
		cfg:         cfg,
	}
	w.buildNamedDomain()
	names := newNameGen(rng)
	for d := 0; d < cfg.NumDomains; d++ {
		w.buildDomain(rng, names)
	}
	for _, c := range w.Concepts {
		sort.Strings(c.Instances)
	}
	w.buildNERLexicon(rng)
	return w
}

// buildNamedDomain installs the paper's running example: animal / food /
// pet with chicken, duck and turkey as polysemous bridges and dog as a
// sub-concept of animal. Keeping the paper's instance names makes Fig. 2
// and the worked Eq. 21 example directly recognizable.
func (w *World) buildNamedDomain() {
	domain := 0
	animals := []string{
		"dog", "cat", "horse", "rabbit", "elephant", "dolphin", "lion",
		"camel", "pigeon", "donkey", "chimpanzee", "snake", "monkey",
		"tiger", "bear", "wolf", "fox", "deer", "goat", "sheep", "cow",
		"pig", "duck", "chicken", "turkey", "eagle", "owl", "shark",
		"whale", "frog", "lizard", "mouse", "squirrel", "otter", "seal",
	}
	foods := []string{
		"beef", "pork", "milk", "meat", "bread", "cheese", "rice",
		"pasta", "butter", "honey", "sugar", "salad", "soup", "cake",
		"chicken", "duck", "turkey", "egg", "yogurt", "noodle", "corn",
		"bean", "fish_fillet", "bacon", "sausage", "ham", "cream",
	}
	pets := []string{
		"dog", "cat", "rabbit", "hamster", "goldfish", "parrot",
		"canary", "guinea_pig", "turtle", "gecko", "ferret", "pony",
	}
	dogs := []string{
		"chihuahua", "poodle", "beagle", "bulldog", "terrier", "husky",
		"dalmatian", "labrador", "corgi", "pug",
	}
	// Dog breeds are animals (and pets) too.
	animals = append(animals, dogs...)
	pets = append(pets, dogs[:4]...)

	w.addConcept("animal", domain, animals, -1, -1, false)
	w.addConcept("food", domain, foods, -1, -1, false)
	w.addConcept("pet", domain, pets, -1, -1, false)
	w.addConcept("dog_breed", domain, dogs, -1, w.byName["animal"].ID, false)
	w.Domains = append(w.Domains, []int{
		w.byName["animal"].ID, w.byName["food"].ID,
		w.byName["pet"].ID, w.byName["dog_breed"].ID,
	})
}

func (w *World) buildDomain(rng *rand.Rand, names *nameGen) {
	cfg := w.cfg
	domain := len(w.Domains)
	n := cfg.ConceptsPerDomainMin
	if cfg.ConceptsPerDomainMax > cfg.ConceptsPerDomainMin {
		n += rng.Intn(cfg.ConceptsPerDomainMax - cfg.ConceptsPerDomainMin + 1)
	}
	var ids []int
	base := make([]*Concept, 0, n)
	for i := 0; i < n; i++ {
		size := cfg.InstancesPerConceptMin
		if cfg.InstancesPerConceptMax > cfg.InstancesPerConceptMin {
			size += rng.Intn(cfg.InstancesPerConceptMax - cfg.InstancesPerConceptMin + 1)
		}
		insts := make([]string, size)
		for j := range insts {
			insts[j] = names.instance()
		}
		c := w.addConcept(names.concept(), domain, insts, -1, -1, false)
		ids = append(ids, c.ID)
		base = append(base, c)
	}
	// Polysemous bridges between exclusive concepts in the same domain.
	if len(base) >= 2 {
		for _, c := range base {
			for p := 0; p < cfg.PolysemyPerConcept; p++ {
				other := base[rng.Intn(len(base))]
				if other.ID == c.ID {
					continue
				}
				e := c.Instances[rng.Intn(len(c.Instances))]
				w.addMember(other, e)
			}
		}
	}
	// Highly-similar aliases.
	for _, c := range base {
		if rng.Float64() >= cfg.SimilarAliasRate {
			continue
		}
		shared := sampleStrings(rng, c.Instances, int(float64(len(c.Instances))*cfg.SimilarShare))
		extra := 2 + rng.Intn(5)
		for i := 0; i < extra; i++ {
			shared = append(shared, names.instance())
		}
		a := w.addConcept(c.Name+"_kind", domain, shared, c.ID, -1, false)
		ids = append(ids, a.ID)
	}
	// Sub-concepts: a named instance of the parent becomes a concept whose
	// instances are a subset of the parent's.
	for _, c := range base {
		if rng.Float64() >= cfg.SubConceptRate {
			continue
		}
		sub := sampleStrings(rng, c.Instances, maxInt(3, int(float64(len(c.Instances))*cfg.SubConceptShare)))
		s := w.addConcept(names.concept(), domain, sub, -1, c.ID, false)
		ids = append(ids, s.ID)
	}
	// Tail concepts.
	for i := 0; i < cfg.TailConceptsPerDomain; i++ {
		size := 3 + rng.Intn(cfg.TailSizeMax)
		insts := make([]string, size)
		for j := range insts {
			insts[j] = names.instance()
		}
		c := w.addConcept(names.concept(), domain, insts, -1, -1, true)
		ids = append(ids, c.ID)
	}
	w.Domains = append(w.Domains, ids)
}

func (w *World) addConcept(name string, domain int, instances []string, similarOf, parentOf int, tail bool) *Concept {
	if _, dup := w.byName[name]; dup {
		panic(fmt.Sprintf("world: duplicate concept name %q", name))
	}
	c := &Concept{
		ID:        len(w.Concepts),
		Name:      name,
		Domain:    domain,
		SimilarOf: similarOf,
		ParentOf:  parentOf,
		Tail:      tail,
		members:   make(map[string]struct{}, len(instances)),
	}
	for _, e := range instances {
		w.addMember(c, e)
	}
	w.Concepts = append(w.Concepts, c)
	w.byName[name] = c
	return c
}

func (w *World) addMember(c *Concept, e string) {
	if _, ok := c.members[e]; ok {
		return
	}
	c.members[e] = struct{}{}
	c.Instances = append(c.Instances, e)
	w.conceptsOf[e] = append(w.conceptsOf[e], c.ID)
}

func (w *World) buildNERLexicon(rng *rand.Rand) {
	w.nerType = make(map[string]int)
	insts := make([]string, 0, len(w.conceptsOf))
	for e := range w.conceptsOf {
		insts = append(insts, e)
	}
	sort.Strings(insts) // deterministic iteration order
	for _, e := range insts {
		if rng.Float64() >= w.cfg.NERCoverage {
			continue
		}
		// The gazetteer types an instance by its primary (first-assigned)
		// concept — an external resource is blind to polysemy, so a
		// bridge instance carries only one type.
		typ := w.conceptsOf[e][0]
		if rng.Float64() < w.cfg.NERNoise {
			typ = rng.Intn(len(w.Concepts))
		}
		w.nerType[e] = typ
	}
}

// Concept returns the concept with the given surface name, or nil.
func (w *World) Concept(name string) *Concept { return w.byName[name] }

// IsTrue reports whether (concept, instance) is a ground-truth isA pair.
func (w *World) IsTrue(concept, instance string) bool {
	c := w.byName[concept]
	return c != nil && c.Has(instance)
}

// ConceptsOf returns the IDs of all concepts an instance truly belongs to.
func (w *World) ConceptsOf(instance string) []int { return w.conceptsOf[instance] }

// IsPolysemous reports whether the instance belongs to at least two
// mutually exclusive concepts in ground truth.
func (w *World) IsPolysemous(instance string) bool {
	ids := w.conceptsOf[instance]
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if w.ExclusiveTruth(w.Concepts[ids[i]].Name, w.Concepts[ids[j]].Name) {
				return true
			}
		}
	}
	return false
}

// ExclusiveTruth reports the ground-truth mutual exclusion between two
// concepts: distinct concepts are exclusive unless one is an alias or a
// sub-concept of the other.
func (w *World) ExclusiveTruth(c1, c2 string) bool {
	a, b := w.byName[c1], w.byName[c2]
	if a == nil || b == nil || a.ID == b.ID {
		return false
	}
	if a.SimilarOf == b.ID || b.SimilarOf == a.ID {
		return false
	}
	if a.ParentOf == b.ID || b.ParentOf == a.ID {
		return false
	}
	return true
}

// NERType returns the gazetteer type (a concept ID) of an instance for
// the Type-Checking baseline, with ok=false when the instance is not
// covered. This simulates the paper's use of Stanford NER: partial
// coverage, coarse single-type answers, a little noise.
func (w *World) NERType(instance string) (conceptID int, ok bool) {
	d, ok := w.nerType[instance]
	return d, ok
}

// DomainOf returns the domain index of a named concept, or -1.
func (w *World) DomainOf(concept string) int {
	if c := w.byName[concept]; c != nil {
		return c.Domain
	}
	return -1
}

// ConceptNames returns all concept names, sorted.
func (w *World) ConceptNames() []string {
	names := make([]string, len(w.Concepts))
	for i, c := range w.Concepts {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// NumInstances returns the number of distinct instances in the world.
func (w *World) NumInstances() int { return len(w.conceptsOf) }

// EvaluationConcepts picks n concepts to play the role of the paper's 20
// manually labeled concepts (Table 1): the largest concepts first, always
// including at least one tail concept (the paper's "key u.s. export").
func (w *World) EvaluationConcepts(n int) []string {
	sorted := make([]*Concept, len(w.Concepts))
	copy(sorted, w.Concepts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size() != sorted[j].Size() {
			return sorted[i].Size() > sorted[j].Size()
		}
		return sorted[i].Name < sorted[j].Name
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	out := make([]string, 0, n)
	var tail string
	for _, c := range sorted {
		if c.Tail && tail == "" {
			tail = c.Name
		}
	}
	for _, c := range sorted[:n] {
		out = append(out, c.Name)
	}
	if tail != "" && !containsStr(out, tail) && n > 0 {
		out[len(out)-1] = tail
	}
	sort.Strings(out)
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func sampleStrings(rng *rand.Rand, src []string, n int) []string {
	if n > len(src) {
		n = len(src)
	}
	perm := rng.Perm(len(src))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = src[perm[i]]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
