package world

import (
	"fmt"
	"math/rand"
	"strings"
)

// nameGen produces pronounceable, globally unique synthetic names so the
// generated corpora read like text rather than opaque IDs. Concepts get
// two-syllable-stem plural-ish names ("varnok"), instances two or three
// syllables ("melira"). Collisions are resolved with numeric suffixes.
type nameGen struct {
	rng  *rand.Rand
	seen map[string]struct{}
}

var (
	onsets  = []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "sh", "th", "br", "dr", "gr", "kr", "pl", "st", "tr"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
	codas   = []string{"", "", "", "n", "r", "s", "l", "k", "m", "x"}
	suffixc = []string{"oid", "ling", "ware", "folk", "kind"}
)

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, seen: map[string]struct{}{}}
}

func (g *nameGen) syllable() string {
	return onsets[g.rng.Intn(len(onsets))] + vowels[g.rng.Intn(len(vowels))] + codas[g.rng.Intn(len(codas))]
}

func (g *nameGen) unique(base string) string {
	name := base
	for i := 2; ; i++ {
		if _, dup := g.seen[name]; !dup {
			g.seen[name] = struct{}{}
			return name
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
}

// concept returns a fresh concept name.
func (g *nameGen) concept() string {
	var b strings.Builder
	b.WriteString(g.syllable())
	b.WriteString(g.syllable())
	b.WriteString(suffixc[g.rng.Intn(len(suffixc))])
	return g.unique(b.String())
}

// instance returns a fresh instance name.
func (g *nameGen) instance() string {
	var b strings.Builder
	n := 2 + g.rng.Intn(2)
	for i := 0; i < n; i++ {
		b.WriteString(g.syllable())
	}
	return g.unique(b.String())
}
