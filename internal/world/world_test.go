package world

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testWorld(t testing.TB) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumDomains = 3
	cfg.InstancesPerConceptMin = 40
	cfg.InstancesPerConceptMax = 80
	return New(cfg)
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDomains = 2
	w1, w2 := New(cfg), New(cfg)
	if len(w1.Concepts) != len(w2.Concepts) {
		t.Fatalf("concept counts differ: %d vs %d", len(w1.Concepts), len(w2.Concepts))
	}
	for i := range w1.Concepts {
		if w1.Concepts[i].Name != w2.Concepts[i].Name {
			t.Fatalf("concept %d name differs: %q vs %q", i, w1.Concepts[i].Name, w2.Concepts[i].Name)
		}
		if !reflect.DeepEqual(w1.Concepts[i].Instances, w2.Concepts[i].Instances) {
			t.Fatalf("concept %q instances differ", w1.Concepts[i].Name)
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDomains = 2
	w1 := New(cfg)
	cfg.Seed = 99
	w2 := New(cfg)
	same := len(w1.Concepts) == len(w2.Concepts)
	if same {
		for i := range w1.Concepts {
			if w1.Concepts[i].Name != w2.Concepts[i].Name {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical concept sets")
	}
}

func TestNamedDomainPresent(t *testing.T) {
	w := testWorld(t)
	for _, name := range []string{"animal", "food", "pet", "dog_breed"} {
		if w.Concept(name) == nil {
			t.Errorf("missing named concept %q", name)
		}
	}
	if !w.IsTrue("animal", "chicken") || !w.IsTrue("food", "chicken") {
		t.Error("chicken must be polysemous across animal and food")
	}
	if !w.IsTrue("animal", "dolphin") {
		t.Error("dolphin must be an animal")
	}
	if w.IsTrue("animal", "beef") {
		t.Error("beef must not be an animal")
	}
}

func TestExclusiveTruth(t *testing.T) {
	w := testWorld(t)
	if !w.ExclusiveTruth("animal", "food") {
		t.Error("animal and food must be mutually exclusive")
	}
	if w.ExclusiveTruth("animal", "animal") {
		t.Error("a concept is not exclusive with itself")
	}
	if w.ExclusiveTruth("dog_breed", "animal") {
		t.Error("a sub-concept is not exclusive with its parent")
	}
	if w.ExclusiveTruth("animal", "nosuchconcept") {
		t.Error("unknown concepts are never exclusive")
	}
	// Aliases are not exclusive with their base concept.
	for _, c := range w.Concepts {
		if c.SimilarOf >= 0 {
			base := w.Concepts[c.SimilarOf]
			if w.ExclusiveTruth(c.Name, base.Name) {
				t.Errorf("alias %q must not be exclusive with base %q", c.Name, base.Name)
			}
		}
	}
}

func TestPolysemyDetection(t *testing.T) {
	w := testWorld(t)
	if !w.IsPolysemous("chicken") {
		t.Error("chicken should be polysemous")
	}
	if w.IsPolysemous("dolphin") {
		t.Error("dolphin should not be polysemous")
	}
}

func TestConceptsOfConsistency(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.Concepts {
		for _, e := range c.Instances {
			found := false
			for _, id := range w.ConceptsOf(e) {
				if id == c.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("instance %q of %q missing from reverse index", e, c.Name)
			}
		}
	}
}

func TestInstanceListsSortedUnique(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.Concepts {
		for i := 1; i < len(c.Instances); i++ {
			if c.Instances[i-1] >= c.Instances[i] {
				t.Fatalf("concept %q instances not sorted-unique at %d", c.Name, i)
			}
		}
		if len(c.Instances) != len(c.members) {
			t.Fatalf("concept %q: %d instances vs %d members", c.Name, len(c.Instances), len(c.members))
		}
	}
}

func TestDomainsPartitionConcepts(t *testing.T) {
	w := testWorld(t)
	seen := map[int]bool{}
	total := 0
	for d, ids := range w.Domains {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("concept %d in multiple domains", id)
			}
			seen[id] = true
			total++
			if w.Concepts[id].Domain != d {
				t.Fatalf("concept %d domain field %d, listed in domain %d", id, w.Concepts[id].Domain, d)
			}
		}
	}
	if total != len(w.Concepts) {
		t.Fatalf("domains cover %d concepts, world has %d", total, len(w.Concepts))
	}
}

func TestNERLexiconCoverage(t *testing.T) {
	w := testWorld(t)
	covered := 0
	for _, c := range w.Concepts {
		for _, e := range c.Instances {
			if _, ok := w.NERType(e); ok {
				covered++
			}
		}
	}
	// Coverage is per distinct instance; just check it is neither empty
	// nor total.
	if covered == 0 {
		t.Error("NER lexicon is empty")
	}
	if covered >= w.NumInstances() {
		t.Error("NER lexicon covers everything; baseline would be an oracle")
	}
}

func TestEvaluationConceptsIncludeTail(t *testing.T) {
	w := testWorld(t)
	eval := w.EvaluationConcepts(10)
	if len(eval) != 10 {
		t.Fatalf("got %d evaluation concepts, want 10", len(eval))
	}
	hasTail := false
	for _, name := range eval {
		if w.Concept(name).Tail {
			hasTail = true
		}
	}
	if !hasTail {
		t.Error("evaluation concepts must include a tail concept")
	}
}

func TestSubConceptInstancesSubsetOfParent(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.Concepts {
		if c.ParentOf < 0 {
			continue
		}
		parent := w.Concepts[c.ParentOf]
		for _, e := range c.Instances {
			if !parent.Has(e) {
				t.Fatalf("sub-concept %q instance %q missing from parent %q", c.Name, e, parent.Name)
			}
		}
	}
}

func TestNameGenUnique(t *testing.T) {
	g := newNameGen(rand.New(rand.NewSource(7)))
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		n := g.instance()
		if seen[n] {
			t.Fatalf("duplicate generated name %q", n)
		}
		seen[n] = true
	}
}

// Property: every instance of every concept answers IsTrue, and ExclusiveTruth
// is symmetric.
func TestQuickGroundTruthConsistency(t *testing.T) {
	w := testWorld(t)
	names := w.ConceptNames()
	f := func(a, b uint8) bool {
		c1 := names[int(a)%len(names)]
		c2 := names[int(b)%len(names)]
		if w.ExclusiveTruth(c1, c2) != w.ExclusiveTruth(c2, c1) {
			return false
		}
		c := w.Concept(c1)
		for _, e := range c.Instances[:minInt(5, len(c.Instances))] {
			if !w.IsTrue(c1, e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
