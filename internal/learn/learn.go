// Package learn implements the DP detectors of Sec 3.3 and the baselines
// of Sec 5.4:
//
//   - ad-hoc single-property detectors with learned thresholds
//     (Table 4 rows 1–4);
//   - a Random Forest — the paper's conventional "Supervised" baseline;
//   - a ridge least-squares detector (Eq 8) used in ablations;
//   - the semi-supervised manifold detector (Eqs 9–15), which smooths the
//     global classifier against k-NN local predictors over labeled and
//     unlabeled data;
//   - Concept Adaptive Drift Detection — the semi-supervised multi-task
//     detector of Algorithm 1 (Eqs 16–20), which trains all concepts
//     jointly under a shared ℓ2,1 structure matrix D.
//
// Detectors classify each instance into Intentional DP, Accidental DP or
// non-DP via the one-hot least-squares encoding of Sec 3.3.2.
package learn

import (
	"fmt"
	"math"
	"math/rand"

	"driftclean/internal/dp"
	"driftclean/internal/linalg"
)

// Instance is one training/evaluation point of a task.
type Instance struct {
	Name    string
	X       []float64 // transformed (KPCA) representation x̃
	Raw     []float64 // raw f1..f4 features (tree and ad-hoc models)
	Label   dp.Label  // valid when Labeled
	Labeled bool
}

// Task is the per-concept dataset: labeled seeds first is NOT required;
// Labeled flags identify the seed subset.
type Task struct {
	Concept   string
	Instances []Instance
}

// LabeledCount returns the number of labeled instances.
func (t *Task) LabeledCount() int {
	n := 0
	for _, in := range t.Instances {
		if in.Labeled {
			n++
		}
	}
	return n
}

// Dim returns the transformed dimensionality (0 for an empty task).
func (t *Task) Dim() int {
	if len(t.Instances) == 0 {
		return 0
	}
	return len(t.Instances[0].X)
}

// PadTo extends every transformed vector with zeros to dimension r, so
// tasks with differing KPCA ranks can share one multi-task W shape.
func (t *Task) PadTo(r int) {
	for i := range t.Instances {
		x := t.Instances[i].X
		for len(x) < r {
			x = append(x, 0)
		}
		t.Instances[i].X = x[:r]
	}
}

// Detector classifies transformed feature vectors.
type Detector interface {
	Predict(x []float64) dp.Label
}

// LinearDetector is Fc(x̃) = Wᵀx̃ with argmax decoding (Sec 3.3.2).
type LinearDetector struct {
	W *linalg.Matrix // r×3
}

// Predict returns the argmax class of Wᵀx.
func (d *LinearDetector) Predict(x []float64) dp.Label {
	var scores [3]float64
	for j := 0; j < 3; j++ {
		var s float64
		for i := 0; i < d.W.Rows && i < len(x); i++ {
			s += d.W.At(i, j) * x[i]
		}
		scores[j] = s
	}
	return dp.FromScores(scores)
}

// PredictTask labels every instance of a task with the detector.
func PredictTask(d Detector, t *Task, useRaw bool) map[string]dp.Label {
	out := make(map[string]dp.Label, len(t.Instances))
	for _, in := range t.Instances {
		x := in.X
		if useRaw {
			x = in.Raw
		}
		out[in.Name] = d.Predict(x)
	}
	return out
}

// labeledMatrices assembles Xl (r×m, instances as columns) and Y (m×3),
// with rows rescaled by inverse class frequency so the rare DP classes
// are not drowned out by the non-DP majority in the least-squares fits.
func labeledMatrices(t *Task) (xl, y *linalg.Matrix, m int) {
	r := t.Dim()
	counts := map[dp.Label]int{}
	for _, in := range t.Instances {
		if in.Labeled {
			m++
			counts[in.Label]++
		}
	}
	weight := func(l dp.Label) float64 {
		if counts[l] == 0 {
			return 1
		}
		// Soft inverse-frequency: fourth root keeps the rare DP classes
		// audible without letting a handful of seeds dominate the fit.
		return math.Sqrt(math.Sqrt(float64(m) / (3 * float64(counts[l]))))
	}
	xl = linalg.NewMatrix(r, m)
	y = linalg.NewMatrix(m, 3)
	col := 0
	for _, in := range t.Instances {
		if !in.Labeled {
			continue
		}
		w := weight(in.Label)
		for i := 0; i < r; i++ {
			xl.Set(i, col, in.X[i]*w)
		}
		oh := in.Label.OneHot()
		for j := 0; j < 3; j++ {
			y.Set(col, j, oh[j]*w)
		}
		col++
	}
	return xl, y, m
}

// TrainRidge fits the plain supervised least-squares detector of Eq 8:
// W = (Xl·Xlᵀ + λI)⁻¹·Xl·Y.
func TrainRidge(t *Task, lambda float64) (*LinearDetector, error) {
	xl, y, m := labeledMatrices(t)
	if m == 0 {
		return nil, fmt.Errorf("learn: task %q has no labeled instances", t.Concept)
	}
	if lambda <= 0 {
		lambda = 1e-3
	}
	a := linalg.Mul(xl, xl.T())
	for i := 0; i < a.Rows; i++ {
		a.Add(i, i, lambda)
	}
	w, err := linalg.SolveLinear(a, linalg.Mul(xl, y))
	if err != nil {
		return nil, fmt.Errorf("learn: ridge solve for %q: %w", t.Concept, err)
	}
	return &LinearDetector{W: w}, nil
}

// majorityLabel returns the most frequent label, ties to NonDP.
func majorityLabel(labels []dp.Label) dp.Label {
	counts := map[dp.Label]int{}
	for _, l := range labels {
		counts[l]++
	}
	best, bestN := dp.NonDP, counts[dp.NonDP]
	for _, l := range []dp.Label{dp.Intentional, dp.Accidental} {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	return best
}

// newRng returns a deterministic RNG for the given purpose.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// l21Norm computes Σ_i ||row_i||₂ of a matrix.
func l21Norm(w *linalg.Matrix) float64 {
	var s float64
	for i := 0; i < w.Rows; i++ {
		var rowSq float64
		for j := 0; j < w.Cols; j++ {
			v := w.At(i, j)
			rowSq += v * v
		}
		s += math.Sqrt(rowSq)
	}
	return s
}
