package learn

import (
	"testing"

	"driftclean/internal/dp"
	"driftclean/internal/linalg"
)

// scoreTask builds a task where the detector scores are fully controlled
// by a 3-dim identity W: X = the desired [int, acc, non] scores.
func scoreTask(rows [][3]float64, labels []dp.Label) (*LinearDetector, *Task) {
	det := &LinearDetector{W: linalg.Identity(3)}
	t := &Task{Concept: "c"}
	for i, r := range rows {
		t.Instances = append(t.Instances, Instance{
			Name:    string(rune('a' + i)),
			X:       []float64{r[0], r[1], r[2]},
			Raw:     []float64{r[0], r[1], r[2], 0, 0, 0},
			Label:   labels[i],
			Labeled: true,
		})
	}
	return det, t
}

func TestScoresMatchesPredict(t *testing.T) {
	det := &LinearDetector{W: linalg.Identity(3)}
	s := det.Scores([]float64{0.2, 0.9, 0.1})
	if s != [3]float64{0.2, 0.9, 0.1} {
		t.Fatalf("Scores = %v", s)
	}
	if det.Predict([]float64{0.2, 0.9, 0.1}) != dp.Accidental {
		t.Fatal("Predict disagrees with Scores argmax")
	}
}

func TestCalibrateRecoversMargin(t *testing.T) {
	// Two DPs whose scores lose to non-DP by 0.1 and 0.2; two non-DPs
	// that win by 0.5. A positive delta between 0.2 and 0.5 fixes both
	// DPs without flipping the non-DPs.
	det, task := scoreTask([][3]float64{
		{0.5, 0, 0.6}, // DP, margin -0.1
		{0.4, 0, 0.6}, // DP, margin -0.2
		{0.1, 0, 0.6}, // non-DP, margin -0.5 (safe)
		{0.0, 0, 0.7}, // non-DP
	}, []dp.Label{dp.Intentional, dp.Intentional, dp.NonDP, dp.NonDP})
	cal := Calibrate(det, task)
	if cal.Delta <= 0 {
		t.Fatalf("Delta = %v, want positive", cal.Delta)
	}
	// With only four seeds the margin is heavily shrunken, but a
	// near-boundary DP must now be recovered.
	if got := cal.Predict([]float64{0.59, 0, 0.6}); !got.IsDP() {
		t.Errorf("borderline DP not recovered (delta=%v): %v", cal.Delta, got)
	}
	if got := cal.Predict([]float64{0.0, 0, 0.7}); got.IsDP() {
		t.Errorf("clear non-DP flipped: %v", got)
	}
}

func TestCalibrateNoLabels(t *testing.T) {
	det := &LinearDetector{W: linalg.Identity(3)}
	task := &Task{Concept: "c", Instances: []Instance{{Name: "x", X: []float64{1, 0, 0}}}}
	cal := Calibrate(det, task)
	if cal.Delta != 0 {
		t.Errorf("Delta = %v with no labels, want 0", cal.Delta)
	}
	if cal.Predict([]float64{1, 0, 0}) != dp.Intentional {
		t.Error("zero-delta calibration must behave like argmax")
	}
}

func TestCalibratedTypeAssignment(t *testing.T) {
	cal := &CalibratedLinear{Base: &LinearDetector{W: linalg.Identity(3)}, Delta: 1}
	if got := cal.Predict([]float64{0.9, 0.1, 0}); got != dp.Intentional {
		t.Errorf("got %v, want Intentional", got)
	}
	if got := cal.Predict([]float64{0.1, 0.9, 0}); got != dp.Accidental {
		t.Errorf("got %v, want Accidental", got)
	}
	conservative := &CalibratedLinear{Base: &LinearDetector{W: linalg.Identity(3)}, Delta: -10}
	if got := conservative.Predict([]float64{0.9, 0.1, 0}); got != dp.NonDP {
		t.Errorf("hugely negative delta must suppress DP calls, got %v", got)
	}
}

func TestCalibrationShrinkMonotone(t *testing.T) {
	if calibrationShrink(1) >= calibrationShrink(100) {
		t.Error("shrink must grow with seed count")
	}
	if s := calibrationShrink(1000); s < 0.9 || s > 1 {
		t.Errorf("large-sample shrink = %v", s)
	}
}

func TestManifoldSubset(t *testing.T) {
	task := &Task{Concept: "c"}
	for i := 0; i < 30; i++ {
		task.Instances = append(task.Instances, Instance{
			Name:    string(rune('a' + i)),
			X:       []float64{float64(i)},
			Labeled: i < 5,
			Label:   dp.NonDP,
		})
	}
	sub := manifoldSubset(task, 10)
	if len(sub.Instances) > 11 {
		t.Fatalf("subset size %d, want <= ~10", len(sub.Instances))
	}
	labeled := 0
	for _, in := range sub.Instances {
		if in.Labeled {
			labeled++
		}
	}
	if labeled != 5 {
		t.Errorf("subset kept %d labeled, want all 5", labeled)
	}
	// No cap: unchanged.
	if got := manifoldSubset(task, 0); len(got.Instances) != 30 {
		t.Errorf("uncapped subset resized to %d", len(got.Instances))
	}
	if got := manifoldSubset(task, 100); len(got.Instances) != 30 {
		t.Errorf("roomy cap resized to %d", len(got.Instances))
	}
}

func TestTrainSemiSupervisedNoLabels(t *testing.T) {
	task := synthTask(99, "c", 4, 10, 0)
	for i := range task.Instances {
		task.Instances[i].Labeled = false
	}
	if _, err := TrainSemiSupervised(task, DefaultSemiSupervisedConfig()); err == nil {
		t.Error("semi-supervised training without labels should fail")
	}
}

func TestForestNoLabels(t *testing.T) {
	task := &Task{Concept: "c", Instances: []Instance{{Name: "x", Raw: []float64{1}}}}
	if _, err := TrainForest(task, DefaultForestConfig()); err == nil {
		t.Error("forest without labels should fail")
	}
}

func TestAdHocNoLabels(t *testing.T) {
	task := &Task{Concept: "c", Instances: []Instance{{Name: "x", Raw: []float64{1, 2, 3, 4}}}}
	if _, err := TrainAdHoc(task, 0); err == nil {
		t.Error("ad-hoc without labels should fail")
	}
}

func TestMultiTaskNoLabeledTasks(t *testing.T) {
	task := synthTask(100, "c", 3, 5, 0)
	for i := range task.Instances {
		task.Instances[i].Labeled = false
	}
	if _, err := TrainMultiTask([]*Task{task}, DefaultMultiTaskConfig(), nil); err == nil {
		t.Error("multi-task with zero labeled tasks should fail")
	}
}
