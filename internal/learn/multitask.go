package learn

import (
	"fmt"
	"math"

	"driftclean/internal/linalg"
)

// MultiTaskConfig controls Concept Adaptive Drift Detection (Algorithm 1).
type MultiTaskConfig struct {
	Manifold ManifoldConfig
	// Lambda weighs the manifold term, Beta the shared ℓ2,1 structure,
	// Gamma the global Frobenius penalty (λ, β, γ of Eq 18).
	Lambda, Beta, Gamma float64
	// MaxIter bounds the outer iterations; Tol is the relative objective
	// decrease that counts as convergence.
	MaxIter int
	Tol     float64
	// Seed randomizes the W initialization (step 1 of Algorithm 1).
	Seed int64
	// Epsilon guards the D update against zero rows: Dii = 1/(2·max(ε,‖wi‖)).
	Epsilon float64
	// ManifoldOf, when non-nil, supplies each task's manifold matrix A
	// (Eq 17) instead of building it from scratch. It is called with the
	// effective (default-filled) ManifoldConfig. The matrix is a pure
	// function of (task, config), so callers that keep tasks alive across
	// training runs can memoize it — TrainMultiTask only reads A. A
	// provider must return exactly ManifoldMatrix(t, cfg).
	ManifoldOf func(t *Task, cfg ManifoldConfig) *linalg.Matrix
}

// DefaultMultiTaskConfig returns the settings used in experiments
// (Fig 5c runs 20 iterations).
func DefaultMultiTaskConfig() MultiTaskConfig {
	return MultiTaskConfig{
		Manifold: DefaultManifoldConfig(),
		Lambda:   0.05,
		Beta:     0.3,
		Gamma:    0.3,
		MaxIter:  20,
		Tol:      1e-7,
		Seed:     1,
		Epsilon:  1e-8,
	}
}

// MultiTaskResult carries the trained detectors and training trajectory.
type MultiTaskResult struct {
	Detectors map[string]*LinearDetector
	// Objective holds the Eq 18 value after each outer iteration;
	// Theorem 1 guarantees it is non-increasing.
	Objective []float64
	// Iterations is the number of outer iterations executed.
	Iterations int
}

// IterationHook is called after each outer iteration with the current
// per-concept detectors (used by Fig 5c to trace accuracy).
type IterationHook func(iter int, detectors map[string]*LinearDetector)

// TrainMultiTask runs Algorithm 1 over the given tasks jointly. All tasks
// must share the transformed dimensionality (use Task.PadTo); tasks
// without labeled instances are skipped.
func TrainMultiTask(tasks []*Task, cfg MultiTaskConfig, hook IterationHook) (*MultiTaskResult, error) {
	def := DefaultMultiTaskConfig()
	if cfg.Lambda <= 0 {
		cfg.Lambda = def.Lambda
	}
	if cfg.Beta <= 0 {
		cfg.Beta = def.Beta
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = def.Gamma
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = def.MaxIter
	}
	if cfg.Tol <= 0 {
		cfg.Tol = def.Tol
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.Manifold.K <= 0 {
		cfg.Manifold = def.Manifold
	}
	manifold := cfg.ManifoldOf
	if manifold == nil {
		manifold = ManifoldMatrix
	}

	var active []*Task
	for _, t := range tasks {
		if t.LabeledCount() > 0 && t.Dim() > 0 {
			active = append(active, t)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("learn: no task has labeled instances")
	}
	r := active[0].Dim()
	for _, t := range active {
		if t.Dim() != r {
			return nil, fmt.Errorf("learn: task %q has dimension %d, want %d (PadTo first)", t.Concept, t.Dim(), r)
		}
	}

	// Precompute per-task constants: Xl, Y, Xl·Xlᵀ, Xl·Y, A.
	states := make([]*taskState, len(active))
	rng := newRng(cfg.Seed)
	for i, t := range active {
		xl, y, _ := labeledMatrices(t)
		st := &taskState{
			task: t,
			xl:   xl,
			y:    y,
			xxT:  linalg.Mul(xl, xl.T()),
			xy:   linalg.Mul(xl, y),
			a:    manifold(t, cfg.Manifold),
			w:    linalg.NewMatrix(r, 3),
		}
		for j := range st.w.Data {
			st.w.Data[j] = rng.NormFloat64() * 0.01
		}
		states[i] = st
	}

	res := &MultiTaskResult{Detectors: make(map[string]*LinearDetector, len(states))}
	emit := func(iter int) {
		for _, st := range states {
			res.Detectors[st.task.Concept] = &LinearDetector{W: st.w}
		}
		if hook != nil {
			hook(iter, res.Detectors)
		}
	}

	prevObj := math.Inf(1)
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		// Step: update D from the current stacked W (feature rows across
		// all tasks and classes): Dii = 1/(2‖w_i‖).
		d := make([]float64, r)
		for i := 0; i < r; i++ {
			var rowSq float64
			for _, st := range states {
				for j := 0; j < 3; j++ {
					v := st.w.At(i, j)
					rowSq += v * v
				}
			}
			norm := math.Sqrt(rowSq)
			if norm < cfg.Epsilon {
				norm = cfg.Epsilon
			}
			d[i] = 1 / (2 * norm)
		}
		// Step: closed-form Wc update (Eq 20).
		for _, st := range states {
			lhs := st.xxT.Clone()
			linalg.AddInPlace(lhs, cfg.Lambda, st.a)
			for i := 0; i < r; i++ {
				lhs.Add(i, i, cfg.Lambda*cfg.Beta*d[i]+cfg.Lambda*cfg.Gamma)
			}
			w, err := linalg.SolveLinear(lhs, st.xy)
			if err != nil {
				return nil, fmt.Errorf("learn: multi-task solve for %q at iteration %d: %w",
					st.task.Concept, iter, err)
			}
			st.w = w
		}
		obj := multiTaskObjective(states, cfg)
		res.Objective = append(res.Objective, obj)
		res.Iterations = iter
		emit(iter)
		if prevObj-obj >= 0 && prevObj-obj < cfg.Tol*(1+math.Abs(obj)) {
			break
		}
		prevObj = obj
	}
	return res, nil
}

// taskState caches the per-task constants of Algorithm 1.
type taskState struct {
	task *Task
	xl   *linalg.Matrix
	y    *linalg.Matrix
	xxT  *linalg.Matrix
	xy   *linalg.Matrix
	a    *linalg.Matrix
	w    *linalg.Matrix
}

// multiTaskObjective evaluates Eq 18 for the current detector stack.
func multiTaskObjective(states []*taskState, cfg MultiTaskConfig) float64 {
	var loss, manifold, frob float64
	r := states[0].w.Rows
	stacked := linalg.NewMatrix(r, 3*len(states))
	for si, st := range states {
		// ‖Xlᵀ·Wc − Y‖²F
		pred := linalg.Mul(st.xl.T(), st.w)
		diff := linalg.SubM(pred, st.y)
		f := diff.FrobeniusNorm()
		loss += f * f
		// Tr(WcᵀAWc)
		manifold += linalg.Mul(linalg.Mul(st.w.T(), st.a), st.w).Trace()
		fw := st.w.FrobeniusNorm()
		frob += fw * fw
		for i := 0; i < r; i++ {
			for j := 0; j < 3; j++ {
				stacked.Set(i, si*3+j, st.w.At(i, j))
			}
		}
	}
	return loss + cfg.Lambda*(manifold+cfg.Beta*l21Norm(stacked)+cfg.Gamma*frob)
}
