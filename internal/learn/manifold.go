package learn

import (
	"sort"

	"driftclean/internal/floats"
	"driftclean/internal/linalg"
)

// ManifoldConfig controls the semi-supervised manifold regularizer of
// Eqs 9–14.
type ManifoldConfig struct {
	// K is the number of nearest neighbors per local predictor.
	K int
	// LocalLambda is the ridge term inside each local predictor (the λ of
	// Eq 12/14).
	LocalLambda float64
	// MaxPoints caps the instances used to build the manifold matrix:
	// above the cap a deterministic stride sample is used (labeled
	// points always included). The k-NN step is O(n²) otherwise.
	MaxPoints int
}

// DefaultManifoldConfig returns k=5 neighborhoods with mild local ridge.
func DefaultManifoldConfig() ManifoldConfig {
	return ManifoldConfig{K: 5, LocalLambda: 0.1, MaxPoints: 500}
}

// ManifoldMatrix computes a task's manifold regularizer matrix A. It is
// a pure function of the task's instances and the config — the identity
// MultiTaskConfig.ManifoldOf providers must preserve.
func ManifoldMatrix(t *Task, cfg ManifoldConfig) *linalg.Matrix {
	return buildManifoldMatrix(t, cfg)
}

// buildManifoldMatrix computes A = X̃·(Σ_i S_i·L_i·S_iᵀ)·X̃ᵀ (Eq 17) over
// all instances of the task, labeled and unlabeled alike. Rather than
// materializing the n×n selection product, it accumulates the equivalent
// per-neighborhood contribution X̃_i·L_i·X̃_iᵀ, where X̃_i is the r×(k+1)
// matrix of instance i's neighborhood.
func buildManifoldMatrix(t *Task, cfg ManifoldConfig) *linalg.Matrix {
	t = manifoldSubset(t, cfg.MaxPoints)
	n := len(t.Instances)
	r := t.Dim()
	a := linalg.NewMatrix(r, r)
	if n == 0 || r == 0 {
		return a
	}
	k := cfg.K
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return a
	}
	neigh := nearestNeighbors(t, k)
	h := centeringMatrix(k + 1)
	for i := 0; i < n; i++ {
		// X̃_i: columns are x̃_i and its k nearest neighbors.
		xi := linalg.NewMatrix(r, k+1)
		cols := append([]int{i}, neigh[i]...)
		for c, idx := range cols {
			for row := 0; row < r; row++ {
				xi.Set(row, c, t.Instances[idx].X[row])
			}
		}
		li := localL(xi, h, cfg.LocalLambda)
		// A += X̃_i·L_i·X̃_iᵀ.
		linalg.AddInPlace(a, 1, linalg.Mul(linalg.Mul(xi, li), xi.T()))
	}
	a.Symmetrize()
	// Normalize to a per-neighborhood mean: the Eq 17 sum grows with the
	// (mostly unlabeled) instance count n while the empirical loss grows
	// with the labeled count m, so without normalization the manifold
	// term drowns the labels on label-poor concepts.
	return linalg.Scale(1/float64(n), a)
}

// manifoldSubset returns t unchanged when it fits under limit points,
// and otherwise a view keeping every labeled instance plus a
// deterministic stride sample of the unlabeled ones.
func manifoldSubset(t *Task, limit int) *Task {
	if limit <= 0 || len(t.Instances) <= limit {
		return t
	}
	sub := &Task{Concept: t.Concept}
	var unlabeled []Instance
	for _, in := range t.Instances {
		if in.Labeled {
			sub.Instances = append(sub.Instances, in)
		} else {
			unlabeled = append(unlabeled, in)
		}
	}
	room := limit - len(sub.Instances)
	if room <= 0 {
		return sub
	}
	stride := (len(unlabeled) + room - 1) / room
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(unlabeled); i += stride {
		sub.Instances = append(sub.Instances, unlabeled[i])
	}
	return sub
}

// localL computes L_i = H − H·X̃_iᵀ·(X̃_i·H·X̃_iᵀ + λI)⁻¹·X̃_i·H (Eq 14).
func localL(xi, h *linalg.Matrix, lambda float64) *linalg.Matrix {
	r := xi.Rows
	xh := linalg.Mul(xi, h) // r×(k+1)
	mid := linalg.Mul(xh, xi.T())
	for i := 0; i < r; i++ {
		mid.Add(i, i, lambda)
	}
	inv, err := linalg.Inverse(mid)
	if err != nil {
		// λI keeps mid positive definite in theory; fall back to pure
		// centering if numerical degeneracy still bites.
		return h.Clone()
	}
	// L = H − (X̃H)ᵀ·inv·(X̃H)  — using H symmetric and idempotent.
	corr := linalg.Mul(linalg.Mul(xh.T(), inv), xh)
	return linalg.SubM(h, corr)
}

// centeringMatrix returns H = I − (1/m)·11ᵀ.
func centeringMatrix(m int) *linalg.Matrix {
	h := linalg.NewMatrix(m, m)
	inv := 1 / float64(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				h.Set(i, j, 1-inv)
			} else {
				h.Set(i, j, -inv)
			}
		}
	}
	return h
}

// nearestNeighbors returns, for each instance, the indexes of its k
// nearest neighbors by Euclidean distance in the transformed space, ties
// broken by index for determinism.
func nearestNeighbors(t *Task, k int) [][]int {
	n := len(t.Instances)
	out := make([][]int, n)
	type cand struct {
		idx int
		d2  float64
	}
	for i := 0; i < n; i++ {
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			cands = append(cands, cand{j, sqDist(t.Instances[i].X, t.Instances[j].X)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if !floats.Identical(cands[a].d2, cands[b].d2) {
				return cands[a].d2 < cands[b].d2
			}
			return cands[a].idx < cands[b].idx
		})
		idxs := make([]int, k)
		for j := 0; j < k; j++ {
			idxs[j] = cands[j].idx
		}
		out[i] = idxs
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
