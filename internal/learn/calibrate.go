package learn

import (
	"sort"

	"driftclean/internal/dp"
	"driftclean/internal/floats"
)

// Scores returns the raw three-class scores Wᵀx (before argmax).
func (d *LinearDetector) Scores(x []float64) [3]float64 {
	var scores [3]float64
	for j := 0; j < 3; j++ {
		var s float64
		for i := 0; i < d.W.Rows && i < len(x); i++ {
			s += d.W.At(i, j) * x[i]
		}
		scores[j] = s
	}
	return scores
}

// CalibratedLinear wraps a linear detector with a DP-decision margin: an
// instance is a DP when max(intentional, accidental) + Delta exceeds the
// non-DP score. Delta is tuned on the labeled seeds to maximize binary
// DP-detection F1 — least-squares argmax decoding is otherwise biased by
// the one-hot targets' class imbalance.
type CalibratedLinear struct {
	Base  *LinearDetector
	Delta float64
}

// Predict applies the calibrated decision rule.
func (c *CalibratedLinear) Predict(x []float64) dp.Label {
	s := c.Base.Scores(x)
	dpScore := s[0]
	if s[1] > dpScore {
		dpScore = s[1]
	}
	if dpScore+c.Delta <= s[2] {
		return dp.NonDP
	}
	if s[0] >= s[1] {
		return dp.Intentional
	}
	return dp.Accidental
}

// Calibrate tunes the DP margin of a linear detector on a task's labeled
// instances. With no labeled instances the margin stays 0 (plain argmax).
func Calibrate(d *LinearDetector, tasks ...*Task) *CalibratedLinear {
	type pt struct {
		margin float64 // sN - max(sI, sA): delta must exceed it to call DP
		isDP   bool
	}
	var pts []pt
	for _, t := range tasks {
		for _, in := range t.Instances {
			if !in.Labeled {
				continue
			}
			s := d.Scores(in.X)
			dpScore := s[0]
			if s[1] > dpScore {
				dpScore = s[1]
			}
			pts = append(pts, pt{margin: s[2] - dpScore, isDP: in.Label.IsDP()})
		}
	}
	out := &CalibratedLinear{Base: d}
	if len(pts) == 0 {
		return out
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].margin < pts[j].margin })
	totalDP := 0
	for _, p := range pts {
		if p.isDP {
			totalDP++
		}
	}
	// Sweep delta over the decision boundaries: with delta just above
	// pts[i].margin, points 0..i are called DP.
	bestF1, bestDelta := -1.0, 0.0
	tp, fp := 0, 0
	eval := func(delta float64) {
		fn := totalDP - tp
		if tp > 0 {
			p := float64(tp) / float64(tp+fp)
			r := float64(tp) / float64(tp+fn)
			if f1 := 2 * p * r / (p + r); f1 > bestF1 {
				bestF1, bestDelta = f1, delta
			}
		}
	}
	eval(pts[0].margin - 1e-9) // call nothing DP
	for i, p := range pts {
		if p.isDP {
			tp++
		} else {
			fp++
		}
		if i+1 < len(pts) && floats.Identical(pts[i+1].margin, p.margin) {
			continue
		}
		next := p.margin + 1e-9
		if i+1 < len(pts) {
			next = (p.margin + pts[i+1].margin) / 2
		}
		eval(next)
	}
	// Shrink the margin toward plain argmax decoding: the F1-optimal
	// delta on a handful of seeds is a noisy estimate, and shrinkage
	// regularizes it the same way the Frobenius terms regularize W.
	out.Delta = bestDelta * calibrationShrink(len(pts))
	return out
}

// calibrationShrink returns the shrinkage factor for a seed count: full
// trust with hundreds of seeds, half trust with a dozen.
func calibrationShrink(n int) float64 {
	return float64(n) / float64(n+25)
}
