package learn

import (
	"fmt"
	"sort"

	"driftclean/internal/dp"
	"driftclean/internal/floats"
)

// AdHoc is a single-property threshold detector (Table 4 rows 1–4): each
// uses one of the four raw features with a threshold learned on the seed
// labels, exactly the kind of heuristic the paper argues is insufficient.
type AdHoc struct {
	// Feature indexes the raw feature (0..3 for f1..f4).
	Feature int
	// Thresh is the decision threshold; LowIsDP means values at or below
	// the threshold are classified as DPs (true for f1, f3, f4 — DPs sit
	// low; false for f2, where a positive exclusion count marks a DP).
	Thresh  float64
	LowIsDP bool
}

// TrainAdHoc learns the threshold for the given raw feature (0-based) by
// maximizing F1 of binary DP detection on the labeled instances.
func TrainAdHoc(t *Task, feature int) (*AdHoc, error) {
	type pt struct {
		v    float64
		isDP bool
	}
	var pts []pt
	for _, in := range t.Instances {
		if !in.Labeled {
			continue
		}
		pts = append(pts, pt{in.Raw[feature], in.Label.IsDP()})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("learn: task %q has no labeled instances for ad-hoc", t.Concept)
	}
	lowIsDP := feature != 1 // f2 marks DPs by *high* exclusion counts
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })

	totalDP := 0
	for _, p := range pts {
		if p.isDP {
			totalDP++
		}
	}
	bestF1, bestThresh := -1.0, pts[0].v
	// Candidate thresholds between consecutive distinct values, plus the
	// extremes.
	try := func(thresh float64) {
		tp, fp := 0, 0
		for _, p := range pts {
			predictedDP := (p.v <= thresh) == lowIsDP
			if predictedDP && p.isDP {
				tp++
			} else if predictedDP && !p.isDP {
				fp++
			}
		}
		f1 := f1Score(tp, fp, totalDP-tp)
		if f1 > bestF1 {
			bestF1, bestThresh = f1, thresh
		}
	}
	try(pts[0].v - 1)
	for i := 1; i < len(pts); i++ {
		if !floats.Identical(pts[i].v, pts[i-1].v) {
			try((pts[i].v + pts[i-1].v) / 2)
		}
	}
	try(pts[len(pts)-1].v)
	return &AdHoc{Feature: feature, Thresh: bestThresh, LowIsDP: lowIsDP}, nil
}

// TrainAdHocPooled learns one threshold over the labeled instances of all
// tasks (raw feature scales are comparable across concepts).
func TrainAdHocPooled(tasks []*Task, feature int) (*AdHoc, error) {
	pooled := &Task{Concept: "<pooled>"}
	for _, t := range tasks {
		for _, in := range t.Instances {
			if in.Labeled {
				pooled.Instances = append(pooled.Instances, in)
			}
		}
	}
	return TrainAdHoc(pooled, feature)
}

// Predict classifies by the single-feature threshold. Detected DPs are
// typed by the mutual-exclusion feature: a positive f2 suggests a
// polysemous (Intentional) DP, otherwise Accidental.
func (a *AdHoc) Predict(x []float64) dp.Label {
	isDP := (x[a.Feature] <= a.Thresh) == a.LowIsDP
	if !isDP {
		return dp.NonDP
	}
	if x[1] > 0 && a.Feature != 1 {
		return dp.Intentional
	}
	if a.Feature == 1 {
		return dp.Intentional
	}
	return dp.Accidental
}

func f1Score(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}
