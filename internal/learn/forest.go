package learn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"driftclean/internal/dp"
	"driftclean/internal/floats"
)

// ForestConfig controls the Random Forest baseline — the paper's
// "conventional Supervised Learning method (using Random Forest)".
type ForestConfig struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	// FeaturesPerSplit is the number of features sampled per split;
	// 0 means ceil(sqrt(d)).
	FeaturesPerSplit int
	Seed             int64
}

// DefaultForestConfig returns a small forest adequate for 4 features.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 60, MaxDepth: 8, MinLeaf: 2, Seed: 1}
}

// Forest is a trained random forest over raw feature vectors.
type Forest struct {
	trees []*treeNode
}

type treeNode struct {
	leaf    bool
	label   dp.Label
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
}

// TrainForest fits the forest on the labeled instances of a task using
// their raw features.
func TrainForest(t *Task, cfg ForestConfig) (*Forest, error) {
	def := DefaultForestConfig()
	if cfg.Trees <= 0 {
		cfg.Trees = def.Trees
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = def.MaxDepth
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = def.MinLeaf
	}
	var xs [][]float64
	var ys []dp.Label
	for _, in := range t.Instances {
		if in.Labeled {
			xs = append(xs, in.Raw)
			ys = append(ys, in.Label)
		}
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("learn: task %q has no labeled instances for the forest", t.Concept)
	}
	d := len(xs[0])
	mtry := cfg.FeaturesPerSplit
	if mtry <= 0 {
		mtry = int(math.Ceil(math.Sqrt(float64(d))))
	}
	rng := newRng(cfg.Seed)
	f := &Forest{trees: make([]*treeNode, cfg.Trees)}
	for ti := range f.trees {
		// Bootstrap sample.
		bx := make([][]float64, len(xs))
		by := make([]dp.Label, len(xs))
		for i := range bx {
			j := rng.Intn(len(xs))
			bx[i], by[i] = xs[j], ys[j]
		}
		f.trees[ti] = growTree(bx, by, cfg, mtry, rng, 0)
	}
	return f, nil
}

// TrainForestPooled fits one forest over the labeled instances of many
// tasks — raw features share semantics across concepts, so pooling is the
// natural way to give small concepts a usable supervised baseline.
func TrainForestPooled(tasks []*Task, cfg ForestConfig) (*Forest, error) {
	pooled := &Task{Concept: "<pooled>"}
	for _, t := range tasks {
		for _, in := range t.Instances {
			if in.Labeled {
				pooled.Instances = append(pooled.Instances, in)
			}
		}
	}
	return TrainForest(pooled, cfg)
}

func growTree(xs [][]float64, ys []dp.Label, cfg ForestConfig, mtry int, rng *rand.Rand, depth int) *treeNode {
	if depth >= cfg.MaxDepth || len(xs) < 2*cfg.MinLeaf || pure(ys) {
		return &treeNode{leaf: true, label: majorityLabel(ys)}
	}
	d := len(xs[0])
	feats := rng.Perm(d)[:mtry]
	bestGain := -1.0
	bestFeat, bestThresh := -1, 0.0
	parentGini := gini(ys)
	for _, f := range feats {
		vals := make([]float64, len(xs))
		for i := range xs {
			vals[i] = xs[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for i := 1; i < len(sorted); i++ {
			if floats.Identical(sorted[i], sorted[i-1]) {
				continue
			}
			thresh := (sorted[i] + sorted[i-1]) / 2
			var leftY, rightY []dp.Label
			for j := range xs {
				if vals[j] <= thresh {
					leftY = append(leftY, ys[j])
				} else {
					rightY = append(rightY, ys[j])
				}
			}
			if len(leftY) < cfg.MinLeaf || len(rightY) < cfg.MinLeaf {
				continue
			}
			n := float64(len(ys))
			gain := parentGini -
				float64(len(leftY))/n*gini(leftY) -
				float64(len(rightY))/n*gini(rightY)
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, f, thresh
			}
		}
	}
	if bestFeat < 0 || bestGain <= 0 {
		return &treeNode{leaf: true, label: majorityLabel(ys)}
	}
	var lx, rx [][]float64
	var ly, ry []dp.Label
	for i := range xs {
		if xs[i][bestFeat] <= bestThresh {
			lx = append(lx, xs[i])
			ly = append(ly, ys[i])
		} else {
			rx = append(rx, xs[i])
			ry = append(ry, ys[i])
		}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    growTree(lx, ly, cfg, mtry, rng, depth+1),
		right:   growTree(rx, ry, cfg, mtry, rng, depth+1),
	}
}

func pure(ys []dp.Label) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] != ys[0] {
			return false
		}
	}
	return true
}

func gini(ys []dp.Label) float64 {
	counts := map[dp.Label]int{}
	for _, y := range ys {
		counts[y]++
	}
	n := float64(len(ys))
	g := 1.0
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

// Predict classifies a raw feature vector by majority vote across trees.
func (f *Forest) Predict(x []float64) dp.Label {
	votes := make([]dp.Label, len(f.trees))
	for i, tr := range f.trees {
		votes[i] = tr.classify(x)
	}
	return majorityLabel(votes)
}

func (n *treeNode) classify(x []float64) dp.Label {
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}
