package learn

import (
	"fmt"

	"driftclean/internal/linalg"
)

// SemiSupervisedConfig controls the Eq 15 detector.
type SemiSupervisedConfig struct {
	Manifold ManifoldConfig
	// Lambda weighs the manifold regularizer (λ in Eq 15), Beta the
	// Frobenius penalty on Wc (β in Eq 15).
	Lambda, Beta float64
}

// DefaultSemiSupervisedConfig returns the settings used in experiments.
func DefaultSemiSupervisedConfig() SemiSupervisedConfig {
	return SemiSupervisedConfig{
		Manifold: DefaultManifoldConfig(),
		Lambda:   0.05,
		Beta:     0.5,
	}
}

// TrainSemiSupervised fits the single-concept semi-supervised detector of
// Eq 15 in closed form:
//
//	Wc = (Xl·Xlᵀ + λ·A + λβ·I)⁻¹ · Xl·Y
//
// where A encodes the disagreement between the global classifier and the
// k-NN local predictors over labeled *and unlabeled* instances.
func TrainSemiSupervised(t *Task, cfg SemiSupervisedConfig) (*LinearDetector, error) {
	if cfg.Lambda <= 0 {
		cfg.Lambda = DefaultSemiSupervisedConfig().Lambda
	}
	if cfg.Beta <= 0 {
		cfg.Beta = DefaultSemiSupervisedConfig().Beta
	}
	if cfg.Manifold.K <= 0 {
		cfg.Manifold = DefaultManifoldConfig()
	}
	xl, y, m := labeledMatrices(t)
	if m == 0 {
		return nil, fmt.Errorf("learn: task %q has no labeled instances", t.Concept)
	}
	a := buildManifoldMatrix(t, cfg.Manifold)
	lhs := linalg.Mul(xl, xl.T())
	linalg.AddInPlace(lhs, cfg.Lambda, a)
	for i := 0; i < lhs.Rows; i++ {
		lhs.Add(i, i, cfg.Lambda*cfg.Beta)
	}
	w, err := linalg.SolveLinear(lhs, linalg.Mul(xl, y))
	if err != nil {
		return nil, fmt.Errorf("learn: semi-supervised solve for %q: %w", t.Concept, err)
	}
	return &LinearDetector{W: w}, nil
}
