package learn

import (
	"math"
	"math/rand"
	"testing"

	"driftclean/internal/dp"
	"driftclean/internal/linalg"
)

// synthTask builds a task with three separable clusters in r dims:
// Intentional near (3,0,..), Accidental near (0,3,..), NonDP near (0,0,..).
// labelFrac of each cluster is labeled.
func synthTask(seed int64, concept string, r, perClass int, labelFrac float64) *Task {
	rng := rand.New(rand.NewSource(seed))
	t := &Task{Concept: concept}
	add := func(lbl dp.Label, cx, cy float64) {
		for i := 0; i < perClass; i++ {
			x := make([]float64, r)
			x[0] = cx + rng.NormFloat64()*0.4
			if r > 1 {
				x[1] = cy + rng.NormFloat64()*0.4
			}
			for j := 2; j < r; j++ {
				x[j] = rng.NormFloat64() * 0.2
			}
			raw := []float64{x[0], x[1%r], rng.Float64(), rng.Float64()}
			t.Instances = append(t.Instances, Instance{
				Name:    concept + "-" + lbl.String() + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
				X:       x,
				Raw:     raw,
				Label:   lbl,
				Labeled: rng.Float64() < labelFrac,
			})
		}
	}
	add(dp.Intentional, 3, 0)
	add(dp.Accidental, 0, 3)
	add(dp.NonDP, -3, -3)
	return t
}

func accuracy(d Detector, t *Task, useRaw bool) float64 {
	right, total := 0, 0
	for _, in := range t.Instances {
		x := in.X
		if useRaw {
			x = in.Raw
		}
		total++
		if d.Predict(x) == in.Label {
			right++
		}
	}
	return float64(right) / float64(total)
}

func TestRidgeSeparableClusters(t *testing.T) {
	task := synthTask(1, "c", 4, 40, 0.5)
	det, err := TrainRidge(task, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(det, task, false); acc < 0.9 {
		t.Errorf("ridge accuracy %.3f on separable clusters, want >= 0.9", acc)
	}
}

func TestRidgeNoLabels(t *testing.T) {
	task := synthTask(1, "c", 4, 10, 0)
	for i := range task.Instances {
		task.Instances[i].Labeled = false
	}
	if _, err := TrainRidge(task, 0.01); err == nil {
		t.Error("ridge with no labels should fail")
	}
}

func TestSemiSupervisedBeatsOrMatchesRidgeWithFewLabels(t *testing.T) {
	// With very few labels, the manifold term should not hurt and usually
	// helps; assert it stays within a small margin or better.
	task := synthTask(7, "c", 4, 50, 0.08)
	ridge, err := TrainRidge(task, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ssl, err := TrainSemiSupervised(task, DefaultSemiSupervisedConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra, sa := accuracy(ridge, task, false), accuracy(ssl, task, false)
	t.Logf("ridge %.3f semi-supervised %.3f", ra, sa)
	if sa < ra-0.05 {
		t.Errorf("semi-supervised accuracy %.3f much worse than ridge %.3f", sa, ra)
	}
	if sa < 0.8 {
		t.Errorf("semi-supervised accuracy %.3f too low", sa)
	}
}

func TestMultiTaskTrainsAllTasks(t *testing.T) {
	tasks := []*Task{
		synthTask(11, "c1", 4, 30, 0.2),
		synthTask(12, "c2", 4, 30, 0.2),
		synthTask(13, "c3", 4, 30, 0.2),
	}
	res, err := TrainMultiTask(tasks, DefaultMultiTaskConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detectors) != 3 {
		t.Fatalf("detectors for %d tasks, want 3", len(res.Detectors))
	}
	for _, task := range tasks {
		if acc := accuracy(res.Detectors[task.Concept], task, false); acc < 0.85 {
			t.Errorf("multi-task accuracy %.3f on %s, want >= 0.85", acc, task.Concept)
		}
	}
}

// TestTheorem1MonotoneObjective asserts the paper's convergence guarantee:
// the Eq 18 objective is non-increasing across Algorithm 1 iterations.
func TestTheorem1MonotoneObjective(t *testing.T) {
	tasks := []*Task{
		synthTask(21, "c1", 4, 25, 0.3),
		synthTask(22, "c2", 4, 25, 0.3),
	}
	cfg := DefaultMultiTaskConfig()
	cfg.MaxIter = 15
	cfg.Tol = 0 // run all iterations
	res, err := TrainMultiTask(tasks, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objective) < 3 {
		t.Fatalf("only %d objective values recorded", len(res.Objective))
	}
	for i := 1; i < len(res.Objective); i++ {
		if res.Objective[i] > res.Objective[i-1]*(1+1e-9) {
			t.Errorf("objective increased at iteration %d: %v -> %v",
				i+1, res.Objective[i-1], res.Objective[i])
		}
	}
}

func TestMultiTaskHookCalledEachIteration(t *testing.T) {
	tasks := []*Task{synthTask(31, "c1", 3, 20, 0.3)}
	calls := 0
	cfg := DefaultMultiTaskConfig()
	cfg.MaxIter = 5
	cfg.Tol = 0
	res, err := TrainMultiTask(tasks, cfg, func(iter int, dets map[string]*LinearDetector) {
		calls++
		if dets["c1"] == nil {
			t.Error("hook saw no detector for c1")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("hook called %d times for %d iterations", calls, res.Iterations)
	}
}

func TestMultiTaskDimensionMismatch(t *testing.T) {
	t1 := synthTask(41, "c1", 3, 10, 0.5)
	t2 := synthTask(42, "c2", 5, 10, 0.5)
	if _, err := TrainMultiTask([]*Task{t1, t2}, DefaultMultiTaskConfig(), nil); err == nil {
		t.Error("mismatched dimensions should fail without PadTo")
	}
	t1.PadTo(5)
	if _, err := TrainMultiTask([]*Task{t1, t2}, DefaultMultiTaskConfig(), nil); err != nil {
		t.Errorf("after PadTo: %v", err)
	}
}

func TestPadTo(t *testing.T) {
	task := synthTask(51, "c", 3, 5, 1)
	task.PadTo(6)
	for _, in := range task.Instances {
		if len(in.X) != 6 {
			t.Fatalf("PadTo left length %d", len(in.X))
		}
		if in.X[4] != 0 || in.X[5] != 0 {
			t.Fatal("padding must be zeros")
		}
	}
}

func TestForestSeparable(t *testing.T) {
	task := synthTask(61, "c", 4, 40, 0.6)
	// Forest uses raw features; synthTask's raw[0] carries the cluster
	// signal (copied from X[0]).
	f, err := TrainForest(task, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	right, total := 0, 0
	for _, in := range task.Instances {
		if !in.Labeled {
			continue
		}
		total++
		if f.Predict(in.Raw) == in.Label {
			right++
		}
	}
	if acc := float64(right) / float64(total); acc < 0.85 {
		t.Errorf("forest training accuracy %.3f, want >= 0.85", acc)
	}
}

func TestForestDeterministic(t *testing.T) {
	task := synthTask(71, "c", 4, 20, 0.5)
	f1, _ := TrainForest(task, DefaultForestConfig())
	f2, _ := TrainForest(task, DefaultForestConfig())
	for _, in := range task.Instances {
		if f1.Predict(in.Raw) != f2.Predict(in.Raw) {
			t.Fatal("forest not deterministic under a fixed seed")
		}
	}
}

func TestForestPooled(t *testing.T) {
	tasks := []*Task{synthTask(81, "c1", 4, 15, 0.5), synthTask(82, "c2", 4, 15, 0.5)}
	if _, err := TrainForestPooled(tasks, DefaultForestConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestAdHocThresholdLearning(t *testing.T) {
	task := &Task{Concept: "c"}
	// f3 (index 2) low => DP; construct exact separation at 0.5.
	for i := 0; i < 20; i++ {
		isDP := i%2 == 0
		v := 0.8
		lbl := dp.NonDP
		if isDP {
			v = 0.2
			lbl = dp.Accidental
		}
		task.Instances = append(task.Instances, Instance{
			Name: string(rune('a' + i)), Raw: []float64{0, 0, v, 0},
			X: []float64{v}, Label: lbl, Labeled: true,
		})
	}
	a, err := TrainAdHoc(task, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.LowIsDP {
		t.Error("f3 detector should mark low values as DPs")
	}
	if a.Thresh < 0.2 || a.Thresh > 0.8 {
		t.Errorf("threshold %v outside separating band", a.Thresh)
	}
	if got := a.Predict([]float64{0, 0, 0.1, 0}); !got.IsDP() {
		t.Error("low f3 must be detected as DP")
	}
	if got := a.Predict([]float64{0, 0, 0.9, 0}); got.IsDP() {
		t.Error("high f3 must be non-DP")
	}
}

func TestAdHocF2Direction(t *testing.T) {
	task := &Task{Concept: "c"}
	for i := 0; i < 10; i++ {
		isDP := i%2 == 0
		f2 := 0.0
		lbl := dp.NonDP
		if isDP {
			f2 = 3
			lbl = dp.Intentional
		}
		task.Instances = append(task.Instances, Instance{
			Name: string(rune('a' + i)), Raw: []float64{0, f2, 0, 0},
			X: []float64{f2}, Label: lbl, Labeled: true,
		})
	}
	a, err := TrainAdHoc(task, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.LowIsDP {
		t.Error("f2 detector should mark HIGH values as DPs")
	}
	if got := a.Predict([]float64{0, 5, 0, 0}); got != dp.Intentional {
		t.Errorf("high f2 should be Intentional, got %v", got)
	}
}

func TestMajorityLabel(t *testing.T) {
	if got := majorityLabel([]dp.Label{dp.NonDP, dp.Accidental, dp.Accidental}); got != dp.Accidental {
		t.Errorf("majority = %v", got)
	}
	if got := majorityLabel(nil); got != dp.NonDP {
		t.Errorf("empty majority = %v, want NonDP", got)
	}
}

func TestL21Norm(t *testing.T) {
	// rows (3,4) and (0,0): l2,1 = 5.
	got := l21Norm(linalg.FromRows([][]float64{{3, 4}, {0, 0}}))
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("l21 = %v, want 5", got)
	}
}
