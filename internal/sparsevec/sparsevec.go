// Package sparsevec implements sparse frequency vectors keyed by string and
// the cosine similarities the paper relies on: Eq 1 compares frequency
// distributions of triggered sub-instances against a concept's first-
// iteration instance distribution, and Eq 5 compares the core-instance sets
// of two concepts to discover mutually-exclusive and highly-similar pairs.
package sparsevec

import (
	"math"
	"sort"

	"driftclean/internal/floats"
)

// Vector is a sparse non-negative frequency vector over string keys.
// The zero value is empty and ready to use after make, so construct with New.
type Vector map[string]float64

// New returns an empty vector.
func New() Vector { return make(Vector) }

// FromCounts builds a vector from an integer count map.
func FromCounts(counts map[string]int) Vector {
	v := make(Vector, len(counts))
	for k, c := range counts {
		if c != 0 {
			v[k] = float64(c)
		}
	}
	return v
}

// FromSet builds a 0/1 indicator vector from a set of keys.
func FromSet(keys []string) Vector {
	v := make(Vector, len(keys))
	for _, k := range keys {
		v[k] = 1
	}
	return v
}

// Inc adds w to the entry for key.
func (v Vector) Inc(key string, w float64) { v[key] += w }

// L2 returns the Euclidean norm of v.
func (v Vector) L2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the total mass of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Normalized returns v scaled to unit total mass (a probability
// distribution). An empty or zero-mass vector normalizes to an empty vector.
func (v Vector) Normalized() Vector {
	total := v.Sum()
	out := make(Vector, len(v))
	if total == 0 {
		return out
	}
	for k, x := range v {
		out[k] = x / total
	}
	return out
}

// Dot returns the inner product of a and b, iterating the smaller vector.
func Dot(a, b Vector) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var s float64
	for k, x := range a {
		if y, ok := b[k]; ok {
			s += x * y
		}
	}
	return s
}

// Cosine returns the cosine similarity of a and b after mapping them into
// the same (union) key space, as used by Eq 1 and Eq 5 of the paper. If
// either vector is zero it returns 0.
func Cosine(a, b Vector) float64 {
	na, nb := a.L2(), b.L2()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// SetCosine returns the cosine similarity of two plain sets (Eq 5 uses the
// cosine between sets of core instances): |A∩B| / sqrt(|A|·|B|).
func SetCosine(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// Jaccard returns |A∩B| / |A∪B| for two sets; 0 when both are empty.
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// TopK returns up to k keys of v with the highest weights, ties broken by
// key for determinism.
func (v Vector) TopK(k int) []string {
	keys := make([]string, 0, len(v))
	for key := range v {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if !floats.Identical(v[keys[i]], v[keys[j]]) {
			return v[keys[i]] > v[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > len(keys) {
		k = len(keys)
	}
	return keys[:k]
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}
