package sparsevec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func set(keys ...string) map[string]struct{} {
	s := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		s[k] = struct{}{}
	}
	return s
}

func randomVec(r *rand.Rand, n int) Vector {
	v := New()
	for i := 0; i < n; i++ {
		v.Inc(string(rune('a'+r.Intn(10))), r.Float64()*5)
	}
	return v
}

func TestFromCountsDropsZeros(t *testing.T) {
	v := FromCounts(map[string]int{"a": 3, "b": 0, "c": 1})
	if len(v) != 2 || v["a"] != 3 || v["c"] != 1 {
		t.Errorf("FromCounts = %v", v)
	}
}

func TestFromSetIndicator(t *testing.T) {
	v := FromSet([]string{"x", "y"})
	if v["x"] != 1 || v["y"] != 1 || len(v) != 2 {
		t.Errorf("FromSet = %v", v)
	}
}

func TestL2AndSum(t *testing.T) {
	v := Vector{"a": 3, "b": 4}
	if got := v.L2(); !approxEq(got, 5, 1e-12) {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := v.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
}

func TestNormalized(t *testing.T) {
	v := Vector{"a": 1, "b": 3}
	n := v.Normalized()
	if !approxEq(n["a"], 0.25, 1e-12) || !approxEq(n["b"], 0.75, 1e-12) {
		t.Errorf("Normalized = %v", n)
	}
	if got := New().Normalized(); len(got) != 0 {
		t.Errorf("Normalized(empty) = %v, want empty", got)
	}
}

func TestCosineKnownValues(t *testing.T) {
	a := Vector{"x": 1, "y": 1}
	b := Vector{"x": 1, "y": 1}
	if got := Cosine(a, b); !approxEq(got, 1, 1e-12) {
		t.Errorf("Cosine(identical) = %v, want 1", got)
	}
	c := Vector{"z": 1}
	if got := Cosine(a, c); got != 0 {
		t.Errorf("Cosine(disjoint) = %v, want 0", got)
	}
	d := Vector{"x": 1}
	if got := Cosine(a, d); !approxEq(got, 1/math.Sqrt2, 1e-12) {
		t.Errorf("Cosine(half overlap) = %v, want %v", got, 1/math.Sqrt2)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine(New(), Vector{"a": 1}); got != 0 {
		t.Errorf("Cosine with empty = %v, want 0", got)
	}
}

func TestSetCosine(t *testing.T) {
	a := set("dog", "cat", "pig")
	b := set("dog", "cat", "cow", "hen")
	want := 2 / math.Sqrt(12)
	if got := SetCosine(a, b); !approxEq(got, want, 1e-12) {
		t.Errorf("SetCosine = %v, want %v", got, want)
	}
	if got := SetCosine(a, set()); got != 0 {
		t.Errorf("SetCosine with empty = %v, want 0", got)
	}
}

func TestJaccard(t *testing.T) {
	a := set("a", "b", "c")
	b := set("b", "c", "d")
	if got := Jaccard(a, b); !approxEq(got, 0.5, 1e-12) {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(set(), set()); got != 0 {
		t.Errorf("Jaccard(empty,empty) = %v, want 0", got)
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	v := Vector{"low": 1, "hi": 9, "mid": 5, "tie1": 3, "tie2": 3}
	got := v.TopK(4)
	want := []string{"hi", "mid", "tie1", "tie2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
	if got := v.TopK(100); len(got) != 5 {
		t.Errorf("TopK over-length = %d entries, want 5", len(got))
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{"a": 1}
	c := v.Clone()
	c["a"] = 99
	if v["a"] != 1 {
		t.Error("Clone must not alias the original")
	}
}

// Property: cosine is symmetric and bounded in [0, 1] for non-negative vectors.
func TestQuickCosineSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVec(r, 8), randomVec(r, 8)
		c1, c2 := Cosine(a, b), Cosine(b, a)
		return approxEq(c1, c2, 1e-12) && c1 >= 0 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Cosine(v, v) == 1 for any non-zero vector.
func TestQuickCosineSelf(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVec(r, 6)
		if len(v) == 0 {
			return true
		}
		return approxEq(Cosine(v, v), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SetCosine agrees with Cosine on indicator vectors.
func TestQuickSetCosineMatchesIndicator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		keysA, keysB := []string{}, []string{}
		sa, sb := set(), set()
		for i := 0; i < 6; i++ {
			k := string(rune('a' + r.Intn(8)))
			if r.Intn(2) == 0 {
				if _, ok := sa[k]; !ok {
					sa[k] = struct{}{}
					keysA = append(keysA, k)
				}
			} else {
				if _, ok := sb[k]; !ok {
					sb[k] = struct{}{}
					keysB = append(keysB, k)
				}
			}
		}
		return approxEq(SetCosine(sa, sb), Cosine(FromSet(keysA), FromSet(keysB)), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
