package dp

import (
	"testing"
	"testing/quick"
)

func TestStringNames(t *testing.T) {
	cases := map[Label]string{
		NonDP:       "non-DP",
		Intentional: "intentional-DP",
		Accidental:  "accidental-DP",
		Label(42):   "Label(42)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestIsDP(t *testing.T) {
	if NonDP.IsDP() {
		t.Error("NonDP.IsDP() = true")
	}
	if !Intentional.IsDP() || !Accidental.IsDP() {
		t.Error("DP labels must report IsDP")
	}
}

func TestOneHotEncoding(t *testing.T) {
	if Intentional.OneHot() != [3]float64{1, 0, 0} {
		t.Error("Intentional one-hot wrong")
	}
	if Accidental.OneHot() != [3]float64{0, 1, 0} {
		t.Error("Accidental one-hot wrong")
	}
	if NonDP.OneHot() != [3]float64{0, 0, 1} {
		t.Error("NonDP one-hot wrong")
	}
}

func TestFromScoresArgmax(t *testing.T) {
	if got := FromScores([3]float64{0.9, 0.1, 0.3}); got != Intentional {
		t.Errorf("argmax[0] = %v", got)
	}
	if got := FromScores([3]float64{0.1, 0.9, 0.3}); got != Accidental {
		t.Errorf("argmax[1] = %v", got)
	}
	if got := FromScores([3]float64{0.1, 0.2, 0.9}); got != NonDP {
		t.Errorf("argmax[2] = %v", got)
	}
}

func TestFromScoresTieBreak(t *testing.T) {
	// Equal scores resolve to the earlier class in encoding order.
	if got := FromScores([3]float64{0.5, 0.5, 0.5}); got != Intentional {
		t.Errorf("tie = %v, want Intentional", got)
	}
	if got := FromScores([3]float64{0.1, 0.5, 0.5}); got != Accidental {
		t.Errorf("tie(acc,non) = %v, want Accidental", got)
	}
}

// Property: FromScores inverts OneHot for every label.
func TestQuickOneHotRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		l := Label(int(n) % 3)
		return FromScores(l.OneHot()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromScores always returns the class with the maximal score
// when that maximum is unique.
func TestQuickFromScoresPicksMax(t *testing.T) {
	f := func(a, b, c float64) bool {
		s := [3]float64{a, b, c}
		got := FromScores(s)
		idx := map[Label]int{Intentional: 0, Accidental: 1, NonDP: 2}[got]
		for i := 0; i < 3; i++ {
			if s[i] > s[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
