// Package dp defines the Drifting-Point label vocabulary shared by the
// seed labeler, the learned detectors, and the evaluation oracle
// (paper Sec 2.2, Definitions 2–4).
package dp

import "fmt"

// Label classifies an instance of a concept.
type Label int

const (
	// NonDP marks an instance that introduces no drifting errors.
	NonDP Label = iota
	// Intentional marks a polysemous instance that is correct for the
	// concept but introduces instances of a mutually exclusive concept
	// (Definition 3; the paper's "chicken" under "animal").
	Intentional
	// Accidental marks an instance that is itself an extraction error and
	// whose triggered instances are drifting errors (Definition 4; the
	// paper's "New York" under "country").
	Accidental
)

// String names the label class.
func (l Label) String() string {
	switch l {
	case NonDP:
		return "non-DP"
	case Intentional:
		return "intentional-DP"
	case Accidental:
		return "accidental-DP"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// IsDP reports whether the label marks a drifting point of either type.
func (l Label) IsDP() bool { return l == Intentional || l == Accidental }

// OneHot returns the paper's boolean label encoding (Sec 3.3.2):
// Intentional -> [1 0 0], Accidental -> [0 1 0], NonDP -> [0 0 1].
func (l Label) OneHot() [3]float64 {
	switch l {
	case Intentional:
		return [3]float64{1, 0, 0}
	case Accidental:
		return [3]float64{0, 1, 0}
	default:
		return [3]float64{0, 0, 1}
	}
}

// FromScores inverts OneHot by argmax over the three class scores, with
// ties resolved in favor of the earlier class in the encoding order.
func FromScores(scores [3]float64) Label {
	best, bestIdx := scores[0], 0
	for i := 1; i < 3; i++ {
		if scores[i] > best {
			best, bestIdx = scores[i], i
		}
	}
	switch bestIdx {
	case 0:
		return Intentional
	case 1:
		return Accidental
	default:
		return NonDP
	}
}
