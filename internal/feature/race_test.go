package feature

import (
	"fmt"
	"testing"

	"driftclean/internal/mutex"
)

// TestWarmRaceHammer warms one shared extractor from many parallel
// subtests while reading features through it. Under `go test -race`
// this is the regression gate for the Warm worker pool and the
// mutex-guarded score/frequency caches; the features read concurrently
// must be bit-identical to a serially computed reference.
func TestWarmRaceHammer(t *testing.T) {
	k := scenarioKB()
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.3, SimilarThreshold: 0.9, MinCoreSize: 3})
	shared := NewExtractor(k, mx)
	serial := NewExtractor(k, mx)
	concepts := []string{"animal", "food"}

	type refKey struct{ concept, instance string }
	ref := map[refKey][]float64{}
	for _, c := range concepts {
		for _, e := range k.Instances(c) {
			ref[refKey{c, e}] = serial.Vector(c, e)
		}
	}

	for i := 0; i < 8; i++ {
		t.Run(fmt.Sprintf("warm-%d", i), func(t *testing.T) {
			t.Parallel()
			shared.Warm(concepts, 4)
			for _, c := range concepts {
				for _, e := range k.Instances(c) {
					got := shared.Vector(c, e)
					want := ref[refKey{c, e}]
					for fi := range want {
						if got[fi] != want[fi] {
							t.Fatalf("feature f%d of (%s,%s) = %v under concurrency, want %v",
								fi+1, c, e, got[fi], want[fi])
						}
					}
				}
			}
		})
	}
}
