package feature

import (
	"testing"

	"driftclean/internal/mutex"
)

func BenchmarkMatrix(b *testing.B) {
	k := scenarioKB()
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.3, SimilarThreshold: 0.9, MinCoreSize: 3})
	instances := k.Instances("animal")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh extractor per iteration: Matrix cost includes the walk and
		// frequency caches it fills, matching one analysis pass.
		x := NewExtractor(k, mx)
		x.Matrix("animal", instances)
	}
}
