package feature

import (
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/dp"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/kb"
	"driftclean/internal/mutex"
	"driftclean/internal/world"
)

// scenarioKB: animal core {chicken, dog, cat} repeated; food core
// {pork, beef, milk}; chicken triggers pork/beef under animal (drift),
// dog triggers cat (clean).
func scenarioKB() *kb.KB {
	k := kb.New()
	for i := 0; i < 6; i++ {
		k.AddExtraction(i, "animal", nil, []string{"chicken", "dog", "cat"}, nil, 1)
		k.AddExtraction(100+i, "food", nil, []string{"pork", "beef", "milk", "chicken"}, nil, 1)
	}
	k.AddExtraction(200, "animal", nil, []string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	k.AddExtraction(201, "animal", nil, []string{"cat", "dog"}, []string{"dog"}, 2)
	return k
}

func newExtractor(k *kb.KB) *Extractor {
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.3, SimilarThreshold: 0.9, MinCoreSize: 3})
	return NewExtractor(k, mx)
}

func TestF1CleanTriggerAboveDriftTrigger(t *testing.T) {
	x := newExtractor(scenarioKB())
	f1Dog := x.F1("animal", "dog")
	f1Chicken := x.F1("animal", "chicken")
	if f1Dog <= f1Chicken {
		t.Errorf("f1(dog)=%v should exceed f1(chicken)=%v: dog triggers core instances, chicken triggers food",
			f1Dog, f1Chicken)
	}
	if x.F1("animal", "cat") != 0 {
		t.Error("non-triggering instance must have f1 = 0")
	}
}

func TestF2CountsExclusiveMemberships(t *testing.T) {
	x := newExtractor(scenarioKB())
	// chicken is in both animal and food cores; animal/food share exactly
	// one core instance (chicken) so their cosine is low enough to be
	// exclusive under the test thresholds.
	if got := x.F2("animal", "chicken"); got != 1 {
		t.Errorf("f2(chicken under animal) = %v, want 1", got)
	}
	if got := x.F2("animal", "dog"); got != 0 {
		t.Errorf("f2(dog under animal) = %v, want 0", got)
	}
	// pork under animal: pork is also in food (exclusive) -> 1.
	if got := x.F2("animal", "pork"); got != 1 {
		t.Errorf("f2(pork under animal) = %v, want 1", got)
	}
}

func TestF3CoreAboveTriggered(t *testing.T) {
	x := newExtractor(scenarioKB())
	if x.F3("animal", "dog") <= x.F3("animal", "pork") {
		t.Errorf("f3(dog)=%v should exceed f3(pork)=%v", x.F3("animal", "dog"), x.F3("animal", "pork"))
	}
}

func TestF4CleanTriggerAboveDriftTrigger(t *testing.T) {
	x := newExtractor(scenarioKB())
	// dog's sub (cat) is core with a high walk score; chicken's subs
	// (pork, beef) are drift leaves with low scores.
	if x.F4("animal", "dog") <= x.F4("animal", "chicken") {
		t.Errorf("f4(dog)=%v should exceed f4(chicken)=%v",
			x.F4("animal", "dog"), x.F4("animal", "chicken"))
	}
	if x.F4("animal", "cat") != 0 {
		t.Error("non-triggering instance must have f4 = 0")
	}
}

func TestVectorAndMatrixShape(t *testing.T) {
	x := newExtractor(scenarioKB())
	v := x.Vector("animal", "chicken")
	if len(v) != Dim {
		t.Fatalf("Vector length %d, want %d", len(v), Dim)
	}
	m := x.Matrix("animal", []string{"chicken", "dog"})
	if len(m) != 2 || len(m[0]) != Dim {
		t.Fatalf("Matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[0][2] != x.F3("animal", "chicken") {
		t.Error("Matrix rows must align with instance order")
	}
}

func TestScoresCached(t *testing.T) {
	x := newExtractor(scenarioKB())
	s1 := x.Scores("animal")
	s2 := x.Scores("animal")
	if &s1 == nil || len(s1) != len(s2) {
		t.Fatal("scores changed between calls")
	}
}

// Fig 3's qualitative claims, on the full synthetic pipeline: averaged
// per class, non-DPs have the highest f1, Accidental DPs the lowest f3,
// and non-DPs the highest f4.
func TestFig3ShapeOnPipeline(t *testing.T) {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 3
	wcfg.InstancesPerConceptMin = 60
	wcfg.InstancesPerConceptMax = 120
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 30000
	c := corpus.Generate(w, ccfg)
	res := extract.Run(c, extract.DefaultConfig())
	mx := mutex.Analyze(res.KB, mutex.DefaultConfig())
	x := NewExtractor(res.KB, mx)
	oracle := eval.NewOracle(w, c)

	sum := map[dp.Label][]float64{}
	n := map[dp.Label]int{}
	for _, concept := range res.KB.Concepts() {
		for e, lbl := range oracle.TruthLabels(res.KB, concept) {
			v := x.Vector(concept, e)
			if sum[lbl] == nil {
				sum[lbl] = make([]float64, Dim)
			}
			for i := range v {
				sum[lbl][i] += v[i]
			}
			n[lbl]++
		}
	}
	if n[dp.NonDP] == 0 || n[dp.Intentional] == 0 || n[dp.Accidental] == 0 {
		t.Skipf("pipeline lacks a class: %v", n)
	}
	avg := func(l dp.Label, i int) float64 { return sum[l][i] / float64(n[l]) }
	t.Logf("avg f1: non=%.3f int=%.3f acc=%.3f", avg(dp.NonDP, 0), avg(dp.Intentional, 0), avg(dp.Accidental, 0))
	t.Logf("avg f2: non=%.3f int=%.3f acc=%.3f", avg(dp.NonDP, 1), avg(dp.Intentional, 1), avg(dp.Accidental, 1))
	t.Logf("avg f3: non=%.5f int=%.5f acc=%.5f", avg(dp.NonDP, 2), avg(dp.Intentional, 2), avg(dp.Accidental, 2))
	t.Logf("avg f4: non=%.5f int=%.5f acc=%.5f", avg(dp.NonDP, 3), avg(dp.Intentional, 3), avg(dp.Accidental, 3))

	if avg(dp.NonDP, 0) <= avg(dp.Accidental, 0) {
		t.Error("Fig 3a: non-DPs should average higher f1 than Accidental DPs")
	}
	if avg(dp.NonDP, 3) <= avg(dp.Accidental, 3) {
		t.Error("Fig 3d: non-DPs should average higher f4 than Accidental DPs")
	}
}

func TestF5WeakFraction(t *testing.T) {
	x := newExtractor(scenarioKB())
	// chicken's subs (pork, beef) each have count 1 under animal -> all weak.
	if got := x.F5("animal", "chicken"); got != 1 {
		t.Errorf("f5(chicken) = %v, want 1", got)
	}
	// dog's sub (cat) is core with count 7 -> not weak.
	if got := x.F5("animal", "dog"); got != 0 {
		t.Errorf("f5(dog) = %v, want 0", got)
	}
	if got := x.F5("animal", "cat"); got != 0 {
		t.Errorf("f5(non-trigger) = %v, want 0", got)
	}
}

func TestF6CrossMembershipFraction(t *testing.T) {
	x := newExtractor(scenarioKB())
	// chicken's subs pork/beef live under food (count 6 > crossEvidenceMin,
	// and 6 >= 2*1 here) and food is exclusive with animal.
	if got := x.F6("animal", "chicken"); got != 1 {
		t.Errorf("f6(chicken) = %v, want 1", got)
	}
	// dog's sub cat is only under animal.
	if got := x.F6("animal", "dog"); got != 0 {
		t.Errorf("f6(dog) = %v, want 0", got)
	}
}

func TestWarmParallelMatchesSerial(t *testing.T) {
	k := scenarioKB()
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.3, SimilarThreshold: 0.9, MinCoreSize: 3})
	serial := NewExtractor(k, mx)
	warm := NewExtractor(k, mx)
	warm.Warm([]string{"animal", "food"}, 4)
	for _, concept := range []string{"animal", "food"} {
		for _, e := range k.Instances(concept) {
			a := serial.Vector(concept, e)
			b := warm.Vector(concept, e)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Warm changed feature %d of (%s,%s): %v vs %v", i, concept, e, a[i], b[i])
				}
			}
		}
	}
}
