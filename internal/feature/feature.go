// Package feature computes the four DP-detection features of Sec 3.1,
// one per property of Sec 2.3:
//
//	f1 — cosine similarity between the frequency distribution of the
//	     instances triggered by e (sub(e)) and the distribution of the
//	     concept's first-iteration instances (Eq 1, Property 1);
//	f2 — the number of mutually exclusive concepts that also learned e
//	     (Eq 2, Property 2);
//	f3 — e's random-walk score under the concept (Eq 3, Property 3);
//	f4 — the average random-walk score of sub(e) (Eq 4, Property 4);
//	f5 — the fraction of sub(e) supported by weak evidence (at most
//	     WeakCount sentences). This is a second, direct operationalization
//	     of Property 4's statement that "an error extraction triggered by
//	     a DP is usually supported by weak evidence": at web scale the
//	     average sub-instance score captures it, but on a synthetic corpus
//	     the support-count fraction separates the classes much more
//	     sharply (non-DPs ≈ 0.1, Intentional ≈ 0.45, Accidental ≈ 0.9).
package feature

import (
	"sync"

	"driftclean/internal/kb"
	"driftclean/internal/mutex"
	"driftclean/internal/rank"
	"driftclean/internal/sparsevec"
)

// Dim is the raw feature dimensionality.
const Dim = 6

// WeakCount is the support-count ceiling below which a sub-instance
// counts as weakly evidenced for f5.
const WeakCount = 2

// Extractor computes feature vectors over one KB snapshot. Random-walk
// scores and reverse indexes are cached per concept; build a fresh
// Extractor after the KB changes.
type Extractor struct {
	kb *kb.KB
	mx *mutex.Analysis

	rwCfg rank.Config

	mu     sync.Mutex
	scores map[string]rank.Scores
	coreFq map[string]sparsevec.Vector

	// conceptsOf[e] lists concepts currently holding e (read-only after
	// construction).
	conceptsOf map[string][]string
}

// NewExtractor builds a feature extractor over the KB with discovered
// exclusions.
func NewExtractor(k *kb.KB, mx *mutex.Analysis) *Extractor {
	x := &Extractor{
		kb:         k,
		mx:         mx,
		rwCfg:      rank.DefaultConfig(),
		scores:     make(map[string]rank.Scores),
		coreFq:     make(map[string]sparsevec.Vector),
		conceptsOf: make(map[string][]string),
	}
	for _, p := range k.Pairs() {
		x.conceptsOf[p.Instance] = append(x.conceptsOf[p.Instance], p.Concept)
	}
	return x
}

// Scores returns (building on first use) the random-walk scores of a
// concept — also reused by the cleaning stage's Eq 21.
func (x *Extractor) Scores(concept string) rank.Scores {
	x.mu.Lock()
	if s, ok := x.scores[concept]; ok {
		x.mu.Unlock()
		return s
	}
	x.mu.Unlock()
	s := rank.RandomWalk(rank.BuildGraph(x.kb, concept), x.rwCfg)
	x.mu.Lock()
	x.scores[concept] = s
	x.mu.Unlock()
	return s
}

func (x *Extractor) classFreq(concept string) sparsevec.Vector {
	x.mu.Lock()
	if v, ok := x.coreFq[concept]; ok {
		x.mu.Unlock()
		return v
	}
	x.mu.Unlock()
	v := sparsevec.New()
	for _, e := range x.kb.Instances(concept) {
		v.Inc(e, float64(x.kb.Count(concept, e)))
	}
	x.mu.Lock()
	x.coreFq[concept] = v
	x.mu.Unlock()
	return v
}

// Warm precomputes the random-walk scores and class distributions of the
// given concepts with the given parallelism, after which feature
// extraction over those concepts is read-mostly and safe to run from
// multiple goroutines.
func (x *Extractor) Warm(concepts []string, parallelism int) {
	if parallelism < 1 {
		parallelism = 1
	}
	jobs := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				x.Scores(c)
				x.classFreq(c)
			}
		}()
	}
	for _, c := range concepts {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
}

// F1 is the Eq 1 distribution-similarity feature. The paper compares
// sub(e) against the first-iteration distribution E(C,1); at web scale
// those overlap heavily, but in our substrate triggered instances are by
// construction outside the core, so we compare against the concept's full
// learned frequency distribution instead — the same Property-1 signal
// (drifting errors are rare in the class overall), with Fig 2's "AVG"
// distribution as the reference.
func (x *Extractor) F1(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	subFreq := sparsevec.New()
	for _, s := range subs {
		subFreq.Inc(s, float64(x.kb.Count(concept, s)))
	}
	return sparsevec.Cosine(subFreq, x.classFreq(concept))
}

// F2 is the Eq 2 mutual-exclusion count feature. Membership under the
// exclusive concept must be well evidenced: a drifted KB cross-lists
// almost every instance somewhere with one or two stray sentences, and
// counting those would make f2 positive for nearly all instances instead
// of the polysemous few (paper Fig 3b expects most non-DPs at 0).
func (x *Extractor) F2(concept, instance string) float64 {
	n := 0
	for _, other := range x.conceptsOf[instance] {
		if x.mx.Exclusive(concept, other) && x.kb.Count(other, instance) > crossEvidenceMin {
			n++
		}
	}
	return float64(n)
}

// F3 is the Eq 3 random-walk score feature.
func (x *Extractor) F3(concept, instance string) float64 {
	return x.Scores(concept)[instance]
}

// F4 is the Eq 4 average sub-instance score feature.
func (x *Extractor) F4(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	scores := x.Scores(concept)
	var sum float64
	for _, s := range subs {
		sum += scores[s]
	}
	return sum / float64(len(subs))
}

// F5 is the weak-evidence fraction of sub(e) (Property 4, direct form).
func (x *Extractor) F5(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	weak := 0
	for _, s := range subs {
		if x.kb.Count(concept, s) <= WeakCount {
			weak++
		}
	}
	return float64(weak) / float64(len(subs))
}

// F6 is the fraction of sub(e) that is also learned under a concept
// mutually exclusive with this one — Property 2 applied at the
// sub-instance level (the continuous form of labeling Rule 1): a clean
// trigger's sub-instances live in this concept and its relatives only,
// while a DP's drifting sub-instances belong to the exclusive concept
// they were dragged in from.
func (x *Extractor) F6(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	cross := 0
	for _, s := range subs {
		here := x.kb.Count(concept, s)
		for _, other := range x.conceptsOf[s] {
			// Membership in the exclusive concept must be well evidenced
			// (strays are everywhere in a drifted KB) and must dominate
			// the support here — the scale-free signature of an instance
			// dragged across the boundary from its real home.
			if x.mx.Exclusive(concept, other) &&
				x.kb.Count(other, s) > crossEvidenceMin &&
				x.kb.Count(other, s) >= 2*here {
				cross++
				break
			}
		}
	}
	return float64(cross) / float64(len(subs))
}

// crossEvidenceMin is the minimum support under the exclusive concept for
// a sub-instance to count toward f6.
const crossEvidenceMin = 3

// Vector returns [f1 f2 f3 f4 f5 f6] for one instance.
func (x *Extractor) Vector(concept, instance string) []float64 {
	return []float64{
		x.F1(concept, instance),
		x.F2(concept, instance),
		x.F3(concept, instance),
		x.F4(concept, instance),
		x.F5(concept, instance),
		x.F6(concept, instance),
	}
}

// Matrix returns the feature vectors of the given instances, row-aligned
// with the input order.
func (x *Extractor) Matrix(concept string, instances []string) [][]float64 {
	out := make([][]float64, len(instances))
	for i, e := range instances {
		out[i] = x.Vector(concept, e)
	}
	return out
}
