// Package feature computes the four DP-detection features of Sec 3.1,
// one per property of Sec 2.3:
//
//	f1 — cosine similarity between the frequency distribution of the
//	     instances triggered by e (sub(e)) and the distribution of the
//	     concept's first-iteration instances (Eq 1, Property 1);
//	f2 — the number of mutually exclusive concepts that also learned e
//	     (Eq 2, Property 2);
//	f3 — e's random-walk score under the concept (Eq 3, Property 3);
//	f4 — the average random-walk score of sub(e) (Eq 4, Property 4);
//	f5 — the fraction of sub(e) supported by weak evidence (at most
//	     WeakCount sentences). This is a second, direct operationalization
//	     of Property 4's statement that "an error extraction triggered by
//	     a DP is usually supported by weak evidence": at web scale the
//	     average sub-instance score captures it, but on a synthetic corpus
//	     the support-count fraction separates the classes much more
//	     sharply (non-DPs ≈ 0.1, Intentional ≈ 0.45, Accidental ≈ 0.9).
package feature

import (
	"sync"

	"driftclean/internal/kb"
	"driftclean/internal/mutex"
	"driftclean/internal/par"
	"driftclean/internal/rank"
	"driftclean/internal/sparsevec"
)

// Dim is the raw feature dimensionality.
const Dim = 6

// WeakCount is the support-count ceiling below which a sub-instance
// counts as weakly evidenced for f5.
const WeakCount = 2

// Extractor computes feature vectors over one KB snapshot. Random-walk
// scores live in a rank.Cache — private by default, or shared across
// extractors and cleaning rounds via NewExtractorWithCache so a walk
// survives from one cleaning round to the next as long as its concept
// is untouched. Class frequency distributions are cached per concept
// with the same single-flight discipline.
type Extractor struct {
	kb *kb.KB
	mx *mutex.Analysis

	cache *rank.Cache

	mu     sync.Mutex
	coreFq map[string]*freqEntry

	// conceptsOf[e] lists concepts currently holding e (read-only after
	// construction).
	conceptsOf map[string][]string
}

type freqEntry struct {
	ready chan struct{}
	v     sparsevec.Vector
}

// NewExtractor builds a feature extractor over the KB with discovered
// exclusions, using a private score cache.
func NewExtractor(k *kb.KB, mx *mutex.Analysis) *Extractor {
	return NewExtractorWithCache(k, mx, rank.NewCache(rank.DefaultConfig()))
}

// NewExtractorWithCache builds a feature extractor that reads and fills
// the given shared score cache. The cache invalidation protocol
// (rank.Cache) keeps entries consistent across KB mutations; sharing one
// cache across the analysis passes of consecutive cleaning rounds means
// only the concepts a round touched are re-walked.
func NewExtractorWithCache(k *kb.KB, mx *mutex.Analysis, cache *rank.Cache) *Extractor {
	pairs := k.Pairs()
	counts := make(map[string]int, len(pairs))
	for _, p := range pairs {
		counts[p.Instance]++
	}
	// Per-instance concept lists carved out of one arena: each segment is
	// reserved (exactly sized, separately capped) at the instance's first
	// pair, so the appends below never allocate or cross segments.
	arena := make([]string, 0, len(pairs))
	conceptsOf := make(map[string][]string, len(counts))
	used := 0
	for _, p := range pairs {
		s, ok := conceptsOf[p.Instance]
		if !ok {
			s = arena[used:used : used+counts[p.Instance]]
			used += counts[p.Instance]
		}
		conceptsOf[p.Instance] = append(s, p.Concept)
	}
	return &Extractor{
		kb:         k,
		mx:         mx,
		cache:      cache,
		coreFq:     make(map[string]*freqEntry),
		conceptsOf: conceptsOf,
	}
}

// Scores returns (building on first use) the random-walk scores of a
// concept — also reused by the cleaning stage's Eq 21. Concurrent
// callers missing the cache coalesce onto one walk (single-flight).
func (x *Extractor) Scores(concept string) rank.Scores {
	return x.cache.Scores(x.kb, concept)
}

// classFreq returns the concept's full learned frequency distribution,
// computing it once per concept: concurrent first callers coalesce, the
// leader builds the vector and the rest wait for it.
func (x *Extractor) classFreq(concept string) sparsevec.Vector {
	x.mu.Lock()
	e, ok := x.coreFq[concept]
	if ok {
		x.mu.Unlock()
		<-e.ready
		return e.v
	}
	e = &freqEntry{ready: make(chan struct{})}
	x.coreFq[concept] = e
	x.mu.Unlock()
	v := sparsevec.New()
	for _, inst := range x.kb.Instances(concept) {
		v.Inc(inst, float64(x.kb.Count(concept, inst)))
	}
	e.v = v
	close(e.ready)
	return v
}

// Warm precomputes the random-walk scores and class distributions of the
// given concepts with the given parallelism, after which feature
// extraction over those concepts is read-mostly and safe to run from
// multiple goroutines. Concepts already warm in a shared cache cost a
// map hit.
func (x *Extractor) Warm(concepts []string, parallelism int) {
	if parallelism < 1 {
		parallelism = 1
	}
	par.ForChunked(len(concepts), parallelism, 1, func(i int) {
		x.Scores(concepts[i])
		x.classFreq(concepts[i])
	})
}

// F1 is the Eq 1 distribution-similarity feature. The paper compares
// sub(e) against the first-iteration distribution E(C,1); at web scale
// those overlap heavily, but in our substrate triggered instances are by
// construction outside the core, so we compare against the concept's full
// learned frequency distribution instead — the same Property-1 signal
// (drifting errors are rare in the class overall), with Fig 2's "AVG"
// distribution as the reference.
func (x *Extractor) F1(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	subFreq := sparsevec.New()
	for _, s := range subs {
		subFreq.Inc(s, float64(x.kb.Count(concept, s)))
	}
	return sparsevec.Cosine(subFreq, x.classFreq(concept))
}

// F2 is the Eq 2 mutual-exclusion count feature. Membership under the
// exclusive concept must be well evidenced: a drifted KB cross-lists
// almost every instance somewhere with one or two stray sentences, and
// counting those would make f2 positive for nearly all instances instead
// of the polysemous few (paper Fig 3b expects most non-DPs at 0).
func (x *Extractor) F2(concept, instance string) float64 {
	n := 0
	for _, other := range x.conceptsOf[instance] {
		if x.mx.Exclusive(concept, other) && x.kb.Count(other, instance) > crossEvidenceMin {
			n++
		}
	}
	return float64(n)
}

// F3 is the Eq 3 random-walk score feature.
func (x *Extractor) F3(concept, instance string) float64 {
	return x.Scores(concept)[instance]
}

// F4 is the Eq 4 average sub-instance score feature.
func (x *Extractor) F4(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	scores := x.Scores(concept)
	var sum float64
	for _, s := range subs {
		sum += scores[s]
	}
	return sum / float64(len(subs))
}

// F5 is the weak-evidence fraction of sub(e) (Property 4, direct form).
func (x *Extractor) F5(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	weak := 0
	for _, s := range subs {
		if x.kb.Count(concept, s) <= WeakCount {
			weak++
		}
	}
	return float64(weak) / float64(len(subs))
}

// F6 is the fraction of sub(e) that is also learned under a concept
// mutually exclusive with this one — Property 2 applied at the
// sub-instance level (the continuous form of labeling Rule 1): a clean
// trigger's sub-instances live in this concept and its relatives only,
// while a DP's drifting sub-instances belong to the exclusive concept
// they were dragged in from.
func (x *Extractor) F6(concept, instance string) float64 {
	subs := x.kb.SubInstances(concept, instance)
	if len(subs) == 0 {
		return 0
	}
	cross := 0
	for _, s := range subs {
		here := x.kb.Count(concept, s)
		for _, other := range x.conceptsOf[s] {
			// Membership in the exclusive concept must be well evidenced
			// (strays are everywhere in a drifted KB) and must dominate
			// the support here — the scale-free signature of an instance
			// dragged across the boundary from its real home.
			if x.mx.Exclusive(concept, other) &&
				x.kb.Count(other, s) > crossEvidenceMin &&
				x.kb.Count(other, s) >= 2*here {
				cross++
				break
			}
		}
	}
	return float64(cross) / float64(len(subs))
}

// crossEvidenceMin is the minimum support under the exclusive concept for
// a sub-instance to count toward f6.
const crossEvidenceMin = 3

// Vector returns [f1 f2 f3 f4 f5 f6] for one instance.
func (x *Extractor) Vector(concept, instance string) []float64 {
	return []float64{
		x.F1(concept, instance),
		x.F2(concept, instance),
		x.F3(concept, instance),
		x.F4(concept, instance),
		x.F5(concept, instance),
		x.F6(concept, instance),
	}
}

// Matrix returns the feature vectors of the given instances, row-aligned
// with the input order. The rows share one flat backing array — one
// allocation for the whole matrix instead of one per instance.
func (x *Extractor) Matrix(concept string, instances []string) [][]float64 {
	out := make([][]float64, len(instances))
	flat := make([]float64, len(instances)*Dim)
	for i, e := range instances {
		row := flat[i*Dim : (i+1)*Dim : (i+1)*Dim]
		row[0] = x.F1(concept, e)
		row[1] = x.F2(concept, e)
		row[2] = x.F3(concept, e)
		row[3] = x.F4(concept, e)
		row[4] = x.F5(concept, e)
		row[5] = x.F6(concept, e)
		out[i] = row
	}
	return out
}
