package feature

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"driftclean/internal/mutex"
	"driftclean/internal/rank"
)

// TestScoresSingleWalkUnderConcurrency is the regression test for the
// duplicated-work race: concurrent feature reads used to each run their
// own random walk when they missed the score cache at the same time.
// With single-flight semantics, N goroutines hammering M concepts must
// trigger exactly M walks.
func TestScoresSingleWalkUnderConcurrency(t *testing.T) {
	k := scenarioKB()
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.3, SimilarThreshold: 0.9, MinCoreSize: 3})
	concepts := []string{"animal", "food"}

	for trial := 0; trial < 20; trial++ {
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			cache := rank.NewCache(rank.DefaultConfig())
			var walks atomic.Int64
			cache.SetWalk(func(g *rank.Graph, cfg rank.Config) rank.Scores {
				walks.Add(1)
				return rank.RandomWalk(g, cfg)
			})
			x := NewExtractorWithCache(k, mx, cache)

			start := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					<-start
					c := concepts[i%len(concepts)]
					for _, e := range k.Instances(c) {
						x.F3(c, e)
						x.F4(c, e)
					}
				}(i)
			}
			close(start)
			wg.Wait()
			if got := walks.Load(); got != int64(len(concepts)) {
				t.Fatalf("ran %d walks for %d concepts under concurrency, want one walk per concept",
					got, len(concepts))
			}
		})
	}
}

// TestClassFreqSingleBuildUnderConcurrency pins the same single-flight
// guarantee for the class frequency distributions.
func TestClassFreqSingleBuildUnderConcurrency(t *testing.T) {
	k := scenarioKB()
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.3, SimilarThreshold: 0.9, MinCoreSize: 3})
	x := NewExtractor(k, mx)

	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = x.F1("animal", "dog")
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("concurrent F1 reads disagree: %v vs %v", results[i], results[0])
		}
	}
	x.mu.Lock()
	entries := len(x.coreFq)
	x.mu.Unlock()
	if entries != 1 {
		t.Fatalf("coreFq has %d entries after hammering one concept, want 1", entries)
	}
}
