package corpus

import (
	"strings"
	"testing"

	"driftclean/internal/hearst"
	"driftclean/internal/world"
)

func testWorld() *world.World {
	cfg := world.DefaultConfig()
	cfg.NumDomains = 3
	cfg.InstancesPerConceptMin = 40
	cfg.InstancesPerConceptMax = 80
	return world.New(cfg)
}

func smallCorpus(w *world.World, n int) *Corpus {
	cfg := DefaultConfig()
	cfg.NumSentences = n
	return Generate(w, cfg)
}

func TestGenerateCount(t *testing.T) {
	w := testWorld()
	c := smallCorpus(w, 2000)
	if c.Len() != 2000 {
		t.Fatalf("generated %d sentences, want 2000", c.Len())
	}
	if len(c.truths) != c.Len() {
		t.Fatalf("truth records %d, sentences %d", len(c.truths), c.Len())
	}
}

func TestDeterministic(t *testing.T) {
	w := testWorld()
	c1, c2 := smallCorpus(w, 500), smallCorpus(w, 500)
	for i := range c1.Sentences {
		if c1.Sentences[i].Text != c2.Sentences[i].Text {
			t.Fatalf("sentence %d differs between runs", i)
		}
	}
}

func TestSentencesDeduplicated(t *testing.T) {
	w := testWorld()
	c := smallCorpus(w, 3000)
	seen := map[string]bool{}
	for _, s := range c.Sentences {
		if seen[s.Text] {
			t.Fatalf("duplicate sentence: %q", s.Text)
		}
		seen[s.Text] = true
	}
}

func TestEverySentenceParses(t *testing.T) {
	w := testWorld()
	c := smallCorpus(w, 3000)
	for _, s := range c.Sentences {
		p, ok := hearst.ParseSentence(s.ID, s.Text)
		if !ok {
			t.Fatalf("sentence %d does not parse: %q", s.ID, s.Text)
		}
		truth := c.Truth(s.ID)
		switch truth.Kind {
		case Unambiguous:
			if p.Ambiguous() {
				t.Fatalf("unambiguous sentence parsed ambiguous: %q", s.Text)
			}
			if p.Candidates[0] != truth.TrueConcept {
				t.Fatalf("unambiguous candidate %q, truth %q", p.Candidates[0], truth.TrueConcept)
			}
		case Modifier:
			if !p.Ambiguous() {
				t.Fatalf("modifier sentence parsed unambiguous: %q", s.Text)
			}
			if p.Candidates[0] != truth.TrueConcept {
				t.Fatalf("modifier head candidate %q, truth %q", p.Candidates[0], truth.TrueConcept)
			}
		case Misparse:
			if !p.OtherThan {
				t.Fatalf("misparse sentence lost other-than flag: %q", s.Text)
			}
			if p.Candidates[0] == truth.TrueConcept {
				t.Fatalf("misparse sentence should not resolve to the true concept: %q", s.Text)
			}
		}
	}
}

func TestKindMixRoughlyMatchesConfig(t *testing.T) {
	w := testWorld()
	cfg := DefaultConfig()
	cfg.NumSentences = 8000
	c := Generate(w, cfg)
	counts := map[Kind]int{}
	for i := range c.Sentences {
		counts[c.Truth(i).Kind]++
	}
	// Deduplication drops proportionally more unambiguous sentences (their
	// Zipf-head sampling collides often), so the surviving mix skews above
	// the proposal fraction; assert a broad band around it.
	tot := float64(c.Len())
	modFrac := float64(counts[Modifier]) / tot
	if modFrac < cfg.FracModifier-0.15 || modFrac > cfg.FracModifier+0.25 {
		t.Errorf("modifier fraction %.3f too far from config %.3f", modFrac, cfg.FracModifier)
	}
	if counts[Misparse] == 0 {
		t.Error("no misparse sentences generated")
	}
	if counts[Unambiguous] == 0 {
		t.Error("no unambiguous sentences generated")
	}
}

func TestWrongInstancesAreActuallyWrong(t *testing.T) {
	w := testWorld()
	c := smallCorpus(w, 8000)
	found := 0
	for i := range c.Sentences {
		truth := c.Truth(i)
		for _, e := range truth.WrongInstances {
			found++
			if w.IsTrue(truth.TrueConcept, e) {
				t.Fatalf("instance %q marked wrong but is a true member of %q", e, truth.TrueConcept)
			}
			if !strings.Contains(c.Sentences[i].Text, e) {
				t.Fatalf("wrong instance %q not present in sentence %q", e, c.Sentences[i].Text)
			}
		}
	}
	if found == 0 {
		t.Error("no wrong-fact/typo noise generated in 8000 sentences")
	}
}

func TestUnmarkedInstancesAreCorrect(t *testing.T) {
	// In unambiguous and modifier sentences, instances not listed in
	// WrongInstances must be true members of the true concept.
	w := testWorld()
	c := smallCorpus(w, 4000)
	for i := range c.Sentences {
		truth := c.Truth(i)
		if truth.Kind == Misparse {
			continue
		}
		p, ok := hearst.ParseSentence(i, c.Sentences[i].Text)
		if !ok {
			t.Fatal("unparseable sentence")
		}
		wrong := map[string]bool{}
		for _, e := range truth.WrongInstances {
			wrong[e] = true
		}
		for _, e := range p.Instances {
			if wrong[e] {
				continue
			}
			if !w.IsTrue(truth.TrueConcept, e) {
				t.Fatalf("sentence %q: unmarked instance %q is not a member of %q",
					c.Sentences[i].Text, e, truth.TrueConcept)
			}
		}
	}
}

func TestMisparseInstancesBelongToTrueConcept(t *testing.T) {
	w := testWorld()
	c := smallCorpus(w, 8000)
	checked := 0
	for i := range c.Sentences {
		truth := c.Truth(i)
		if truth.Kind != Misparse {
			continue
		}
		checked++
		p, _ := hearst.ParseSentence(i, c.Sentences[i].Text)
		for _, e := range p.Instances {
			if !w.IsTrue(truth.TrueConcept, e) {
				t.Fatalf("misparse sentence %q instance %q not in true concept %q",
					c.Sentences[i].Text, e, truth.TrueConcept)
			}
			// The hazard: the parsed candidate is wrong for at least the
			// filtered instances.
			if w.IsTrue(p.Candidates[0], e) {
				t.Fatalf("misparse sentence %q instance %q is a member of the mis-attached concept %q",
					c.Sentences[i].Text, e, p.Candidates[0])
			}
		}
	}
	if checked == 0 {
		t.Skip("no misparse sentences in sample")
	}
}

func TestKindString(t *testing.T) {
	if Unambiguous.String() != "unambiguous" || Modifier.String() != "modifier" || Misparse.String() != "misparse" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	w := testWorld()
	c := Generate(w, Config{Seed: 3, NumSentences: 100})
	if c.Len() != 100 {
		t.Fatalf("got %d sentences", c.Len())
	}
}

// TestGenerateParallelismInvariant pins the sharding contract: the
// corpus — shard plan, shard streams and merged order — depends only on
// the configuration, never on how many workers generate it. 70000
// sentences spans multiple shards, so the cross-shard merge, dedup and
// top-up paths are all on the line.
func TestGenerateParallelismInvariant(t *testing.T) {
	w := testWorld()
	cfg := DefaultConfig()
	cfg.NumSentences = 70000

	cfg.Parallelism = 1
	serial := Generate(w, cfg)
	cfg.Parallelism = 8
	parallel := Generate(w, cfg)

	if serial.Len() != cfg.NumSentences || parallel.Len() != cfg.NumSentences {
		t.Fatalf("sizes: serial=%d parallel=%d, want exactly %d",
			serial.Len(), parallel.Len(), cfg.NumSentences)
	}
	for i := range serial.Sentences {
		if serial.Sentences[i] != parallel.Sentences[i] {
			t.Fatalf("sentence %d differs: %q vs %q",
				i, serial.Sentences[i].Text, parallel.Sentences[i].Text)
		}
	}
	for i := range serial.truths {
		st, pt := serial.truths[i], parallel.truths[i]
		if st.Kind != pt.Kind || st.TrueConcept != pt.TrueConcept ||
			len(st.WrongInstances) != len(pt.WrongInstances) {
			t.Fatalf("truth %d differs: %+v vs %+v", i, st, pt)
		}
	}
}

// TestGenerateSingleShardMatchesLegacyStream documents that corpora
// fitting in one shard continue the base setup stream: a corpus of size
// n is a strict prefix of a slightly larger one, which is what keeps
// pre-sharding seeds reproducible.
func TestGenerateSingleShardMatchesLegacyStream(t *testing.T) {
	w := testWorld()
	small := smallCorpus(w, 1500)
	big := smallCorpus(w, 2000)
	for i := range small.Sentences {
		if small.Sentences[i].Text != big.Sentences[i].Text {
			t.Fatalf("sentence %d not a stable prefix: %q vs %q",
				i, small.Sentences[i].Text, big.Sentences[i].Text)
		}
	}
}
