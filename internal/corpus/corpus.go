// Package corpus generates synthetic Hearst-pattern web sentences from a
// ground-truth world. It substitutes for the paper's 326M deduplicated
// "such as" sentences drawn from 1.68B web pages (DESIGN.md §1).
//
// The generator reproduces the four sentence classes the paper's
// introduction walks through:
//
//   - Unambiguous (S1): "animal such as dog , cat and pig ." — exactly one
//     candidate concept; parseable in the first iteration.
//   - Ambiguous modifier (S4): "animal from country such as giraffe and
//     lion ." — two candidate concepts; needs knowledge to disambiguate.
//   - Drift-inducing (S3): an ambiguous modifier sentence whose instances
//     include a polysemous bridge (chicken ∈ animal ∩ food), so a KB that
//     knows the bridge under the *distractor* concept will resolve the
//     sentence wrongly and learn drifting errors.
//   - Mis-parse hazard: "animal other_than dog_breed such as cat ." — the
//     naive parser attaches "such as" to the nearest noun phrase and
//     produces (cat isA dog_breed), the paper's Accidental-DP example.
//
// Wrong-fact noise ("country such as ... new_york ...") and typo noise
// complete the Accidental-DP sources. Every sentence carries hidden ground
// truth (true concept, known-wrong instances) that only the evaluation
// package may consult.
//
// Generation is sharded for parallelism without sacrificing determinism:
// the sentence budget is split into fixed-size shards, each with its own
// *rand.Rand stream derived from Config.Seed and the shard index, and the
// shards are merged (with global deduplication) in shard order. The shard
// decomposition depends only on the configuration — never on the worker
// count — so any Parallelism setting yields the same corpus. Corpora that
// fit in a single shard additionally reproduce the pre-sharding generator
// byte for byte, because shard 0 continues the setup stream.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"driftclean/internal/fault"
	"driftclean/internal/par"
	"driftclean/internal/world"
)

// Kind classifies how a sentence was generated.
type Kind int

const (
	// Unambiguous sentences have a single candidate concept (S1).
	Unambiguous Kind = iota
	// Modifier sentences have a concept-prep-concept head (S3/S4).
	Modifier
	// Misparse sentences use "other than" and will be parsed wrongly by
	// the naive Hearst parser.
	Misparse
)

// String names the sentence kind.
func (k Kind) String() string {
	switch k {
	case Unambiguous:
		return "unambiguous"
	case Modifier:
		return "modifier"
	case Misparse:
		return "misparse"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Truth is the hidden per-sentence ground truth. Only evaluation code may
// read it; the parser and extractor must work from Sentence.Text alone.
type Truth struct {
	Kind        Kind
	TrueConcept string
	// WrongInstances lists instance tokens in the sentence that are not
	// ground-truth members of TrueConcept (wrong facts and typos).
	WrongInstances []string
}

// Sentence is one generated Hearst-pattern sentence.
type Sentence struct {
	ID   int
	Text string
}

// Corpus is a deduplicated sentence collection with hidden ground truth.
type Corpus struct {
	Sentences []Sentence
	truths    []Truth
}

// Truth returns the hidden ground truth for a sentence ID. It must only be
// used by evaluation code.
func (c *Corpus) Truth(id int) Truth { return c.truths[id] }

// Len returns the number of sentences.
func (c *Corpus) Len() int { return len(c.Sentences) }

// Config controls corpus generation.
type Config struct {
	Seed         int64
	NumSentences int

	// Parallelism is the number of workers generating shards. It never
	// changes the corpus — the shard decomposition and every shard's rand
	// stream depend only on Seed and NumSentences — only how fast the
	// shards are produced. 1 forces serial generation; values below 1 use
	// every CPU.
	Parallelism int

	// FracModifier is the fraction of sentences with an ambiguous
	// concept-prep-concept head; FracMisparse the fraction with the
	// "other than" hazard. The remainder is unambiguous.
	FracModifier float64
	FracMisparse float64

	// BridgeProb is the probability that a modifier sentence includes a
	// polysemous bridge instance shared with the distractor concept
	// (turning S4 into the drift-inducing S3).
	BridgeProb float64

	// WrongFactProb is the per-sentence probability of replacing one
	// instance with a non-member from the same domain (the paper's
	// "New York isA Country" example). TypoProb is the per-sentence
	// probability of corrupting one instance's spelling.
	WrongFactProb float64
	TypoProb      float64

	// Fault, when non-nil, is consulted at the "corpus.shard" site once
	// per generated shard (chaos testing); nil is the production no-op.
	Fault *fault.Injector

	// InstancesMin/Max bound the instance list length per sentence.
	InstancesMin, InstancesMax int

	// ZipfS is the skew of concept popularity and of head-instance
	// popularity within a concept (must be > 1).
	ZipfS float64
	// HeadFrac is the fraction of a concept's instances eligible for
	// unambiguous sentences (the "head"). Polysemous bridge instances are
	// anchored to the head of exactly one of their concepts, reproducing
	// the paper's asymmetry: (chicken isA animal) is learned early while
	// (chicken isA food) is not, so a food sentence containing chicken
	// resolves to animal.
	HeadFrac float64
	// TailBias is the probability that each instance of a modifier
	// sentence is drawn from the concept's tail (instances outside the
	// head, unknown after iteration 1) rather than its head. High values
	// starve the true concept of disambiguation votes — the regime where
	// drift happens.
	TailBias float64

	// Patterns mixes the Hearst pattern variants used to render
	// sentences. Zero value selects DefaultPatternMix.
	Patterns PatternMix
}

// PatternMix weights the Hearst pattern variants. Weights need not sum
// to one; they are normalized. Mis-parse hazard sentences always use
// "such as" (the "other than" hazard is specific to it).
type PatternMix struct {
	SuchAs     float64 // "C such as e1 , e2 ."
	Including  float64 // "C including e1 , e2 ."
	Especially float64 // "C , especially e1 and e2 ."
	AndOther   float64 // "e1 , e2 and other C ."
}

// DefaultPatternMix reflects the rough web prevalence of the patterns:
// "such as" dominates, the others contribute meaningful minorities.
func DefaultPatternMix() PatternMix {
	return PatternMix{SuchAs: 0.70, Including: 0.15, Especially: 0.05, AndOther: 0.10}
}

func (m PatternMix) total() float64 { return m.SuchAs + m.Including + m.Especially + m.AndOther }

// DefaultConfig returns generation parameters tuned so the extraction
// exhibits the paper's Fig 5(a) shape: iteration-1 precision above 90%
// decaying below ~55% as iterations proceed.
func DefaultConfig() Config {
	return Config{
		Seed:          7,
		NumSentences:  120000,
		FracModifier:  0.55,
		FracMisparse:  0.002,
		BridgeProb:    0.6,
		WrongFactProb: 0.004,
		TypoProb:      0.001,
		InstancesMin:  2,
		InstancesMax:  5,
		ZipfS:         1.12,
		HeadFrac:      0.45,
		TailBias:      0.8,
		Patterns:      DefaultPatternMix(),
	}
}

// shardTargetSize is the sentence budget of one generation shard. It is
// a corpus-shape constant, not a tuning knob: changing it reshards the
// budget and therefore changes the generated corpus.
const shardTargetSize = 32768

// Generate builds a deduplicated corpus over w. The same (world, Config)
// always yields the same corpus, at any Parallelism.
func Generate(w *world.World, cfg Config) *Corpus {
	if cfg.NumSentences <= 0 {
		cfg.NumSentences = DefaultConfig().NumSentences
	}
	if cfg.InstancesMin < 1 {
		cfg.InstancesMin = 2
	}
	if cfg.InstancesMax < cfg.InstancesMin {
		cfg.InstancesMax = cfg.InstancesMin + 3
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.35
	}
	if cfg.HeadFrac <= 0 || cfg.HeadFrac > 1 {
		cfg.HeadFrac = DefaultConfig().HeadFrac
	}
	if cfg.TailBias <= 0 || cfg.TailBias > 1 {
		cfg.TailBias = DefaultConfig().TailBias
	}
	if cfg.Patterns.total() <= 0 {
		cfg.Patterns = DefaultPatternMix()
	}
	g := newGenerator(w, cfg)
	return g.run()
}

// generator holds the immutable sampling substrate shared by every
// shard: popularity orders, head/tail splits, bridge anchors and
// distractor lists. It is built once from the base seed and only read
// afterwards, so shards may consult it concurrently.
type generator struct {
	w   *world.World
	cfg Config
	rng *rand.Rand // base stream; consumed by setup, then owned by shard 0

	concepts    []*world.Concept // popularity order
	conceptZipf *rand.Zipf       // bound to the base stream (shard 0)

	heads      map[int][]string         // concept ID -> head instances (popularity order)
	tails      map[int][]string         // concept ID -> non-head instances
	headZipf   map[int]*rand.Zipf       // concept ID -> head sampler (base stream)
	distractor map[int][]int            // concept ID -> distractor concept IDs (same domain)
	bridges    map[[2]int][]string      // (concept C, distractor D) -> shared instances anchored at D
	subOf      map[int][]*world.Concept // concept ID -> its sub-concepts
	parents    []*world.Concept         // concepts that have sub-concepts
	domainPool map[int][]string         // domain -> all instances (for wrong facts)
	anchor     map[string]int           // polysemous instance -> concept ID whose head carries it
}

func newGenerator(w *world.World, cfg Config) *generator {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{
		w:          w,
		cfg:        cfg,
		rng:        rng,
		heads:      make(map[int][]string),
		tails:      make(map[int][]string),
		headZipf:   make(map[int]*rand.Zipf),
		distractor: make(map[int][]int),
		bridges:    make(map[[2]int][]string),
		subOf:      make(map[int][]*world.Concept),
		domainPool: make(map[int][]string),
		anchor:     make(map[string]int),
	}
	// Popularity order over concepts: shuffle, then Zipf over the order.
	g.concepts = make([]*world.Concept, len(w.Concepts))
	copy(g.concepts, w.Concepts)
	rng.Shuffle(len(g.concepts), func(i, j int) {
		g.concepts[i], g.concepts[j] = g.concepts[j], g.concepts[i]
	})
	// Keep tail concepts in the tail of the popularity order.
	sort.SliceStable(g.concepts, func(i, j int) bool {
		return !g.concepts[i].Tail && g.concepts[j].Tail
	})
	g.conceptZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(g.concepts)-1))

	for _, c := range w.Concepts {
		if c.ParentOf >= 0 {
			g.subOf[c.ParentOf] = append(g.subOf[c.ParentOf], c)
		}
		g.domainPool[c.Domain] = append(g.domainPool[c.Domain], c.Instances...)
	}
	for _, c := range w.Concepts {
		if len(g.subOf[c.ID]) > 0 {
			g.parents = append(g.parents, c)
		}
	}
	// Anchor each polysemous instance to exactly one of its concepts:
	// it will be head (popular, learned in iteration 1) there and tail
	// everywhere else — the asymmetry behind the paper's S3 drift.
	// Only instances shared across *mutually exclusive* concepts are
	// anchored; instances shared with an alias or sub-concept stay
	// head-eligible everywhere so highly-similar concepts keep their core
	// overlap (Sec 3.2.1).
	for _, c := range w.Concepts {
		for _, e := range c.Instances {
			if _, done := g.anchor[e]; done {
				continue
			}
			if !w.IsPolysemous(e) {
				continue
			}
			ids := w.ConceptsOf(e)
			g.anchor[e] = ids[rng.Intn(len(ids))]
		}
	}
	for _, c := range w.Concepts {
		// Heads: anchored bridges first, then a random fill of unshared
		// instances up to HeadFrac of the class.
		var head, tail []string
		var rest []string
		for _, e := range c.Instances {
			if a, poly := g.anchor[e]; poly {
				if a == c.ID {
					head = append(head, e)
				} else {
					tail = append(tail, e)
				}
				continue
			}
			rest = append(rest, e)
		}
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		nHead := int(float64(len(c.Instances)) * cfg.HeadFrac)
		if nHead < 1 {
			nHead = 1
		}
		for _, e := range rest {
			if len(head) < nHead {
				head = append(head, e)
			} else {
				tail = append(tail, e)
			}
		}
		if len(tail) == 0 && len(head) > 1 {
			tail = append(tail, head[len(head)-1])
			head = head[:len(head)-1]
		}
		g.heads[c.ID] = head
		g.tails[c.ID] = tail
		g.headZipf[c.ID] = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(head)-1))

		// Distractors: same-domain concepts; those holding an anchored
		// bridge with c first, since only they can induce S3-style drift.
		var withBridge, without []int
		for _, otherID := range w.Domains[c.Domain] {
			if otherID == c.ID {
				continue
			}
			other := w.Concepts[otherID]
			var anchored []string
			for _, e := range c.Instances {
				if other.Has(e) && g.anchor[e] == otherID {
					anchored = append(anchored, e)
				}
			}
			if len(anchored) > 0 {
				withBridge = append(withBridge, otherID)
				g.bridges[[2]int{c.ID, otherID}] = anchored
			} else {
				without = append(without, otherID)
			}
		}
		g.distractor[c.ID] = append(withBridge, without...)
	}
	return g
}

// sampler is the per-shard draw state: its own rand stream and Zipf
// samplers over the shared immutable setup. Shard 0's sampler continues
// the base stream (so single-shard corpora match the pre-sharding
// generator exactly); every other shard derives an independent stream
// from the seed and its index.
type sampler struct {
	g           *generator
	rng         *rand.Rand
	conceptZipf *rand.Zipf
	headZipf    map[int]*rand.Zipf
}

// samplerFor builds the draw state of one shard index. Index 0 adopts
// the base stream; other indices get streams derived via shardSeed.
func (g *generator) samplerFor(shard int) *sampler {
	if shard == 0 {
		return &sampler{g: g, rng: g.rng, conceptZipf: g.conceptZipf, headZipf: g.headZipf}
	}
	rng := rand.New(rand.NewSource(shardSeed(g.cfg.Seed, shard)))
	return &sampler{
		g:           g,
		rng:         rng,
		conceptZipf: rand.NewZipf(rng, g.cfg.ZipfS, 1, uint64(len(g.concepts)-1)),
		headZipf:    make(map[int]*rand.Zipf),
	}
}

// headSampler returns (building lazily if needed) this shard's Zipf
// sampler over a concept's head. Construction draws nothing from the
// stream, so laziness does not perturb determinism.
func (s *sampler) headSampler(c *world.Concept) *rand.Zipf {
	z, ok := s.headZipf[c.ID]
	if !ok {
		z = rand.NewZipf(s.rng, s.g.cfg.ZipfS, 1, uint64(len(s.g.heads[c.ID])-1))
		s.headZipf[c.ID] = z
	}
	return z
}

// shardSeedSalt decorrelates derived shard streams from the base
// stream's seed space. Like Seed itself, it is calibrated: among
// candidate salts, this one keeps the default multi-shard corpora on
// the paper's Fig 5(a) shape (iteration-1 precision high, deep decay).
const shardSeedSalt = 0x4

// shardSeed derives shard i's rand seed from the base seed with a
// SplitMix64 finalizer, so shard streams are decorrelated from the base
// stream and from each other.
func shardSeed(seed int64, shard int) int64 {
	z := (uint64(seed) ^ shardSeedSalt) + 0x9e3779b97f4a7c15*uint64(shard)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// shardPlan returns the per-shard base quotas: fixed-size shards of
// shardTargetSize sentences, the last one truncated. The plan depends
// only on the sentence budget.
func shardPlan(n int) []int {
	numShards := (n + shardTargetSize - 1) / shardTargetSize
	quotas := make([]int, numShards)
	for i := range quotas {
		q := shardTargetSize
		if rem := n - i*shardTargetSize; rem < q {
			q = rem
		}
		quotas[i] = q
	}
	return quotas
}

// shardOutput is one shard's candidate sentences, locally deduplicated,
// in draw order.
type shardOutput struct {
	texts  []string
	truths []Truth
}

func (g *generator) run() *Corpus {
	n := g.cfg.NumSentences
	quotas := shardPlan(n)
	outs := make([]shardOutput, len(quotas))
	// One shard per claim: shards are coarse, equal-cost units.
	par.ForChunked(len(quotas), par.Workers(g.cfg.Parallelism), 1, func(i int) {
		outs[i] = g.generateShard(g.samplerFor(i), quotas[i])
	})

	// Merge in shard order under global deduplication. Pass 1 takes up to
	// each shard's base quota so every shard contributes its share of the
	// budget; pass 2 tops up from the shards' over-generated leftovers.
	c := &Corpus{}
	seen := make(map[string]struct{}, n)
	add := func(text string, truth Truth) bool {
		if len(c.Sentences) >= n {
			return false
		}
		if _, dup := seen[text]; dup {
			return true
		}
		seen[text] = struct{}{}
		id := len(c.Sentences)
		c.Sentences = append(c.Sentences, Sentence{ID: id, Text: text})
		c.truths = append(c.truths, truth)
		return true
	}
	next := make([]int, len(outs)) // per-shard cursor into its candidates
	for i := range outs {
		taken := 0
		for next[i] < len(outs[i].texts) && taken < quotas[i] && len(c.Sentences) < n {
			if _, dup := seen[outs[i].texts[next[i]]]; !dup {
				taken++
			}
			add(outs[i].texts[next[i]], outs[i].truths[next[i]])
			next[i]++
		}
	}
	for i := range outs {
		for next[i] < len(outs[i].texts) && len(c.Sentences) < n {
			add(outs[i].texts[next[i]], outs[i].truths[next[i]])
			next[i]++
		}
	}

	// Sequential top-up from a dedicated derived stream for the rare case
	// where cross-shard duplication exhausted every shard's overage.
	if len(c.Sentences) < n {
		s := g.samplerFor(len(quotas)) // index past every shard: unused stream
		deficit := n - len(c.Sentences)
		for attempts := 0; len(c.Sentences) < n && attempts < 8*deficit+64; attempts++ {
			text, truth, ok := s.sentence()
			if !ok {
				continue
			}
			add(text, truth)
		}
	}
	return c
}

// generateShard draws one shard's candidates: locally unique sentences
// up to the base quota plus an overage that absorbs cross-shard
// duplicate losses during the merge.
func (g *generator) generateShard(s *sampler, quota int) shardOutput {
	g.cfg.Fault.Check("corpus.shard")
	target := quota + quota/8 + 8
	maxAttempts := target * 4
	out := shardOutput{
		texts:  make([]string, 0, target),
		truths: make([]Truth, 0, target),
	}
	seen := make(map[string]struct{}, target)
	for attempts := 0; len(out.texts) < target && attempts < maxAttempts; attempts++ {
		text, truth, ok := s.sentence()
		if !ok {
			continue
		}
		if _, dup := seen[text]; dup {
			continue // the paper deduplicates sentences; so do we
		}
		seen[text] = struct{}{}
		out.texts = append(out.texts, text)
		out.truths = append(out.truths, truth)
	}
	return out
}

// sentence produces one sentence with its hidden truth.
func (s *sampler) sentence() (string, Truth, bool) {
	concept := s.g.concepts[s.conceptZipf.Uint64()]
	r := s.rng.Float64()
	switch {
	case r < s.g.cfg.FracMisparse:
		return s.misparseSentence(concept)
	case r < s.g.cfg.FracMisparse+s.g.cfg.FracModifier:
		return s.modifierSentence(concept)
	default:
		return s.unambiguousSentence(concept)
	}
}

func (s *sampler) unambiguousSentence(c *world.Concept) (string, Truth, bool) {
	insts := s.sampleHead(c, s.instanceCount())
	if len(insts) == 0 {
		return "", Truth{}, false
	}
	truth := Truth{Kind: Unambiguous, TrueConcept: c.Name}
	insts = s.injectNoise(c, insts, &truth)
	return s.render(c.Name, insts, true), truth, true
}

func (s *sampler) modifierSentence(c *world.Concept) (string, Truth, bool) {
	ds := s.g.distractor[c.ID]
	if len(ds) == 0 {
		return s.unambiguousSentence(c)
	}
	// Prefer a bridge-sharing distractor when available.
	d := s.g.w.Concepts[ds[s.rng.Intn(len(ds))]]
	bridge := s.g.bridges[[2]int{c.ID, d.ID}]

	n := s.instanceCount()
	insts := s.sampleMixed(c, n)
	if len(insts) == 0 {
		return "", Truth{}, false
	}
	if len(bridge) > 0 && s.rng.Float64() < s.g.cfg.BridgeProb {
		// Swap one instance for a polysemous bridge known only under the
		// distractor — the S3 construction.
		insts[s.rng.Intn(len(insts))] = bridge[s.rng.Intn(len(bridge))]
		insts = dedupStrings(insts)
	}
	truth := Truth{Kind: Modifier, TrueConcept: c.Name}
	insts = s.injectNoise(c, insts, &truth)
	head := c.Name + " " + preposition(s.rng) + " " + d.Name
	return s.render(head, insts, true), truth, true
}

func (s *sampler) misparseSentence(c *world.Concept) (string, Truth, bool) {
	// "C other_than S such as e..." where e ∈ C but e ∉ S, with S a
	// sub-concept of C (the paper's "animals other than dogs such as
	// cats"). The naive parser attaches to S, creating (e isA S)
	// accidental errors. Instance lists are short: accidental mistakes
	// carry weak evidence (Property 3). The hazard only exists for
	// concepts with sub-concepts, so re-target the sentence to one.
	if len(s.g.subOf[c.ID]) == 0 {
		if len(s.g.parents) == 0 {
			return s.unambiguousSentence(c)
		}
		c = s.g.parents[s.rng.Intn(len(s.g.parents))]
	}
	subs := s.g.subOf[c.ID]
	sub := subs[s.rng.Intn(len(subs))]
	insts := s.sampleUniform(c, 1+s.rng.Intn(2))
	filtered := insts[:0]
	for _, e := range insts {
		if !sub.Has(e) {
			filtered = append(filtered, e)
		}
	}
	if len(filtered) == 0 {
		return "", Truth{}, false
	}
	truth := Truth{Kind: Misparse, TrueConcept: c.Name}
	head := c.Name + " other than " + sub.Name
	return s.render(head, filtered, false), truth, true
}

// injectNoise applies wrong-fact and typo noise, recording the wrong
// instances in truth.
func (s *sampler) injectNoise(c *world.Concept, insts []string, truth *Truth) []string {
	if s.rng.Float64() < s.g.cfg.WrongFactProb {
		pool := s.g.domainPool[c.Domain]
		for tries := 0; tries < 8; tries++ {
			e := pool[s.rng.Intn(len(pool))]
			if !c.Has(e) && !containsStr(insts, e) {
				insts[s.rng.Intn(len(insts))] = e
				truth.WrongInstances = append(truth.WrongInstances, e)
				break
			}
		}
	}
	if s.rng.Float64() < s.g.cfg.TypoProb {
		i := s.rng.Intn(len(insts))
		if !containsStr(truth.WrongInstances, insts[i]) {
			typo := corrupt(s.rng, insts[i])
			if !s.g.w.IsTrue(c.Name, typo) {
				insts[i] = typo
				truth.WrongInstances = append(truth.WrongInstances, typo)
			}
		}
	}
	return dedupStrings(insts)
}

func (s *sampler) instanceCount() int {
	span := s.g.cfg.InstancesMax - s.g.cfg.InstancesMin + 1
	return s.g.cfg.InstancesMin + s.rng.Intn(span)
}

// sampleHead draws n distinct head instances via the concept's Zipf sampler.
func (s *sampler) sampleHead(c *world.Concept, n int) []string {
	head := s.g.heads[c.ID]
	z := s.headSampler(c)
	seen := map[string]struct{}{}
	out := make([]string, 0, n)
	for tries := 0; len(out) < n && tries < n*6; tries++ {
		e := head[z.Uint64()]
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// sampleUniform draws n distinct instances uniformly from the full
// ground-truth list.
func (s *sampler) sampleUniform(c *world.Concept, n int) []string {
	if n > len(c.Instances) {
		n = len(c.Instances)
	}
	seen := map[int]struct{}{}
	out := make([]string, 0, n)
	for tries := 0; len(out) < n && tries < n*6; tries++ {
		i := s.rng.Intn(len(c.Instances))
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, c.Instances[i])
	}
	return out
}

// sampleMixed draws n distinct instances, each from the concept's tail
// with probability TailBias and from its head otherwise. Tail-heavy
// ambiguous sentences are the ones the true concept cannot vouch for —
// the drift-prone regime.
func (s *sampler) sampleMixed(c *world.Concept, n int) []string {
	head, tail := s.g.heads[c.ID], s.g.tails[c.ID]
	seen := map[string]struct{}{}
	out := make([]string, 0, n)
	for tries := 0; len(out) < n && tries < n*8; tries++ {
		var e string
		if len(tail) > 0 && (len(head) == 0 || s.rng.Float64() < s.g.cfg.TailBias) {
			e = tail[s.rng.Intn(len(tail))]
		} else {
			e = head[s.rng.Intn(len(head))]
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// render writes the sentence in one of the Hearst pattern variants.
// allowAlt=false pins the "such as" form (used by the mis-parse hazard,
// whose "other than" flaw is such-as specific).
func (s *sampler) render(head string, insts []string, allowAlt bool) string {
	pattern := "such as"
	if allowAlt {
		pattern = s.pickPattern()
	}
	// The lead-in draw is hoisted out of the pattern branches (it fires
	// for every pattern except "and other", so the RNG sequence is
	// unchanged) to size the builder: one allocation per sentence.
	var lead string
	if pattern != "and other" {
		lead = leadIn(s.rng)
	}
	size := len(lead) + len(head) + len(" , especially ") + len(" .")
	for _, e := range insts {
		size += len(e) + len(" and other ")
	}
	var b strings.Builder
	b.Grow(size)
	writeList := func() {
		for i, e := range insts {
			switch {
			case i == 0:
			case i == len(insts)-1:
				b.WriteString(" and ")
			default:
				b.WriteString(" , ")
			}
			b.WriteString(e)
		}
	}
	switch pattern {
	case "and other":
		// Reversed: "e1 , e2 and other C ." — no lead-in.
		writeList()
		b.WriteString(" and other ")
		b.WriteString(head)
	case "especially":
		b.WriteString(lead)
		b.WriteString(head)
		b.WriteString(" , especially ")
		writeList()
	case "including":
		b.WriteString(lead)
		b.WriteString(head)
		b.WriteString(" including ")
		writeList()
	default:
		b.WriteString(lead)
		b.WriteString(head)
		b.WriteString(" such as ")
		writeList()
	}
	b.WriteString(" .")
	return b.String()
}

func (s *sampler) pickPattern() string {
	m := s.g.cfg.Patterns
	r := s.rng.Float64() * m.total()
	switch {
	case r < m.SuchAs:
		return "such as"
	case r < m.SuchAs+m.Including:
		return "including"
	case r < m.SuchAs+m.Including+m.Especially:
		return "especially"
	default:
		return "and other"
	}
}

var leadIns = []string{"", "", "", "many ", "common ", "popular ", "various "}

func leadIn(rng *rand.Rand) string { return leadIns[rng.Intn(len(leadIns))] }

var prepositions = []string{"from", "in", "of"}

func preposition(rng *rand.Rand) string { return prepositions[rng.Intn(len(prepositions))] }

// corrupt introduces a single-character typo.
func corrupt(rng *rand.Rand, s string) string {
	if len(s) < 2 {
		return s + "x"
	}
	b := []byte(s)
	i := rng.Intn(len(b))
	b[i] = byte('a' + rng.Intn(26))
	if string(b) == s {
		return s + "x"
	}
	return string(b)
}

func dedupStrings(xs []string) []string {
	seen := make(map[string]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
