package kb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomKB builds a random but structurally valid KB: core extractions
// first, then triggered extractions whose triggers are existing pairs.
func randomKB(seed int64) *KB {
	rng := rand.New(rand.NewSource(seed))
	k := New()
	concepts := []string{"c0", "c1", "c2"}
	instOf := func(i int) string { return fmt.Sprintf("e%d", i) }
	nInst := 12 + rng.Intn(20)
	// Core extractions.
	for s := 0; s < 8; s++ {
		c := concepts[rng.Intn(len(concepts))]
		var insts []string
		for j := 0; j < 1+rng.Intn(3); j++ {
			insts = append(insts, instOf(rng.Intn(nInst)))
		}
		k.AddExtraction(s, c, nil, dedupStr(insts), nil, 1)
	}
	// Triggered extractions.
	for s := 8; s < 40; s++ {
		c := concepts[rng.Intn(len(concepts))]
		known := k.Instances(c)
		if len(known) == 0 {
			continue
		}
		trigger := known[rng.Intn(len(known))]
		var insts []string
		for j := 0; j < 1+rng.Intn(3); j++ {
			insts = append(insts, instOf(rng.Intn(nInst)))
		}
		insts = append(insts, trigger)
		k.AddExtraction(s, c, nil, dedupStr(insts), []string{trigger}, 2+rng.Intn(3))
	}
	return k
}

func dedupStr(xs []string) []string {
	seen := map[string]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// checkInvariants asserts the structural invariants every KB state must
// satisfy. Note that an *active* extraction may reference a force-removed
// pair: Sec 4.2 removes pairs, not the sentences that merely contain
// them — only extractions whose triggers are all gone roll back.
func checkInvariants(k *KB) error {
	for _, p := range k.Pairs() {
		info := k.Info(p.Concept, p.Instance)
		if info.Count <= 0 {
			return fmt.Errorf("active pair %v with count %d", p, info.Count)
		}
		// Count never exceeds the active supporting extractions (forced
		// removals can push it below, never above).
		active := 0
		for _, exID := range info.Extractions {
			if k.Extraction(exID).Active {
				active++
			}
		}
		if info.Count > active {
			return fmt.Errorf("pair %v count %d above %d active extractions", p, info.Count, active)
		}
	}
	// The Sec 4.2 fixpoint: no active triggered extraction may survive
	// with every trigger removed.
	for id := 0; id < k.NumExtractions(); id++ {
		ex := k.Extraction(id)
		if !ex.Active || len(ex.Triggers) == 0 {
			continue
		}
		alive := false
		for _, t := range ex.Triggers {
			if k.Has(ex.Concept, t) {
				alive = true
				break
			}
		}
		if !alive {
			return fmt.Errorf("active extraction %d has no living trigger", id)
		}
	}
	return nil
}

// Property: invariants hold after construction and after arbitrary
// removal cascades.
func TestQuickInvariantsUnderRemoval(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		k := randomKB(seed)
		if err := checkInvariants(k); err != nil {
			t.Log(err)
			return false
		}
		pairs := k.Pairs()
		if len(pairs) == 0 {
			return true
		}
		k.RemovePairs([]Pair{pairs[int(which)%len(pairs)]})
		if err := checkInvariants(k); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: removing all pairs empties the KB entirely.
func TestQuickTotalRemovalEmptiesKB(t *testing.T) {
	f := func(seed int64) bool {
		k := randomKB(seed)
		k.RemovePairs(k.Pairs())
		return k.NumPairs() == 0 && checkInvariants(k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: RemovePairs is idempotent — a second identical call changes
// nothing.
func TestQuickRemovalIdempotent(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		k := randomKB(seed)
		pairs := k.Pairs()
		if len(pairs) == 0 {
			return true
		}
		target := []Pair{pairs[int(which)%len(pairs)]}
		k.RemovePairs(target)
		statsAfter := k.Stats()
		res := k.RemovePairs(target)
		return len(res.PairsRemoved) == 0 && k.Stats() == statsAfter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: persistence round-trips commute with removal — removing a
// pair before saving equals removing it after loading.
func TestQuickPersistCommutesWithRemoval(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		k1 := randomKB(seed)
		k2 := roundTripQuick(k1)
		pairs := k1.Pairs()
		if len(pairs) == 0 {
			return true
		}
		target := []Pair{pairs[int(which)%len(pairs)]}
		k1.RemovePairs(target)
		k2.RemovePairs(target)
		if k1.NumPairs() != k2.NumPairs() || k1.Stats() != k2.Stats() {
			return false
		}
		return checkInvariants(k2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func roundTripQuick(k *KB) *KB {
	var buf bytes.Buffer
	if _, err := k.WriteTo(&buf); err != nil {
		panic(err)
	}
	got, err := Read(&buf)
	if err != nil {
		panic(err)
	}
	return got
}
