package kb

import (
	"strings"
	"testing"
)

// chainedKB: chicken (core) -> pork (iter 2) -> milk (iter 3).
func chainedKB() *KB {
	k := New()
	k.AddExtraction(10, "animal", nil, []string{"chicken", "dog"}, nil, 1)
	k.AddExtraction(11, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	k.AddExtraction(12, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	return k
}

func TestExplainCorePair(t *testing.T) {
	k := chainedKB()
	ex, ok := k.Explain("animal", "chicken", 0)
	if !ok {
		t.Fatal("chicken not explainable")
	}
	if ex.Count != 1 || len(ex.Supports) != 1 {
		t.Fatalf("explanation = %+v", ex)
	}
	s := ex.Supports[0]
	if len(s.Triggers) != 0 || s.Iteration != 1 {
		t.Errorf("core support = %+v", s)
	}
	if len(s.Chain) != 1 || !s.Chain[0].Core {
		t.Errorf("core chain = %+v", s.Chain)
	}
}

func TestExplainTracesChainToCore(t *testing.T) {
	k := chainedKB()
	ex, ok := k.Explain("animal", "milk", 0)
	if !ok {
		t.Fatal("milk not explainable")
	}
	chain := ex.Supports[0].Chain
	if len(chain) != 3 {
		t.Fatalf("chain = %+v, want milk<-pork<-chicken", chain)
	}
	want := []string{"milk", "pork", "chicken"}
	for i, link := range chain {
		if link.Pair.Instance != want[i] {
			t.Errorf("chain[%d] = %s, want %s", i, link.Pair.Instance, want[i])
		}
	}
	if !chain[2].Core || chain[0].Core {
		t.Error("chain core flags wrong")
	}
}

func TestExplainMissingPair(t *testing.T) {
	k := chainedKB()
	if _, ok := k.Explain("animal", "ghost", 0); ok {
		t.Error("unknown pair must not be explainable")
	}
	k.RemovePairs([]Pair{{"animal", "milk"}})
	if _, ok := k.Explain("animal", "milk", 0); ok {
		t.Error("removed pair must not be explainable")
	}
}

func TestExplainMaxSupports(t *testing.T) {
	k := New()
	for i := 0; i < 5; i++ {
		k.AddExtraction(i, "c", nil, []string{"e"}, nil, 1)
	}
	ex, _ := k.Explain("c", "e", 2)
	if len(ex.Supports) != 2 || ex.Count != 5 {
		t.Errorf("supports=%d count=%d", len(ex.Supports), ex.Count)
	}
}

func TestExplainFormat(t *testing.T) {
	k := chainedKB()
	ex, _ := k.Explain("animal", "milk", 0)
	out := ex.Format()
	for _, want := range []string{"(milk isA animal)", "triggered by pork", "provenance chain", "chicken (core)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestExplainCycleSafe(t *testing.T) {
	// a triggers b and b triggers a — the trace must terminate.
	k := New()
	k.AddExtraction(0, "c", nil, []string{"a"}, nil, 1)
	k.AddExtraction(1, "c", nil, []string{"b"}, []string{"a"}, 2)
	k.AddExtraction(2, "c", nil, []string{"a"}, []string{"b"}, 3)
	ex, ok := k.Explain("c", "b", 0)
	if !ok || len(ex.Supports[0].Chain) == 0 {
		t.Fatal("cycle trace failed")
	}
}

func TestDriftDepthAndTopDrifted(t *testing.T) {
	k := chainedKB()
	depth := k.DriftDepth("animal")
	if depth["chicken"] != 1 || depth["pork"] != 2 || depth["milk"] != 3 {
		t.Errorf("depths = %v", depth)
	}
	top := k.TopDrifted("animal", 2)
	if len(top) != 2 || top[0] != "milk" || top[1] != "pork" {
		t.Errorf("TopDrifted = %v", top)
	}
}
