package kb

// View is the read-only query surface shared by the mutable *KB and
// alternative on-disk representations of the same knowledge — notably
// the mmap-backed columnar binary snapshot view in internal/kb/binsnap.
// internal/snapshot answers every serving query through this interface,
// so a gob-decoded heap KB and a zero-copy binary snapshot flow through
// one code path and must agree byte for byte (the differential suite in
// binsnap enforces that).
//
// Implementations must be safe for any number of concurrent readers
// once construction finishes. *KB satisfies that only while no
// goroutine mutates it — which is exactly why the snapshot layer
// freezes a private clone (or an immutable binary view) before serving.
type View interface {
	// Stats returns aggregate statistics of the KB state.
	Stats() Stats
	// Concepts returns all concepts with at least one active instance,
	// sorted.
	Concepts() []string
	// Instances returns the instances currently under a concept, sorted.
	Instances(concept string) []string
	// Has reports whether the pair is present with positive count.
	Has(concept, instance string) bool
	// Count returns the active support count of a pair (0 if absent).
	Count(concept, instance string) int
	// Explain traces the provenance of a pair; ok=false when the pair
	// is absent. At most maxSupports supports are traced (0 means all).
	Explain(concept, instance string, maxSupports int) (Explanation, bool)
	// SubInstances returns sub(e): instances whose extraction was
	// triggered by the given instance, sorted.
	SubInstances(concept, instance string) []string
	// ConceptsOfInstance returns all concepts currently holding the
	// instance with positive count, sorted.
	ConceptsOfInstance(instance string) []string
	// DriftDepth returns, per active instance of the concept, the
	// length of its provenance chain back to the core.
	DriftDepth(concept string) map[string]int
	// TopDrifted returns up to n instances of the concept with the
	// deepest provenance chains, deepest first (ties by name).
	TopDrifted(concept string, n int) []string
	// ScanActiveExtractions calls yield with the concept of every
	// active extraction, in extraction-ID order. The snapshot
	// partitioner attributes extractions to shards through this without
	// materializing full records.
	ScanActiveExtractions(yield func(concept string))
}

// The mutable KB is itself a View (when read without concurrent
// mutation).
var _ View = (*KB)(nil)

// ScanActiveExtractions calls yield with the concept of every active
// extraction, in extraction-ID order.
func (kb *KB) ScanActiveExtractions(yield func(concept string)) {
	for _, ex := range kb.extractions {
		if ex.Active {
			yield(ex.Concept)
		}
	}
}
