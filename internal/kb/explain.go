package kb

import (
	"fmt"
	"sort"
	"strings"
)

// Explanation answers "why is this pair in the KB?": the active
// extractions supporting it and, for each, the chain of triggers leading
// back to a first-iteration (core) extraction. This is the user-facing
// face of the provenance that powers DP cleaning — the same trigger
// edges the Sec 4.2 roll-back walks forward, walked backward.
type Explanation struct {
	Pair  Pair
	Count int
	// Supports lists the active extractions that contribute the count.
	Supports []Support
}

// Support is one active extraction supporting the pair, with one trigger
// chain traced back to the core.
type Support struct {
	ExtractionID int
	SentenceID   int
	Iteration    int
	Triggers     []string
	// Chain walks trigger-of-trigger pairs back to a core pair; the
	// first element is this pair itself, the last is core (iteration 1).
	Chain []ChainLink
}

// ChainLink is one step of a provenance chain.
type ChainLink struct {
	Pair      Pair
	Iteration int
	Core      bool
}

// Explain traces the provenance of a pair. It returns ok=false when the
// pair is not currently in the KB. At most maxSupports supporting
// extractions are traced (0 means all).
func (kb *KB) Explain(concept, instance string, maxSupports int) (Explanation, bool) {
	info := kb.pairs[Pair{concept, instance}]
	if info == nil || info.Count <= 0 {
		return Explanation{}, false
	}
	ex := Explanation{Pair: Pair{concept, instance}, Count: info.Count}
	for _, exID := range info.Extractions {
		e := kb.extractions[exID]
		if !e.Active {
			continue
		}
		s := Support{
			ExtractionID: e.ID,
			SentenceID:   e.SentenceID,
			Iteration:    e.Iteration,
			Triggers:     append([]string(nil), e.Triggers...),
			Chain:        kb.traceChain(concept, instance),
		}
		ex.Supports = append(ex.Supports, s)
		if maxSupports > 0 && len(ex.Supports) >= maxSupports {
			break
		}
	}
	return ex, true
}

// traceChain follows trigger links from the pair back to a core pair,
// choosing at each hop the earliest-iteration active supporting
// extraction and its first still-living trigger. Cycles are cut by a
// visited set.
func (kb *KB) traceChain(concept, instance string) []ChainLink {
	var chain []ChainLink
	visited := map[string]bool{}
	cur := instance
	for {
		if visited[cur] {
			break
		}
		visited[cur] = true
		info := kb.pairs[Pair{concept, cur}]
		if info == nil || info.Count <= 0 {
			break
		}
		link := ChainLink{Pair: Pair{concept, cur}, Iteration: info.FirstIter, Core: info.FirstIter <= 1}
		chain = append(chain, link)
		if link.Core {
			break
		}
		next := kb.earliestLivingTrigger(concept, cur)
		if next == "" {
			break
		}
		cur = next
	}
	return chain
}

// earliestLivingTrigger returns a trigger of the pair's earliest active
// extraction that is still present in the KB, or "".
func (kb *KB) earliestLivingTrigger(concept, instance string) string {
	info := kb.pairs[Pair{concept, instance}]
	if info == nil {
		return ""
	}
	best := ""
	bestIter := int(^uint(0) >> 1)
	for _, exID := range info.Extractions {
		e := kb.extractions[exID]
		if !e.Active || e.Iteration >= bestIter {
			continue
		}
		for _, t := range e.Triggers {
			if kb.Count(concept, t) > 0 {
				best, bestIter = t, e.Iteration
				break
			}
		}
	}
	return best
}

// Format renders the explanation as human-readable text.
func (ex Explanation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d supporting sentence(s)\n", ex.Pair, ex.Count)
	for i, s := range ex.Supports {
		fmt.Fprintf(&b, "  support %d: sentence %d, iteration %d", i+1, s.SentenceID, s.Iteration)
		if len(s.Triggers) > 0 {
			fmt.Fprintf(&b, ", triggered by %s", strings.Join(s.Triggers, ", "))
		} else {
			b.WriteString(", core (unambiguous)")
		}
		b.WriteByte('\n')
		if i == 0 && len(s.Chain) > 1 {
			b.WriteString("  provenance chain: ")
			parts := make([]string, len(s.Chain))
			for j, link := range s.Chain {
				tag := fmt.Sprintf("iter %d", link.Iteration)
				if link.Core {
					tag = "core"
				}
				parts[j] = fmt.Sprintf("%s (%s)", link.Pair.Instance, tag)
			}
			b.WriteString(strings.Join(parts, " ← "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// DriftDepth returns, for every active pair of a concept, the length of
// its provenance chain back to the core (1 for core pairs). Deep chains
// are the hallmark of drift cascades.
func (kb *KB) DriftDepth(concept string) map[string]int {
	out := map[string]int{}
	for _, e := range kb.Instances(concept) {
		out[e] = len(kb.traceChain(concept, e))
	}
	return out
}

// TopDrifted returns up to n instances of the concept with the deepest
// provenance chains, deepest first (ties by name).
func (kb *KB) TopDrifted(concept string, n int) []string {
	depth := kb.DriftDepth(concept)
	names := make([]string, 0, len(depth))
	for e := range depth {
		names = append(names, e)
	}
	sort.Slice(names, func(i, j int) bool {
		if depth[names[i]] != depth[names[j]] {
			return depth[names[i]] > depth[names[j]]
		}
		return names[i] < names[j]
	})
	if n < len(names) {
		names = names[:n]
	}
	return names
}
