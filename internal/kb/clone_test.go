package kb

import (
	"reflect"
	"testing"
)

// buildCloneFixture assembles a small KB with a two-hop trigger chain:
// core extraction of dog/cat under animal, dog triggers wolf, wolf
// triggers dingo, plus an unrelated concept.
func buildCloneFixture() *KB {
	k := New()
	k.AddExtraction(0, "animal", []string{"animal"}, []string{"dog", "cat"}, nil, 1)
	k.AddExtraction(1, "animal", []string{"animal", "tool"}, []string{"dog", "wolf"}, []string{"dog"}, 2)
	k.AddExtraction(2, "animal", []string{"animal"}, []string{"wolf", "dingo"}, []string{"wolf"}, 3)
	k.AddExtraction(3, "tool", []string{"tool"}, []string{"hammer"}, nil, 1)
	return k
}

func TestCloneEqualState(t *testing.T) {
	orig := buildCloneFixture()
	clone := orig.Clone()

	if !reflect.DeepEqual(orig.Stats(), clone.Stats()) {
		t.Errorf("clone stats %+v != original %+v", clone.Stats(), orig.Stats())
	}
	if !reflect.DeepEqual(orig.Pairs(), clone.Pairs()) {
		t.Errorf("clone pairs differ: %v vs %v", clone.Pairs(), orig.Pairs())
	}
	for _, c := range orig.Concepts() {
		for _, e := range orig.Instances(c) {
			if got, want := clone.Count(c, e), orig.Count(c, e); got != want {
				t.Errorf("clone count(%s,%s) = %d, want %d", c, e, got, want)
			}
			if !reflect.DeepEqual(clone.SubInstances(c, e), orig.SubInstances(c, e)) {
				t.Errorf("clone subs(%s,%s) differ", c, e)
			}
		}
	}
}

func TestCloneIsolatedFromMutation(t *testing.T) {
	orig := buildCloneFixture()
	clone := orig.Clone()
	beforePairs := clone.NumPairs()
	beforeSubs := clone.SubInstances("animal", "dog")

	// Mutate the original: cascade-remove dog, which rolls back wolf and
	// dingo too; then add a brand-new extraction.
	orig.RemovePairs([]Pair{{Concept: "animal", Instance: "dog"}})
	orig.AddExtraction(9, "animal", []string{"animal"}, []string{"ferret"}, nil, 4)

	if clone.NumPairs() != beforePairs {
		t.Errorf("mutating original changed clone pair count: %d -> %d", beforePairs, clone.NumPairs())
	}
	if !clone.Has("animal", "dog") || !clone.Has("animal", "dingo") {
		t.Error("cascade on original leaked into clone")
	}
	if clone.Has("animal", "ferret") {
		t.Error("extraction added to original appeared in clone")
	}
	if !reflect.DeepEqual(clone.SubInstances("animal", "dog"), beforeSubs) {
		t.Error("clone sub-instances changed after original mutation")
	}

	// And the reverse: mutating the clone leaves the original intact.
	clone.RemovePairs([]Pair{{Concept: "tool", Instance: "hammer"}})
	if !orig.Has("tool", "hammer") {
		t.Error("removing from clone leaked into original")
	}
}

func TestCloneExplainMatchesOriginal(t *testing.T) {
	orig := buildCloneFixture()
	clone := orig.Clone()
	wantEx, wantOK := orig.Explain("animal", "dingo", 0)
	gotEx, gotOK := clone.Explain("animal", "dingo", 0)
	if wantOK != gotOK || !reflect.DeepEqual(wantEx, gotEx) {
		t.Errorf("clone explanation differs:\n got %+v (%v)\nwant %+v (%v)", gotEx, gotOK, wantEx, wantOK)
	}
}
