package kbio

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"driftclean/internal/kb"
	"driftclean/internal/kb/binsnap"
)

func testKB() *kb.KB {
	k := kb.New()
	k.AddExtraction(0, "animal", nil, []string{"chicken", "dog"}, nil, 1)
	k.AddExtraction(1, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	id := k.AddExtraction(2, "animal", nil, []string{"cheese"}, []string{"dog"}, 2)
	k.RollbackExtractions([]int{id})
	return k
}

// saveBoth writes the same KB in both formats and returns their paths.
func saveBoth(t *testing.T, k *kb.KB) (gobPath, binPath string) {
	t.Helper()
	dir := t.TempDir()
	gobPath = filepath.Join(dir, "kb.gob")
	binPath = filepath.Join(dir, "kb.bin")
	if err := k.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	if err := binsnap.WriteFile(binPath, k); err != nil {
		t.Fatal(err)
	}
	return gobPath, binPath
}

func TestDetect(t *testing.T) {
	gobPath, binPath := saveBoth(t, testKB())
	if f, err := Detect(gobPath); err != nil || f != FormatGob {
		t.Fatalf("Detect(gob) = %v, %v", f, err)
	}
	if f, err := Detect(binPath); err != nil || f != FormatBinary {
		t.Fatalf("Detect(binary) = %v, %v", f, err)
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte("ab"), 0o644); err != nil {
		t.Fatal(err)
	}
	if f, err := Detect(short); err != nil || f != FormatGob {
		t.Fatalf("Detect(short) = %v, %v", f, err)
	}
	if _, err := Detect(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Detect of a missing file should fail")
	}
}

func TestFreezeFileBothFormatsAgree(t *testing.T) {
	k := testKB()
	gobPath, binPath := saveBoth(t, k)
	gs, gf, err := FreezeFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	bs, bf, err := FreezeFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if gf != FormatGob || bf != FormatBinary {
		t.Fatalf("formats %v, %v", gf, bf)
	}
	if gs.Stats() != bs.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", gs.Stats(), bs.Stats())
	}
	if !reflect.DeepEqual(gs.Concepts(), bs.Concepts()) {
		t.Fatal("concepts differ between formats")
	}
	for _, c := range gs.Concepts() {
		if !reflect.DeepEqual(gs.Instances(c), bs.Instances(c)) {
			t.Fatalf("instances of %q differ", c)
		}
	}
	if bs.Generation() <= gs.Generation() {
		t.Fatal("freeze generations not monotonic")
	}
}

func TestLoadKBBothFormats(t *testing.T) {
	k := testKB()
	gobPath, binPath := saveBoth(t, k)
	for _, tc := range []struct {
		path string
		want Format
	}{{gobPath, FormatGob}, {binPath, FormatBinary}} {
		got, format, err := LoadKB(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if format != tc.want {
			t.Fatalf("format = %v, want %v", format, tc.want)
		}
		if !reflect.DeepEqual(got.Pairs(), k.Pairs()) {
			t.Fatalf("%v: pairs differ after load", tc.want)
		}
		if got.Stats() != k.Stats() {
			t.Fatalf("%v: stats differ after load", tc.want)
		}
	}
}

func TestFreezeFileErrors(t *testing.T) {
	if _, _, err := FreezeFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file should fail")
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, []byte("DCKBSNP1 but then garbage follows"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FreezeFile(garbage); err == nil {
		t.Fatal("corrupt binary header should fail")
	}
}

func TestFormatString(t *testing.T) {
	if FormatGob.String() != "gob" || FormatBinary.String() != "binary" {
		t.Fatal("format names changed")
	}
}
