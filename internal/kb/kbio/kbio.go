// Package kbio opens saved knowledge bases regardless of their on-disk
// format. The repo persists KBs two ways — the gob stream written by
// (*kb.KB).SaveFile and the columnar binary snapshot written by
// internal/kb/binsnap — and every consumer (driftserve, kbquery, the
// bench harness, ops tooling) should accept either without the operator
// saying which. Detection sniffs the binary format's 8-byte magic; gob
// is the fallback, exactly as before the binary format existed, so no
// previously loadable file changes behavior.
package kbio

import (
	"errors"
	"fmt"
	"io"
	"os"

	"driftclean/internal/kb"
	"driftclean/internal/kb/binsnap"
	"driftclean/internal/snapshot"
)

// Format identifies an on-disk KB snapshot encoding.
type Format int

// The known snapshot encodings.
const (
	// FormatGob is the gob stream written by (*kb.KB).SaveFile.
	FormatGob Format = iota
	// FormatBinary is the columnar zero-copy format written by
	// internal/kb/binsnap.
	FormatBinary
)

// String names the format for logs and tool output.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "gob"
}

// Detect sniffs the file's leading bytes and reports its format. Files
// shorter than the binary magic — including empty ones — detect as gob,
// whose decoder then reports the real problem.
func Detect(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatGob, fmt.Errorf("kbio: %w", err)
	}
	defer f.Close()
	var head [len(binsnap.Magic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return FormatGob, nil
		}
		return FormatGob, fmt.Errorf("kbio: %w", err)
	}
	if string(head[:]) == binsnap.Magic {
		return FormatBinary, nil
	}
	return FormatGob, nil
}

// FreezeFile opens the KB file in whichever format it is and freezes it
// into an immutable serving snapshot. A gob file decodes into a fresh
// heap KB, owned outright, so no defensive clone is taken; a binary
// file is mmap-opened zero-copy, so freeze cost is O(1) in KB size.
// The returned format tells callers (logs, bench records) which path
// ran.
func FreezeFile(path string) (*snapshot.Snapshot, Format, error) {
	format, err := Detect(path)
	if err != nil {
		return nil, format, err
	}
	switch format {
	case FormatBinary:
		v, err := binsnap.Open(path)
		if err != nil {
			return nil, format, err
		}
		return snapshot.FreezeOwned(v), format, nil
	default:
		k, err := kb.LoadFile(path)
		if err != nil {
			return nil, format, err
		}
		return snapshot.FreezeOwned(k), format, nil
	}
}

// LoadKB opens the KB file in whichever format it is and materializes a
// fully mutable heap KB — the tool-side counterpart of FreezeFile for
// callers that need to convert or mutate rather than serve.
func LoadKB(path string) (*kb.KB, Format, error) {
	format, err := Detect(path)
	if err != nil {
		return nil, format, err
	}
	switch format {
	case FormatBinary:
		v, err := binsnap.Open(path)
		if err != nil {
			return nil, format, err
		}
		defer v.Close()
		k, err := v.ToKB()
		return k, format, err
	default:
		k, err := kb.LoadFile(path)
		return k, format, err
	}
}
