// Package kb implements the isA knowledge base underlying the
// semantic-based iterative extractor. Besides (concept, instance) pairs
// with support counts, it records full provenance: which sentence produced
// each extraction and which already-known pairs *triggered* it (paper
// Sec 2.1: "an existing instance triggers the extraction of some other
// instances"). This trigger graph is the single substrate behind
//
//   - the sub-instance sets sub(e) used by features f1 and f4 (Sec 3.1),
//   - the random-walk scoring graph (Sec 5.2),
//   - ground-truth DP labeling in evaluation, and
//   - the cascading roll-back of Sec 4.2: removing a pair rolls back
//     every extraction that depended on it, which can zero other pairs'
//     counts and propagate further.
package kb

import (
	"fmt"
	"sort"
)

// Pair is an isA pair: Instance isA Concept.
type Pair struct {
	Concept  string
	Instance string
}

// String renders the pair in "(instance isA concept)" form.
func (p Pair) String() string { return fmt.Sprintf("(%s isA %s)", p.Instance, p.Concept) }

// Extraction records one resolved sentence parse.
type Extraction struct {
	ID         int
	SentenceID int
	Concept    string   // the concept the extractor chose
	Candidates []string // the sentence's candidate concepts at parse time
	Instances  []string // instance tokens extracted under Concept
	Triggers   []string // instances already known under Concept that enabled this resolution; empty in iteration 1
	Iteration  int      // 1-based extraction iteration
	Active     bool     // false once rolled back
}

// PairInfo aggregates the state of one isA pair.
type PairInfo struct {
	Count       int   // number of active extractions supporting the pair
	FirstIter   int   // iteration of the first supporting extraction
	Extractions []int // extraction IDs supporting the pair (including inactive)
}

// KB is the mutable knowledge base. It is not safe for concurrent use.
type KB struct {
	pairs       map[Pair]*PairInfo
	extractions []*Extraction
	// triggeredBy[p] lists extraction IDs in which pair p served as a
	// trigger.
	triggeredBy map[Pair][]int
	byConcept   map[string]map[string]*PairInfo // concept -> instance -> info
	// version counts mutations (extraction adds, pair removals,
	// rollbacks). Caches keyed on KB state compare versions to detect
	// that their entries went stale.
	version uint64
}

// Version returns the KB's mutation counter. It increases on every
// mutating call (AddExtraction, RemovePairs, RemovePairsNoCascade,
// RollbackExtractions), so two reads returning the same value bracket a
// window in which the KB was not modified.
func (kb *KB) Version() uint64 { return kb.version }

// New returns an empty knowledge base.
func New() *KB {
	return &KB{
		pairs:       make(map[Pair]*PairInfo),
		triggeredBy: make(map[Pair][]int),
		byConcept:   make(map[string]map[string]*PairInfo),
	}
}

// AddExtraction records a resolved sentence: all instances are extracted
// under concept, enabled by the given trigger instances (nil for
// iteration-1 core extractions). It returns the new extraction's ID.
func (kb *KB) AddExtraction(sentenceID int, concept string, candidates, instances, triggers []string, iteration int) int {
	kb.version++
	// The three defensive copies share one backing array (each segment
	// separately capped, so appending to one can never reach another);
	// empty inputs stay nil, matching Clone.
	buf := make([]string, 0, len(candidates)+len(instances)+len(triggers))
	carve := func(src []string) []string {
		if len(src) == 0 {
			return nil
		}
		start := len(buf)
		buf = append(buf, src...)
		return buf[start:len(buf):len(buf)]
	}
	ex := &Extraction{
		ID:         len(kb.extractions),
		SentenceID: sentenceID,
		Concept:    concept,
		Candidates: carve(candidates),
		Instances:  carve(instances),
		Triggers:   carve(triggers),
		Iteration:  iteration,
		Active:     true,
	}
	kb.extractions = append(kb.extractions, ex)
	for _, e := range ex.Instances {
		kb.supportPair(Pair{concept, e}, ex)
	}
	for _, trig := range ex.Triggers {
		p := Pair{concept, trig}
		kb.triggeredBy[p] = append(kb.triggeredBy[p], ex.ID)
	}
	return ex.ID
}

func (kb *KB) supportPair(p Pair, ex *Extraction) {
	info := kb.pairs[p]
	if info == nil {
		info = &PairInfo{FirstIter: ex.Iteration}
		kb.pairs[p] = info
		m := kb.byConcept[p.Concept]
		if m == nil {
			m = make(map[string]*PairInfo)
			kb.byConcept[p.Concept] = m
		}
		m[p.Instance] = info
	}
	info.Count++
	if ex.Iteration < info.FirstIter {
		info.FirstIter = ex.Iteration
	}
	info.Extractions = append(info.Extractions, ex.ID)
}

// Clone returns a deep copy of the KB: mutating either copy (adding
// extractions, rolling back pairs) never affects the other. String
// contents are shared — Go strings are immutable — so a clone costs one
// allocation per extraction, pair and index slice rather than a byte
// copy of the vocabulary. This is the copy-on-freeze primitive behind
// snapshot isolation: the serving layer clones the KB once and reads
// the clone without locks while the single writer keeps mutating the
// original.
func (kb *KB) Clone() *KB {
	out := New()
	out.extractions = make([]*Extraction, len(kb.extractions))
	for i, ex := range kb.extractions {
		c := *ex
		c.Candidates = append([]string(nil), ex.Candidates...)
		c.Instances = append([]string(nil), ex.Instances...)
		c.Triggers = append([]string(nil), ex.Triggers...)
		out.extractions[i] = &c
	}
	for p, ids := range kb.triggeredBy {
		cp := make([]int, len(ids))
		copy(cp, ids)
		out.triggeredBy[p] = cp
	}
	for p, info := range kb.pairs {
		ci := &PairInfo{
			Count:       info.Count,
			FirstIter:   info.FirstIter,
			Extractions: append([]int(nil), info.Extractions...),
		}
		out.pairs[p] = ci
		m := out.byConcept[p.Concept]
		if m == nil {
			m = make(map[string]*PairInfo)
			out.byConcept[p.Concept] = m
		}
		m[p.Instance] = ci
	}
	out.version = kb.version
	return out
}

// Has reports whether the pair is currently in the KB with positive count.
func (kb *KB) Has(concept, instance string) bool {
	info := kb.pairs[Pair{concept, instance}]
	return info != nil && info.Count > 0
}

// Count returns the active support count of a pair (0 if absent).
func (kb *KB) Count(concept, instance string) int {
	if info := kb.pairs[Pair{concept, instance}]; info != nil {
		return info.Count
	}
	return 0
}

// Info returns the PairInfo for a pair, or nil.
func (kb *KB) Info(concept, instance string) *PairInfo {
	return kb.pairs[Pair{concept, instance}]
}

// Extraction returns the extraction with the given ID.
func (kb *KB) Extraction(id int) *Extraction { return kb.extractions[id] }

// NumExtractions returns the total number of recorded extractions
// (including rolled-back ones).
func (kb *KB) NumExtractions() int { return len(kb.extractions) }

// Instances returns the instances currently under a concept, sorted.
func (kb *KB) Instances(concept string) []string {
	m := kb.byConcept[concept]
	out := make([]string, 0, len(m))
	for e, info := range m {
		if info.Count > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// InstancesAtIteration returns instances whose first supporting extraction
// happened at or before the given iteration (E(C, i) in the paper's
// notation), sorted. Rolled-back pairs are excluded.
func (kb *KB) InstancesAtIteration(concept string, iteration int) []string {
	m := kb.byConcept[concept]
	out := make([]string, 0, len(m))
	for e, info := range m {
		if info.Count > 0 && info.FirstIter <= iteration {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Concepts returns all concepts that currently have at least one instance,
// sorted.
func (kb *KB) Concepts() []string {
	out := make([]string, 0, len(kb.byConcept))
	for c, m := range kb.byConcept {
		for _, info := range m {
			if info.Count > 0 {
				out = append(out, c)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// NumPairs returns the number of distinct pairs with positive count.
func (kb *KB) NumPairs() int {
	n := 0
	for _, info := range kb.pairs {
		if info.Count > 0 {
			n++
		}
	}
	return n
}

// Pairs returns all active pairs, sorted by concept then instance.
func (kb *KB) Pairs() []Pair {
	out := make([]Pair, 0, len(kb.pairs))
	for p, info := range kb.pairs {
		if info.Count > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Concept != out[j].Concept {
			return out[i].Concept < out[j].Concept
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// TriggeredExtractions returns the IDs of extractions in which the pair
// served as a trigger (active and inactive).
func (kb *KB) TriggeredExtractions(concept, instance string) []int {
	return kb.triggeredBy[Pair{concept, instance}]
}

// SubInstances returns sub(e): the set of instances whose extraction under
// the concept was triggered by e, across all active extractions where e is
// a trigger (paper Sec 2.1). The trigger itself is excluded.
func (kb *KB) SubInstances(concept, instance string) []string {
	seen := map[string]struct{}{}
	for _, exID := range kb.triggeredBy[Pair{concept, instance}] {
		ex := kb.extractions[exID]
		if !ex.Active {
			continue
		}
		for _, e := range ex.Instances {
			if e == instance {
				continue
			}
			isTrigger := false
			for _, t := range ex.Triggers {
				if t == e {
					isTrigger = true
					break
				}
			}
			if isTrigger {
				continue
			}
			seen[e] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// ConceptsOfInstance returns all concepts currently holding the instance
// with positive count, sorted. This is a full scan; callers that need
// many lookups should build their own reverse index from Pairs().
func (kb *KB) ConceptsOfInstance(instance string) []string {
	var out []string
	for c, m := range kb.byConcept {
		if info := m[instance]; info != nil && info.Count > 0 {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// RollbackResult reports the effect of a roll-back cascade.
type RollbackResult struct {
	PairsRemoved       []Pair
	ExtractionsRolled  int
	CascadeDepth       int
	CountsDecremented  int
	InitiallyRequested int

	// touched records every concept whose pair counts or extraction set
	// the operation modified — read it through TouchedConcepts.
	touched map[string]struct{}
}

// TouchedConcepts returns, sorted, every concept whose pair counts or
// active extraction set the rollback changed. Per-concept caches (the
// random-walk score cache in particular) invalidate exactly this set:
// rollbacks are concept-local — an extraction's triggers are pairs of
// its own concept, so a cascade never crosses into another concept —
// and this method reports what actually changed rather than assuming it.
func (r *RollbackResult) TouchedConcepts() []string {
	out := make([]string, 0, len(r.touched))
	for c := range r.touched {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (r *RollbackResult) touch(concept string) {
	if r.touched == nil {
		r.touched = make(map[string]struct{})
	}
	r.touched[concept] = struct{}{}
}

// RemovePairs removes the given pairs outright and rolls back the cascade
// of extractions they enabled (paper Sec 4.2): every extraction all of
// whose triggers are gone is deactivated; deactivation decrements the
// counts of its extracted pairs; pairs reaching zero are removed and the
// process repeats until a fixpoint.
func (kb *KB) RemovePairs(pairs []Pair) RollbackResult {
	kb.version++
	res := RollbackResult{InitiallyRequested: len(pairs)}
	removedPairs := map[Pair]bool{}
	queue := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		info := kb.pairs[p]
		if info == nil || info.Count <= 0 || removedPairs[p] {
			continue
		}
		// Forced removal: zero the count regardless of support.
		res.CountsDecremented += info.Count
		info.Count = 0
		removedPairs[p] = true
		queue = append(queue, p)
		res.PairsRemoved = append(res.PairsRemoved, p)
		res.touch(p.Concept)
	}
	depth := 0
	for len(queue) > 0 {
		depth++
		var next []Pair
		for _, p := range queue {
			for _, exID := range kb.triggeredBy[p] {
				ex := kb.extractions[exID]
				if !ex.Active {
					continue
				}
				if kb.anyTriggerAlive(ex) {
					continue
				}
				next = append(next, kb.rollbackExtraction(ex, &res)...)
			}
		}
		queue = next
		if len(next) > 0 {
			res.CascadeDepth = depth
		}
	}
	sort.Slice(res.PairsRemoved, func(i, j int) bool {
		a, b := res.PairsRemoved[i], res.PairsRemoved[j]
		if a.Concept != b.Concept {
			return a.Concept < b.Concept
		}
		return a.Instance < b.Instance
	})
	return res
}

// RemovePairsNoCascade removes the given pairs outright without rolling
// back the extractions they enabled — the "one-shot removal" ablation
// contrasted with the paper's Sec 4.2 cascade.
func (kb *KB) RemovePairsNoCascade(pairs []Pair) RollbackResult {
	kb.version++
	res := RollbackResult{InitiallyRequested: len(pairs)}
	for _, p := range pairs {
		info := kb.pairs[p]
		if info == nil || info.Count <= 0 {
			continue
		}
		res.CountsDecremented += info.Count
		info.Count = 0
		res.PairsRemoved = append(res.PairsRemoved, p)
		res.touch(p.Concept)
	}
	sort.Slice(res.PairsRemoved, func(i, j int) bool {
		a, b := res.PairsRemoved[i], res.PairsRemoved[j]
		if a.Concept != b.Concept {
			return a.Concept < b.Concept
		}
		return a.Instance < b.Instance
	})
	return res
}

// RollbackExtractions deactivates the given extractions directly (used for
// Intentional-DP sentence-level cleaning, Sec 4.1) and cascades.
func (kb *KB) RollbackExtractions(ids []int) RollbackResult {
	kb.version++
	var res RollbackResult
	res.InitiallyRequested = len(ids)
	queue := make([]Pair, 0)
	for _, id := range ids {
		ex := kb.extractions[id]
		if ex == nil || !ex.Active {
			continue
		}
		queue = append(queue, kb.rollbackExtraction(ex, &res)...)
	}
	depth := 0
	for len(queue) > 0 {
		depth++
		var next []Pair
		for _, p := range queue {
			for _, exID := range kb.triggeredBy[p] {
				ex := kb.extractions[exID]
				if !ex.Active {
					continue
				}
				if kb.anyTriggerAlive(ex) {
					continue
				}
				next = append(next, kb.rollbackExtraction(ex, &res)...)
			}
		}
		queue = next
		if len(next) > 0 {
			res.CascadeDepth = depth
		}
	}
	return res
}

// anyTriggerAlive reports whether at least one trigger pair of ex is still
// present — extractions remain supported while any trigger survives.
func (kb *KB) anyTriggerAlive(ex *Extraction) bool {
	for _, t := range ex.Triggers {
		if kb.Count(ex.Concept, t) > 0 {
			return true
		}
	}
	return len(ex.Triggers) == 0 // core extractions have no triggers and never cascade away
}

// rollbackExtraction deactivates ex, decrements its pairs and returns the
// pairs whose count reached zero.
func (kb *KB) rollbackExtraction(ex *Extraction, res *RollbackResult) []Pair {
	ex.Active = false
	res.ExtractionsRolled++
	res.touch(ex.Concept)
	var zeroed []Pair
	for _, e := range ex.Instances {
		p := Pair{ex.Concept, e}
		info := kb.pairs[p]
		if info == nil || info.Count <= 0 {
			continue
		}
		info.Count--
		res.CountsDecremented++
		if info.Count == 0 {
			zeroed = append(zeroed, p)
			res.PairsRemoved = append(res.PairsRemoved, p)
		}
	}
	return zeroed
}

// Snapshot captures the distinct active pair count per concept, used for
// the per-iteration curves of Fig 5(a).
type Snapshot struct {
	Iteration     int
	DistinctPairs int
}

// Stats returns aggregate KB statistics.
type Stats struct {
	DistinctPairs     int
	TotalCount        int
	Concepts          int
	ActiveExtractions int
}

// Stats computes the current aggregate statistics.
func (kb *KB) Stats() Stats {
	var s Stats
	s.Concepts = len(kb.Concepts())
	for _, info := range kb.pairs {
		if info.Count > 0 {
			s.DistinctPairs++
			s.TotalCount += info.Count
		}
	}
	for _, ex := range kb.extractions {
		if ex.Active {
			s.ActiveExtractions++
		}
	}
	return s
}
