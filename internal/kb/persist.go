package kb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// snapshot is the gob wire format of a KB. Extraction records plus pair
// states fully determine the KB; the trigger and concept indexes are
// rebuilt on load.
type snapshot struct {
	Version     int
	Extractions []Extraction
	Pairs       []pairState
}

type pairState struct {
	Concept, Instance string
	Count, FirstIter  int
	Extractions       []int
}

const snapshotVersion = 1

// PairState is the exported serializable form of one pair: identity,
// active support count, first supporting iteration and the IDs of every
// supporting extraction (including rolled-back ones). Alternative
// snapshot encoders (internal/kb/binsnap) move KB state through
// Export/Build as slices of these.
type PairState struct {
	Concept, Instance string
	Count, FirstIter  int
	Extractions       []int
}

// Export returns the KB's full serializable state: every extraction in
// ID order (struct copies whose slices share backing arrays with the
// KB) and every pair — including rolled-back, zero-count ones — sorted
// by concept then instance. Callers must treat the result as read-only;
// it is the single source every snapshot encoder serializes from, so
// two formats written from one KB describe identical state.
func (kb *KB) Export() ([]Extraction, []PairState) {
	exts := make([]Extraction, len(kb.extractions))
	for i, ex := range kb.extractions {
		exts[i] = *ex
	}
	keys := kb.sortedPairKeys()
	pairs := make([]PairState, 0, len(keys))
	for _, p := range keys {
		info := kb.pairs[p]
		pairs = append(pairs, PairState{
			Concept:     p.Concept,
			Instance:    p.Instance,
			Count:       info.Count,
			FirstIter:   info.FirstIter,
			Extractions: info.Extractions,
		})
	}
	return exts, pairs
}

// WriteTo serializes the KB (including rolled-back extractions and their
// provenance) to w.
func (kb *KB) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	exts, pairs := kb.Export()
	snap := snapshot{Version: snapshotVersion, Extractions: exts}
	for _, ps := range pairs {
		snap.Pairs = append(snap.Pairs, pairState(ps))
	}
	if err := gob.NewEncoder(cw).Encode(snap); err != nil {
		return cw.n, fmt.Errorf("kb: encoding snapshot: %w", err)
	}
	return cw.n, nil
}

// sortedPairKeys returns all pair keys (active and zeroed) in
// deterministic order.
func (kb *KB) sortedPairKeys() []Pair {
	out := make([]Pair, 0, len(kb.pairs))
	for p := range kb.pairs {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// Read deserializes a KB previously written with WriteTo. The wire
// state is validated before it becomes a live KB: a truncated or
// corrupted snapshot must fail here, with a descriptive error, rather
// than load "successfully" and panic at query time when an
// out-of-range extraction index is finally dereferenced.
func Read(r io.Reader) (*KB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("kb: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("kb: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	pairs := make([]PairState, len(snap.Pairs))
	for i, ps := range snap.Pairs {
		pairs[i] = PairState(ps)
	}
	return Build(snap.Extractions, pairs)
}

// Build reconstructs a KB from exported state (see Export), validating
// it the same way Read validates a gob snapshot: extraction IDs must be
// dense and in order, pair extraction references in range, counts
// nonnegative, pairs unique. The trigger index is rebuilt from the
// extraction records, exactly as the live KB maintains it. Build takes
// ownership of the argument slices.
func Build(extractions []Extraction, pairs []PairState) (*KB, error) {
	kb := New()
	kb.extractions = make([]*Extraction, len(extractions))
	for i := range extractions {
		ex := extractions[i]
		if ex.ID != i {
			return nil, fmt.Errorf("kb: extraction %d has ID %d", i, ex.ID)
		}
		kb.extractions[i] = &ex
		// Trigger provenance is kept for inactive extractions too, as in
		// the live KB (rollback never removes triggeredBy entries).
		for _, trig := range ex.Triggers {
			p := Pair{ex.Concept, trig}
			kb.triggeredBy[p] = append(kb.triggeredBy[p], ex.ID)
		}
	}
	for _, ps := range pairs {
		p := Pair{ps.Concept, ps.Instance}
		if _, dup := kb.pairs[p]; dup {
			return nil, fmt.Errorf("kb: snapshot lists pair %s twice", p)
		}
		if ps.Count < 0 {
			return nil, fmt.Errorf("kb: pair %s has negative count %d", p, ps.Count)
		}
		for _, id := range ps.Extractions {
			if id < 0 || id >= len(kb.extractions) {
				return nil, fmt.Errorf("kb: pair %s references extraction %d, but the snapshot holds %d extractions",
					p, id, len(kb.extractions))
			}
		}
		info := &PairInfo{Count: ps.Count, FirstIter: ps.FirstIter, Extractions: ps.Extractions}
		kb.pairs[p] = info
		m := kb.byConcept[p.Concept]
		if m == nil {
			m = make(map[string]*PairInfo)
			kb.byConcept[p.Concept] = m
		}
		m[p.Instance] = info
	}
	return kb, nil
}

// SaveFile writes the KB snapshot to a file, atomically: the bytes go
// to a temporary file in the target's directory, are fsynced, and only
// then renamed over the target. A crash or full disk mid-write can
// never leave a torn snapshot where a good one used to be — the old
// file survives intact until the new one is durably complete.
func (kb *KB) SaveFile(path string) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		_, err := kb.WriteTo(w)
		return err
	})
}

// AtomicWriteFile streams write's output into path via a same-directory
// temp file, fsync and rename. On any failure the temp file is removed
// and the previous contents of path are untouched. Every snapshot
// format the repo persists (gob here, the binary columnar format in
// internal/kb/binsnap) publishes through this one discipline.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("kb: creating temp snapshot: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		_ = f.Close()
		_ = os.Remove(tmp)
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		cleanup() // already failing; the write error wins
		return err
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return fmt.Errorf("kb: flushing snapshot: %w", err)
	}
	// Sync before rename: the rename must never become visible while the
	// data behind it is still only in the page cache.
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("kb: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("kb: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("kb: publishing snapshot: %w", err)
	}
	return nil
}

// LoadFile reads a KB snapshot from a file.
func LoadFile(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Concept != ps[j].Concept {
			return ps[i].Concept < ps[j].Concept
		}
		return ps[i].Instance < ps[j].Instance
	})
}
