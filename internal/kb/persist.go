package kb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// snapshot is the gob wire format of a KB. Extraction records plus pair
// states fully determine the KB; the trigger and concept indexes are
// rebuilt on load.
type snapshot struct {
	Version     int
	Extractions []Extraction
	Pairs       []pairState
}

type pairState struct {
	Concept, Instance string
	Count, FirstIter  int
	Extractions       []int
}

const snapshotVersion = 1

// WriteTo serializes the KB (including rolled-back extractions and their
// provenance) to w.
func (kb *KB) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	snap := snapshot{Version: snapshotVersion}
	snap.Extractions = make([]Extraction, len(kb.extractions))
	for i, ex := range kb.extractions {
		snap.Extractions[i] = *ex
	}
	for _, p := range kb.sortedPairKeys() {
		info := kb.pairs[p]
		snap.Pairs = append(snap.Pairs, pairState{
			Concept:     p.Concept,
			Instance:    p.Instance,
			Count:       info.Count,
			FirstIter:   info.FirstIter,
			Extractions: info.Extractions,
		})
	}
	if err := gob.NewEncoder(cw).Encode(snap); err != nil {
		return cw.n, fmt.Errorf("kb: encoding snapshot: %w", err)
	}
	return cw.n, nil
}

// sortedPairKeys returns all pair keys (active and zeroed) in
// deterministic order.
func (kb *KB) sortedPairKeys() []Pair {
	out := make([]Pair, 0, len(kb.pairs))
	for p := range kb.pairs {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// Read deserializes a KB previously written with WriteTo. The wire
// state is validated before it becomes a live KB: a truncated or
// corrupted snapshot must fail here, with a descriptive error, rather
// than load "successfully" and panic at query time when an
// out-of-range extraction index is finally dereferenced.
func Read(r io.Reader) (*KB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("kb: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("kb: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	kb := New()
	kb.extractions = make([]*Extraction, len(snap.Extractions))
	for i := range snap.Extractions {
		ex := snap.Extractions[i]
		if ex.ID != i {
			return nil, fmt.Errorf("kb: extraction %d has ID %d", i, ex.ID)
		}
		kb.extractions[i] = &ex
		// Trigger provenance is kept for inactive extractions too, as in
		// the live KB (rollback never removes triggeredBy entries).
		for _, trig := range ex.Triggers {
			p := Pair{ex.Concept, trig}
			kb.triggeredBy[p] = append(kb.triggeredBy[p], ex.ID)
		}
	}
	for _, ps := range snap.Pairs {
		p := Pair{ps.Concept, ps.Instance}
		if _, dup := kb.pairs[p]; dup {
			return nil, fmt.Errorf("kb: snapshot lists pair %s twice", p)
		}
		if ps.Count < 0 {
			return nil, fmt.Errorf("kb: pair %s has negative count %d", p, ps.Count)
		}
		for _, id := range ps.Extractions {
			if id < 0 || id >= len(kb.extractions) {
				return nil, fmt.Errorf("kb: pair %s references extraction %d, but the snapshot holds %d extractions",
					p, id, len(kb.extractions))
			}
		}
		info := &PairInfo{Count: ps.Count, FirstIter: ps.FirstIter, Extractions: ps.Extractions}
		kb.pairs[p] = info
		m := kb.byConcept[p.Concept]
		if m == nil {
			m = make(map[string]*PairInfo)
			kb.byConcept[p.Concept] = m
		}
		m[p.Instance] = info
	}
	return kb, nil
}

// SaveFile writes the KB snapshot to a file, atomically: the bytes go
// to a temporary file in the target's directory, are fsynced, and only
// then renamed over the target. A crash or full disk mid-write can
// never leave a torn snapshot where a good one used to be — the old
// file survives intact until the new one is durably complete.
func (kb *KB) SaveFile(path string) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		_, err := kb.WriteTo(w)
		return err
	})
}

// atomicWriteFile streams write's output into path via a same-directory
// temp file, fsync and rename. On any failure the temp file is removed
// and the previous contents of path are untouched.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("kb: creating temp snapshot: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		_ = f.Close()
		_ = os.Remove(tmp)
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		cleanup() // already failing; the write error wins
		return err
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return fmt.Errorf("kb: flushing snapshot: %w", err)
	}
	// Sync before rename: the rename must never become visible while the
	// data behind it is still only in the page cache.
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("kb: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("kb: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("kb: publishing snapshot: %w", err)
	}
	return nil
}

// LoadFile reads a KB snapshot from a file.
func LoadFile(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Concept != ps[j].Concept {
			return ps[i].Concept < ps[j].Concept
		}
		return ps[i].Instance < ps[j].Instance
	})
}
