package kb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// snapshot is the gob wire format of a KB. Extraction records plus pair
// states fully determine the KB; the trigger and concept indexes are
// rebuilt on load.
type snapshot struct {
	Version     int
	Extractions []Extraction
	Pairs       []pairState
}

type pairState struct {
	Concept, Instance string
	Count, FirstIter  int
	Extractions       []int
}

const snapshotVersion = 1

// WriteTo serializes the KB (including rolled-back extractions and their
// provenance) to w.
func (kb *KB) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	snap := snapshot{Version: snapshotVersion}
	snap.Extractions = make([]Extraction, len(kb.extractions))
	for i, ex := range kb.extractions {
		snap.Extractions[i] = *ex
	}
	for _, p := range kb.sortedPairKeys() {
		info := kb.pairs[p]
		snap.Pairs = append(snap.Pairs, pairState{
			Concept:     p.Concept,
			Instance:    p.Instance,
			Count:       info.Count,
			FirstIter:   info.FirstIter,
			Extractions: info.Extractions,
		})
	}
	if err := gob.NewEncoder(cw).Encode(snap); err != nil {
		return cw.n, fmt.Errorf("kb: encoding snapshot: %w", err)
	}
	return cw.n, nil
}

// sortedPairKeys returns all pair keys (active and zeroed) in
// deterministic order.
func (kb *KB) sortedPairKeys() []Pair {
	out := make([]Pair, 0, len(kb.pairs))
	for p := range kb.pairs {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// Read deserializes a KB previously written with WriteTo.
func Read(r io.Reader) (*KB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("kb: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("kb: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	kb := New()
	kb.extractions = make([]*Extraction, len(snap.Extractions))
	for i := range snap.Extractions {
		ex := snap.Extractions[i]
		if ex.ID != i {
			return nil, fmt.Errorf("kb: extraction %d has ID %d", i, ex.ID)
		}
		kb.extractions[i] = &ex
		// Trigger provenance is kept for inactive extractions too, as in
		// the live KB (rollback never removes triggeredBy entries).
		for _, trig := range ex.Triggers {
			p := Pair{ex.Concept, trig}
			kb.triggeredBy[p] = append(kb.triggeredBy[p], ex.ID)
		}
	}
	for _, ps := range snap.Pairs {
		p := Pair{ps.Concept, ps.Instance}
		info := &PairInfo{Count: ps.Count, FirstIter: ps.FirstIter, Extractions: ps.Extractions}
		kb.pairs[p] = info
		m := kb.byConcept[p.Concept]
		if m == nil {
			m = make(map[string]*PairInfo)
			kb.byConcept[p.Concept] = m
		}
		m[p.Instance] = info
	}
	return kb, nil
}

// SaveFile writes the KB snapshot to a file.
func (kb *KB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kb: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := kb.WriteTo(w); err != nil {
		_ = f.Close() // already failing; the write error wins
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // already failing; the flush error wins
		return fmt.Errorf("kb: %w", err)
	}
	return f.Close()
}

// LoadFile reads a KB snapshot from a file.
func LoadFile(path string) (*KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kb: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Concept != ps[j].Concept {
			return ps[i].Concept < ps[j].Concept
		}
		return ps[i].Instance < ps[j].Instance
	})
}
