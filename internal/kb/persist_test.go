package kb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func populated() *KB {
	k := New()
	k.AddExtraction(0, "animal", nil, []string{"chicken", "dog"}, nil, 1)
	k.AddExtraction(1, "food", nil, []string{"beef", "pork"}, nil, 1)
	k.AddExtraction(2, "animal", []string{"food", "animal"}, []string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	k.AddExtraction(3, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	// One rolled-back extraction so inactive state is exercised.
	id := k.AddExtraction(4, "animal", nil, []string{"cheese"}, []string{"beef"}, 3)
	k.RollbackExtractions([]int{id})
	return k
}

func roundTrip(t *testing.T, k *KB) *KB {
	t.Helper()
	var buf bytes.Buffer
	if _, err := k.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestPersistRoundTripState(t *testing.T) {
	orig := populated()
	got := roundTrip(t, orig)
	if !reflect.DeepEqual(got.Stats(), orig.Stats()) {
		t.Fatalf("stats differ: %+v vs %+v", got.Stats(), orig.Stats())
	}
	if !reflect.DeepEqual(got.Pairs(), orig.Pairs()) {
		t.Fatalf("pairs differ")
	}
	for _, c := range orig.Concepts() {
		if !reflect.DeepEqual(got.Instances(c), orig.Instances(c)) {
			t.Fatalf("instances of %q differ", c)
		}
		for _, e := range orig.Instances(c) {
			if got.Count(c, e) != orig.Count(c, e) {
				t.Fatalf("count(%s,%s) differs", c, e)
			}
			if !reflect.DeepEqual(got.SubInstances(c, e), orig.SubInstances(c, e)) {
				t.Fatalf("sub(%s,%s) differs", c, e)
			}
		}
	}
}

func TestPersistPreservesIterations(t *testing.T) {
	got := roundTrip(t, populated())
	if !reflect.DeepEqual(got.InstancesAtIteration("animal", 1), []string{"chicken", "dog"}) {
		t.Errorf("E(animal,1) = %v", got.InstancesAtIteration("animal", 1))
	}
}

func TestPersistPreservesInactive(t *testing.T) {
	got := roundTrip(t, populated())
	if got.Extraction(4).Active {
		t.Error("rolled-back extraction resurfaced active")
	}
	if got.Has("animal", "cheese") {
		t.Error("rolled-back pair resurfaced")
	}
}

func TestPersistRollbackBehaviorEquivalent(t *testing.T) {
	orig := populated()
	got := roundTrip(t, orig)
	r1 := orig.RemovePairs([]Pair{{"animal", "chicken"}})
	r2 := got.RemovePairs([]Pair{{"animal", "chicken"}})
	if !reflect.DeepEqual(r1.PairsRemoved, r2.PairsRemoved) {
		t.Fatalf("cascade differs after reload: %v vs %v", r1.PairsRemoved, r2.PairsRemoved)
	}
	if !reflect.DeepEqual(orig.Pairs(), got.Pairs()) {
		t.Fatal("post-cascade state differs")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.gob")
	orig := populated()
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != orig.NumPairs() {
		t.Fatalf("pairs %d, want %d", got.NumPairs(), orig.NumPairs())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Error("garbage input should fail to decode")
	}
}

func TestPersistEmptyKB(t *testing.T) {
	got := roundTrip(t, New())
	if got.NumPairs() != 0 || got.NumExtractions() != 0 {
		t.Error("empty KB round trip not empty")
	}
}

// TestSaveFileFailedWriteLeavesTargetIntact is the torn-snapshot
// regression test: when the write fails partway through (ENOSPC, crash,
// encoder error), the previous snapshot at the target path must survive
// byte-for-byte and no temp litter may remain. Under the old
// write-directly-to-target SaveFile, os.Create had already truncated
// the good snapshot before the first byte was written, so this test
// fails there.
func TestSaveFileFailedWriteLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.gob")
	if err := populated().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	err = AtomicWriteFile(path, func(w io.Writer) error {
		// A partial write followed by failure — the torn-snapshot shape.
		if _, err := w.Write([]byte("torn")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("atomicWriteFile error = %v, want %v", err, boom)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save corrupted the existing snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind after failed save", e.Name())
		}
	}
	// The intact target must still load.
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("existing snapshot no longer loads: %v", err)
	}
}

// TestSaveFileReplacesExisting: a successful save atomically replaces
// the previous snapshot, leaving no temp files behind.
func TestSaveFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.gob")
	if err := New().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	orig := populated()
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != orig.NumPairs() {
		t.Fatalf("pairs = %d, want %d", got.NumPairs(), orig.NumPairs())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after save, want just the snapshot", len(entries))
	}
}

// encodeSnapshot gob-encodes a raw wire snapshot, bypassing WriteTo, so
// tests can construct corrupted states a well-behaved writer never
// produces.
func encodeSnapshot(t *testing.T, snap snapshot) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestReadRejectsCorruptSnapshots: wire states with out-of-range
// extraction indices, duplicate pairs or negative counts must be
// rejected at load with a descriptive error — never loaded "successfully"
// to panic later at query time. Under the old Read, every corrupt case
// here loaded without error.
func TestReadRejectsCorruptSnapshots(t *testing.T) {
	ex := func(id int, concept string, instances []string) Extraction {
		return Extraction{ID: id, Concept: concept, Instances: instances, Iteration: 1, Active: true}
	}
	cases := []struct {
		name    string
		snap    snapshot
		wantErr string
	}{
		{
			name: "extraction index beyond extraction count",
			snap: snapshot{
				Version:     snapshotVersion,
				Extractions: []Extraction{ex(0, "animal", []string{"dog"})},
				Pairs: []pairState{
					{Concept: "animal", Instance: "dog", Count: 1, FirstIter: 1, Extractions: []int{0, 7}},
				},
			},
			wantErr: "references extraction 7",
		},
		{
			name: "negative extraction index",
			snap: snapshot{
				Version:     snapshotVersion,
				Extractions: []Extraction{ex(0, "animal", []string{"dog"})},
				Pairs: []pairState{
					{Concept: "animal", Instance: "dog", Count: 1, FirstIter: 1, Extractions: []int{-1}},
				},
			},
			wantErr: "references extraction -1",
		},
		{
			name: "pair with no extractions referencing one",
			snap: snapshot{
				Version: snapshotVersion,
				Pairs: []pairState{
					{Concept: "animal", Instance: "dog", Count: 1, FirstIter: 1, Extractions: []int{0}},
				},
			},
			wantErr: "holds 0 extractions",
		},
		{
			name: "duplicate pair",
			snap: snapshot{
				Version:     snapshotVersion,
				Extractions: []Extraction{ex(0, "animal", []string{"dog"})},
				Pairs: []pairState{
					{Concept: "animal", Instance: "dog", Count: 1, FirstIter: 1, Extractions: []int{0}},
					{Concept: "animal", Instance: "dog", Count: 2, FirstIter: 1, Extractions: []int{0}},
				},
			},
			wantErr: "twice",
		},
		{
			name: "negative count",
			snap: snapshot{
				Version:     snapshotVersion,
				Extractions: []Extraction{ex(0, "animal", []string{"dog"})},
				Pairs: []pairState{
					{Concept: "animal", Instance: "dog", Count: -3, FirstIter: 1, Extractions: []int{0}},
				},
			},
			wantErr: "negative count",
		},
		{
			name: "extraction ID mismatch",
			snap: snapshot{
				Version:     snapshotVersion,
				Extractions: []Extraction{ex(4, "animal", []string{"dog"})},
			},
			wantErr: "has ID 4",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(encodeSnapshot(t, tc.snap))
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadAcceptsValidEdgeCases: the validation must not over-reject —
// inactive extractions and zero-count (rolled back) pairs are legal
// wire states that WriteTo produces.
func TestReadAcceptsValidEdgeCases(t *testing.T) {
	k := populated()
	k.RemovePairs([]Pair{{"animal", "milk"}})
	if got := roundTrip(t, k); got.NumPairs() != k.NumPairs() {
		t.Fatalf("pairs = %d, want %d", got.NumPairs(), k.NumPairs())
	}
}
