package kb

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func populated() *KB {
	k := New()
	k.AddExtraction(0, "animal", nil, []string{"chicken", "dog"}, nil, 1)
	k.AddExtraction(1, "food", nil, []string{"beef", "pork"}, nil, 1)
	k.AddExtraction(2, "animal", []string{"food", "animal"}, []string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	k.AddExtraction(3, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	// One rolled-back extraction so inactive state is exercised.
	id := k.AddExtraction(4, "animal", nil, []string{"cheese"}, []string{"beef"}, 3)
	k.RollbackExtractions([]int{id})
	return k
}

func roundTrip(t *testing.T, k *KB) *KB {
	t.Helper()
	var buf bytes.Buffer
	if _, err := k.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestPersistRoundTripState(t *testing.T) {
	orig := populated()
	got := roundTrip(t, orig)
	if !reflect.DeepEqual(got.Stats(), orig.Stats()) {
		t.Fatalf("stats differ: %+v vs %+v", got.Stats(), orig.Stats())
	}
	if !reflect.DeepEqual(got.Pairs(), orig.Pairs()) {
		t.Fatalf("pairs differ")
	}
	for _, c := range orig.Concepts() {
		if !reflect.DeepEqual(got.Instances(c), orig.Instances(c)) {
			t.Fatalf("instances of %q differ", c)
		}
		for _, e := range orig.Instances(c) {
			if got.Count(c, e) != orig.Count(c, e) {
				t.Fatalf("count(%s,%s) differs", c, e)
			}
			if !reflect.DeepEqual(got.SubInstances(c, e), orig.SubInstances(c, e)) {
				t.Fatalf("sub(%s,%s) differs", c, e)
			}
		}
	}
}

func TestPersistPreservesIterations(t *testing.T) {
	got := roundTrip(t, populated())
	if !reflect.DeepEqual(got.InstancesAtIteration("animal", 1), []string{"chicken", "dog"}) {
		t.Errorf("E(animal,1) = %v", got.InstancesAtIteration("animal", 1))
	}
}

func TestPersistPreservesInactive(t *testing.T) {
	got := roundTrip(t, populated())
	if got.Extraction(4).Active {
		t.Error("rolled-back extraction resurfaced active")
	}
	if got.Has("animal", "cheese") {
		t.Error("rolled-back pair resurfaced")
	}
}

func TestPersistRollbackBehaviorEquivalent(t *testing.T) {
	orig := populated()
	got := roundTrip(t, orig)
	r1 := orig.RemovePairs([]Pair{{"animal", "chicken"}})
	r2 := got.RemovePairs([]Pair{{"animal", "chicken"}})
	if !reflect.DeepEqual(r1.PairsRemoved, r2.PairsRemoved) {
		t.Fatalf("cascade differs after reload: %v vs %v", r1.PairsRemoved, r2.PairsRemoved)
	}
	if !reflect.DeepEqual(orig.Pairs(), got.Pairs()) {
		t.Fatal("post-cascade state differs")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.gob")
	orig := populated()
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != orig.NumPairs() {
		t.Fatalf("pairs %d, want %d", got.NumPairs(), orig.NumPairs())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Error("garbage input should fail to decode")
	}
}

func TestPersistEmptyKB(t *testing.T) {
	got := roundTrip(t, New())
	if got.NumPairs() != 0 || got.NumExtractions() != 0 {
		t.Error("empty KB round trip not empty")
	}
}
