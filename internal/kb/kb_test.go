package kb

import (
	"reflect"
	"testing"
)

func TestAddExtractionBasics(t *testing.T) {
	k := New()
	id := k.AddExtraction(1, "animal", []string{"animal"}, []string{"dog", "cat"}, nil, 1)
	if id != 0 {
		t.Fatalf("first extraction ID = %d, want 0", id)
	}
	if !k.Has("animal", "dog") || !k.Has("animal", "cat") {
		t.Fatal("pairs not recorded")
	}
	if k.Count("animal", "dog") != 1 {
		t.Errorf("count = %d, want 1", k.Count("animal", "dog"))
	}
	if k.Has("animal", "pig") {
		t.Error("unknown pair reported present")
	}
	if k.NumPairs() != 2 {
		t.Errorf("NumPairs = %d, want 2", k.NumPairs())
	}
}

func TestCountsAccumulateAcrossSentences(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"dog"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"dog", "cat"}, nil, 1)
	if k.Count("animal", "dog") != 2 {
		t.Errorf("count = %d, want 2", k.Count("animal", "dog"))
	}
}

func TestInstancesAtIteration(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"dog"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"lion"}, []string{"dog"}, 2)
	got := k.InstancesAtIteration("animal", 1)
	if !reflect.DeepEqual(got, []string{"dog"}) {
		t.Errorf("E(animal,1) = %v, want [dog]", got)
	}
	got = k.InstancesAtIteration("animal", 2)
	if !reflect.DeepEqual(got, []string{"dog", "lion"}) {
		t.Errorf("E(animal,2) = %v", got)
	}
}

func TestSubInstances(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	// chicken triggers pork, beef (the paper's S3).
	k.AddExtraction(2, "animal", []string{"food", "animal"}, []string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	// chicken also triggers duck.
	k.AddExtraction(3, "animal", nil, []string{"duck", "chicken"}, []string{"chicken"}, 3)
	got := k.SubInstances("animal", "chicken")
	want := []string{"beef", "duck", "pork"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sub(chicken) = %v, want %v", got, want)
	}
	if subs := k.SubInstances("animal", "pork"); len(subs) != 0 {
		t.Errorf("sub(pork) = %v, want empty", subs)
	}
}

func TestSubInstancesExcludeCoTriggers(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"dog", "cat"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"dog", "cat", "lion"}, []string{"dog", "cat"}, 2)
	got := k.SubInstances("animal", "dog")
	if !reflect.DeepEqual(got, []string{"lion"}) {
		t.Errorf("sub(dog) = %v, want [lion] (cat is a co-trigger, not a sub)", got)
	}
}

func TestRemovePairsSimple(t *testing.T) {
	k := New()
	k.AddExtraction(1, "country", nil, []string{"france", "new_york"}, nil, 1)
	res := k.RemovePairs([]Pair{{"country", "new_york"}})
	if k.Has("country", "new_york") {
		t.Error("removed pair still present")
	}
	if !k.Has("country", "france") {
		t.Error("unrelated pair was removed")
	}
	if len(res.PairsRemoved) != 1 {
		t.Errorf("PairsRemoved = %v", res.PairsRemoved)
	}
}

func TestRemovePairsCascade(t *testing.T) {
	k := New()
	// chicken is core; chicken triggers pork and beef; pork triggers milk.
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"pork", "beef"}, []string{"chicken"}, 2)
	k.AddExtraction(3, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	res := k.RemovePairs([]Pair{{"animal", "chicken"}})
	for _, e := range []string{"chicken", "pork", "beef", "milk"} {
		if k.Has("animal", e) {
			t.Errorf("%s survived the cascade", e)
		}
	}
	if res.ExtractionsRolled != 2 {
		t.Errorf("ExtractionsRolled = %d, want 2", res.ExtractionsRolled)
	}
	if res.CascadeDepth < 2 {
		t.Errorf("CascadeDepth = %d, want >= 2", res.CascadeDepth)
	}
}

func TestCascadeStopsAtSurvivingSupport(t *testing.T) {
	k := New()
	// pork is supported by chicken-triggered AND duck-triggered extractions.
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"duck"}, nil, 1)
	k.AddExtraction(3, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	k.AddExtraction(4, "animal", nil, []string{"pork"}, []string{"duck"}, 2)
	k.RemovePairs([]Pair{{"animal", "chicken"}})
	if !k.Has("animal", "pork") {
		t.Error("pork should survive: its duck-triggered support is intact")
	}
	if k.Count("animal", "pork") != 1 {
		t.Errorf("pork count = %d, want 1", k.Count("animal", "pork"))
	}
}

func TestExtractionWithLiveTriggerSurvives(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"duck"}, nil, 1)
	// One extraction with two triggers: survives while either is alive.
	k.AddExtraction(3, "animal", nil, []string{"pork"}, []string{"chicken", "duck"}, 2)
	k.RemovePairs([]Pair{{"animal", "chicken"}})
	if !k.Has("animal", "pork") {
		t.Error("pork should survive: duck trigger is alive")
	}
	k.RemovePairs([]Pair{{"animal", "duck"}})
	if k.Has("animal", "pork") {
		t.Error("pork should cascade once both triggers are gone")
	}
}

func TestRollbackExtractionsDirect(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	exID := k.AddExtraction(2, "animal", nil, []string{"pork", "beef"}, []string{"chicken"}, 2)
	k.AddExtraction(3, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	res := k.RollbackExtractions([]int{exID})
	if k.Has("animal", "pork") || k.Has("animal", "beef") || k.Has("animal", "milk") {
		t.Error("rollback did not cascade through pork")
	}
	if !k.Has("animal", "chicken") {
		t.Error("the trigger itself must survive a sentence-level rollback")
	}
	if res.ExtractionsRolled != 2 {
		t.Errorf("ExtractionsRolled = %d, want 2", res.ExtractionsRolled)
	}
}

func TestRollbackIdempotent(t *testing.T) {
	k := New()
	id := k.AddExtraction(1, "animal", nil, []string{"dog"}, nil, 1)
	k.RollbackExtractions([]int{id})
	res := k.RollbackExtractions([]int{id})
	if res.ExtractionsRolled != 0 {
		t.Error("double rollback must be a no-op")
	}
	res2 := k.RemovePairs([]Pair{{"animal", "dog"}})
	if len(res2.PairsRemoved) != 0 {
		t.Error("removing an already-zero pair must be a no-op")
	}
}

func TestRemovedPairExcludedFromListings(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"dog", "cat"}, nil, 1)
	k.RemovePairs([]Pair{{"animal", "cat"}})
	if got := k.Instances("animal"); !reflect.DeepEqual(got, []string{"dog"}) {
		t.Errorf("Instances = %v, want [dog]", got)
	}
	if got := k.InstancesAtIteration("animal", 1); !reflect.DeepEqual(got, []string{"dog"}) {
		t.Errorf("InstancesAtIteration = %v, want [dog]", got)
	}
	pairs := k.Pairs()
	if len(pairs) != 1 || pairs[0] != (Pair{"animal", "dog"}) {
		t.Errorf("Pairs = %v", pairs)
	}
}

func TestConceptsListing(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"dog"}, nil, 1)
	k.AddExtraction(2, "food", nil, []string{"beef"}, nil, 1)
	if got := k.Concepts(); !reflect.DeepEqual(got, []string{"animal", "food"}) {
		t.Errorf("Concepts = %v", got)
	}
	k.RemovePairs([]Pair{{"food", "beef"}})
	if got := k.Concepts(); !reflect.DeepEqual(got, []string{"animal"}) {
		t.Errorf("Concepts after removal = %v", got)
	}
}

func TestStats(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"dog", "cat"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"dog"}, nil, 1)
	s := k.Stats()
	if s.DistinctPairs != 2 || s.TotalCount != 3 || s.Concepts != 1 || s.ActiveExtractions != 2 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestTriggeredExtractions(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	ex := k.AddExtraction(2, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	got := k.TriggeredExtractions("animal", "chicken")
	if !reflect.DeepEqual(got, []int{ex}) {
		t.Errorf("TriggeredExtractions = %v, want [%d]", got, ex)
	}
}

func TestPairString(t *testing.T) {
	p := Pair{"animal", "dog"}
	if got := p.String(); got != "(dog isA animal)" {
		t.Errorf("String = %q", got)
	}
}

func TestSubInstancesIgnoreInactive(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	exID := k.AddExtraction(2, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	k.RollbackExtractions([]int{exID})
	if subs := k.SubInstances("animal", "chicken"); len(subs) != 0 {
		t.Errorf("sub(chicken) after rollback = %v, want empty", subs)
	}
}

func TestRemovePairsNoCascade(t *testing.T) {
	k := New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	res := k.RemovePairsNoCascade([]Pair{{"animal", "chicken"}})
	if k.Has("animal", "chicken") {
		t.Error("target pair must be removed")
	}
	if !k.Has("animal", "pork") {
		t.Error("no-cascade removal must not roll back triggered pairs")
	}
	if res.ExtractionsRolled != 0 {
		t.Errorf("ExtractionsRolled = %d, want 0", res.ExtractionsRolled)
	}
}
