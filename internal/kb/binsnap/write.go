package binsnap

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"driftclean/internal/kb"
)

// maxCount bounds every element count and ID so they fit the u32
// columns.
const maxCount = math.MaxUint32 - 1

// WriteFile encodes k and publishes it at path atomically (temp file +
// fsync + rename via kb.AtomicWriteFile): a crash or full disk
// mid-write never leaves a torn snapshot where a good one used to be.
func WriteFile(path string, k *kb.KB) error {
	data, err := Encode(k)
	if err != nil {
		return err
	}
	return kb.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Write encodes k to w and returns the number of bytes written. The
// whole image is assembled in memory first — the header's checksum
// covers the entire file, so it cannot be streamed.
func Write(w io.Writer, k *kb.KB) (int64, error) {
	data, err := Encode(k)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	if err != nil {
		return int64(n), fmt.Errorf("binsnap: writing snapshot: %w", err)
	}
	return int64(n), nil
}

// Encode serializes k into an in-memory binary snapshot image. The
// encoding is deterministic: two KBs with identical exported state
// produce byte-identical images.
func Encode(k *kb.KB) ([]byte, error) {
	exts, pairs := k.Export()
	if len(exts) > maxCount || len(pairs) > maxCount {
		return nil, fmt.Errorf("binsnap: KB too large for the u32 format: %d extractions, %d pairs", len(exts), len(pairs))
	}

	// String table: every distinct string, sorted, IDs = sorted rank.
	set := make(map[string]struct{})
	for i := range exts {
		ex := &exts[i]
		set[ex.Concept] = struct{}{}
		for _, s := range ex.Candidates {
			set[s] = struct{}{}
		}
		for _, s := range ex.Instances {
			set[s] = struct{}{}
		}
		for _, s := range ex.Triggers {
			set[s] = struct{}{}
		}
	}
	for i := range pairs {
		set[pairs[i].Concept] = struct{}{}
		set[pairs[i].Instance] = struct{}{}
	}
	strs := make([]string, 0, len(set))
	for s := range set {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	if len(strs) > maxCount {
		return nil, fmt.Errorf("binsnap: KB too large for the u32 format: %d distinct strings", len(strs))
	}
	id := make(map[string]uint32, len(strs))
	blobLen := 0
	for i, s := range strs {
		id[s] = uint32(i)
		blobLen += len(s)
	}

	b := newBuilder()

	// String sections.
	strOff := b.u32s(secStrOffsets, len(strs)+1)
	blob := make([]byte, 0, blobLen)
	for i, s := range strs {
		strOff.set(i, uint32(len(blob)))
		blob = append(blob, s...)
	}
	strOff.set(len(strs), uint32(len(blob)))
	b.raw(secStrBlob, blob)

	// Pair sections. Export returns pairs sorted by (concept, instance)
	// name, and string IDs are name ranks, so the groups come out in
	// ascending concept-ID order with instances ascending within each.
	conceptIDs := []uint32{}
	conceptPairStart := []uint32{}
	pairInstance := b.u32s(secPairInstance, len(pairs))
	pairCount := b.u32s(secPairCount, len(pairs))
	pairFirst := b.u32s(secPairFirst, len(pairs))
	pairExtStart := b.u32s(secPairExtStart, len(pairs)+1)
	var pairExtIDs []uint32
	pairIndex := make(map[kb.Pair]int, len(pairs))
	activeByConcept := map[uint32]bool{}
	prevConcept := uint32(math.MaxUint32)
	for i := range pairs {
		ps := &pairs[i]
		cid := id[ps.Concept]
		if cid != prevConcept {
			conceptIDs = append(conceptIDs, cid)
			conceptPairStart = append(conceptPairStart, uint32(i))
			prevConcept = cid
		}
		if ps.Count < 0 || ps.Count > maxCount {
			return nil, fmt.Errorf("binsnap: pair (%s isA %s) has count %d outside the u32 format", ps.Instance, ps.Concept, ps.Count)
		}
		if ps.FirstIter < 0 || ps.FirstIter > maxCount {
			return nil, fmt.Errorf("binsnap: pair (%s isA %s) has first iteration %d outside the u32 format", ps.Instance, ps.Concept, ps.FirstIter)
		}
		pairInstance.set(i, id[ps.Instance])
		pairCount.set(i, uint32(ps.Count))
		pairFirst.set(i, uint32(ps.FirstIter))
		pairExtStart.set(i, uint32(len(pairExtIDs)))
		for _, exID := range ps.Extractions {
			if exID < 0 || exID >= len(exts) {
				return nil, fmt.Errorf("binsnap: pair (%s isA %s) references extraction %d of %d", ps.Instance, ps.Concept, exID, len(exts))
			}
			pairExtIDs = append(pairExtIDs, uint32(exID))
		}
		pairIndex[kb.Pair{Concept: ps.Concept, Instance: ps.Instance}] = i
		if ps.Count > 0 {
			activeByConcept[cid] = true
		}
	}
	pairExtStart.set(len(pairs), uint32(len(pairExtIDs)))
	b.u32Slice(secPairExtIDs, pairExtIDs)
	b.u32Slice(secConceptIDs, conceptIDs)
	conceptPairStart = append(conceptPairStart, uint32(len(pairs)))
	b.u32Slice(secConceptPair, conceptPairStart)

	// Extraction sections, plus the triggered-by lists rebuilt exactly
	// as the live KB maintains them: appended in extraction-ID order.
	extSentence := b.u32s(secExtSentence, len(exts))
	extConcept := b.u32s(secExtConcept, len(exts))
	extIter := b.u32s(secExtIter, len(exts))
	extActive := make([]byte, len(exts))
	candStart := b.u32s(secExtCandStart, len(exts)+1)
	instStart := b.u32s(secExtInstStart, len(exts)+1)
	trigStart := b.u32s(secExtTrigStart, len(exts)+1)
	var candIDs, instIDs, trigIDs []uint32
	trigLists := make([][]uint32, len(pairs))
	for i := range exts {
		ex := &exts[i]
		if ex.ID != i {
			return nil, fmt.Errorf("binsnap: extraction %d has ID %d", i, ex.ID)
		}
		if ex.SentenceID < 0 || ex.SentenceID > maxCount {
			return nil, fmt.Errorf("binsnap: extraction %d has sentence ID %d outside the u32 format", i, ex.SentenceID)
		}
		if ex.Iteration < 0 || ex.Iteration > maxCount {
			return nil, fmt.Errorf("binsnap: extraction %d has iteration %d outside the u32 format", i, ex.Iteration)
		}
		extSentence.set(i, uint32(ex.SentenceID))
		extConcept.set(i, id[ex.Concept])
		extIter.set(i, uint32(ex.Iteration))
		if ex.Active {
			extActive[i] = 1
		}
		candStart.set(i, uint32(len(candIDs)))
		for _, s := range ex.Candidates {
			candIDs = append(candIDs, id[s])
		}
		instStart.set(i, uint32(len(instIDs)))
		for _, s := range ex.Instances {
			instIDs = append(instIDs, id[s])
		}
		trigStart.set(i, uint32(len(trigIDs)))
		for _, s := range ex.Triggers {
			trigIDs = append(trigIDs, id[s])
			pi, ok := pairIndex[kb.Pair{Concept: ex.Concept, Instance: s}]
			if !ok {
				return nil, fmt.Errorf("binsnap: extraction %d triggered by (%s isA %s), which is not a recorded pair", i, s, ex.Concept)
			}
			trigLists[pi] = append(trigLists[pi], uint32(i))
		}
	}
	candStart.set(len(exts), uint32(len(candIDs)))
	instStart.set(len(exts), uint32(len(instIDs)))
	trigStart.set(len(exts), uint32(len(trigIDs)))
	b.raw(secExtActive, extActive)
	b.u32Slice(secExtCandIDs, candIDs)
	b.u32Slice(secExtInstIDs, instIDs)
	b.u32Slice(secExtTrigIDs, trigIDs)

	pairTrigStart := b.u32s(secTrigStart, len(pairs)+1)
	var pairTrigIDs []uint32
	for i := range trigLists {
		pairTrigStart.set(i, uint32(len(pairTrigIDs)))
		pairTrigIDs = append(pairTrigIDs, trigLists[i]...)
	}
	pairTrigStart.set(len(pairs), uint32(len(pairTrigIDs)))
	b.u32Slice(secTrigExtIDs, pairTrigIDs)

	// Reverse index (instance → concepts of active pairs) and the
	// active-concept list, both precomputed so Open does no O(KB) index
	// builds. Iterating pairs in storage order keeps every per-instance
	// concept list ascending.
	revStart := b.u32s(secRevStart, len(strs)+1)
	revLists := make([][]uint32, len(strs))
	for i := range pairs {
		if pairs[i].Count > 0 {
			iid := id[pairs[i].Instance]
			revLists[iid] = append(revLists[iid], id[pairs[i].Concept])
		}
	}
	var revIDs []uint32
	for i := range revLists {
		revStart.set(i, uint32(len(revIDs)))
		revIDs = append(revIDs, revLists[i]...)
	}
	revStart.set(len(strs), uint32(len(revIDs)))
	b.u32Slice(secRevConceptIDs, revIDs)

	active := []uint32{}
	for _, cid := range conceptIDs {
		if activeByConcept[cid] {
			active = append(active, cid)
		}
	}
	b.u32Slice(secActiveConcepts, active)

	return b.finish(k.Stats(), len(strs), len(conceptIDs), len(pairs), len(exts))
}

// builder accumulates section payloads and assembles the final image.
type builder struct {
	secs [numSections][]byte
}

func newBuilder() *builder { return &builder{} }

// u32Section is a fixed-length u32 column under construction.
type u32Section struct{ b []byte }

func (s u32Section) set(i int, v uint32) {
	binary.LittleEndian.PutUint32(s.b[i*4:], v)
}

// u32s allocates a u32 column of n elements for a section.
func (b *builder) u32s(sec, n int) u32Section {
	b.secs[sec] = make([]byte, n*4)
	return u32Section{b.secs[sec]}
}

// u32Slice stores a complete u32 column for a section.
func (b *builder) u32Slice(sec int, vals []uint32) {
	s := b.u32s(sec, len(vals))
	for i, v := range vals {
		s.set(i, v)
	}
}

// raw stores raw bytes for a section.
func (b *builder) raw(sec int, data []byte) { b.secs[sec] = data }

// finish lays the header and sections out into the final image and
// stamps the checksum.
func (b *builder) finish(stats kb.Stats, nStrings, nConcepts, nPairs, nExts int) ([]byte, error) {
	total := headerSize
	offs := make([]int, numSections)
	for i, sec := range b.secs {
		total = (total + 7) &^ 7 // 8-byte section alignment
		offs[i] = total
		total += len(sec)
	}
	data := make([]byte, total)
	copy(data[offMagic:], Magic)
	le := binary.LittleEndian
	le.PutUint32(data[offVersion:], FormatVersion)
	le.PutUint32(data[offFlags:], 0)
	le.PutUint64(data[offStats:], uint64(stats.DistinctPairs))
	le.PutUint64(data[offStats+8:], uint64(stats.TotalCount))
	le.PutUint64(data[offStats+16:], uint64(stats.Concepts))
	le.PutUint64(data[offStats+24:], uint64(stats.ActiveExtractions))
	le.PutUint32(data[offCounts:], uint32(nStrings))
	le.PutUint32(data[offCounts+4:], uint32(nConcepts))
	le.PutUint32(data[offCounts+8:], uint32(nPairs))
	le.PutUint32(data[offCounts+12:], uint32(nExts))
	for i, sec := range b.secs {
		le.PutUint64(data[offSections+i*16:], uint64(offs[i]))
		le.PutUint64(data[offSections+i*16+8:], uint64(len(sec)))
		copy(data[offs[i]:], sec)
	}
	le.PutUint32(data[offChecksum:], checksumOf(data))
	return data, nil
}
