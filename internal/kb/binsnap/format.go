// Package binsnap implements the compact columnar on-disk KB snapshot
// format and its zero-copy mmap reader.
//
// The gob format in internal/kb rebuilds the whole graph on load: every
// reload re-decodes every record, re-allocates every slice and
// re-populates every index map, so reload latency and per-replica heap
// both scale with KB size. This package stores the KB the way PR 5's
// hot path stores it in memory — a deduplicated, lexicographically
// sorted string table plus CSR adjacency arrays (concepts → pairs →
// supporting extractions → trigger edges) and precomputed aggregate
// statistics — so opening a snapshot is mmap + header parse + one
// linear validation sweep. No per-record decode, no per-record
// allocation, and co-located replicas mapping the same file share its
// pages through the OS page cache instead of keeping N private heaps.
//
// Layout (all integers little-endian):
//
//	header   magic "DCKBSNP1", version, flags, CRC-32C whole-file
//	         checksum (field zeroed while hashing), precomputed
//	         kb.Stats, element counts, and a section table of
//	         (offset, length) pairs
//	sections string offsets + blob; concept IDs; concept→pair CSR;
//	         per-pair instance/count/first-iteration columns;
//	         pair→supporting-extraction CSR; pair→triggered-extraction
//	         CSR; per-extraction sentence/concept/iteration/active
//	         columns; extraction→candidate/instance/trigger CSRs;
//	         instance→concept reverse CSR; active-concept list
//
// String IDs are ranks in the sorted string table, so sorting by ID is
// sorting by name and every "sorted" query answer falls out of the
// storage order for free. Open validates structure exhaustively —
// checksum, section bounds, CSR monotonicity, ID ranges, stats
// consistency — so a snapshot that opens can never panic at query time;
// a torn or corrupted file fails Open with an error wrapping
// ErrCorrupt. Files are written via kb.AtomicWriteFile (temp + fsync +
// rename), so a crash mid-publish never replaces a good snapshot with a
// torn one.
package binsnap

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic is the 8-byte signature opening every binary KB snapshot;
// format auto-detection (internal/kb/kbio) sniffs it.
const Magic = "DCKBSNP1"

// FormatVersion is the on-disk format version this package reads and
// writes. Any other version fails Open.
const FormatVersion = 1

// ErrCorrupt marks a snapshot that failed checksum or structural
// validation: truncated, bit-flipped, or written by a buggy encoder.
// Every validation failure wraps it, so callers can errors.Is without
// string-matching.
var ErrCorrupt = errors.New("corrupt binary snapshot")

// corruptf wraps a validation failure with context and ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("binsnap: "+format+": %w", append(args, ErrCorrupt)...)
}

// Section indices of the section table, in file order. Each section is
// a flat array: u32 columns, u8 flags, or raw string bytes.
const (
	secStrOffsets  = iota // (nStrings+1) × u32: byte offsets into the blob
	secStrBlob            // raw string bytes, lexicographically sorted
	secConceptIDs         // nConcepts × u32: string IDs, strictly ascending
	secConceptPair        // (nConcepts+1) × u32: pair-range CSR per concept
	secPairInstance       // nPairs × u32: instance string ID per pair
	secPairCount          // nPairs × u32: active support count
	secPairFirst          // nPairs × u32: first supporting iteration
	secPairExtStart       // (nPairs+1) × u32: supporting-extraction CSR
	secPairExtIDs         // u32 extraction IDs supporting each pair
	secTrigStart          // (nPairs+1) × u32: triggered-extraction CSR
	secTrigExtIDs         // u32 extraction IDs each pair triggered
	secExtSentence        // nExts × u32: sentence ID
	secExtConcept         // nExts × u32: concept string ID
	secExtIter            // nExts × u32: extraction iteration
	secExtActive          // nExts × u8: 1 = active, 0 = rolled back
	secExtCandStart       // (nExts+1) × u32: candidate CSR
	secExtCandIDs         // u32 candidate string IDs
	secExtInstStart       // (nExts+1) × u32: instance CSR
	secExtInstIDs         // u32 instance string IDs
	secExtTrigStart       // (nExts+1) × u32: trigger CSR
	secExtTrigIDs         // u32 trigger string IDs
	secRevStart           // (nStrings+1) × u32: instance→concept reverse CSR
	secRevConceptIDs      // u32 concept string IDs of active pairs
	secActiveConcepts     // u32 string IDs of concepts with ≥1 active pair
	numSections
)

// Fixed header field offsets. The section table of numSections
// (offset, length) u64 pairs follows the counts; section data begins at
// headerSize, 8-byte aligned.
const (
	offMagic    = 0
	offVersion  = 8
	offFlags    = 12
	offChecksum = 16
	offReserved = 20
	offStats    = 24 // 4 × u64: distinct pairs, total count, concepts, active extractions
	offCounts   = 56 // 4 × u32: strings, concepts, pairs, extractions
	offSections = 72
	headerSize  = offSections + numSections*16
)

// crcTable is the Castagnoli polynomial table; CRC-32C is the storage
// checksum (hardware-accelerated in the stdlib), distinct from the
// FNV-64a fingerprints the bench layer uses for semantic identity.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksumOf computes the whole-file checksum with the checksum field
// itself treated as zero, so the stored value can be verified in place.
func checksumOf(data []byte) uint32 {
	crc := crc32.Update(0, crcTable, data[:offChecksum])
	var zero [4]byte
	crc = crc32.Update(crc, crcTable, zero[:])
	return crc32.Update(crc, crcTable, data[offChecksum+4:])
}
