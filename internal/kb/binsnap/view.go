package binsnap

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"

	"driftclean/internal/kb"
)

// Header summarizes a snapshot file's fixed header for tooling
// (cmd/kbsnap info).
type Header struct {
	Version     uint32
	Checksum    uint32
	FileBytes   int64
	Strings     int
	Concepts    int
	Pairs       int
	Extractions int
	Stats       kb.Stats
}

// View is a read-only KB view over a validated binary snapshot image,
// usually an mmap of the file. It satisfies kb.View, so the snapshot
// and serving layers answer queries from it exactly as they do from a
// heap KB. All methods are safe for unbounded concurrent use: the
// backing bytes are immutable and every query reads them in place.
//
// Only the string blob is copied to the heap at open (one allocation;
// every returned string is a substring header sharing it). The CSR
// columns — the bulk of the file — are read directly from the mapping,
// which is what lets co-located replicas share page cache instead of
// private heaps, and keeps open cost independent of how the KB grew.
type View struct {
	data   []byte
	munmap func([]byte) error // nil when heap-backed

	hdr  Header
	secs [numSections][]byte

	// blob is the heap copy of the string bytes; strs[i] is a substring
	// of it. Copying the blob (and nothing else) means no string ever
	// points into the mapping, so unmapping a dropped generation can
	// never invalidate results that escaped into caches.
	blob     string
	strs     []string
	concepts []string // active concept names, sorted
	stats    kb.Stats
}

// Open maps the snapshot file at path read-only and validates it fully
// — checksum, section bounds, CSR monotonicity, ID ranges, stats
// consistency. A snapshot that opens can never panic at query time; a
// torn, truncated or bit-flipped file fails here with an error wrapping
// ErrCorrupt. The mapping is released by Close, or by the garbage
// collector once the view (and every in-flight query holding it) is
// unreachable — replaced serving generations clean themselves up.
func Open(path string) (*View, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("binsnap: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("binsnap: %w", err)
	}
	if st.Size() > math.MaxInt-1 {
		return nil, corruptf("file size %d overflows this platform", st.Size())
	}
	data, munmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("binsnap: mapping %s: %w", path, err)
	}
	v, err := newView(data, munmap)
	if err != nil {
		if munmap != nil {
			_ = munmap(data)
		}
		return nil, err
	}
	if munmap != nil {
		runtime.SetFinalizer(v, func(v *View) { _ = v.munmap(v.data) })
	}
	return v, nil
}

// Decode validates an in-memory snapshot image and returns a view over
// it. The caller must not modify data afterwards.
func Decode(data []byte) (*View, error) {
	return newView(data, nil)
}

// Close releases the file mapping (a no-op for heap-backed views). The
// view must not be used after Close; serving paths normally never call
// it and let the finalizer reclaim dropped generations instead.
func (v *View) Close() error {
	if v.munmap == nil {
		return nil
	}
	runtime.SetFinalizer(v, nil)
	m := v.munmap
	v.munmap = nil
	return m(v.data)
}

// Header returns the decoded file header.
func (v *View) Header() Header { return v.hdr }

// newView parses and validates the image, then materializes the string
// table and active-concept list.
func newView(data []byte, munmap func([]byte) error) (*View, error) {
	v := &View{data: data, munmap: munmap}
	if err := v.parseHeader(); err != nil {
		return nil, err
	}
	if got := checksumOf(data); got != v.hdr.Checksum {
		return nil, corruptf("checksum mismatch: file says %08x, content hashes to %08x", v.hdr.Checksum, got)
	}
	if err := v.validate(); err != nil {
		return nil, err
	}
	v.materialize()
	return v, nil
}

// parseHeader checks magic, version and section-table sanity.
func (v *View) parseHeader() error {
	data := v.data
	if len(data) < headerSize {
		return corruptf("file is %d bytes, smaller than the %d-byte header", len(data), headerSize)
	}
	if string(data[offMagic:offMagic+8]) != Magic {
		return corruptf("bad magic %q", data[offMagic:offMagic+8])
	}
	le := binary.LittleEndian
	v.hdr.Version = le.Uint32(data[offVersion:])
	if v.hdr.Version != FormatVersion {
		return corruptf("format version %d, this build reads %d", v.hdr.Version, FormatVersion)
	}
	v.hdr.Checksum = le.Uint32(data[offChecksum:])
	v.hdr.FileBytes = int64(len(data))
	v.stats = kb.Stats{
		DistinctPairs:     int(le.Uint64(data[offStats:])),
		TotalCount:        int(le.Uint64(data[offStats+8:])),
		Concepts:          int(le.Uint64(data[offStats+16:])),
		ActiveExtractions: int(le.Uint64(data[offStats+24:])),
	}
	v.hdr.Stats = v.stats
	v.hdr.Strings = int(le.Uint32(data[offCounts:]))
	v.hdr.Concepts = int(le.Uint32(data[offCounts+4:]))
	v.hdr.Pairs = int(le.Uint32(data[offCounts+8:]))
	v.hdr.Extractions = int(le.Uint32(data[offCounts+12:]))

	for i := 0; i < numSections; i++ {
		off := le.Uint64(data[offSections+i*16:])
		ln := le.Uint64(data[offSections+i*16+8:])
		if off < headerSize || off > uint64(len(data)) || ln > uint64(len(data))-off {
			return corruptf("section %d spans [%d, %d+%d) outside the %d-byte file", i, off, off, ln, len(data))
		}
		v.secs[i] = data[off : off+ln : off+ln]
	}
	return nil
}

// u32 reads element i of a u32 column section.
func (v *View) u32(sec, i int) uint32 {
	return binary.LittleEndian.Uint32(v.secs[sec][i*4:])
}

// u32len returns the element count of a u32 column section.
func (v *View) u32len(sec int) int { return len(v.secs[sec]) / 4 }

// validate performs the full structural sweep. Everything queries will
// ever index is checked here, which is what makes the no-panic
// guarantee after a successful open.
func (v *View) validate() error {
	nStr, nCon, nPairs, nExts := v.hdr.Strings, v.hdr.Concepts, v.hdr.Pairs, v.hdr.Extractions

	// Column lengths must match the header counts.
	wantLen := [numSections]int{
		secStrOffsets:  (nStr + 1) * 4,
		secStrBlob:     -1,
		secConceptIDs:  nCon * 4,
		secConceptPair: (nCon + 1) * 4,
		secPairInstance: nPairs * 4, secPairCount: nPairs * 4, secPairFirst: nPairs * 4,
		secPairExtStart: (nPairs + 1) * 4, secPairExtIDs: -1,
		secTrigStart: (nPairs + 1) * 4, secTrigExtIDs: -1,
		secExtSentence: nExts * 4, secExtConcept: nExts * 4, secExtIter: nExts * 4,
		secExtActive:    nExts,
		secExtCandStart: (nExts + 1) * 4, secExtCandIDs: -1,
		secExtInstStart: (nExts + 1) * 4, secExtInstIDs: -1,
		secExtTrigStart: (nExts + 1) * 4, secExtTrigIDs: -1,
		secRevStart: (nStr + 1) * 4, secRevConceptIDs: -1,
		secActiveConcepts: -1,
	}
	for sec, want := range wantLen {
		if want >= 0 && len(v.secs[sec]) != want {
			return corruptf("section %d is %d bytes, want %d for the header counts", sec, len(v.secs[sec]), want)
		}
		if want == -1 && sec != secStrBlob && sec != secExtActive && len(v.secs[sec])%4 != 0 {
			return corruptf("section %d length %d is not a whole number of u32s", sec, len(v.secs[sec]))
		}
	}

	// String offsets: monotone, spanning the blob exactly; strings
	// strictly ascending (sorted and deduplicated — binary-search
	// lookups and by-ID ordering both depend on it).
	blobLen := len(v.secs[secStrBlob])
	if v.u32(secStrOffsets, 0) != 0 || int(v.u32(secStrOffsets, nStr)) != blobLen {
		return corruptf("string offsets do not span the %d-byte blob", blobLen)
	}
	for i := 0; i < nStr; i++ {
		a, b := v.u32(secStrOffsets, i), v.u32(secStrOffsets, i+1)
		if a > b || int(b) > blobLen {
			return corruptf("string %d spans [%d, %d) outside the %d-byte blob", i, a, b, blobLen)
		}
	}
	blob := v.secs[secStrBlob]
	for i := 0; i+1 < nStr; i++ {
		a0, a1 := v.u32(secStrOffsets, i), v.u32(secStrOffsets, i+1)
		b1 := v.u32(secStrOffsets, i+2)
		if string(blob[a0:a1]) >= string(blob[a1:b1]) {
			return corruptf("string table not strictly sorted at entry %d", i)
		}
	}

	// Concept list and pair grouping.
	if err := v.checkAscendingIDs(secConceptIDs, nStr, "concept"); err != nil {
		return err
	}
	if err := v.checkCSR(secConceptPair, nCon, nPairs, "concept→pair"); err != nil {
		return err
	}
	for ci := 0; ci < nCon; ci++ {
		lo, hi := int(v.u32(secConceptPair, ci)), int(v.u32(secConceptPair, ci+1))
		for pi := lo; pi < hi; pi++ {
			iid := v.u32(secPairInstance, pi)
			if int(iid) >= nStr {
				return corruptf("pair %d has instance string ID %d of %d", pi, iid, nStr)
			}
			if pi > lo && v.u32(secPairInstance, pi-1) >= iid {
				return corruptf("pairs of concept %d not strictly sorted at pair %d", ci, pi)
			}
		}
	}

	// Pair adjacency: supporting and triggered extraction lists.
	nPairExt := v.u32len(secPairExtIDs)
	if err := v.checkCSR(secPairExtStart, nPairs, nPairExt, "pair→extraction"); err != nil {
		return err
	}
	if err := v.checkIDRange(secPairExtIDs, nExts, "supporting extraction"); err != nil {
		return err
	}
	nTrig := v.u32len(secTrigExtIDs)
	if err := v.checkCSR(secTrigStart, nPairs, nTrig, "pair→triggered"); err != nil {
		return err
	}
	if err := v.checkIDRange(secTrigExtIDs, nExts, "triggered extraction"); err != nil {
		return err
	}

	// Extraction columns and token lists.
	if err := v.checkIDRange(secExtConcept, nStr, "extraction concept"); err != nil {
		return err
	}
	for i, a := range v.secs[secExtActive] {
		if a > 1 {
			return corruptf("extraction %d has active flag %d", i, a)
		}
	}
	for _, s := range [][3]int{
		{secExtCandStart, secExtCandIDs, 0},
		{secExtInstStart, secExtInstIDs, 0},
		{secExtTrigStart, secExtTrigIDs, 0},
	} {
		if err := v.checkCSR(s[0], nExts, v.u32len(s[1]), "extraction token"); err != nil {
			return err
		}
		if err := v.checkIDRange(s[1], nStr, "extraction token"); err != nil {
			return err
		}
	}

	// Stats must be derivable from the columns — a snapshot cannot lie
	// about its own aggregates.
	distinct, total := 0, 0
	activeConcepts := 0
	for ci := 0; ci < nCon; ci++ {
		lo, hi := int(v.u32(secConceptPair, ci)), int(v.u32(secConceptPair, ci+1))
		conceptActive := false
		for pi := lo; pi < hi; pi++ {
			if c := int(v.u32(secPairCount, pi)); c > 0 {
				distinct++
				total += c
				conceptActive = true
			}
		}
		if conceptActive {
			activeConcepts++
		}
	}
	activeExts := 0
	for _, a := range v.secs[secExtActive] {
		activeExts += int(a)
	}
	if v.stats.DistinctPairs != distinct || v.stats.TotalCount != total ||
		v.stats.Concepts != activeConcepts || v.stats.ActiveExtractions != activeExts {
		return corruptf("header stats %+v disagree with the columns (pairs %d, count %d, concepts %d, active extractions %d)",
			v.stats, distinct, total, activeConcepts, activeExts)
	}

	// Active-concept list: ascending concept IDs, each with ≥1 active
	// pair, and exactly as many as the stats promise.
	nActive := v.u32len(secActiveConcepts)
	if nActive != activeConcepts {
		return corruptf("active-concept list holds %d entries, stats say %d", nActive, activeConcepts)
	}
	if err := v.checkAscendingIDs(secActiveConcepts, nStr, "active concept"); err != nil {
		return err
	}
	for i := 0; i < nActive; i++ {
		cid := v.u32(secActiveConcepts, i)
		ci, ok := v.conceptIndexByID(cid)
		if !ok || !v.conceptHasActive(ci) {
			return corruptf("active-concept entry %d (string %d) has no active pair", i, cid)
		}
	}

	// Reverse index: every entry must be an active pair, per-instance
	// lists strictly ascending, and the total must equal the distinct
	// active pair count — together that pins the index to exactly the
	// active pair set.
	nRev := v.u32len(secRevConceptIDs)
	if err := v.checkCSR(secRevStart, nStr, nRev, "reverse index"); err != nil {
		return err
	}
	if nRev != distinct {
		return corruptf("reverse index holds %d entries, want %d active pairs", nRev, distinct)
	}
	for iid := 0; iid < nStr; iid++ {
		lo, hi := int(v.u32(secRevStart, iid)), int(v.u32(secRevStart, iid+1))
		for r := lo; r < hi; r++ {
			cid := v.u32(secRevConceptIDs, r)
			if r > lo && v.u32(secRevConceptIDs, r-1) >= cid {
				return corruptf("reverse index of string %d not strictly sorted", iid)
			}
			pi, ok := v.pairIndexByIDs(cid, uint32(iid))
			if !ok || v.u32(secPairCount, pi) == 0 {
				return corruptf("reverse index lists (%d isA %d), which is not an active pair", iid, cid)
			}
		}
	}
	return nil
}

// checkCSR validates one offset column: n+1 entries, first 0, monotone,
// last equal to the target array length.
func (v *View) checkCSR(sec, n, target int, what string) error {
	if v.u32(sec, 0) != 0 || int(v.u32(sec, n)) != target {
		return corruptf("%s offsets do not span the %d-entry target", what, target)
	}
	for i := 0; i < n; i++ {
		if v.u32(sec, i) > v.u32(sec, i+1) {
			return corruptf("%s offsets decrease at entry %d", what, i)
		}
	}
	return nil
}

// checkIDRange validates that every entry of a u32 ID column is < limit.
func (v *View) checkIDRange(sec, limit int, what string) error {
	for i, n := 0, v.u32len(sec); i < n; i++ {
		if int(v.u32(sec, i)) >= limit {
			return corruptf("%s ID %d at entry %d out of range %d", what, v.u32(sec, i), i, limit)
		}
	}
	return nil
}

// checkAscendingIDs validates a strictly ascending u32 ID column with
// entries < limit.
func (v *View) checkAscendingIDs(sec, limit int, what string) error {
	if err := v.checkIDRange(sec, limit, what); err != nil {
		return err
	}
	for i, n := 1, v.u32len(sec); i < n; i++ {
		if v.u32(sec, i-1) >= v.u32(sec, i) {
			return corruptf("%s IDs not strictly ascending at entry %d", what, i)
		}
	}
	return nil
}

// materialize copies the string blob to the heap and builds the string
// and active-concept tables. This is the only O(vocabulary) work at
// open; everything else stays in the mapping.
func (v *View) materialize() {
	v.blob = string(v.secs[secStrBlob])
	nStr := v.hdr.Strings
	v.strs = make([]string, nStr)
	for i := 0; i < nStr; i++ {
		v.strs[i] = v.blob[v.u32(secStrOffsets, i):v.u32(secStrOffsets, i+1)]
	}
	nActive := v.u32len(secActiveConcepts)
	v.concepts = make([]string, nActive)
	for i := 0; i < nActive; i++ {
		v.concepts[i] = v.strs[v.u32(secActiveConcepts, i)]
	}
}

// stringID binary-searches the sorted string table for s.
func (v *View) stringID(s string) (uint32, bool) {
	i := sort.SearchStrings(v.strs, s)
	if i < len(v.strs) && v.strs[i] == s {
		return uint32(i), true
	}
	return 0, false
}

// conceptIndexByID binary-searches the concept list for a string ID.
func (v *View) conceptIndexByID(cid uint32) (int, bool) {
	n := v.u32len(secConceptIDs)
	i := sort.Search(n, func(i int) bool { return v.u32(secConceptIDs, i) >= cid })
	if i < n && v.u32(secConceptIDs, i) == cid {
		return i, true
	}
	return 0, false
}

// pairIndexByIDs binary-searches a concept's pair range for an instance
// string ID.
func (v *View) pairIndexByIDs(cid, iid uint32) (int, bool) {
	ci, ok := v.conceptIndexByID(cid)
	if !ok {
		return 0, false
	}
	lo, hi := int(v.u32(secConceptPair, ci)), int(v.u32(secConceptPair, ci+1))
	i := lo + sort.Search(hi-lo, func(i int) bool { return v.u32(secPairInstance, lo+i) >= iid })
	if i < hi && v.u32(secPairInstance, i) == iid {
		return i, true
	}
	return 0, false
}

// pairIndex resolves a (concept, instance) name pair to its pair index.
func (v *View) pairIndex(concept, instance string) (int, bool) {
	cid, ok := v.stringID(concept)
	if !ok {
		return 0, false
	}
	iid, ok := v.stringID(instance)
	if !ok {
		return 0, false
	}
	return v.pairIndexByIDs(cid, iid)
}

// conceptHasActive reports whether any pair of concept index ci has a
// positive count.
func (v *View) conceptHasActive(ci int) bool {
	lo, hi := int(v.u32(secConceptPair, ci)), int(v.u32(secConceptPair, ci+1))
	for pi := lo; pi < hi; pi++ {
		if v.u32(secPairCount, pi) > 0 {
			return true
		}
	}
	return false
}

// csrRange returns the [lo, hi) element range of entry i in an offset
// column.
func (v *View) csrRange(sec, i int) (int, int) {
	return int(v.u32(sec, i)), int(v.u32(sec, i+1))
}

// names materializes the string IDs of a CSR range into a name slice;
// empty ranges return nil, matching the KB's nil-preserving copies.
func (v *View) names(idSec, lo, hi int) []string {
	if lo >= hi {
		return nil
	}
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, v.strs[v.u32(idSec, i)])
	}
	return out
}
