package binsnap

import (
	"sort"

	"driftclean/internal/kb"
)

// The view answers the full read-only query surface. Every method here
// is a line-for-line port of the corresponding *kb.KB method onto the
// columnar layout — same traversal order, same tie-breaking, same
// nil-versus-empty results — because the serving layer promises
// byte-identical JSON regardless of which representation backs a
// snapshot (the differential tests in this package enforce it).
var _ kb.View = (*View)(nil)

// Stats returns the aggregate statistics precomputed at write time and
// re-verified against the columns at open.
func (v *View) Stats() kb.Stats { return v.stats }

// Concepts returns all concepts with at least one active instance,
// sorted. The slice is materialized once at open and shared; callers
// must not modify it.
func (v *View) Concepts() []string { return v.concepts }

// Instances returns the instances currently under a concept, sorted.
// Pairs are stored in instance-ID order and IDs are name ranks, so this
// is a filtered copy of a contiguous range — no sort at query time.
func (v *View) Instances(concept string) []string {
	out := []string{}
	cid, ok := v.stringID(concept)
	if !ok {
		return out
	}
	ci, ok := v.conceptIndexByID(cid)
	if !ok {
		return out
	}
	lo, hi := v.csrRange(secConceptPair, ci)
	for pi := lo; pi < hi; pi++ {
		if v.u32(secPairCount, pi) > 0 {
			out = append(out, v.strs[v.u32(secPairInstance, pi)])
		}
	}
	return out
}

// Has reports whether the pair is present with positive count.
func (v *View) Has(concept, instance string) bool {
	return v.Count(concept, instance) > 0
}

// Count returns the active support count of a pair (0 if absent).
func (v *View) Count(concept, instance string) int {
	pi, ok := v.pairIndex(concept, instance)
	if !ok {
		return 0
	}
	return int(v.u32(secPairCount, pi))
}

// NumPairs returns the number of distinct pairs with positive count.
func (v *View) NumPairs() int { return v.stats.DistinctPairs }

// NumExtractions returns the total number of recorded extractions,
// including rolled-back ones.
func (v *View) NumExtractions() int { return v.hdr.Extractions }

// ExtractionAt materializes the extraction record with the given ID.
// Unlike the columnar query methods this allocates; it exists for
// tooling and tests, not hot paths.
func (v *View) ExtractionAt(id int) kb.Extraction {
	clo, chi := v.csrRange(secExtCandStart, id)
	ilo, ihi := v.csrRange(secExtInstStart, id)
	tlo, thi := v.csrRange(secExtTrigStart, id)
	return kb.Extraction{
		ID:         id,
		SentenceID: int(v.u32(secExtSentence, id)),
		Concept:    v.strs[v.u32(secExtConcept, id)],
		Candidates: v.names(secExtCandIDs, clo, chi),
		Instances:  v.names(secExtInstIDs, ilo, ihi),
		Triggers:   v.names(secExtTrigIDs, tlo, thi),
		Iteration:  int(v.u32(secExtIter, id)),
		Active:     v.secs[secExtActive][id] == 1,
	}
}

// ScanActiveExtractions calls yield with the concept of every active
// extraction, in extraction-ID order.
func (v *View) ScanActiveExtractions(yield func(concept string)) {
	for id, a := range v.secs[secExtActive] {
		if a == 1 {
			yield(v.strs[v.u32(secExtConcept, id)])
		}
	}
}

// ConceptsOfInstance returns all concepts currently holding the
// instance with positive count, sorted — a direct read of the on-disk
// reverse index, nil when the instance is unknown (matching the KB's
// scan, which appends to a nil slice).
func (v *View) ConceptsOfInstance(instance string) []string {
	iid, ok := v.stringID(instance)
	if !ok {
		return nil
	}
	lo, hi := v.csrRange(secRevStart, int(iid))
	return v.names(secRevConceptIDs, lo, hi)
}

// SubInstances returns sub(e): the set of instances whose extraction
// under the concept was triggered by the given instance, across all
// active extractions where it is a trigger. The trigger itself is
// excluded, as are co-triggers of those extractions.
func (v *View) SubInstances(concept, instance string) []string {
	pi, ok := v.pairIndex(concept, instance)
	if !ok {
		return []string{}
	}
	selfID, _ := v.stringID(instance)
	seen := map[uint32]struct{}{}
	lo, hi := v.csrRange(secTrigStart, pi)
	for t := lo; t < hi; t++ {
		exID := int(v.u32(secTrigExtIDs, t))
		if v.secs[secExtActive][exID] != 1 {
			continue
		}
		ilo, ihi := v.csrRange(secExtInstStart, exID)
		tlo, thi := v.csrRange(secExtTrigStart, exID)
	instances:
		for i := ilo; i < ihi; i++ {
			eid := v.u32(secExtInstIDs, i)
			if eid == selfID {
				continue
			}
			for t2 := tlo; t2 < thi; t2++ {
				if v.u32(secExtTrigIDs, t2) == eid {
					continue instances
				}
			}
			seen[eid] = struct{}{}
		}
	}
	ids := make([]uint32, 0, len(seen))
	for eid := range seen {
		ids = append(ids, eid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, eid := range ids {
		out = append(out, v.strs[eid]) // ID order is name order
	}
	return out
}

// Explain traces the provenance of a pair; ok=false when the pair is
// not present with positive count. At most maxSupports supporting
// extractions are traced (0 means all).
func (v *View) Explain(concept, instance string, maxSupports int) (kb.Explanation, bool) {
	pi, ok := v.pairIndex(concept, instance)
	if !ok || v.u32(secPairCount, pi) == 0 {
		return kb.Explanation{}, false
	}
	ex := kb.Explanation{
		Pair:  kb.Pair{Concept: concept, Instance: instance},
		Count: int(v.u32(secPairCount, pi)),
	}
	lo, hi := v.csrRange(secPairExtStart, pi)
	for s := lo; s < hi; s++ {
		exID := int(v.u32(secPairExtIDs, s))
		if v.secs[secExtActive][exID] != 1 {
			continue
		}
		tlo, thi := v.csrRange(secExtTrigStart, exID)
		ex.Supports = append(ex.Supports, kb.Support{
			ExtractionID: exID,
			SentenceID:   int(v.u32(secExtSentence, exID)),
			Iteration:    int(v.u32(secExtIter, exID)),
			Triggers:     v.names(secExtTrigIDs, tlo, thi),
			Chain:        v.traceChain(concept, instance),
		})
		if maxSupports > 0 && len(ex.Supports) >= maxSupports {
			break
		}
	}
	return ex, true
}

// traceChain follows trigger links from the pair back to a core pair,
// choosing at each hop the earliest-iteration active supporting
// extraction and its first still-living trigger. Cycles are cut by a
// visited set. Exact port of (*kb.KB).traceChain.
func (v *View) traceChain(concept, instance string) []kb.ChainLink {
	var chain []kb.ChainLink
	cid, ok := v.stringID(concept)
	if !ok {
		return chain
	}
	visited := map[uint32]bool{}
	cur, ok := v.stringID(instance)
	if !ok {
		return chain
	}
	for {
		if visited[cur] {
			break
		}
		visited[cur] = true
		pi, ok := v.pairIndexByIDs(cid, cur)
		if !ok || v.u32(secPairCount, pi) == 0 {
			break
		}
		first := int(v.u32(secPairFirst, pi))
		link := kb.ChainLink{
			Pair:      kb.Pair{Concept: concept, Instance: v.strs[cur]},
			Iteration: first,
			Core:      first <= 1,
		}
		chain = append(chain, link)
		if link.Core {
			break
		}
		next, ok := v.earliestLivingTrigger(cid, pi)
		if !ok {
			break
		}
		cur = next
	}
	return chain
}

// earliestLivingTrigger returns the string ID of a trigger of the
// pair's earliest active extraction that is still present with positive
// count. Exact port of (*kb.KB).earliestLivingTrigger, operating on the
// pair's stored support list.
func (v *View) earliestLivingTrigger(cid uint32, pi int) (uint32, bool) {
	best := uint32(0)
	found := false
	bestIter := int(^uint(0) >> 1)
	lo, hi := v.csrRange(secPairExtStart, pi)
	for s := lo; s < hi; s++ {
		exID := int(v.u32(secPairExtIDs, s))
		if v.secs[secExtActive][exID] != 1 || int(v.u32(secExtIter, exID)) >= bestIter {
			continue
		}
		tlo, thi := v.csrRange(secExtTrigStart, exID)
		for t := tlo; t < thi; t++ {
			tid := v.u32(secExtTrigIDs, t)
			if tpi, ok := v.pairIndexByIDs(cid, tid); ok && v.u32(secPairCount, tpi) > 0 {
				best, bestIter, found = tid, int(v.u32(secExtIter, exID)), true
				break
			}
		}
	}
	return best, found
}

// DriftDepth returns, for every active pair of a concept, the length of
// its provenance chain back to the core (1 for core pairs).
func (v *View) DriftDepth(concept string) map[string]int {
	out := map[string]int{}
	for _, e := range v.Instances(concept) {
		out[e] = len(v.traceChain(concept, e))
	}
	return out
}

// TopDrifted returns up to n instances of the concept with the deepest
// provenance chains, deepest first (ties by name).
func (v *View) TopDrifted(concept string, n int) []string {
	depth := v.DriftDepth(concept)
	names := make([]string, 0, len(depth))
	for e := range depth {
		names = append(names, e)
	}
	sort.Slice(names, func(i, j int) bool {
		if depth[names[i]] != depth[names[j]] {
			return depth[names[i]] > depth[names[j]]
		}
		return names[i] < names[j]
	})
	if n < len(names) {
		names = names[:n]
	}
	return names
}

// ToKB materializes a fully mutable heap KB from the view, validating
// through kb.Build exactly as a gob load does. This is the escape hatch
// for tools that need to mutate (cmd/kbsnap converting binary → gob);
// serving paths never call it.
func (v *View) ToKB() (*kb.KB, error) {
	exts := make([]kb.Extraction, v.hdr.Extractions)
	for i := range exts {
		exts[i] = v.ExtractionAt(i)
	}
	pairs := make([]kb.PairState, 0, v.hdr.Pairs)
	nCon := v.hdr.Concepts
	for ci := 0; ci < nCon; ci++ {
		concept := v.strs[v.u32(secConceptIDs, ci)]
		lo, hi := v.csrRange(secConceptPair, ci)
		for pi := lo; pi < hi; pi++ {
			elo, ehi := v.csrRange(secPairExtStart, pi)
			ids := make([]int, 0, ehi-elo)
			for s := elo; s < ehi; s++ {
				ids = append(ids, int(v.u32(secPairExtIDs, s)))
			}
			pairs = append(pairs, kb.PairState{
				Concept:     concept,
				Instance:    v.strs[v.u32(secPairInstance, pi)],
				Count:       int(v.u32(secPairCount, pi)),
				FirstIter:   int(v.u32(secPairFirst, pi)),
				Extractions: ids,
			})
		}
	}
	return kb.Build(exts, pairs)
}
