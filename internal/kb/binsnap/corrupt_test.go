package binsnap

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"driftclean/internal/kb"
)

// restamp recomputes and stores the checksum so structural corruptions
// reach the structural validators instead of being caught by CRC.
func restamp(data []byte) {
	binary.LittleEndian.PutUint32(data[offChecksum:], checksumOf(data))
}

// mustDecodeFail asserts Decode rejects data with ErrCorrupt — and, by
// not panicking, that validation never indexes past what it has proven.
func mustDecodeFail(t *testing.T, data []byte, what string) {
	t.Helper()
	v, err := Decode(data)
	if err == nil {
		t.Fatalf("%s: corrupt image decoded without error", what)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error %v does not wrap ErrCorrupt", what, err)
	}
	if v != nil {
		t.Fatalf("%s: corrupt decode returned a view", what)
	}
}

func encodeSmall(t *testing.T) []byte {
	t.Helper()
	data, err := Encode(smallKB())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := encodeSmall(t)
	// Every prefix must fail — header cut short, section table cut
	// short, section data cut short. None may panic.
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(data))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	orig := encodeSmall(t)
	// Without restamping, the CRC must catch any single-bit damage.
	for off := 0; off < len(orig); off += 7 {
		data := append([]byte(nil), orig...)
		data[off] ^= 0x40
		if _, err := Decode(data); err == nil {
			t.Fatalf("bit flip at byte %d decoded without error", off)
		}
	}
}

func TestDecodeRejectsRestampedFieldDamage(t *testing.T) {
	orig := encodeSmall(t)
	flip := func(mutate func(data []byte)) []byte {
		data := append([]byte(nil), orig...)
		mutate(data)
		restamp(data)
		return data
	}
	le := binary.LittleEndian
	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", flip(func(d []byte) { d[0] = 'X' })},
		{"future version", flip(func(d []byte) { le.PutUint32(d[offVersion:], FormatVersion+1) })},
		{"zero version", flip(func(d []byte) { le.PutUint32(d[offVersion:], 0) })},
		{"inflated pair stats", flip(func(d []byte) { le.PutUint64(d[offStats:], 999) })},
		{"inflated total count", flip(func(d []byte) { le.PutUint64(d[offStats+8:], 999) })},
		{"inflated concept stats", flip(func(d []byte) { le.PutUint64(d[offStats+16:], 999) })},
		{"inflated active extractions", flip(func(d []byte) { le.PutUint64(d[offStats+24:], 999) })},
		{"string count beyond section", flip(func(d []byte) { le.PutUint32(d[offCounts:], 1<<20) })},
		{"pair count beyond section", flip(func(d []byte) { le.PutUint32(d[offCounts+8:], 1<<20) })},
		{"extraction count beyond section", flip(func(d []byte) { le.PutUint32(d[offCounts+12:], 1<<20) })},
		{"section offset into header", flip(func(d []byte) { le.PutUint64(d[offSections:], 0) })},
		{"section beyond file", flip(func(d []byte) { le.PutUint64(d[offSections+8:], 1<<40) })},
		{"section length overflows file", flip(func(d []byte) {
			le.PutUint64(d[offSections+secStrBlob*16+8:], 1<<40)
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { mustDecodeFail(t, tc.data, tc.name) })
	}
}

// sectionBounds reads a section's (offset, length) from the header.
func sectionBounds(data []byte, sec int) (int, int) {
	le := binary.LittleEndian
	off := int(le.Uint64(data[offSections+sec*16:]))
	ln := int(le.Uint64(data[offSections+sec*16+8:]))
	return off, ln
}

func TestDecodeRejectsRestampedColumnDamage(t *testing.T) {
	orig := encodeSmall(t)
	// Corrupt the first u32 of each column section to an enormous value:
	// CSR spans, ID ranges and sort invariants must all catch their own.
	// Free-value columns (first iterations, sentence IDs, extraction
	// iterations) carry no invariant — any u32 is legal data there — so
	// they are skipped, along with the non-u32 sections.
	free := map[int]bool{
		secStrBlob: true, secExtActive: true,
		secPairFirst: true, secExtSentence: true, secExtIter: true,
	}
	for sec := 0; sec < numSections; sec++ {
		if free[sec] {
			continue
		}
		off, ln := sectionBounds(orig, sec)
		if ln < 4 {
			continue
		}
		data := append([]byte(nil), orig...)
		binary.LittleEndian.PutUint32(data[off:], 1<<30)
		restamp(data)
		if _, err := Decode(data); err == nil {
			t.Fatalf("section %d: poisoned first entry decoded without error", sec)
		}
	}
	// An out-of-range active flag must be rejected too.
	off, ln := sectionBounds(orig, secExtActive)
	if ln == 0 {
		t.Fatal("fixture has no extractions")
	}
	data := append([]byte(nil), orig...)
	data[off] = 2
	restamp(data)
	mustDecodeFail(t, data, "active flag 2")
}

func TestDecodeRejectsUnsortedStrings(t *testing.T) {
	// Swap the contents of the first two strings in the blob (equal
	// lengths not required — rewrite both ranges reversed) by reversing
	// the blob's first string bytes; simplest reliable break: make the
	// first string lexicographically larger than the second by raising
	// its first byte to 0xFF.
	data := encodeSmall(t)
	off, _ := sectionBounds(data, secStrBlob)
	data[off] = 0xFF
	restamp(data)
	mustDecodeFail(t, data, "unsorted strings")
}

func TestOpenRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := WriteFile(path, smallKB()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path)
	if err == nil {
		t.Fatal("corrupt file opened without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder: it must reject or
// accept without ever panicking, and anything it accepts must answer
// queries without panicking — the no-panic-after-open guarantee.
func FuzzDecode(f *testing.F) {
	small, err := Encode(smallKB())
	if err != nil {
		f.Fatal(err)
	}
	empty, err := Encode(kb.New())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(small)
	f.Add(empty)
	f.Add(small[:headerSize])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted: exercise every query path.
		for _, c := range v.Concepts() {
			for _, e := range v.Instances(c) {
				v.Count(c, e)
				v.SubInstances(c, e)
				if _, ok := v.Explain(c, e, 0); !ok {
					t.Fatalf("active pair (%s,%s) has no explanation", c, e)
				}
				v.ConceptsOfInstance(e)
			}
			v.DriftDepth(c)
			v.TopDrifted(c, 3)
		}
		v.ScanActiveExtractions(func(string) {})
		for i := 0; i < v.NumExtractions(); i++ {
			v.ExtractionAt(i)
		}
		if _, err := v.ToKB(); err != nil {
			t.Fatalf("accepted image fails KB materialization: %v", err)
		}
	})
}
