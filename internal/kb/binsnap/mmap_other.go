//go:build !unix

package binsnap

import (
	"io"
	"os"
)

// mmapFile is the portability fallback for platforms without Unix mmap:
// it reads the file into the heap. Queries behave identically; only the
// page-cache sharing between replicas is lost.
func mmapFile(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
