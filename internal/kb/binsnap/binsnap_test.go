package binsnap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"driftclean/internal/kb"
)

// smallKB mirrors the kb package's persistence fixture: multi-iteration
// provenance, a trigger chain, and a rolled-back extraction.
func smallKB() *kb.KB {
	k := kb.New()
	k.AddExtraction(0, "animal", nil, []string{"chicken", "dog"}, nil, 1)
	k.AddExtraction(1, "food", nil, []string{"beef", "pork"}, nil, 1)
	k.AddExtraction(2, "animal", []string{"food", "animal"}, []string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	k.AddExtraction(3, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	id := k.AddExtraction(4, "animal", nil, []string{"cheese"}, []string{"beef"}, 3)
	k.RollbackExtractions([]int{id})
	return k
}

// grownKB drives the same mutation API the pipeline uses, at a size
// where every CSR section has many entries, then rolls back a slice of
// it so inactive state is everywhere.
func grownKB(tb testing.TB, concepts, perIter, iters int) *kb.KB {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	k := kb.New()
	sentence := 0
	for c := 0; c < concepts; c++ {
		concept := fmt.Sprintf("concept%02d", c)
		known := []string{}
		for it := 1; it <= iters; it++ {
			for n := 0; n < perIter; n++ {
				inst := fmt.Sprintf("c%02d-i%02d-e%02d", c, it, n)
				var triggers []string
				if it > 1 {
					triggers = []string{known[rng.Intn(len(known))]}
				}
				cands := []string{concept}
				if rng.Intn(2) == 0 {
					cands = append(cands, fmt.Sprintf("concept%02d", rng.Intn(concepts)))
				}
				k.AddExtraction(sentence, concept, cands, []string{inst}, triggers, it)
				sentence++
				known = append(known, inst)
			}
		}
		// Roll one mid-chain pair back so cascades leave inactive
		// extractions and zero-count pairs behind.
		k.RemovePairs([]kb.Pair{{Concept: concept, Instance: fmt.Sprintf("c%02d-i02-e00", c)}})
	}
	return k
}

// decodeKB is the encode→Decode round trip under test.
func decodeKB(tb testing.TB, k *kb.KB) *View {
	tb.Helper()
	data, err := Encode(k)
	if err != nil {
		tb.Fatal(err)
	}
	v, err := Decode(data)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

// assertViewsAgree compares every kb.View method between the source KB
// and the binary view, over every concept, instance and pair the KB
// holds plus probes for absent names.
func assertViewsAgree(tb testing.TB, want kb.View, got kb.View) {
	tb.Helper()
	if w, g := want.Stats(), got.Stats(); w != g {
		tb.Fatalf("Stats: got %+v, want %+v", g, w)
	}
	wc, gc := want.Concepts(), got.Concepts()
	if !reflect.DeepEqual(wc, gc) {
		tb.Fatalf("Concepts: got %v, want %v", gc, wc)
	}
	probes := append(append([]string{}, wc...), "no-such-name", "")
	instSet := map[string]struct{}{}
	for _, c := range probes {
		wi, gi := want.Instances(c), got.Instances(c)
		if !reflect.DeepEqual(wi, gi) {
			tb.Fatalf("Instances(%q): got %v, want %v", c, gi, wi)
		}
		for _, e := range wi {
			instSet[e] = struct{}{}
		}
		if !reflect.DeepEqual(want.DriftDepth(c), got.DriftDepth(c)) {
			tb.Fatalf("DriftDepth(%q) differs", c)
		}
		for _, n := range []int{1, 3, 1 << 20} {
			if w, g := want.TopDrifted(c, n), got.TopDrifted(c, n); !reflect.DeepEqual(w, g) {
				tb.Fatalf("TopDrifted(%q, %d): got %v, want %v", c, n, g, w)
			}
		}
		for _, e := range append(wi, "no-such-name") {
			if w, g := want.Has(c, e), got.Has(c, e); w != g {
				tb.Fatalf("Has(%q,%q): got %v, want %v", c, e, g, w)
			}
			if w, g := want.Count(c, e), got.Count(c, e); w != g {
				tb.Fatalf("Count(%q,%q): got %d, want %d", c, e, g, w)
			}
			if w, g := want.SubInstances(c, e), got.SubInstances(c, e); !reflect.DeepEqual(w, g) {
				tb.Fatalf("SubInstances(%q,%q): got %v, want %v", c, e, g, w)
			}
			for _, maxS := range []int{0, 1, 2} {
				we, wok := want.Explain(c, e, maxS)
				ge, gok := got.Explain(c, e, maxS)
				if wok != gok || !reflect.DeepEqual(we, ge) {
					tb.Fatalf("Explain(%q,%q,%d): got %+v/%v, want %+v/%v", c, e, maxS, ge, gok, we, wok)
				}
			}
		}
	}
	for e := range instSet {
		if w, g := want.ConceptsOfInstance(e), got.ConceptsOfInstance(e); !reflect.DeepEqual(w, g) {
			tb.Fatalf("ConceptsOfInstance(%q): got %v, want %v", e, g, w)
		}
	}
	if w, g := want.ConceptsOfInstance("no-such-name"), got.ConceptsOfInstance("no-such-name"); !reflect.DeepEqual(w, g) {
		tb.Fatalf("ConceptsOfInstance(absent): got %v, want %v", g, w)
	}
	var ws, gs []string
	want.ScanActiveExtractions(func(c string) { ws = append(ws, c) })
	got.ScanActiveExtractions(func(c string) { gs = append(gs, c) })
	if !reflect.DeepEqual(ws, gs) {
		tb.Fatalf("ScanActiveExtractions: got %d concepts, want %d", len(gs), len(ws))
	}
}

func TestRoundTripSmall(t *testing.T) {
	k := smallKB()
	assertViewsAgree(t, k, decodeKB(t, k))
}

func TestRoundTripGrown(t *testing.T) {
	k := grownKB(t, 6, 5, 4)
	assertViewsAgree(t, k, decodeKB(t, k))
}

func TestRoundTripEmpty(t *testing.T) {
	k := kb.New()
	v := decodeKB(t, k)
	assertViewsAgree(t, k, v)
	if v.NumExtractions() != 0 || v.NumPairs() != 0 {
		t.Fatal("empty KB round trip not empty")
	}
}

func TestExtractionsSurviveRoundTrip(t *testing.T) {
	k := smallKB()
	v := decodeKB(t, k)
	if v.NumExtractions() != k.NumExtractions() {
		t.Fatalf("extractions: got %d, want %d", v.NumExtractions(), k.NumExtractions())
	}
	for i := 0; i < k.NumExtractions(); i++ {
		if w, g := *k.Extraction(i), v.ExtractionAt(i); !reflect.DeepEqual(w, g) {
			t.Fatalf("extraction %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	k := grownKB(t, 3, 4, 3)
	a, err := Encode(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(k.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of identical state differ")
	}
}

func TestToKBRoundTrip(t *testing.T) {
	k := grownKB(t, 4, 4, 3)
	v := decodeKB(t, k)
	back, err := v.ToKB()
	if err != nil {
		t.Fatal(err)
	}
	assertViewsAgree(t, k, back)
	if !reflect.DeepEqual(k.Pairs(), back.Pairs()) {
		t.Fatal("pairs differ after binary→KB materialization")
	}
	// Re-encoding the materialized KB must reproduce the image bit for
	// bit: the format captures exported state exactly, nothing more.
	data, err := Encode(k)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("binary→KB→binary is not the identity")
	}
}

func TestWriteFileAndOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.bin")
	k := grownKB(t, 3, 3, 3)
	if err := WriteFile(path, k); err != nil {
		t.Fatal(err)
	}
	v, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	assertViewsAgree(t, k, v)
	h := v.Header()
	if h.Version != FormatVersion {
		t.Fatalf("header version %d", h.Version)
	}
	if h.Stats != k.Stats() {
		t.Fatalf("header stats %+v, want %+v", h.Stats, k.Stats())
	}
	if h.Extractions != k.NumExtractions() {
		t.Fatalf("header extractions %d, want %d", h.Extractions, k.NumExtractions())
	}
}

func TestOpenMissingFile(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope.bin"))
	if err == nil {
		t.Fatal("opening a missing file should fail")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("a missing file is not a corrupt one")
	}
}

func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.bin")
	if err := WriteFile(path, smallKB()); err != nil {
		t.Fatal(err)
	}
	v, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStringsDoNotAliasMapping: every string a query returns must be
// backed by the heap blob copy, never the mapping — otherwise results
// cached across a generation swap would dangle after munmap. Closing
// the view first and querying after is the regression shape.
func TestStringsDoNotAliasMapping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kb.bin")
	k := smallKB()
	if err := WriteFile(path, k); err != nil {
		t.Fatal(err)
	}
	v, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	concepts := v.Concepts()
	instances := v.Instances("animal")
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// The mapping is gone; the strings must still be intact.
	if !reflect.DeepEqual(concepts, k.Concepts()) {
		t.Fatal("concept strings damaged after unmap")
	}
	if !reflect.DeepEqual(instances, k.Instances("animal")) {
		t.Fatal("instance strings damaged after unmap")
	}
}

func TestEncodeRejectsUnexportableState(t *testing.T) {
	// A trigger that is not a recorded pair cannot be represented: the
	// binary format hangs triggered-extraction lists off pair records.
	k := kb.New()
	k.AddExtraction(0, "animal", nil, []string{"dog"}, []string{"ghost"}, 1)
	if _, err := Encode(k); err == nil {
		t.Fatal("encoding a trigger with no pair record should fail")
	}
}
