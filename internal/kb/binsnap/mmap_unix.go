//go:build unix

package binsnap

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: co-located
// processes (or replicas in one process) opening the same snapshot file
// share its pages through the OS page cache instead of holding private
// copies. The returned release function unmaps; the file descriptor can
// be closed immediately after mapping.
func mmapFile(f *os.File, size int) ([]byte, func([]byte) error, error) {
	if size == 0 {
		// mmap(2) rejects zero-length mappings; an empty file fails header
		// validation anyway, so hand back an empty slice and no release.
		return []byte{}, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
