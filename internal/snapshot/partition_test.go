package snapshot

import (
	"reflect"
	"strconv"
	"testing"

	"driftclean/internal/kb"
)

// gridKB builds a KB with nc concepts of ni instances each, a trigger
// chain per concept, plus one rolled-back extraction so inactive state
// is exercised.
func gridKB(nc, ni int) *kb.KB {
	k := kb.New()
	sid := 0
	for c := 0; c < nc; c++ {
		concept := "concept" + strconv.Itoa(c)
		k.AddExtraction(sid, concept, []string{concept}, []string{"e0"}, nil, 1)
		sid++
		for i := 1; i < ni; i++ {
			k.AddExtraction(sid, concept, []string{concept},
				[]string{"e" + strconv.Itoa(i)}, []string{"e" + strconv.Itoa(i-1)}, i+1)
			sid++
		}
	}
	id := k.AddExtraction(sid, "concept0", nil, []string{"ghost"}, []string{"e0"}, 2)
	k.RollbackExtractions([]int{id})
	return k
}

// modOwner assigns concepts round-robin by a hash-free deterministic
// rule, good enough for partition-invariant tests.
func modOwner(n int) func(string) int {
	next, seen := 0, map[string]int{}
	return func(concept string) int {
		if sh, ok := seen[concept]; ok {
			return sh
		}
		sh := next % n
		seen[concept] = sh
		next++
		return sh
	}
}

func TestPartitionConceptsAreDisjointUnion(t *testing.T) {
	full := Freeze(gridKB(7, 5))
	for _, n := range []int{1, 2, 3, 7, 10} {
		parts := full.Partition(n, modOwner(n))
		if len(parts) != n {
			t.Fatalf("Partition(%d) returned %d views", n, len(parts))
		}
		seen := map[string]int{}
		var merged []string
		for i, p := range parts {
			for _, c := range p.Concepts() {
				if prev, dup := seen[c]; dup {
					t.Fatalf("n=%d: concept %q owned by shards %d and %d", n, c, prev, i)
				}
				seen[c] = i
				merged = append(merged, c)
			}
		}
		// Disjoint sorted subsets of a sorted list merge back sorted.
		sortedMerged := append([]string(nil), merged...)
		if len(sortedMerged) != len(full.Concepts()) {
			t.Fatalf("n=%d: %d concepts across shards, want %d", n, len(sortedMerged), len(full.Concepts()))
		}
		for _, c := range full.Concepts() {
			if _, ok := seen[c]; !ok {
				t.Fatalf("n=%d: concept %q lost in partition", n, c)
			}
		}
	}
}

func TestPartitionStatsSumToFull(t *testing.T) {
	full := Freeze(gridKB(6, 4))
	for _, n := range []int{1, 2, 5} {
		parts := full.Partition(n, modOwner(n))
		var sum kb.Stats
		for _, p := range parts {
			st := p.Stats()
			sum.Concepts += st.Concepts
			sum.DistinctPairs += st.DistinctPairs
			sum.TotalCount += st.TotalCount
			sum.ActiveExtractions += st.ActiveExtractions
		}
		if sum != full.Stats() {
			t.Fatalf("n=%d: shard stats sum %+v, full %+v", n, sum, full.Stats())
		}
	}
}

func TestPartitionOwnershipGuards(t *testing.T) {
	full := Freeze(gridKB(4, 3))
	parts := full.Partition(2, modOwner(2))

	owner, other := parts[0], parts[1]
	c := owner.Concepts()[0]
	if !owner.HasConcept(c) {
		t.Fatalf("owner does not report its concept %q", c)
	}
	if other.HasConcept(c) {
		t.Fatalf("non-owner reports concept %q", c)
	}
	if got := other.Instances(c); got != nil {
		t.Fatalf("non-owner Instances(%q) = %v, want nil", c, got)
	}
	if other.Has(c, "e0") || other.Count(c, "e0") != 0 {
		t.Fatal("non-owner answers pair reads")
	}
	if _, ok := other.Explain(c, "e1", 0); ok {
		t.Fatal("non-owner explains pairs")
	}
	if got := other.SubInstances(c, "e0"); got != nil {
		t.Fatalf("non-owner SubInstances = %v, want nil", got)
	}
	if got := other.DriftDepth(c); got != nil {
		t.Fatalf("non-owner DriftDepth = %v, want nil", got)
	}
	if got := other.TopDrifted(c, 3); got != nil {
		t.Fatalf("non-owner TopDrifted = %v, want nil", got)
	}

	// The owner's reads match the full snapshot's exactly.
	if !reflect.DeepEqual(owner.Instances(c), full.Instances(c)) {
		t.Fatal("owner instances differ from full view")
	}
	if !reflect.DeepEqual(owner.TopDrifted(c, 3), full.TopDrifted(c, 3)) {
		t.Fatal("owner drift ranking differs from full view")
	}
	ex1, ok1 := owner.Explain(c, "e1", 0)
	ex2, ok2 := full.Explain(c, "e1", 0)
	if ok1 != ok2 || !reflect.DeepEqual(ex1, ex2) {
		t.Fatal("owner explanation differs from full view")
	}
}

func TestPartitionSharesGeneration(t *testing.T) {
	full := Freeze(gridKB(3, 2))
	for _, p := range full.Partition(3, modOwner(3)) {
		if p.Generation() != full.Generation() {
			t.Fatalf("shard generation %d, parent %d", p.Generation(), full.Generation())
		}
	}
}

func TestPartitionReverseIndexScoped(t *testing.T) {
	full := Freeze(gridKB(4, 3))
	parts := full.Partition(2, modOwner(2))
	// Every concept of every instance, collected across shards, must
	// reproduce the full reverse index.
	for _, inst := range []string{"e0", "e1", "e2"} {
		var merged []string
		for _, p := range parts {
			merged = append(merged, p.ConceptsOfInstance(inst)...)
		}
		got := map[string]bool{}
		for _, c := range merged {
			got[c] = true
		}
		want := full.ConceptsOfInstance(inst)
		if len(merged) != len(want) {
			t.Fatalf("instance %q: %d concepts across shards, want %d", inst, len(merged), len(want))
		}
		for _, c := range want {
			if !got[c] {
				t.Fatalf("instance %q: concept %q missing from shard views", inst, c)
			}
		}
	}
}

func TestPartitionOfPartitionPanics(t *testing.T) {
	full := Freeze(gridKB(2, 2))
	part := full.Partition(2, modOwner(2))[0]
	defer func() {
		if recover() == nil {
			t.Fatal("partitioning a shard view must panic")
		}
	}()
	part.Partition(2, modOwner(2))
}

func TestPartitionEmptyShardIsServable(t *testing.T) {
	full := Freeze(gridKB(1, 2))
	parts := full.Partition(3, modOwner(3))
	empty := parts[1]
	if len(empty.Concepts()) != 0 {
		t.Fatalf("shard 1 owns %v, want nothing", empty.Concepts())
	}
	if st := empty.Stats(); st != (kb.Stats{}) {
		t.Fatalf("empty shard stats = %+v, want zero", st)
	}
	if empty.HasConcept("concept0") {
		t.Fatal("empty shard claims a concept")
	}
}
