// Package snapshot provides an immutable, concurrency-safe point-in-time
// view of a knowledge base. The extraction and cleaning pipeline mutates
// a *kb.KB in place from a single goroutine; readers — the kbquery CLI,
// the driftserve HTTP server, and any embedder of internal/serve — need a
// stable view that never changes underneath them. Freeze produces one:
// it deep-clones the KB (cheap: string contents are shared, only index
// slices and maps are copied) and never mutates the clone again, so
// every read method is safe for unbounded concurrent use without locks.
//
// Snapshot deliberately delegates all traversal — instance listing,
// provenance explanation, drift ranking — to the kb package itself, so
// the CLI and the server answer queries with the exact same code that
// the cleaning pipeline uses, rather than a parallel reimplementation
// that could drift out of sync.
package snapshot

import (
	"sync/atomic"

	"driftclean/internal/kb"
)

// generation is the process-wide monotonic snapshot counter. Each Freeze
// gets the next value; the serving layer keys its result cache by it so
// a hot reload implicitly invalidates every cached result.
var generation atomic.Uint64

// Snapshot is an immutable view of a KB frozen at a point in time. All
// methods are safe for concurrent use by any number of goroutines.
type Snapshot struct {
	gen uint64
	k   *kb.KB // private deep clone; never mutated after Freeze returns

	// Precomputed at freeze: aggregates every query path touches.
	stats    kb.Stats
	concepts []string
	// byInstance is the reverse index instance → concepts, so
	// ConceptsOfInstance is a map lookup instead of the full scan the
	// mutable KB performs.
	byInstance map[string][]string
}

// Freeze deep-clones the KB into a new immutable snapshot. The caller
// may keep mutating the original KB afterwards; the snapshot is
// unaffected. Aggregate statistics, the concept list and the reverse
// instance index are precomputed here so the hottest read paths do no
// work proportional to KB size.
func Freeze(source *kb.KB) *Snapshot {
	k := source.Clone()
	s := &Snapshot{
		gen:        generation.Add(1),
		k:          k,
		stats:      k.Stats(),
		concepts:   k.Concepts(),
		byInstance: make(map[string][]string),
	}
	for _, p := range k.Pairs() {
		s.byInstance[p.Instance] = append(s.byInstance[p.Instance], p.Concept)
	}
	return s
}

// Generation returns the snapshot's process-wide monotonic generation
// number. Later freezes always have strictly larger generations.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Stats returns the aggregate KB statistics, precomputed at freeze.
func (s *Snapshot) Stats() kb.Stats { return s.stats }

// Concepts returns all concepts with at least one active instance,
// sorted. The returned slice is shared and must not be modified.
func (s *Snapshot) Concepts() []string { return s.concepts }

// HasConcept reports whether the concept has at least one active
// instance in the snapshot.
func (s *Snapshot) HasConcept(concept string) bool {
	return len(s.k.Instances(concept)) > 0
}

// Instances returns the instances under a concept, sorted.
func (s *Snapshot) Instances(concept string) []string { return s.k.Instances(concept) }

// Has reports whether the pair is in the snapshot with positive count.
func (s *Snapshot) Has(concept, instance string) bool { return s.k.Has(concept, instance) }

// Count returns the active support count of a pair (0 if absent).
func (s *Snapshot) Count(concept, instance string) int { return s.k.Count(concept, instance) }

// Explain traces the provenance of a pair; ok=false when the pair is not
// in the snapshot. At most maxSupports supporting extractions are traced
// (0 means all).
func (s *Snapshot) Explain(concept, instance string, maxSupports int) (kb.Explanation, bool) {
	return s.k.Explain(concept, instance, maxSupports)
}

// SubInstances returns sub(e): instances whose extraction was triggered
// by the given instance, sorted.
func (s *Snapshot) SubInstances(concept, instance string) []string {
	return s.k.SubInstances(concept, instance)
}

// ConceptsOfInstance returns all concepts holding the instance, sorted.
// Unlike the mutable KB's full scan this is a single map lookup against
// the reverse index built at freeze. The returned slice is shared and
// must not be modified.
func (s *Snapshot) ConceptsOfInstance(instance string) []string {
	return s.byInstance[instance]
}

// DriftDepth returns, for every active pair of a concept, the length of
// its provenance chain back to the core (1 for core pairs).
func (s *Snapshot) DriftDepth(concept string) map[string]int { return s.k.DriftDepth(concept) }

// TopDrifted returns up to n instances of the concept with the deepest
// provenance chains, deepest first (ties by name).
func (s *Snapshot) TopDrifted(concept string, n int) []string { return s.k.TopDrifted(concept, n) }

// NumPairs returns the number of distinct active pairs.
func (s *Snapshot) NumPairs() int { return s.stats.DistinctPairs }
