// Package snapshot provides an immutable, concurrency-safe point-in-time
// view of a knowledge base. The extraction and cleaning pipeline mutates
// a *kb.KB in place from a single goroutine; readers — the kbquery CLI,
// the driftserve HTTP server, and any embedder of internal/serve — need a
// stable view that never changes underneath them. Freeze produces one:
// it deep-clones the KB (cheap: string contents are shared, only index
// slices and maps are copied) and never mutates the clone again, so
// every read method is safe for unbounded concurrent use without locks.
//
// Snapshot deliberately delegates all traversal — instance listing,
// provenance explanation, drift ranking — to the kb package itself, so
// the CLI and the server answer queries with the exact same code that
// the cleaning pipeline uses, rather than a parallel reimplementation
// that could drift out of sync.
package snapshot

import (
	"sync/atomic"

	"driftclean/internal/kb"
)

// generation is the process-wide monotonic snapshot counter. Each Freeze
// gets the next value; the serving layer keys its result cache by it so
// a hot reload implicitly invalidates every cached result.
var generation atomic.Uint64

// Snapshot is an immutable view of a KB frozen at a point in time. All
// methods are safe for concurrent use by any number of goroutines.
//
// A snapshot is either a full view (produced by Freeze or FreezeOwned)
// or a concept-partitioned shard view (produced by Partition): a shard
// view shares the parent's underlying KB view but answers only for the
// concepts it owns, so N shard views of one freeze cost N index slices,
// not N KB copies.
type Snapshot struct {
	gen uint64
	// k is the backing read-only view: a private deep clone of a heap
	// KB, or an inherently immutable mmap-backed binary snapshot view
	// (internal/kb/binsnap). It is never mutated after the freeze.
	k kb.View

	// Precomputed at freeze: aggregates every query path touches.
	stats    kb.Stats
	concepts []string
	// byInstance is the reverse index instance → concepts, so
	// ConceptsOfInstance is a map lookup instead of the full scan the
	// mutable KB performs. nil means the backing view answers
	// ConceptsOfInstance natively at lookup cost (the binary snapshot
	// stores the reverse index on disk) and the map would be pure
	// duplication.
	byInstance map[string][]string
	// owned, when non-nil, restricts the view to the concepts a
	// Partition call assigned to this shard; reads about any other
	// concept answer "not here". nil means the full, unpartitioned view.
	owned map[string]struct{}
}

// Freeze deep-clones the KB into a new immutable snapshot. The caller
// may keep mutating the original KB afterwards; the snapshot is
// unaffected. Aggregate statistics, the concept list and the reverse
// instance index are precomputed here so the hottest read paths do no
// work proportional to KB size.
func Freeze(source *kb.KB) *Snapshot {
	return FreezeOwned(source.Clone())
}

// FreezeOwned freezes a view the caller hands over without cloning it:
// the caller promises nothing will ever mutate it again. This is the
// zero-copy path for views that are immutable by construction — a KB
// just decoded from disk that nothing else references, or an
// mmap-backed binary snapshot view — and the reason a binary snapshot
// reload costs O(1) heap work regardless of KB size.
func FreezeOwned(v kb.View) *Snapshot {
	s := &Snapshot{
		gen:      generation.Add(1),
		k:        v,
		stats:    v.Stats(),
		concepts: v.Concepts(),
	}
	if k, ok := v.(*kb.KB); ok {
		// The mutable KB answers ConceptsOfInstance with a full scan;
		// precompute the reverse index once so serving lookups are O(1).
		s.byInstance = make(map[string][]string)
		for _, p := range k.Pairs() {
			s.byInstance[p.Instance] = append(s.byInstance[p.Instance], p.Concept)
		}
	}
	return s
}

// Generation returns the snapshot's process-wide monotonic generation
// number. Later freezes always have strictly larger generations; shard
// views share their parent freeze's generation.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Stats returns the aggregate KB statistics, precomputed at freeze. For
// a shard view the statistics are scoped to the owned concepts; summing
// every shard of a partition reproduces the parent's statistics exactly.
func (s *Snapshot) Stats() kb.Stats { return s.stats }

// Concepts returns all concepts with at least one active instance (of
// this shard, for a shard view), sorted. The returned slice is shared
// and must not be modified.
func (s *Snapshot) Concepts() []string { return s.concepts }

// owns reports whether this view answers for the concept.
func (s *Snapshot) owns(concept string) bool {
	if s.owned == nil {
		return true
	}
	_, ok := s.owned[concept]
	return ok
}

// HasConcept reports whether the concept has at least one active
// instance in the snapshot (and, for a shard view, is owned by it).
func (s *Snapshot) HasConcept(concept string) bool {
	return s.owns(concept) && len(s.k.Instances(concept)) > 0
}

// Instances returns the instances under a concept, sorted.
func (s *Snapshot) Instances(concept string) []string {
	if !s.owns(concept) {
		return nil
	}
	return s.k.Instances(concept)
}

// Has reports whether the pair is in the snapshot with positive count.
func (s *Snapshot) Has(concept, instance string) bool {
	return s.owns(concept) && s.k.Has(concept, instance)
}

// Count returns the active support count of a pair (0 if absent).
func (s *Snapshot) Count(concept, instance string) int {
	if !s.owns(concept) {
		return 0
	}
	return s.k.Count(concept, instance)
}

// Explain traces the provenance of a pair; ok=false when the pair is not
// in the snapshot. At most maxSupports supporting extractions are traced
// (0 means all).
func (s *Snapshot) Explain(concept, instance string, maxSupports int) (kb.Explanation, bool) {
	if !s.owns(concept) {
		return kb.Explanation{}, false
	}
	return s.k.Explain(concept, instance, maxSupports)
}

// SubInstances returns sub(e): instances whose extraction was triggered
// by the given instance, sorted.
func (s *Snapshot) SubInstances(concept, instance string) []string {
	if !s.owns(concept) {
		return nil
	}
	return s.k.SubInstances(concept, instance)
}

// ConceptsOfInstance returns all concepts holding the instance, sorted.
// Unlike the mutable KB's full scan this is a single lookup — against
// the reverse index built at freeze, or directly against a backing view
// that stores its reverse index natively. The returned slice is shared
// and must not be modified.
func (s *Snapshot) ConceptsOfInstance(instance string) []string {
	if s.byInstance != nil {
		return s.byInstance[instance]
	}
	return s.k.ConceptsOfInstance(instance)
}

// DriftDepth returns, for every active pair of a concept, the length of
// its provenance chain back to the core (1 for core pairs).
func (s *Snapshot) DriftDepth(concept string) map[string]int {
	if !s.owns(concept) {
		return nil
	}
	return s.k.DriftDepth(concept)
}

// TopDrifted returns up to n instances of the concept with the deepest
// provenance chains, deepest first (ties by name).
func (s *Snapshot) TopDrifted(concept string, n int) []string {
	if !s.owns(concept) {
		return nil
	}
	return s.k.TopDrifted(concept, n)
}

// NumPairs returns the number of distinct active pairs.
func (s *Snapshot) NumPairs() int { return s.stats.DistinctPairs }

// Partition splits the snapshot into n shard views by concept
// ownership: owner maps each concept name onto a shard index in
// [0, n). Every view shares the receiver's underlying KB clone — the
// split costs index slices and scoped statistics, not KB copies — and
// inherits its generation, so a router merging the shards' answers
// reproduces the unpartitioned responses byte for byte.
//
// Each shard view answers only for its owned concepts: reads about any
// other concept behave exactly as if the concept were absent. The
// scoped statistics of the n views sum field-wise to the receiver's
// (pairs and extractions both partition cleanly by concept).
//
// Partitioning an already-partitioned view is not supported; partition
// the full freeze instead.
func (s *Snapshot) Partition(n int, owner func(concept string) int) []*Snapshot {
	if s.owned != nil {
		panic("snapshot: Partition of an already-partitioned view")
	}
	if n < 1 {
		panic("snapshot: Partition into zero shards")
	}
	parts := make([]*Snapshot, n)
	for i := range parts {
		parts[i] = &Snapshot{
			gen:        s.gen,
			k:          s.k,
			byInstance: make(map[string][]string),
			owned:      make(map[string]struct{}),
		}
	}
	for _, c := range s.concepts {
		p := parts[owner(c)]
		p.concepts = append(p.concepts, c)
		p.owned[c] = struct{}{}
		p.stats.Concepts++
		for _, e := range s.k.Instances(c) {
			p.stats.DistinctPairs++
			p.stats.TotalCount += s.k.Count(c, e)
			p.byInstance[e] = append(p.byInstance[e], c)
		}
	}
	// Active extractions are concept-local, so each one belongs to
	// exactly the shard owning its concept — including extractions whose
	// concept no longer has active pairs (owner is still total).
	s.k.ScanActiveExtractions(func(concept string) {
		parts[owner(concept)].stats.ActiveExtractions++
	})
	return parts
}
