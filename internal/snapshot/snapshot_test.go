package snapshot

import (
	"reflect"
	"sync"
	"testing"

	"driftclean/internal/kb"
)

// fixtureKB builds a KB with a drift chain under "animal" and a second
// concept sharing the polysemous instance "jaguar".
func fixtureKB() *kb.KB {
	k := kb.New()
	k.AddExtraction(0, "animal", []string{"animal"}, []string{"dog", "jaguar"}, nil, 1)
	k.AddExtraction(1, "animal", []string{"animal", "car"}, []string{"dog", "wolf"}, []string{"dog"}, 2)
	k.AddExtraction(2, "animal", []string{"animal"}, []string{"wolf", "dingo"}, []string{"wolf"}, 3)
	k.AddExtraction(3, "car", []string{"car"}, []string{"jaguar", "mustang"}, nil, 1)
	return k
}

func TestFreezeMatchesSource(t *testing.T) {
	k := fixtureKB()
	s := Freeze(k)

	if !reflect.DeepEqual(s.Stats(), k.Stats()) {
		t.Errorf("snapshot stats %+v != kb %+v", s.Stats(), k.Stats())
	}
	if !reflect.DeepEqual(s.Concepts(), k.Concepts()) {
		t.Errorf("concepts %v != %v", s.Concepts(), k.Concepts())
	}
	for _, c := range k.Concepts() {
		if !s.HasConcept(c) {
			t.Errorf("HasConcept(%q) = false", c)
		}
		if !reflect.DeepEqual(s.Instances(c), k.Instances(c)) {
			t.Errorf("instances of %q differ", c)
		}
		if !reflect.DeepEqual(s.DriftDepth(c), k.DriftDepth(c)) {
			t.Errorf("drift depth of %q differs", c)
		}
		if !reflect.DeepEqual(s.TopDrifted(c, 3), k.TopDrifted(c, 3)) {
			t.Errorf("top drifted of %q differs", c)
		}
		for _, e := range k.Instances(c) {
			if s.Count(c, e) != k.Count(c, e) || s.Has(c, e) != k.Has(c, e) {
				t.Errorf("count/has of (%s,%s) differ", c, e)
			}
			if !reflect.DeepEqual(s.SubInstances(c, e), k.SubInstances(c, e)) {
				t.Errorf("subs of (%s,%s) differ", c, e)
			}
			if !reflect.DeepEqual(s.ConceptsOfInstance(e), k.ConceptsOfInstance(e)) {
				t.Errorf("ConceptsOfInstance(%q) = %v, want %v", e, s.ConceptsOfInstance(e), k.ConceptsOfInstance(e))
			}
		}
	}
	wantEx, wantOK := k.Explain("animal", "dingo", 0)
	gotEx, gotOK := s.Explain("animal", "dingo", 0)
	if gotOK != wantOK || !reflect.DeepEqual(gotEx, wantEx) {
		t.Error("snapshot explanation differs from kb explanation")
	}
	if s.HasConcept("no-such-concept") {
		t.Error("HasConcept true for absent concept")
	}
	if _, ok := s.Explain("animal", "absent", 0); ok {
		t.Error("Explain ok for absent pair")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	k := fixtureKB()
	s := Freeze(k)
	// Mutate the source after freezing: cascade-remove dog (takes wolf
	// and dingo with it).
	k.RemovePairs([]kb.Pair{{Concept: "animal", Instance: "dog"}})
	k.AddExtraction(9, "animal", []string{"animal"}, []string{"ferret"}, nil, 4)

	if !s.Has("animal", "dog") || !s.Has("animal", "dingo") {
		t.Error("source mutation leaked into snapshot")
	}
	if s.Has("animal", "ferret") {
		t.Error("post-freeze extraction visible in snapshot")
	}
	if got := s.Stats().DistinctPairs; got != 6 {
		t.Errorf("snapshot pairs = %d, want 6", got)
	}
}

func TestGenerationsMonotonic(t *testing.T) {
	k := fixtureKB()
	a, b, c := Freeze(k), Freeze(k), Freeze(k)
	if !(a.Generation() < b.Generation() && b.Generation() < c.Generation()) {
		t.Errorf("generations not strictly increasing: %d, %d, %d",
			a.Generation(), b.Generation(), c.Generation())
	}
}

// TestConcurrentReads hammers every read method from many goroutines;
// run under -race this proves the snapshot needs no locks.
func TestConcurrentReads(t *testing.T) {
	s := Freeze(fixtureKB())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Stats()
				for _, c := range s.Concepts() {
					for _, e := range s.Instances(c) {
						_ = s.Count(c, e)
						_ = s.SubInstances(c, e)
						_ = s.ConceptsOfInstance(e)
					}
					_ = s.TopDrifted(c, 5)
					_ = s.DriftDepth(c)
				}
				_, _ = s.Explain("animal", "dingo", 0)
			}
		}()
	}
	wg.Wait()
}
