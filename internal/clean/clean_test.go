package clean

import (
	"testing"

	"driftclean/internal/dp"
	"driftclean/internal/kb"
	"driftclean/internal/rank"
)

// paperExampleKB reproduces the worked example of Sec 4.1: the sentence
// "food from animals such as pork, beef and chicken" was resolved to
// "animal" because (chicken isA animal) was known. Pork and beef are
// strongly established under food; the Eq 21 check must prefer "food" and
// the extraction must roll back.
func paperExampleKB() *kb.KB {
	k := kb.New()
	for i := 0; i < 8; i++ {
		k.AddExtraction(i, "food", nil, []string{"pork", "beef", "chicken"}, nil, 1)
		k.AddExtraction(100+i, "animal", nil, []string{"chicken", "dog", "cat"}, nil, 1)
	}
	// The drifted extraction.
	k.AddExtraction(200, "animal", []string{"food", "animal"},
		[]string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	return k
}

func scoresFunc(k *kb.KB) func(string) rank.Scores {
	cache := map[string]rank.Scores{}
	return func(c string) rank.Scores {
		if s, ok := cache[c]; ok {
			return s
		}
		s := rank.RandomWalk(rank.BuildGraph(k, c), rank.DefaultConfig())
		cache[c] = s
		return s
	}
}

func driftedExtractionID(k *kb.KB) int {
	for id := 0; id < k.NumExtractions(); id++ {
		if ex := k.Extraction(id); ex.SentenceID == 200 {
			return id
		}
	}
	return -1
}

func TestEq21FlagsDriftedExtraction(t *testing.T) {
	k := paperExampleKB()
	ex := k.Extraction(driftedExtractionID(k))
	if ExtractionPassesCheck(k, ex, scoresFunc(k)) {
		t.Error("the paper's S3 extraction must fail the Eq 21 check")
	}
}

func TestEq21AcceptsCleanExtraction(t *testing.T) {
	k := paperExampleKB()
	// A genuinely animal-side ambiguous extraction: dog and cat are
	// strong under animal, absent under food.
	id := k.AddExtraction(300, "animal", []string{"animal", "food"},
		[]string{"dog", "cat"}, []string{"dog"}, 2)
	if !ExtractionPassesCheck(k, k.Extraction(id), scoresFunc(k)) {
		t.Error("a correctly resolved extraction must pass the Eq 21 check")
	}
}

func TestEq21SingleCandidateAlwaysPasses(t *testing.T) {
	k := paperExampleKB()
	id := k.AddExtraction(301, "animal", []string{"animal"}, []string{"dog"}, []string{"chicken"}, 2)
	if !ExtractionPassesCheck(k, k.Extraction(id), scoresFunc(k)) {
		t.Error("single-candidate extractions have nothing to re-decide")
	}
}

func TestSentenceScoreMatchesWorkedExample(t *testing.T) {
	// Fixed scores mirroring Example 1 of the paper.
	fixed := map[string]rank.Scores{
		"food":   {"pork": 0.15, "beef": 0.10, "chicken": 0.35},
		"animal": {"pork": 0.001, "beef": 0.002, "chicken": 0.25},
	}
	scoresOf := func(c string) rank.Scores { return fixed[c] }
	cands := []string{"food", "animal"}
	insts := []string{"pork", "beef", "chicken"}
	sAnimal := SentenceScore(insts, "animal", cands, scoresOf)
	sFood := SentenceScore(insts, "food", cands, scoresOf)
	if sAnimal >= sFood {
		t.Errorf("Score(s,animal)=%v must be below Score(s,food)=%v", sAnimal, sFood)
	}
	// The paper computes Score(s, animal) = 0.441.
	if sAnimal < 0.43 || sAnimal > 0.46 {
		t.Errorf("Score(s,animal) = %v, want ~0.441", sAnimal)
	}
}

func TestCleanRoundIntentional(t *testing.T) {
	k := paperExampleKB()
	labels := Labels{"animal": {"chicken": dp.Intentional}}
	rr := CleanRound(k, labels, DefaultConfig())
	if rr.IntentionalDPs != 1 || rr.ExtractionsChecked == 0 {
		t.Fatalf("round = %+v", rr)
	}
	if k.Has("animal", "pork") || k.Has("animal", "beef") {
		t.Error("drifted pork/beef must be rolled back")
	}
	if !k.Has("animal", "chicken") {
		t.Error("the Intentional DP itself must be kept (it is a correct instance)")
	}
	if !k.Has("food", "pork") {
		t.Error("food-side pairs must be untouched")
	}
}

func TestCleanRoundAccidental(t *testing.T) {
	k := kb.New()
	k.AddExtraction(1, "country", nil, []string{"france", "new_york"}, nil, 1)
	k.AddExtraction(2, "country", nil, []string{"boston"}, []string{"new_york"}, 2)
	labels := Labels{"country": {"new_york": dp.Accidental}}
	rr := CleanRound(k, labels, DefaultConfig())
	if rr.AccidentalDPs != 1 {
		t.Fatalf("round = %+v", rr)
	}
	if k.Has("country", "new_york") {
		t.Error("accidental DP must be dropped")
	}
	if k.Has("country", "boston") {
		t.Error("extractions triggered by the accidental DP must cascade away")
	}
	if !k.Has("country", "france") {
		t.Error("unrelated pairs must survive")
	}
}

func TestDropAllIntentionalAblation(t *testing.T) {
	k := paperExampleKB()
	// Add a *correct* chicken-triggered extraction that Eq 21 would keep.
	k.AddExtraction(400, "animal", []string{"animal", "food"},
		[]string{"dog", "chicken"}, []string{"chicken"}, 2)
	cfg := DefaultConfig()
	cfg.DropAllIntentional = true
	labels := Labels{"animal": {"chicken": dp.Intentional}}
	rr := CleanRound(k, labels, cfg)
	if rr.ExtractionsFlagged != rr.ExtractionsChecked {
		t.Errorf("drop-all must flag everything: %+v", rr)
	}
}

func TestRunStopsWhenNoDPs(t *testing.T) {
	k := paperExampleKB()
	calls := 0
	res := Run(k, func(*kb.KB) Labels {
		calls++
		return Labels{}
	}, DefaultConfig())
	if calls != 1 || len(res.Rounds) != 1 {
		t.Errorf("calls=%d rounds=%d, want one recorded no-op detection", calls, len(res.Rounds))
	}
	if !res.Converged {
		t.Error("a zero-DP round is the fixpoint; Converged must be true")
	}
	if rr := res.Rounds[0]; rr.AccidentalDPs != 0 || rr.IntentionalDPs != 0 {
		t.Errorf("terminating round must record zero DPs, got %+v", rr)
	}
}

func TestRunIterates(t *testing.T) {
	k := paperExampleKB()
	round := 0
	res := Run(k, func(cur *kb.KB) Labels {
		round++
		if round == 1 {
			return Labels{"animal": {"chicken": dp.Intentional}}
		}
		return Labels{}
	}, DefaultConfig())
	// The working round plus the terminating zero-DP round: dropping the
	// latter (the old off-by-one) made convergence indistinguishable from
	// MaxRounds exhaustion.
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2 (working round + terminating zero-DP round)", len(res.Rounds))
	}
	if !res.Converged {
		t.Error("run ended on a zero-DP round; Converged must be true")
	}
	if last := res.Rounds[1]; last.AccidentalDPs != 0 || last.IntentionalDPs != 0 {
		t.Errorf("terminating round must record zero DPs, got %+v", last)
	}
	if res.TotalPairsRemoved == 0 {
		t.Error("first round should have removed the drifted pairs")
	}
	if k.Has("animal", "pork") {
		t.Error("pork must be gone after the run")
	}
}

func TestRunRespectsMaxRounds(t *testing.T) {
	k := paperExampleKB()
	cfg := DefaultConfig()
	cfg.MaxRounds = 2
	calls := 0
	res := Run(k, func(*kb.KB) Labels {
		calls++
		// Always report a (harmless, already-removed) DP to force looping.
		return Labels{"animal": {"ghost": dp.Accidental}}
	}, cfg)
	if calls > 2 {
		t.Errorf("detect called %d times with MaxRounds=2", calls)
	}
	if res.Converged {
		t.Error("a run that never saw a zero-DP round must not report convergence")
	}
}

// TestRunKeepsCustomWalkConfig is the regression test for the config
// clobber: Run used to replace the caller's whole Walk config with
// rank.DefaultConfig() whenever Walk.MaxIter was zero, silently
// discarding a customized restart probability or tolerance.
func TestRunKeepsCustomWalkConfig(t *testing.T) {
	cfg := Config{Walk: rank.Config{Restart: 0.31, MaxIter: 0}}
	got := cfg.withDefaults()
	if got.Walk.Restart != 0.31 {
		t.Errorf("Walk.Restart = %v, want the caller's 0.31 preserved", got.Walk.Restart)
	}
	def := rank.DefaultConfig()
	if got.Walk.MaxIter != def.MaxIter || got.Walk.Tol != def.Tol {
		t.Errorf("zero-valued Walk fields must take defaults individually: %+v", got.Walk)
	}
	if got.MaxRounds != DefaultConfig().MaxRounds {
		t.Errorf("MaxRounds = %d, want default", got.MaxRounds)
	}
}

// TestCleanRoundParallelMatchesSerial pins the prewarm guarantee: the
// concurrent score precomputation must not change any flagging decision.
func TestCleanRoundParallelMatchesSerial(t *testing.T) {
	labels := Labels{"animal": {"chicken": dp.Intentional}}
	serialKB, parKB := paperExampleKB(), paperExampleKB()

	serialCfg := DefaultConfig()
	serialCfg.Parallelism = 1
	serial := CleanRound(serialKB, labels, serialCfg)

	parCfg := DefaultConfig()
	parCfg.Parallelism = 4
	parallel := CleanRound(parKB, labels, parCfg)

	if serial != parallel {
		t.Errorf("parallel round %+v differs from serial %+v", parallel, serial)
	}
	for _, pair := range [][2]string{{"animal", "pork"}, {"animal", "chicken"}, {"food", "pork"}} {
		if serialKB.Has(pair[0], pair[1]) != parKB.Has(pair[0], pair[1]) {
			t.Errorf("KB state diverges at %v", pair)
		}
	}
}

func TestDisableCascadeAblation(t *testing.T) {
	build := func() *kb.KB {
		k := kb.New()
		k.AddExtraction(1, "country", nil, []string{"france", "new_york"}, nil, 1)
		k.AddExtraction(2, "country", nil, []string{"boston"}, []string{"new_york"}, 2)
		return k
	}
	labels := Labels{"country": {"new_york": dp.Accidental}}

	cascaded := build()
	CleanRound(cascaded, labels, DefaultConfig())
	if cascaded.Has("country", "boston") {
		t.Error("cascade should remove boston")
	}

	oneShot := build()
	cfg := DefaultConfig()
	cfg.DisableCascade = true
	CleanRound(oneShot, labels, cfg)
	if oneShot.Has("country", "new_york") {
		t.Error("one-shot removal should still drop the DP itself")
	}
	if !oneShot.Has("country", "boston") {
		t.Error("one-shot removal must leave triggered pairs in place (that is the ablation)")
	}
}
