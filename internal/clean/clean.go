// Package clean implements DP-based drifting-error cleaning (Sec 4).
//
// Accidental DPs are erroneous extractions themselves: the pair is
// removed outright and every extraction it enabled is rolled back through
// the KB's cascade (Sec 4.2). Intentional DPs are correct instances, so
// only the *extractions they triggered* are examined: each such sentence
// is re-scored with the probabilistic model of Eq 21 over all its
// candidate concepts, and extractions whose chosen concept is not the
// argmax are rolled back (Sec 4.1).
//
// Cleaning is iterated — removing early-iteration DPs exposes and/or
// removes later ones — until a round finds nothing to do (Sec 4.2).
package clean

import (
	"sort"

	"driftclean/internal/dp"
	"driftclean/internal/fault"
	"driftclean/internal/kb"
	"driftclean/internal/par"
	"driftclean/internal/rank"
)

// Labels maps concept -> instance -> detected DP label. Entries with
// non-DP labels are ignored.
type Labels map[string]map[string]dp.Label

// DetectFunc produces DP labels for the current KB state; it is invoked
// once per cleaning round.
type DetectFunc func(k *kb.KB) Labels

// Config controls the cleaning loop.
type Config struct {
	// MaxRounds bounds detect-clean rounds.
	MaxRounds int
	// Walk configures the random-walk scores behind Eq 21. Zero-valued
	// fields take their defaults individually (rank.DefaultConfig), so a
	// caller customizing only Restart or Tol keeps that customization.
	Walk rank.Config
	// Parallelism is the worker count used to precompute the Eq 21
	// random-walk scores of a round's concepts before the sequential
	// flagging pass. 1 forces the serial (lazy, one-at-a-time) path;
	// values below 1 use every CPU. Scores are deterministic, so the
	// flagging outcome is identical at any setting.
	Parallelism int
	// DropAllIntentional replaces the Eq 21 check with a drop-all policy
	// for Intentional-DP-triggered extractions (ablation: "drop-all vs
	// Eq 21").
	DropAllIntentional bool
	// DisableCascade removes Accidental-DP pairs without rolling back
	// the extractions they enabled (ablation: "one-shot removal vs the
	// Sec 4.2 cascade").
	DisableCascade bool
	// Cache, when non-nil, is the cross-round random-walk score cache
	// shared with the analysis passes: the Eq 21 checks read scores
	// through it (when its configuration matches Walk), and every
	// rollback invalidates exactly the concepts it touched, so the next
	// round — and the next analysis — re-walks only what changed.
	Cache *rank.Cache
	// OnRound, when non-nil, is invoked before each detect-and-clean
	// round with the 1-based round number; returning true stops the loop
	// before that round runs (the public API uses this for progress
	// reporting and context cancellation).
	OnRound func(round int) (stop bool)
	// Fault, when non-nil, is consulted at the "clean.round" site once
	// per detect-and-clean round (chaos testing); nil is the production
	// no-op.
	Fault *fault.Injector
}

// DefaultConfig returns the standard cleaning configuration.
func DefaultConfig() Config {
	return Config{MaxRounds: 5, Walk: rank.DefaultConfig()}
}

// RoundResult reports one cleaning round.
type RoundResult struct {
	Round              int
	AccidentalDPs      int
	IntentionalDPs     int
	ExtractionsChecked int
	ExtractionsFlagged int
	PairsRemoved       int
	ExtractionsRolled  int
}

// Result aggregates a full cleaning run.
type Result struct {
	// Rounds records every detect-and-clean round executed, including a
	// terminating round in which the detector found nothing — that final
	// zero-DP entry is what distinguishes convergence from exhaustion.
	Rounds []RoundResult
	// TotalPairsRemoved counts distinct pair removals across rounds.
	TotalPairsRemoved      int
	TotalExtractionsRolled int
	// Converged reports that the loop stopped because a round detected no
	// DPs at all (the Sec 4.2 fixpoint). It is false when the loop ran
	// out of MaxRounds with DPs still being detected, and false when
	// Stopped is true.
	Converged bool
	// Stopped reports that Config.OnRound halted the loop early.
	Stopped bool
}

// withDefaults fills the zero-valued knobs of a Config. Walk is
// defaulted field by field so a caller who customized only part of the
// walk configuration (say, the restart probability) keeps it.
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.MaxRounds <= 0 {
		c.MaxRounds = def.MaxRounds
	}
	if c.Walk.Restart == 0 {
		c.Walk.Restart = def.Walk.Restart
	}
	if c.Walk.MaxIter == 0 {
		c.Walk.MaxIter = def.Walk.MaxIter
	}
	if c.Walk.Tol == 0 {
		c.Walk.Tol = def.Walk.Tol
	}
	return c
}

// Run executes the iterative DP-cleaning loop: detect DPs, clean their
// effects, repeat until no DPs are found or MaxRounds is reached. The KB
// is modified in place.
func Run(k *kb.KB, detect DetectFunc, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{}
	for round := 1; round <= cfg.MaxRounds; round++ {
		if cfg.OnRound != nil && cfg.OnRound(round) {
			res.Stopped = true
			break
		}
		cfg.Fault.Check("clean.round")
		labels := detect(k)
		rr := CleanRound(k, labels, cfg)
		rr.Round = round
		res.Rounds = append(res.Rounds, rr)
		res.TotalPairsRemoved += rr.PairsRemoved
		res.TotalExtractionsRolled += rr.ExtractionsRolled
		if rr.AccidentalDPs == 0 && rr.IntentionalDPs == 0 {
			res.Converged = true // detector found nothing: the fixpoint
			break
		}
		if rr.PairsRemoved == 0 && rr.ExtractionsRolled == 0 {
			break // detected DPs produced no change; stuck, not converged
		}
	}
	return res
}

// CleanRound applies one round of cleaning for the given DP labels.
func CleanRound(k *kb.KB, labels Labels, cfg Config) RoundResult {
	cfg = cfg.withDefaults()
	var rr RoundResult
	// Deterministic concept order.
	concepts := make([]string, 0, len(labels))
	for c := range labels {
		concepts = append(concepts, c)
	}
	sort.Strings(concepts)

	// Phase 1: Intentional DPs — check their triggered extractions with
	// Eq 21 and roll back losers. Run before Accidental removal so the
	// walk scores still reflect the full graph.
	//
	// The per-concept random walks behind Eq 21 dominate a round's cost,
	// and the set of concepts Phase 1 will score is known up front: each
	// checked extraction consults its chosen concept and every sentence
	// candidate. Precompute those walks concurrently into the cache
	// before the (order-sensitive, sequential) flagging pass; the lazy
	// path below stays as the serial fallback and as a safety net for any
	// concept the prepass missed. Walk scores are deterministic, so the
	// flags are identical either way.
	//
	// When a shared cross-round cache with a matching walk configuration
	// is wired in, both the prepass and the lazy path go through it:
	// concepts the preceding analysis (or an earlier round) already
	// walked — and that no rollback has touched since — are free.
	var scoresOf func(concept string) rank.Scores
	if cfg.Cache != nil && cfg.Cache.Config() == cfg.Walk {
		if workers := par.Workers(cfg.Parallelism); workers > 1 && !cfg.DropAllIntentional {
			if need := phase1Concepts(k, labels, concepts); len(need) > 0 {
				cfg.Cache.Warm(k, need, workers)
			}
		}
		scoresOf = func(concept string) rank.Scores { return cfg.Cache.Scores(k, concept) }
	} else {
		scoreCache := map[string]rank.Scores{}
		if workers := par.Workers(cfg.Parallelism); workers > 1 && !cfg.DropAllIntentional {
			if need := phase1Concepts(k, labels, concepts); len(need) > 0 {
				scoreCache = rank.WalkConcepts(k, need, cfg.Walk, workers)
			}
		}
		scoresOf = func(concept string) rank.Scores {
			if s, ok := scoreCache[concept]; ok {
				return s
			}
			s := rank.RandomWalk(rank.BuildGraph(k, concept), cfg.Walk)
			scoreCache[concept] = s
			return s
		}
	}
	var flagged []int
	for _, concept := range concepts {
		for instance, lbl := range labels[concept] {
			if lbl != dp.Intentional {
				continue
			}
			rr.IntentionalDPs++
			exts := k.TriggeredExtractions(concept, instance)
			for _, exID := range exts {
				ex := k.Extraction(exID)
				if !ex.Active || ex.Concept != concept {
					continue
				}
				rr.ExtractionsChecked++
				if cfg.DropAllIntentional || !ExtractionPassesCheck(k, ex, scoresOf) {
					flagged = append(flagged, exID)
				}
			}
		}
	}
	flagged = sortDedupInts(flagged)
	rr.ExtractionsFlagged = len(flagged)
	rb := k.RollbackExtractions(flagged)
	rr.PairsRemoved += len(rb.PairsRemoved)
	rr.ExtractionsRolled += rb.ExtractionsRolled
	// Rollback-keyed invalidation: drop exactly the touched concepts'
	// walks (regardless of whether this round read through the shared
	// cache — the next analysis pass will) and re-sync the cache to the
	// KB's new version so everything untouched stays warm.
	if cfg.Cache != nil {
		cfg.Cache.Invalidate(k, rb.TouchedConcepts()...)
	}

	// Phase 2: Accidental DPs — drop the pairs and cascade.
	var drop []kb.Pair
	for _, concept := range concepts {
		for instance, lbl := range labels[concept] {
			if lbl != dp.Accidental {
				continue
			}
			rr.AccidentalDPs++
			drop = append(drop, kb.Pair{Concept: concept, Instance: instance})
		}
	}
	// Removal order decides cascade order and the rollback report's pair
	// order; the inner label loop walks a map, so sort before acting.
	sort.Slice(drop, func(i, j int) bool {
		if drop[i].Concept != drop[j].Concept {
			return drop[i].Concept < drop[j].Concept
		}
		return drop[i].Instance < drop[j].Instance
	})
	var rb2 kb.RollbackResult
	if cfg.DisableCascade {
		rb2 = k.RemovePairsNoCascade(drop)
	} else {
		rb2 = k.RemovePairs(drop)
	}
	rr.PairsRemoved += len(rb2.PairsRemoved)
	rr.ExtractionsRolled += rb2.ExtractionsRolled
	if cfg.Cache != nil {
		cfg.Cache.Invalidate(k, rb2.TouchedConcepts()...)
	}
	return rr
}

// ExtractionPassesCheck evaluates Eq 21 for one extraction: it returns
// true when the extraction's chosen concept attains the highest
// Score(s, C) among the sentence's candidate concepts.
func ExtractionPassesCheck(k *kb.KB, ex *kb.Extraction, scoresOf func(string) rank.Scores) bool {
	if len(ex.Candidates) < 2 {
		return true // nothing to re-decide
	}
	best, bestScore := "", -1.0
	for _, c := range ex.Candidates {
		s := SentenceScore(ex.Instances, c, ex.Candidates, scoresOf)
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best == ex.Concept
}

// SentenceScore computes Eq 21:
//
//	Score(s, C) = Σ_{e'∈Es} score(C, e') / Σ_{C'∈Cs} score(C', e')
//
// Instances unknown to every candidate contribute nothing.
func SentenceScore(instances []string, concept string, candidates []string, scoresOf func(string) rank.Scores) float64 {
	var total float64
	for _, e := range instances {
		var denom float64
		for _, c := range candidates {
			denom += scoresOf(c)[e]
		}
		if denom <= 0 {
			continue
		}
		total += scoresOf(concept)[e] / denom
	}
	return total
}

// phase1Concepts collects, in sorted order, every concept whose walk
// scores Phase 1 can request: for each Intentional DP, the chosen
// concept and all sentence candidates of each active multi-candidate
// extraction it triggered. This mirrors ExtractionPassesCheck /
// SentenceScore exactly so the parallel prepass covers the full demand.
func phase1Concepts(k *kb.KB, labels Labels, concepts []string) []string {
	need := map[string]bool{}
	for _, concept := range concepts {
		for instance, lbl := range labels[concept] {
			if lbl != dp.Intentional {
				continue
			}
			for _, exID := range k.TriggeredExtractions(concept, instance) {
				ex := k.Extraction(exID)
				if !ex.Active || ex.Concept != concept || len(ex.Candidates) < 2 {
					continue
				}
				need[concept] = true
				for _, c := range ex.Candidates {
					need[c] = true
				}
			}
		}
	}
	out := make([]string, 0, len(need))
	for c := range need {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func sortDedupInts(xs []int) []int {
	seen := make(map[int]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}
