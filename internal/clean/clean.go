// Package clean implements DP-based drifting-error cleaning (Sec 4).
//
// Accidental DPs are erroneous extractions themselves: the pair is
// removed outright and every extraction it enabled is rolled back through
// the KB's cascade (Sec 4.2). Intentional DPs are correct instances, so
// only the *extractions they triggered* are examined: each such sentence
// is re-scored with the probabilistic model of Eq 21 over all its
// candidate concepts, and extractions whose chosen concept is not the
// argmax are rolled back (Sec 4.1).
//
// Cleaning is iterated — removing early-iteration DPs exposes and/or
// removes later ones — until a round finds nothing to do (Sec 4.2).
package clean

import (
	"sort"

	"driftclean/internal/dp"
	"driftclean/internal/kb"
	"driftclean/internal/rank"
)

// Labels maps concept -> instance -> detected DP label. Entries with
// non-DP labels are ignored.
type Labels map[string]map[string]dp.Label

// DetectFunc produces DP labels for the current KB state; it is invoked
// once per cleaning round.
type DetectFunc func(k *kb.KB) Labels

// Config controls the cleaning loop.
type Config struct {
	// MaxRounds bounds detect-clean rounds.
	MaxRounds int
	// Walk configures the random-walk scores behind Eq 21.
	Walk rank.Config
	// DropAllIntentional replaces the Eq 21 check with a drop-all policy
	// for Intentional-DP-triggered extractions (ablation: "drop-all vs
	// Eq 21").
	DropAllIntentional bool
	// DisableCascade removes Accidental-DP pairs without rolling back
	// the extractions they enabled (ablation: "one-shot removal vs the
	// Sec 4.2 cascade").
	DisableCascade bool
	// OnRound, when non-nil, is invoked before each detect-and-clean
	// round with the 1-based round number; returning true stops the loop
	// before that round runs (the public API uses this for progress
	// reporting and context cancellation).
	OnRound func(round int) (stop bool)
}

// DefaultConfig returns the standard cleaning configuration.
func DefaultConfig() Config {
	return Config{MaxRounds: 5, Walk: rank.DefaultConfig()}
}

// RoundResult reports one cleaning round.
type RoundResult struct {
	Round              int
	AccidentalDPs      int
	IntentionalDPs     int
	ExtractionsChecked int
	ExtractionsFlagged int
	PairsRemoved       int
	ExtractionsRolled  int
}

// Result aggregates a full cleaning run.
type Result struct {
	Rounds []RoundResult
	// TotalPairsRemoved counts distinct pair removals across rounds.
	TotalPairsRemoved      int
	TotalExtractionsRolled int
	// Stopped reports that Config.OnRound halted the loop early.
	Stopped bool
}

// Run executes the iterative DP-cleaning loop: detect DPs, clean their
// effects, repeat until no DPs are found or MaxRounds is reached. The KB
// is modified in place.
func Run(k *kb.KB, detect DetectFunc, cfg Config) *Result {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultConfig().MaxRounds
	}
	if cfg.Walk.MaxIter == 0 {
		cfg.Walk = rank.DefaultConfig()
	}
	res := &Result{}
	for round := 1; round <= cfg.MaxRounds; round++ {
		if cfg.OnRound != nil && cfg.OnRound(round) {
			res.Stopped = true
			break
		}
		labels := detect(k)
		rr := CleanRound(k, labels, cfg)
		rr.Round = round
		if rr.AccidentalDPs == 0 && rr.IntentionalDPs == 0 {
			break
		}
		res.Rounds = append(res.Rounds, rr)
		res.TotalPairsRemoved += rr.PairsRemoved
		res.TotalExtractionsRolled += rr.ExtractionsRolled
		if rr.PairsRemoved == 0 && rr.ExtractionsRolled == 0 {
			break // detected DPs produced no change; a fixpoint
		}
	}
	return res
}

// CleanRound applies one round of cleaning for the given DP labels.
func CleanRound(k *kb.KB, labels Labels, cfg Config) RoundResult {
	var rr RoundResult
	// Deterministic concept order.
	concepts := make([]string, 0, len(labels))
	for c := range labels {
		concepts = append(concepts, c)
	}
	sort.Strings(concepts)

	// Phase 1: Intentional DPs — check their triggered extractions with
	// Eq 21 and roll back losers. Run before Accidental removal so the
	// walk scores still reflect the full graph.
	scoreCache := map[string]rank.Scores{}
	scoresOf := func(concept string) rank.Scores {
		if s, ok := scoreCache[concept]; ok {
			return s
		}
		s := rank.RandomWalk(rank.BuildGraph(k, concept), cfg.Walk)
		scoreCache[concept] = s
		return s
	}
	var flagged []int
	for _, concept := range concepts {
		for instance, lbl := range labels[concept] {
			if lbl != dp.Intentional {
				continue
			}
			rr.IntentionalDPs++
			exts := k.TriggeredExtractions(concept, instance)
			for _, exID := range exts {
				ex := k.Extraction(exID)
				if !ex.Active || ex.Concept != concept {
					continue
				}
				rr.ExtractionsChecked++
				if cfg.DropAllIntentional || !ExtractionPassesCheck(k, ex, scoresOf) {
					flagged = append(flagged, exID)
				}
			}
		}
	}
	flagged = dedupInts(flagged)
	rr.ExtractionsFlagged = len(flagged)
	rb := k.RollbackExtractions(flagged)
	rr.PairsRemoved += len(rb.PairsRemoved)
	rr.ExtractionsRolled += rb.ExtractionsRolled

	// Phase 2: Accidental DPs — drop the pairs and cascade.
	var drop []kb.Pair
	for _, concept := range concepts {
		for instance, lbl := range labels[concept] {
			if lbl != dp.Accidental {
				continue
			}
			rr.AccidentalDPs++
			drop = append(drop, kb.Pair{Concept: concept, Instance: instance})
		}
	}
	var rb2 kb.RollbackResult
	if cfg.DisableCascade {
		rb2 = k.RemovePairsNoCascade(drop)
	} else {
		rb2 = k.RemovePairs(drop)
	}
	rr.PairsRemoved += len(rb2.PairsRemoved)
	rr.ExtractionsRolled += rb2.ExtractionsRolled
	return rr
}

// ExtractionPassesCheck evaluates Eq 21 for one extraction: it returns
// true when the extraction's chosen concept attains the highest
// Score(s, C) among the sentence's candidate concepts.
func ExtractionPassesCheck(k *kb.KB, ex *kb.Extraction, scoresOf func(string) rank.Scores) bool {
	if len(ex.Candidates) < 2 {
		return true // nothing to re-decide
	}
	best, bestScore := "", -1.0
	for _, c := range ex.Candidates {
		s := SentenceScore(ex.Instances, c, ex.Candidates, scoresOf)
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best == ex.Concept
}

// SentenceScore computes Eq 21:
//
//	Score(s, C) = Σ_{e'∈Es} score(C, e') / Σ_{C'∈Cs} score(C', e')
//
// Instances unknown to every candidate contribute nothing.
func SentenceScore(instances []string, concept string, candidates []string, scoresOf func(string) rank.Scores) float64 {
	var total float64
	for _, e := range instances {
		var denom float64
		for _, c := range candidates {
			denom += scoresOf(c)[e]
		}
		if denom <= 0 {
			continue
		}
		total += scoresOf(concept)[e] / denom
	}
	return total
}

func dedupInts(xs []int) []int {
	seen := make(map[int]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}
