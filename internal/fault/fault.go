// Package fault is the deterministic, seeded fault-injection layer the
// chaos suite drives. Risky seams of the pipeline and the serving stack
// — corpus shard generation, the extraction scans, cleaning rounds,
// every serve endpoint, snapshot reload — carry a named *site* and ask
// an injected *Injector whether this particular hit should fail, stall
// or panic.
//
// Three properties make the layer usable in production code and in
// regression tests alike:
//
//   - Zero cost when disabled. A nil *Injector is the disabled state:
//     Hit and Check on a nil receiver return immediately (a single
//     pointer comparison), so production configurations that leave the
//     Fault field nil pay nothing and allocate nothing.
//
//   - Deterministic. The decision for the k-th hit of a site is a pure
//     function of (seed, site, k): each site derives its own splitmix64
//     stream from the injector seed and an FNV hash of the site name.
//     Re-running a failed chaos schedule with the same seed reproduces
//     the exact same faults at the exact same hits, which is how a
//     chaos failure is debugged (see DESIGN.md).
//
//   - Race-safe. Sites are hit concurrently (serve endpoints, parallel
//     shard generation); per-site state is guarded by one injector
//     mutex. Under concurrency the k-th hit of a site still sees the
//     deterministic k-th decision; which goroutine observes it depends
//     on scheduling, as it must.
//
// Site names follow "<package>.<operation>" (e.g. "serve.stats",
// "corpus.shard"). Rules bind to an exact site name or, with a trailing
// ".*", to every site sharing the prefix ("serve.*").
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel every injected failure wraps, whether it
// surfaces as an error return or as a recovered panic value. Match with
// errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Rule describes what may happen at a site. The zero Rule never fires.
// Decisions are evaluated per hit in this order: latency, panic,
// deterministic first-N failure, probabilistic failure.
type Rule struct {
	// ErrProb is the probability in [0, 1] that a hit returns an
	// injected error.
	ErrProb float64
	// FailFirst fails the first N hits of the site deterministically and
	// lets every later hit through — the shape retry loops are tested
	// with ("fail twice, then recover").
	FailFirst int
	// PanicProb is the probability that a hit panics with an
	// ErrInjected-wrapped value instead of returning.
	PanicProb float64
	// Latency is slept before the decision when LatencyProb fires;
	// LatencyProb defaults to 1 when Latency is set.
	Latency     time.Duration
	LatencyProb float64
}

// siteState is the per-site stream: its derived seed and hit count.
type siteState struct {
	seed uint64
	hits int
}

// Injector decides the fate of each site hit. The zero value is not
// useful; build one with New. A nil *Injector is the disabled injector:
// every method is a no-op.
type Injector struct {
	seed  int64
	sleep func(time.Duration)

	mu    sync.Mutex
	rules map[string]Rule
	sites map[string]*siteState
}

// New builds an injector from a seed and a site → rule table. Keys are
// exact site names or prefix patterns ending in ".*". A nil or empty
// rule table is valid: the injector then only counts hits.
func New(seed int64, rules map[string]Rule) *Injector {
	r := make(map[string]Rule, len(rules))
	for k, v := range rules {
		r[k] = v
	}
	return &Injector{
		seed:  seed,
		sleep: time.Sleep,
		rules: r,
		sites: make(map[string]*siteState),
	}
}

// SetSleep replaces the latency sleeper (tests record delays instead of
// actually waiting). It must be called before the injector is shared.
func (in *Injector) SetSleep(fn func(time.Duration)) {
	if in == nil {
		return
	}
	in.sleep = fn
}

// Hit records one hit of the site and returns the injected error for
// this hit, if any. It may also sleep (latency injection) or panic
// (forced panics); both are governed by the site's rule. On a nil
// receiver it returns nil immediately — the disabled fast path.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	st := in.sites[site]
	if st == nil {
		st = &siteState{seed: siteSeed(in.seed, site)}
		in.sites[site] = st
	}
	st.hits++
	hit := st.hits
	rule, ok := in.ruleFor(site)
	in.mu.Unlock()
	if !ok {
		return nil
	}

	// Three independent draws per hit, one per decision, so enabling
	// latency never re-routes the error/panic stream of the same seed.
	if rule.Latency > 0 {
		p := rule.LatencyProb
		if p <= 0 {
			p = 1
		}
		if unit(draw(st.seed, hit, 0)) < p {
			in.sleep(rule.Latency)
		}
	}
	if rule.PanicProb > 0 && unit(draw(st.seed, hit, 1)) < rule.PanicProb {
		panic(fmt.Errorf("%w: panic at %s hit %d", ErrInjected, site, hit))
	}
	if hit <= rule.FailFirst {
		return fmt.Errorf("%w: %s hit %d (fail-first %d)", ErrInjected, site, hit, rule.FailFirst)
	}
	if rule.ErrProb > 0 && unit(draw(st.seed, hit, 2)) < rule.ErrProb {
		return fmt.Errorf("%w: %s hit %d", ErrInjected, site, hit)
	}
	return nil
}

// Check is Hit for seams whose signatures cannot carry an error (corpus
// generation, the extraction scans, cleaning rounds): an injected error
// escalates to a panic, which the pipeline's caller-side recovery
// (driftclean.ErrStagePanic) converts back into a wrapped error.
func (in *Injector) Check(site string) {
	if in == nil {
		return
	}
	if err := in.Hit(site); err != nil {
		panic(err)
	}
}

// Count returns how many times the site has been hit.
func (in *Injector) Count(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.sites[site]; st != nil {
		return st.hits
	}
	return 0
}

// Sites returns every site hit so far, sorted — the chaos suite asserts
// coverage with it.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.sites))
	for s := range in.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ruleFor resolves the rule bound to a site: exact match first, then
// the longest matching ".*" prefix pattern. Callers hold in.mu.
func (in *Injector) ruleFor(site string) (Rule, bool) {
	if r, ok := in.rules[site]; ok {
		return r, true
	}
	bestLen := -1
	var best Rule
	for pat, r := range in.rules {
		if !strings.HasSuffix(pat, ".*") {
			continue
		}
		prefix := pat[:len(pat)-1] // keep the dot: "serve.*" matches "serve.stats"
		if strings.HasPrefix(site, prefix) && len(prefix) > bestLen {
			bestLen = len(prefix)
			best = r
		}
	}
	return best, bestLen >= 0
}

// siteSeed derives a site's stream seed from the injector seed and an
// FNV-1a hash of the site name.
func siteSeed(seed int64, site string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(site))
	return splitmix64(uint64(seed) ^ h.Sum64())
}

// draw produces the lane-th decision value of a site's hit-th hit. Each
// (hit, lane) pair gets an independent splitmix64 finalization of the
// site stream.
func draw(siteSeed uint64, hit, lane int) uint64 {
	return splitmix64(siteSeed + 0x9e3779b97f4a7c15*uint64(hit) + 0xd1342543de82ef95*uint64(lane+1))
}

// unit maps a uint64 onto [0, 1).
func unit(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// splitmix64 is the standard SplitMix64 finalizer.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
