package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestNilInjectorIsNoOp: the disabled state must be a nil receiver that
// does nothing — the zero-overhead contract production paths rely on.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Hit("any.site"); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	in.Check("any.site") // must not panic
	if got := in.Count("any.site"); got != 0 {
		t.Fatalf("nil injector counted %d hits", got)
	}
	if got := in.Sites(); got != nil {
		t.Fatalf("nil injector reported sites %v", got)
	}
	in.SetSleep(func(time.Duration) {}) // must not panic
}

// TestDeterministicDecisionSequence: the k-th hit of a site is a pure
// function of (seed, site, k) — two injectors with the same seed see
// identical fault schedules, and a different seed sees a different one.
func TestDeterministicDecisionSequence(t *testing.T) {
	rules := map[string]Rule{"pipe.stage": {ErrProb: 0.4}}
	sequence := func(seed int64) []bool {
		in := New(seed, rules)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Hit("pipe.stage") != nil
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical seeds", i)
		}
	}
	c := sequence(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-hit schedules")
	}
	// The empirical rate should be in the right ballpark for p=0.4.
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails < 40 || fails > 160 {
		t.Fatalf("ErrProb 0.4 fired %d/200 times", fails)
	}
}

// TestFailFirstThenRecover: FailFirst fails exactly the first N hits —
// the deterministic shape retry loops are exercised with.
func TestFailFirstThenRecover(t *testing.T) {
	in := New(1, map[string]Rule{"serve.reload": {FailFirst: 3}})
	for i := 1; i <= 3; i++ {
		err := in.Hit("serve.reload")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
		}
	}
	for i := 4; i <= 10; i++ {
		if err := in.Hit("serve.reload"); err != nil {
			t.Fatalf("hit %d after FailFirst: %v", i, err)
		}
	}
	if got := in.Count("serve.reload"); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
}

// TestPanicCarriesSentinel: injected panics carry an error wrapping
// ErrInjected so recovery layers can recognize them.
func TestPanicCarriesSentinel(t *testing.T) {
	in := New(7, map[string]Rule{"extract.parse": {PanicProb: 1}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PanicProb 1 did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not wrap ErrInjected", r)
		}
	}()
	in.Check("extract.parse")
}

// TestCheckEscalatesErrors: Check turns an injected error return into a
// panic (for seams that cannot return errors).
func TestCheckEscalatesErrors(t *testing.T) {
	in := New(7, map[string]Rule{"corpus.shard": {FailFirst: 1}})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Check did not escalate the injected error to a panic")
		}
	}()
	in.Check("corpus.shard")
}

// TestLatencyInjection: Latency sleeps through the injected sleeper, by
// default on every hit, and does not perturb the error stream.
func TestLatencyInjection(t *testing.T) {
	var slept []time.Duration
	in := New(3, map[string]Rule{"serve.stats": {Latency: 5 * time.Millisecond}})
	in.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	for i := 0; i < 4; i++ {
		if err := in.Hit("serve.stats"); err != nil {
			t.Fatalf("latency-only rule returned error: %v", err)
		}
	}
	if len(slept) != 4 || slept[0] != 5*time.Millisecond {
		t.Fatalf("slept = %v, want four 5ms sleeps", slept)
	}
}

// TestLatencyDoesNotPerturbErrorStream: adding a latency component to a
// rule must not change which hits fail — each decision has its own
// draw lane.
func TestLatencyDoesNotPerturbErrorStream(t *testing.T) {
	seq := func(rule Rule) []bool {
		in := New(11, map[string]Rule{"s.x": rule})
		in.SetSleep(func(time.Duration) {})
		out := make([]bool, 100)
		for i := range out {
			out[i] = in.Hit("s.x") != nil
		}
		return out
	}
	plain := seq(Rule{ErrProb: 0.3})
	withLat := seq(Rule{ErrProb: 0.3, Latency: time.Millisecond})
	for i := range plain {
		if plain[i] != withLat[i] {
			t.Fatalf("hit %d: error decision changed when latency was added", i)
		}
	}
}

// TestPrefixRules: a "pkg.*" pattern matches every site under the
// prefix, with exact rules taking precedence.
func TestPrefixRules(t *testing.T) {
	in := New(5, map[string]Rule{
		"serve.*":     {FailFirst: 1000},
		"serve.stats": {}, // exact override: never fails
	})
	if err := in.Hit("serve.concepts"); !errors.Is(err, ErrInjected) {
		t.Fatalf("serve.concepts not covered by serve.*: %v", err)
	}
	if err := in.Hit("serve.stats"); err != nil {
		t.Fatalf("exact rule did not override prefix: %v", err)
	}
	if err := in.Hit("corpus.shard"); err != nil {
		t.Fatalf("unrelated site matched serve.*: %v", err)
	}
}

// TestConcurrentHitsAreRaceFree: hammering one site from many
// goroutines must be race-clean and count every hit exactly once.
func TestConcurrentHitsAreRaceFree(t *testing.T) {
	in := New(9, map[string]Rule{"serve.explain": {ErrProb: 0.5}})
	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = in.Hit("serve.explain")
			}
		}()
	}
	wg.Wait()
	if got := in.Count("serve.explain"); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	if sites := in.Sites(); len(sites) != 1 || sites[0] != "serve.explain" {
		t.Fatalf("Sites = %v", sites)
	}
}
