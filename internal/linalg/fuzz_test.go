package linalg

import (
	"math"
	"testing"
)

// FuzzEigenSymTopK drives the top-k solver with matrices decoded from
// arbitrary fuzz bytes and checks its unconditional contract: no panic,
// no NaN/Inf in any output, eigenvalues descending, and the returned
// vectors orthonormal with bounded residuals. The decoder symmetrizes
// whatever the fuzzer emits and boosts the diagonal, so inputs stay in
// the SPD-ish family the KPCA path produces while the off-diagonal
// structure (clusters, rank deficiency, sign flips) is fully adversarial.
func FuzzEigenSymTopK(f *testing.F) {
	seeds := [][]byte{
		{},                                    // 0×0
		{0},                                   // 1×1 zero
		{127},                                 // 1×1 max
		{1, 2, 3, 4},                          // 2×2 asymmetric (decoder symmetrizes)
		{255, 255, 255, 255},                  // 2×2 all −1 (int8)
		{0, 0, 0, 0, 0, 0, 0, 0, 0},           // 3×3 zero
		{10, 0, 0, 0, 10, 0, 0, 0, 10},        // 3×3 repeated eigenvalue
		{1, 1, 1, 1, 1, 1, 1, 1, 1},           // 3×3 rank one
		{100, 3, 250, 3, 100, 7, 250, 7, 100}, // 3×3 mixed signs
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, k := decodeFuzzMatrix(data)
		n := a.Rows
		vals, vecs := EigenSymTopK(a, k)

		if len(vals) != n {
			t.Fatalf("got %d eigenvalues for n=%d", len(vals), n)
		}
		if vecs.Rows != n || vecs.Cols != k {
			t.Fatalf("vectors are %d×%d, want %d×%d", vecs.Rows, vecs.Cols, n, k)
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("eigenvalue %d is %v", i, v)
			}
			if i > 0 && vals[i-1] < v {
				t.Fatalf("eigenvalues not descending at %d: %v > %v", i, v, vals[i-1])
			}
		}
		for i, v := range vecs.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("eigenvector entry %d is %v", i, v)
			}
		}
		// Orthonormality and residuals hold for every input, not just the
		// well-separated ones — inverse iteration must recover from any
		// clustering the decoded matrix happens to have.
		scale := 1.0
		if n > 0 {
			scale = 1 + math.Max(math.Abs(vals[0]), math.Abs(vals[n-1]))
		}
		for j := 0; j < k; j++ {
			v := vecs.Col(j)
			for q := 0; q <= j; q++ {
				dot := Dot(v, vecs.Col(q))
				want := 0.0
				if q == j {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-6 {
					t.Fatalf("v%d·v%d = %v, want %v", j, q, dot, want)
				}
			}
			av := a.MulVec(v)
			var res float64
			for i := range v {
				r := av[i] - vals[j]*v[i]
				res += r * r
			}
			if math.Sqrt(res) > 1e-6*scale {
				t.Fatalf("eigpair %d (λ=%v): residual %v", j, vals[j], math.Sqrt(res))
			}
		}
	})
}

// decodeFuzzMatrix maps fuzz bytes onto a symmetric matrix and a k in
// [0, n]. Entries are int8-scaled to keep magnitudes bounded (so the
// invariants above test numerics, not overflow), the matrix is averaged
// with its transpose, and the diagonal gets a small boost toward the
// diagonally-dominant shapes a centered RBF Gram matrix has.
func decodeFuzzMatrix(data []byte) (*Matrix, int) {
	n := int(math.Sqrt(float64(len(data))))
	if n > 12 {
		n = 12
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Data[i*n+j] = float64(int8(data[i*n+j])) / 16
		}
	}
	a.Symmetrize()
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 2
	}
	k := n
	if len(data) > 0 {
		k = int(data[0]) % (n + 1)
	}
	return a, k
}
