package linalg

import (
	"fmt"
	"testing"
)

// benchSym builds a deterministic symmetric matrix: an RBF-like Gram
// matrix over points on a line, the same shape EigenSym sees from KPCA.
func benchSym(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := float64(i - j)
			v := 1 / (1 + d*d/float64(n))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// BenchmarkEigenSym runs the two solvers side by side on the same
// KPCA-shaped matrices: the full-spectrum Jacobi oracle against the
// top-k path at the production component budget (k=12).
func BenchmarkEigenSym(b *testing.B) {
	for _, n := range []int{30, 60, 120, 200} {
		src := benchSym(n)
		k := 12
		if k > n {
			k = n
		}
		b.Run(fmt.Sprintf("jacobi/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EigenSym(src)
			}
		})
		b.Run(fmt.Sprintf("topk/n=%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EigenSymTopK(src, k)
			}
		})
	}
}
