package linalg

import (
	"fmt"
	"testing"
)

// benchSym builds a deterministic symmetric matrix: an RBF-like Gram
// matrix over points on a line, the same shape EigenSym sees from KPCA.
func benchSym(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := float64(i - j)
			v := 1 / (1 + d*d/float64(n))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func BenchmarkEigenSym(b *testing.B) {
	for _, n := range []int{30, 60, 120} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := benchSym(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				EigenSym(src)
			}
		})
	}
}
