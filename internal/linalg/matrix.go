// Package linalg provides the dense linear-algebra substrate used by the
// kernel-PCA transformation (Sec 3.3.1 of the paper) and the multi-task
// drifting-point detector training loop (Algorithm 1, Eqs 14–20).
//
// Only the operations those algorithms need are implemented: dense matrices
// with multiply/transpose/add, linear solves via partial-pivot LU and
// Cholesky, and a symmetric eigendecomposition via the cyclic Jacobi method.
// Everything is plain float64 on row-major storage; no external dependencies.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] is element (i,j)
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d×%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// AddM returns a+b elementwise.
func AddM(a, b *Matrix) *Matrix {
	checkSameShape("AddM", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// SubM returns a-b elementwise.
func SubM(a, b *Matrix) *Matrix {
	checkSameShape("SubM", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s·m as a new matrix.
func Scale(s float64, m *Matrix) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddInPlace accumulates s·b into a (a += s·b).
func AddInPlace(a *Matrix, s float64, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Symmetrize overwrites m with (m + mᵀ)/2. m must be square. It is used to
// scrub numerical asymmetry before eigendecomposition.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize of non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = avg
			m.Data[j*n+i] = avg
		}
	}
}

// String renders the matrix with 4 decimal places, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }
