package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveVecKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveVec([]float64{8, -11, -3})
	want := []float64{2, 3, -1}
	for i := range want {
		if !approxEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFactorSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Errorf("Factor(singular) err = %v, want ErrSingular", err)
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Error("Factor(non-square) should error")
	}
}

func TestDeterminant(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); !approxEq(got, -6, 1e-9) {
		t.Errorf("Det = %v, want -6", got)
	}
}

func TestInverseTimesSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		n := 2 + trial%5
		a := randomSPD(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !matApproxEq(Mul(a, inv), Identity(n), 1e-7) {
			t.Fatalf("trial %d: A·A⁻¹ != I", trial)
		}
	}
}

// Property: for random SPD systems, solving then multiplying recovers the RHS.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(6))
		a := randomSPD(r, n)
		b := randomMatrix(r, n, 2)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		return matApproxEq(Mul(a, x), b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !matApproxEq(l, want, 1e-9) {
		t.Errorf("Cholesky =\n%v want\n%v", l, want)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("Cholesky(indefinite) err = %v, want ErrSingular", err)
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 3 + trial%4
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		xc := CholeskySolveVec(l, b)
		f, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		xl := f.SolveVec(b)
		for i := range xc {
			if !approxEq(xc[i], xl[i], 1e-7) {
				t.Fatalf("trial %d: Cholesky x[%d]=%v, LU x[%d]=%v", trial, i, xc[i], i, xl[i])
			}
		}
	}
}

// Property: Cholesky factor reproduces the original matrix, L·Lᵀ = A.
func TestQuickCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(5))
		a := randomSPD(r, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return matApproxEq(Mul(l, l.T()), a, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
