package linalg

import (
	"fmt"
	"math"
	"sort"
)

// ulp is the double-precision machine epsilon (2⁻⁵²): the unit the QL
// deflation test and the inverse-iteration pivot floor are expressed in.
const ulp = 2.220446049250313e-16

// maxQLIterations bounds the implicit-shift sweeps spent on any single
// eigenvalue. The symmetric tridiagonal QL iteration converges cubically
// and 30 is the classical bound (EISPACK/NR use it); exceeding it means
// pathological input, and EigenSymTopK falls back to the Jacobi oracle
// rather than returning garbage.
const maxQLIterations = 50

// EigenSymTopK computes the eigendecomposition of a symmetric matrix,
// paying full price only for the spectrum: it returns every eigenvalue
// (descending, like EigenSym) but recovers eigenvectors for just the k
// largest, as the columns of an n×k matrix (vectors.Col(i) pairs with
// values[i]). k is clamped to [0, n].
//
// This is the KPCA production path: the kernel-PCA fit consumes at most
// MaxComponents ≈ 12 components while cyclic Jacobi — kept untouched as
// EigenSym, the testing oracle — pays O(n³) per sweep for all n
// eigenvectors. The pipeline here is the classical dense one:
//
//  1. Householder tridiagonalization T = QᵀAQ, storing the unit
//     reflector vectors (not the accumulated Q, which would cost the
//     O(n³) this function exists to avoid);
//  2. implicit-shift QL on the tridiagonal for all eigenvalues, O(n²);
//  3. inverse iteration on T for each of the top k eigenvalues, with
//     modified Gram-Schmidt against the previously accepted vectors so
//     clustered and repeated eigenvalues still yield an orthonormal
//     basis of their eigenspace;
//  4. back-transformation of each tridiagonal eigenvector through the
//     stored reflectors, O(n²) per vector.
//
// Every working buffer is allocated once up front and the hot loops walk
// capped row slices, following the flat-kernel idiom of EigenSym. The
// result is deterministic: fixed start vectors, fixed perturbation
// schedule, and a sign canonicalization (largest-magnitude component of
// each eigenvector is made positive, ties to the lowest index).
func EigenSymTopK(a *Matrix, k int) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: EigenSymTopK of non-square %d×%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	if n == 0 {
		return nil, NewMatrix(0, 0)
	}

	m := a.Clone()
	m.Symmetrize()
	md := m.Data

	// Reflector j has length n-1-j; the packed store and its offsets are
	// the only per-decomposition state the back-transform needs.
	d := make([]float64, n)
	e := make([]float64, n) // e[i] = T[i][i+1]; e[n-1] is a zero sentinel
	// Reflector j spans rows j+1…n-1, so the packed store needs
	// Σ_{j=0}^{n-3} (n-1-j) = n(n-1)/2 − 1 slots.
	packed := 0
	if n > 2 {
		packed = n*(n-1)/2 - 1
	}
	vflat := make([]float64, packed)
	offs := make([]int, n)
	p := make([]float64, n)
	tridiagonalize(md, n, d, e, vflat, offs, p)

	// Eigenvalues: QL destroys its input, so it runs on copies and the
	// originals stay around for the inverse-iteration solves.
	dq := make([]float64, n)
	eq := make([]float64, n)
	copy(dq, d)
	copy(eq, e)
	if !qlImplicitShift(dq, eq) {
		// Should never happen for finite symmetric input; the Jacobi
		// oracle is the deterministic safe harbor.
		vals, full := EigenSym(a)
		vectors = NewMatrix(n, k)
		for i := 0; i < n; i++ {
			copy(vectors.Data[i*k:(i+1)*k], full.Data[i*n:i*n+k])
		}
		return vals, vectors
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(dq)))
	values = dq

	vectors = NewMatrix(n, k)
	if k == 0 {
		return values, vectors
	}

	// anorm is the ∞-norm of T; the inverse-iteration solves run on a
	// 1/anorm-scaled copy so the pivot floor is a plain ulp and extreme
	// input magnitudes can neither overflow nor underflow the solver.
	anorm := 0.0
	for i := 0; i < n; i++ {
		s := math.Abs(d[i]) + math.Abs(e[i])
		if i > 0 {
			s += math.Abs(e[i-1])
		}
		if s > anorm {
			anorm = s
		}
	}
	if anorm == 0 {
		// The zero matrix: any orthonormal set is an eigenbasis; the
		// canonical one is the deterministic choice.
		for j := 0; j < k; j++ {
			vectors.Data[j*k+j] = 1
		}
		return values, vectors
	}
	inv := 1 / anorm
	ds := make([]float64, n)
	es := make([]float64, n)
	for i := 0; i < n; i++ {
		ds[i] = d[i] * inv
		es[i] = e[i] * inv
	}

	const (
		invIterations = 3 // tridiagonal solves per vector, O(n) each
		maxAttempts   = 3 // re-factorizations with a nudged shift
	)
	eps4 := ulp * math.Sqrt(float64(n)) // cluster separation step (scaled units)
	lu := newTriLU(n)
	kvecs := make([]float64, k*n) // accepted vectors in the tridiagonal basis
	lambdaPrev := math.Inf(1)
	for j := 0; j < k; j++ {
		lambda := values[j] * inv
		// Within a cluster every member gets a shift eps4 below the
		// previous one: distinct factorizations, so inverse iteration can
		// tell the members apart before orthogonalization finishes the job.
		if j > 0 && lambdaPrev-lambda < eps4 {
			lambda = lambdaPrev - eps4
		}
		lambdaPrev = lambda
		x := kvecs[j*n : (j+1)*n : (j+1)*n]
		accepted := false
		for attempt := 0; attempt < maxAttempts && !accepted; attempt++ {
			lu.factor(ds, es, lambda)
			for i := range x {
				x[i] = 1
			}
			normalizeVec(x)
			accepted = true
			// A vector is accepted once it survives invIterations
			// consecutive solve→orthogonalize rounds without collapsing;
			// reseeds reset the count, bounded by a total budget.
			good := 0
			for it := 0; it < 3*invIterations && good < invIterations; it++ {
				lu.solve(x)
				if !finiteVec(x) {
					// A pivot chain blew up; nudge the shift off the exact
					// singularity and re-factor.
					lambda -= eps4
					accepted = false
					break
				}
				pre := Norm2(x)
				orthogonalize(x, kvecs, j, n)
				// The iterate collapsed into the span of the accepted
				// vectors when orthogonalization leaves only rounding
				// residue (which can be a coherent direction, not noise —
				// e.g. a uniform remainder on a repeated-eigenvalue
				// identity block — so exact zero is not the right test).
				// Reseed with a deterministic pseudo-random direction: it
				// generically overlaps every eigenspace, where a canonical
				// basis vector can lie entirely in the wrong one and trap
				// the iteration on a foreign eigenvalue. The reseed does
				// not count as progress — the next solve must pull it into
				// the λ-eigenspace before it can be accepted.
				if normalizeVec(x) <= 1e-8*pre {
					seedVec(x, uint64(j)*uint64(3*invIterations)+uint64(it)+1)
					orthogonalize(x, kvecs, j, n)
					if normalizeVec(x) == 0 {
						x[(j+it)%n] = 1
						normalizeVec(x)
					}
					good = 0
					continue
				}
				good++
			}
			if accepted && good < invIterations {
				// Budget exhausted while still collapsing: treat like a
				// blown pivot chain and re-factor off the cluster.
				lambda -= eps4
				accepted = false
			}
		}
		if !accepted {
			// Deterministic last resort: an orthonormalized basis vector.
			// Unreachable for finite symmetric input, but the fuzz harness
			// demands no path can emit NaN/Inf.
			for i := range x {
				x[i] = 0
			}
			x[j%n] = 1
			orthogonalize(x, kvecs, j, n)
			if normalizeVec(x) == 0 {
				x[(j+1)%n] = 1
				normalizeVec(x)
			}
		}
	}

	// Back-transform through the stored reflectors and canonicalize the
	// sign, writing straight into the output columns.
	vd := vectors.Data
	for j := 0; j < k; j++ {
		x := kvecs[j*n : (j+1)*n : (j+1)*n]
		backTransform(x, n, vflat, offs)
		canonicalizeSign(x)
		for i := 0; i < n; i++ {
			vd[i*k+j] = x[i]
		}
	}
	return values, vectors
}

// tridiagonalize reduces the symmetric matrix in md (flat n×n) to
// tridiagonal form via Householder reflections applied from the top-left
// down: step j zeroes column j below the first subdiagonal. The unit
// reflector vectors are stored packed in vflat (reflector j at offs[j],
// length n-1-j; an all-zero vector is the identity reflector), the
// diagonal lands in d and the subdiagonal in e. p is an n-length scratch
// for the symmetric rank-2 update.
func tridiagonalize(md []float64, n int, d, e, vflat []float64, offs []int, p []float64) {
	off := 0
	for j := 0; j < n-2; j++ {
		mlen := n - 1 - j
		offs[j] = off
		v := vflat[off : off+mlen : off+mlen]
		off += mlen
		for r := 0; r < mlen; r++ {
			v[r] = md[(j+1+r)*n+j]
		}
		var xnorm2 float64
		for _, xv := range v {
			xnorm2 += xv * xv
		}
		if xnorm2 == 0 {
			// Column already tridiagonal here; v stays all-zero, which the
			// back-transform treats as the identity.
			e[j] = 0
			continue
		}
		xnorm := math.Sqrt(xnorm2)
		x0 := v[0]
		alpha := -xnorm
		if x0 < 0 {
			alpha = xnorm
		}
		v[0] = x0 - alpha
		// ‖v‖² = 2(‖x‖² − α·x0); α and x0 have opposite signs, so the
		// subtraction cannot cancel.
		vnorm := math.Sqrt(2 * (xnorm2 - alpha*x0))
		vinv := 1 / vnorm
		for r := range v {
			v[r] *= vinv
		}
		e[j] = alpha
		// Two-sided update of the trailing block B ← (I−2vvᵀ)B(I−2vvᵀ):
		// with u = 2Bv and w = u − (vᵀu)v it is the rank-2 B −= vwᵀ + wvᵀ.
		base := j + 1
		for r := 0; r < mlen; r++ {
			row := md[(base+r)*n+base : (base+r)*n+base+mlen : (base+r)*n+base+mlen]
			var s float64
			for c, bv := range row {
				s += bv * v[c]
			}
			p[r] = 2 * s
		}
		var vu float64
		for r := 0; r < mlen; r++ {
			vu += v[r] * p[r]
		}
		for r := 0; r < mlen; r++ {
			p[r] -= vu * v[r]
		}
		for r := 0; r < mlen; r++ {
			row := md[(base+r)*n+base : (base+r)*n+base+mlen : (base+r)*n+base+mlen]
			vr, pr := v[r], p[r]
			for c := range row {
				row[c] -= vr*p[c] + pr*v[c]
			}
		}
	}
	if n >= 2 {
		e[n-2] = md[(n-2)*n+n-1]
	}
	e[n-1] = 0
	for i := 0; i < n; i++ {
		d[i] = md[i*n+i]
	}
}

// qlImplicitShift diagonalizes the symmetric tridiagonal matrix (d, e)
// in place: on return d holds the eigenvalues in no particular order and
// e is destroyed. e[i] is the subdiagonal T[i][i+1], e[len-1] a zero
// sentinel. It reports false if any eigenvalue fails to converge within
// maxQLIterations sweeps — effectively impossible for finite input.
//
// This is the eigenvalue-only implicit-shift QL iteration (EISPACK
// imtql1 / NR tqli with the eigenvector accumulation deleted): each
// sweep chases one Givens bulge down the unreduced block, and the
// Wilkinson shift makes the last off-diagonal entry vanish cubically.
//
// The deflation test is relative to the local diagonal OR absolute at
// ulp·‖T‖∞. The absolute anchor matters on rank-deficient input — a
// centered RBF kernel matrix has a long tail of eigenvalues at the
// rounding floor, and once QL has pushed a block down to d ≈ e ≈
// ulp·‖T‖, a purely relative test (ulp·(|d[m]|+|d[m+1]|), i.e. the
// square of the floor) can never fire and the sweep stalls. Deflating
// there costs nothing: Householder reduction already perturbed every
// entry by O(ulp·‖T‖), so those eigenvalues carry that absolute error
// no matter what QL does.
func qlImplicitShift(d, e []float64) bool {
	n := len(d)
	tnorm := 0.0
	for i := 0; i < n; i++ {
		s := math.Abs(d[i]) + math.Abs(e[i])
		if i > 0 {
			s += math.Abs(e[i-1])
		}
		if s > tnorm {
			tnorm = s
		}
	}
	floor := ulp * tnorm
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first negligible subdiagonal at or after l: the
			// block [l, m] is what the sweep operates on.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= ulp*dd+floor {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxQLIterations {
				return false
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c, pp := 1.0, 1.0, 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Premature deflation mid-sweep: split and restart.
					d[i+1] -= pp
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - pp
				r = (d[i]-g)*s + 2*c*b
				pp = s * r
				d[i+1] = g + pp
				g = c*r - b
			}
			if underflow {
				continue
			}
			d[l] -= pp
			e[l] = g
			e[m] = 0
		}
	}
	return true
}

// triLU is the reusable LU factorization of a shifted tridiagonal
// (T − λI) with partial pivoting. Pivoting fills in one extra
// superdiagonal, so U is stored in three bands (u, s1, s2); the row
// operations (multiplier + swap flag per step) are kept so one
// factorization can solve several right-hand sides.
type triLU struct {
	n          int
	u, s1, s2  []float64
	ml         []float64
	swapped    []bool
	pivotFloor float64
}

func newTriLU(n int) *triLU {
	return &triLU{
		n:       n,
		u:       make([]float64, n),
		s1:      make([]float64, n),
		s2:      make([]float64, n),
		ml:      make([]float64, n),
		swapped: make([]bool, n),
		// The matrix is pre-scaled to unit ∞-norm, so the floor replacing
		// an exactly-zero pivot is a plain ulp.
		pivotFloor: ulp,
	}
}

// factor builds the pivoted LU of (T − λI) for the tridiagonal (d, e).
func (lu *triLU) factor(d, e []float64, lambda float64) {
	n := lu.n
	for i := 0; i < n; i++ {
		lu.u[i] = d[i] - lambda
		if i < n-1 {
			lu.s1[i] = e[i]
		} else {
			lu.s1[i] = 0
		}
		lu.s2[i] = 0
	}
	for i := 0; i < n-1; i++ {
		sub := e[i] // subdiagonal entry of row i+1 (T is symmetric)
		if math.Abs(lu.u[i]) >= math.Abs(sub) {
			lu.swapped[i] = false
			piv := lu.u[i]
			if piv == 0 {
				piv = lu.pivotFloor
				lu.u[i] = piv
			}
			mlt := sub / piv
			lu.ml[i] = mlt
			lu.u[i+1] -= mlt * lu.s1[i]
		} else {
			// |sub| > |u[i]| ≥ 0, so dividing by sub is safe.
			lu.swapped[i] = true
			mlt := lu.u[i] / sub
			lu.ml[i] = mlt
			newU := lu.s1[i] - mlt*lu.u[i+1]
			newS1 := -mlt * lu.s1[i+1]
			lu.u[i] = sub
			lu.s2[i] = lu.s1[i+1]
			lu.s1[i] = lu.u[i+1]
			lu.u[i+1] = newU
			lu.s1[i+1] = newS1
		}
	}
	if lu.u[n-1] == 0 {
		lu.u[n-1] = lu.pivotFloor
	}
}

// solve overwrites b with (T − λI)⁻¹ b using the stored factorization.
func (lu *triLU) solve(b []float64) {
	n := lu.n
	for i := 0; i < n-1; i++ {
		if lu.swapped[i] {
			b[i], b[i+1] = b[i+1], b[i]
		}
		b[i+1] -= lu.ml[i] * b[i]
	}
	for i := n - 1; i >= 0; i-- {
		x := b[i]
		if i+1 < n {
			x -= lu.s1[i] * b[i+1]
		}
		if i+2 < n {
			x -= lu.s2[i] * b[i+2]
		}
		b[i] = x / lu.u[i]
	}
}

// orthogonalize removes from x its components along the first j accepted
// vectors (rows of kvecs, each length n) by modified Gram-Schmidt.
func orthogonalize(x, kvecs []float64, j, n int) {
	for q := 0; q < j; q++ {
		prev := kvecs[q*n : (q+1)*n : (q+1)*n]
		var dot float64
		for i, xv := range x {
			dot += xv * prev[i]
		}
		for i := range x {
			x[i] -= dot * prev[i]
		}
	}
}

// normalizeVec scales x to unit Euclidean norm and returns the norm it
// had; a zero vector is left untouched.
func normalizeVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	if s == 0 {
		return 0
	}
	nrm := math.Sqrt(s)
	inv := 1 / nrm
	for i := range x {
		x[i] *= inv
	}
	return nrm
}

// seedVec fills x with a deterministic pseudo-random direction derived
// from tag (xorshift64), used to restart a collapsed inverse iterate
// with generic overlap with every eigenspace.
func seedVec(x []float64, tag uint64) {
	s := tag*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x[i] = float64(s>>11)/float64(1<<52) - 1
	}
}

func finiteVec(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// backTransform maps a tridiagonal-basis vector back to the original
// basis by applying the stored Householder reflectors in reverse order:
// x ← H₀H₁…H_{n-3} x, each Hⱼ acting on components j+1…n-1 as
// x ← x − 2v(vᵀx). All-zero reflectors are identities and cost one dot
// product to skip.
func backTransform(x []float64, n int, vflat []float64, offs []int) {
	for j := n - 3; j >= 0; j-- {
		mlen := n - 1 - j
		v := vflat[offs[j] : offs[j]+mlen : offs[j]+mlen]
		seg := x[j+1 : n : n]
		var dot float64
		for i, vv := range v {
			dot += vv * seg[i]
		}
		if dot == 0 {
			continue
		}
		t := 2 * dot
		for i, vv := range v {
			seg[i] -= t * vv
		}
	}
}

// canonicalizeSign flips x so its largest-magnitude component (lowest
// index on ties) is non-negative, making the eigenvector sign — which
// the eigenproblem leaves free — a deterministic function of the input.
func canonicalizeSign(x []float64) {
	best, bestAbs := -1, 0.0
	for i, v := range x {
		if a := math.Abs(v); a > bestAbs {
			best, bestAbs = i, a
		}
	}
	if best >= 0 && x[best] < 0 {
		for i := range x {
			x[i] = -x[i]
		}
	}
}
