package linalg

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenSymKnownDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 7}})
	vals, _ := EigenSym(a)
	if !approxEq(vals[0], 7, 1e-10) || !approxEq(vals[1], 3, 1e-10) {
		t.Errorf("eigenvalues %v, want [7 3]", vals)
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(a)
	if !approxEq(vals[0], 3, 1e-10) || !approxEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// A·v = λ·v for each pair.
	for i := 0; i < 2; i++ {
		v := vecs.Col(i)
		av := a.MulVec(v)
		for j := range v {
			if !approxEq(av[j], vals[i]*v[j], 1e-9) {
				t.Errorf("eigpair %d: (Av)[%d]=%v, λv=%v", i, j, av[j], vals[i]*v[j])
			}
		}
	}
}

func TestEigenSymEmpty(t *testing.T) {
	vals, vecs := EigenSym(NewMatrix(0, 0))
	if len(vals) != 0 || vecs.Rows != 0 {
		t.Errorf("empty eigendecomposition returned %v, %v", vals, vecs)
	}
}

func TestEigenSymSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randomSPD(rng, 8)
	vals, _ := EigenSym(a)
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(vals))) {
		t.Errorf("eigenvalues not descending: %v", vals)
	}
}

func TestEigenSymTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 2 + trial
		a := randomSPD(rng, n)
		vals, _ := EigenSym(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if !approxEq(sum, a.Trace(), 1e-7*(1+a.Trace())) {
			t.Fatalf("trial %d: Σλ=%v, Tr(A)=%v", trial, sum, a.Trace())
		}
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomSPD(rng, 6)
	_, vecs := EigenSym(a)
	vtv := Mul(vecs.T(), vecs)
	if !matApproxEq(vtv, Identity(6), 1e-8) {
		t.Errorf("VᵀV != I:\n%v", vtv)
	}
}

// Property: the decomposition reconstructs A = V·diag(λ)·Vᵀ.
func TestQuickEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(6))
		a := randomSPD(r, n)
		vals, vecs := EigenSym(a)
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		recon := Mul(Mul(vecs, d), vecs.T())
		return matApproxEq(recon, a, 1e-7*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: SPD matrices have strictly positive eigenvalues.
func TestQuickSPDPositiveEigenvalues(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(5))
		vals, _ := EigenSym(randomSPD(r, n))
		for _, v := range vals {
			if v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
