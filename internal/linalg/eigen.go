package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns eigenvalues in descending
// order and the matrix of corresponding eigenvectors stored as columns
// (vectors.Col(i) pairs with values[i]).
//
// Jacobi is O(n³) per sweep and converges quadratically; it is exact enough
// for the kernel-PCA matrices (Sec 3.3.1) whose size is the per-concept
// instance count, and it is unconditionally stable on symmetric input.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: EigenSym of non-square %d×%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	if n == 0 {
		return nil, NewMatrix(0, 0)
	}
	m := a.Clone()
	m.Symmetrize()
	v := Identity(n)

	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off <= tol*(1+m.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	sorted := make([]float64, n)
	vecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, vecs
}

// rotate applies the Jacobi rotation G(p,q,θ) to m (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := m.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}
