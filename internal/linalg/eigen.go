package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns eigenvalues in descending
// order and the matrix of corresponding eigenvectors stored as columns
// (vectors.Col(i) pairs with values[i]).
//
// Jacobi is O(n³) per sweep and converges quadratically; it is exact enough
// for the kernel-PCA matrices (Sec 3.3.1) whose size is the per-concept
// instance count, and it is unconditionally stable on symmetric input.
//
// The sweeps are the hottest loops in the whole pipeline (KPCA refits per
// concept per cleaning round), so they index the flat backing array
// directly: same arithmetic expressions in the same order as the
// At/Set formulation — bit-identical results — without the per-element
// offset multiply and bounds checks.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: EigenSym of non-square %d×%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	if n == 0 {
		return nil, NewMatrix(0, 0)
	}
	m := a.Clone()
	m.Symmetrize()
	v := Identity(n)
	md := m.Data

	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off <= tol*(1+m.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			rowp := md[p*n : p*n+n : p*n+n]
			for q := p + 1; q < n; q++ {
				apq := rowp[q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := rowp[p], md[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = md[i*n+i]
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	sorted := make([]float64, n)
	vecs := NewMatrix(n, n)
	vd, sd := vecs.Data, v.Data
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vd[r*n+newCol] = sd[r*n+oldCol]
		}
	}
	return sorted, vecs
}

// rotate applies the Jacobi rotation G(p,q,θ) to m (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided). The column
// updates walk both columns with one running offset (elements (i,p) and
// (i,q) sit n apart in the flat array); the row updates operate on the
// two row slices directly.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	md := m.Data
	for ip, iq := p, q; ip < len(md) && iq < len(md); ip, iq = ip+n, iq+n {
		mip, miq := md[ip], md[iq]
		md[ip] = c*mip - s*miq
		md[iq] = s*mip + c*miq
	}
	rowp := md[p*n : p*n+n : p*n+n]
	rowq := md[q*n : q*n+n : q*n+n]
	for j, mpj := range rowp {
		mqj := rowq[j]
		rowp[j] = c*mpj - s*mqj
		rowq[j] = s*mpj + c*mqj
	}
	vd := v.Data
	for ip, iq := p, q; ip < len(vd) && iq < len(vd); ip, iq = ip+n, iq+n {
		vip, viq := vd[ip], vd[iq]
		vd[ip] = c*vip - s*viq
		vd[iq] = s*vip + c*viq
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		row := m.Data[i*n : i*n+n : i*n+n]
		for j, v := range row {
			if j == i {
				continue
			}
			s += v * v
		}
	}
	return math.Sqrt(s)
}
