package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matApproxEq(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !approxEq(a.Data[i], b.Data[i], tol) {
			return false
		}
	}
	return true
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randomSPD returns a random symmetric positive-definite matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	m := Mul(b, b.T())
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n)) // diagonal boost guarantees positive definiteness
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRowsRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	m := FromRows(rows)
	for i := range rows {
		for j := range rows[i] {
			if m.At(i, j) != rows[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, m.At(i, j), rows[i][j])
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMulIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 5, 5)
	if !matApproxEq(Mul(Identity(5), m), m, eps) {
		t.Error("I·M != M")
	}
	if !matApproxEq(Mul(m, Identity(5)), m, eps) {
		t.Error("M·I != M")
	}
}

func TestMulKnownValues(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !matApproxEq(got, want, eps) {
		t.Errorf("Mul =\n%v want\n%v", got, want)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 4, 7)
	if !matApproxEq(m.T().T(), m, 0) {
		t.Error("(Mᵀ)ᵀ != M")
	}
}

func TestMulTransposeProperty(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ on random matrices.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(rng, 3+trial%3, 4)
		b := randomMatrix(rng, 4, 2+trial%4)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		if !matApproxEq(left, right, 1e-9) {
			t.Fatalf("trial %d: (AB)ᵀ != BᵀAᵀ", trial)
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 5, 3)
	v := []float64{1.5, -2, 0.25}
	got := a.MulVec(v)
	colV := NewMatrix(3, 1)
	copy(colV.Data, v)
	want := Mul(a, colV)
	for i := range got {
		if !approxEq(got[i], want.At(i, 0), eps) {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := AddM(a, b); !matApproxEq(got, FromRows([][]float64{{11, 22}, {33, 44}}), eps) {
		t.Errorf("AddM wrong: %v", got)
	}
	if got := SubM(b, a); !matApproxEq(got, FromRows([][]float64{{9, 18}, {27, 36}}), eps) {
		t.Errorf("SubM wrong: %v", got)
	}
	if got := Scale(2, a); !matApproxEq(got, FromRows([][]float64{{2, 4}, {6, 8}}), eps) {
		t.Errorf("Scale wrong: %v", got)
	}
	c := a.Clone()
	AddInPlace(c, -1, a)
	if c.MaxAbs() != 0 {
		t.Errorf("AddInPlace(c,-1,a) should zero the matrix, got %v", c)
	}
}

func TestTraceAndNorms(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.Trace(); got != 7 {
		t.Errorf("Trace = %v, want 7", got)
	}
	if got := m.FrobeniusNorm(); !approxEq(got, 5, eps) {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 3}, {5, 2}})
	m.Symmetrize()
	if m.At(0, 1) != 4 || m.At(1, 0) != 4 {
		t.Errorf("Symmetrize: off-diagonals %v, %v, want 4", m.At(0, 1), m.At(1, 0))
	}
}

func TestRowColClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	row[0] = 99
	if m.At(1, 0) != 4 {
		t.Error("Row must return a copy")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col(2) = %v, want [3 6]", col)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); !approxEq(got, 5, eps) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

// Property: matrix multiplication is associative (within float tolerance).
func TestQuickMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 2+int(rng.Int31n(3)), 3)
		b := randomMatrix(r, 3, 4)
		c := randomMatrix(r, 4, 2)
		return matApproxEq(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: trace is invariant under cyclic permutation, Tr(AB) = Tr(BA).
func TestQuickTraceCyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 4, 6)
		b := randomMatrix(r, 6, 4)
		return approxEq(Mul(a, b).Trace(), Mul(b, a).Trace(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
