package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"driftclean/internal/floats"
)

var quickCfg = &quick.Config{MaxCount: 40}

// randomSymmetric builds a random symmetric n×n matrix.
func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func matricesEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !floats.EqualTol(a.Data[i], b.Data[i], tol) {
			return false
		}
	}
	return true
}

// TestQuickTransposeInvolution: (Aᵀ)ᵀ = A for any shape.
func TestQuickTransposeInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return matricesEqual(a.T().T(), a, 0)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSymmetrizeIdempotent: Symmetrize produces a symmetric matrix
// and a second application changes nothing.
func TestQuickSymmetrizeIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		a.Symmetrize()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !floats.Equal(a.At(i, j), a.At(j, i)) {
					return false
				}
			}
		}
		b := a.Clone()
		b.Symmetrize()
		return matricesEqual(a, b, 0)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMulIdentity: I·A = A·I = A.
func TestQuickMulIdentity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, r, c)
		return matricesEqual(Mul(Identity(r), a), a, floats.Eps) &&
			matricesEqual(Mul(a, Identity(c)), a, floats.Eps)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEigenSymReconstructs: for random symmetric A, every
// eigenpair satisfies A·v ≈ λ·v, the eigenvalues come out in descending
// order, and the eigenvectors are orthonormal.
func TestQuickEigenSymReconstructs(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randomSymmetric(rng, n)
		vals, vecs := EigenSym(a)
		if len(vals) != n {
			return false
		}
		for p := 0; p < n; p++ {
			if p > 0 && vals[p] > vals[p-1]+floats.Eps {
				return false // not descending
			}
			v := vecs.Col(p)
			av := a.MulVec(v)
			for i := range av {
				if !floats.EqualTol(av[i], vals[p]*v[i], 1e-7) {
					return false
				}
			}
		}
		for p := 0; p < n; p++ {
			for q := p; q < n; q++ {
				dot := Dot(vecs.Col(p), vecs.Col(q))
				want := 0.0
				if p == q {
					want = 1
				}
				if !floats.EqualTol(dot, want, 1e-7) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
