package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution at the
// working precision.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds a partial-pivot LU factorization of a square matrix.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// Factor computes the partial-pivot LU factorization of a. It returns
// ErrSingular when a pivot vanishes.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			swapRows(lu, p, k)
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pk
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

// SolveVec solves A·x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveVec rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	f.solveVecInto(x, b)
	return x
}

// solveVecInto solves A·x = b into a caller-owned x (len n); b is not
// modified and x and b must not alias.
func (f *LU) solveVecInto(x, b []float64) {
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : i*n+i]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
}

// Solve solves A·X = B column by column, reusing one column and one
// solution buffer across all right-hand sides.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: Solve rhs has %d rows, want %d", b.Rows, n))
	}
	out := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	x := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		f.solveVecInto(x, col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear solves A·X = B directly (factor + solve).
func SolveLinear(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A⁻¹, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	return SolveLinear(a, Identity(a.Rows))
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix. It returns ErrSingular when A is not positive
// definite at the working precision.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// CholeskySolveVec solves A·x = b given the Cholesky factor L of A.
func CholeskySolveVec(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
