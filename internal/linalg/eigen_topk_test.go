package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The differential suite holds EigenSymTopK to the Jacobi oracle: the
// two solvers share no code past Symmetrize, so agreement on random and
// adversarial inputs is evidence the fast path computes the same
// decomposition, not a plausible-looking one. Tolerances are relative to
// the spectrum scale: both solvers are backward-stable, so eigenvalues
// agree to O(ulp·‖A‖) and residuals sit at the same scale.

// diffKs returns the k grid of the differential suite for size n:
// a single vector, half the spectrum, and the full spectrum.
func diffKs(n int) []int {
	ks := []int{1, n / 2, n}
	if n == 0 {
		ks = []int{0}
	}
	return ks
}

// checkTopKAgainstOracle runs both solvers on a and asserts eigenvalue
// agreement, residual bounds, orthonormality of the top-k vectors and —
// for eigenvalues separated by more than gapTol — sign-canonicalized
// eigenvector agreement.
func checkTopKAgainstOracle(t *testing.T, a *Matrix, k int) {
	t.Helper()
	n := a.Rows
	jvals, jvecs := EigenSym(a)
	tvals, tvecs := EigenSymTopK(a, k)

	if len(tvals) != n {
		t.Fatalf("EigenSymTopK returned %d eigenvalues, want all %d", len(tvals), n)
	}
	if tvecs.Rows != n || tvecs.Cols != k {
		t.Fatalf("EigenSymTopK vectors are %d×%d, want %d×%d", tvecs.Rows, tvecs.Cols, n, k)
	}
	scale := 1.0
	if n > 0 {
		scale = 1 + math.Max(math.Abs(jvals[0]), math.Abs(jvals[n-1]))
	}

	// Eigenvalue agreement across the whole spectrum, not just the top k.
	for i := range jvals {
		if math.Abs(jvals[i]-tvals[i]) > 1e-9*scale {
			t.Errorf("eigenvalue %d: jacobi %v vs topk %v", i, jvals[i], tvals[i])
		}
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(tvals))) {
		t.Errorf("topk eigenvalues not descending: %v", tvals)
	}

	// Residual ‖Av − λv‖ ≤ tol·scale for every returned eigenpair.
	for j := 0; j < k; j++ {
		v := tvecs.Col(j)
		av := a.MulVec(v)
		var res float64
		for i := range v {
			r := av[i] - tvals[j]*v[i]
			res += r * r
		}
		if math.Sqrt(res) > 1e-8*scale {
			t.Errorf("eigpair %d (λ=%v): residual ‖Av−λv‖ = %v", j, tvals[j], math.Sqrt(res))
		}
	}

	// The top-k vectors form an orthonormal set.
	if k > 0 {
		vtv := Mul(tvecs.T(), tvecs)
		if !matApproxEq(vtv, Identity(k), 1e-8) {
			t.Errorf("top-%d vectors not orthonormal:\n%v", k, vtv)
		}
	}

	// Sign-canonicalized eigenvector comparison, restricted to eigenpairs
	// whose eigenvalue is simple at the comparison tolerance — inside a
	// cluster the individual vectors are not determined, only their span
	// (which the residual and orthonormality checks pin down instead).
	gapTol := 1e-6 * scale
	for j := 0; j < k; j++ {
		sep := true
		if j > 0 && jvals[j-1]-jvals[j] < gapTol {
			sep = false
		}
		if j < n-1 && jvals[j]-jvals[j+1] < gapTol {
			sep = false
		}
		if !sep {
			continue
		}
		jv := jvecs.Col(j)
		tv := tvecs.Col(j)
		// Align signs by the overlap rather than canonicalizing each side
		// independently: on matrices with mirror-symmetric eigenvectors
		// (e.g. Toeplitz-shaped kernels) the largest-magnitude component
		// is a near-exact tie, and last-bit differences would make the
		// two solvers canonicalize to opposite signs.
		if Dot(jv, tv) < 0 {
			for i := range tv {
				tv[i] = -tv[i]
			}
		}
		for i := range jv {
			if math.Abs(jv[i]-tv[i]) > 1e-6 {
				t.Errorf("eigvec %d component %d: jacobi %v vs topk %v", j, i, jv[i], tv[i])
				break
			}
		}
	}
}

// TestEigenSymTopKDifferentialRandomSPD: the headline grid — seeded
// random SPD matrices at the sizes KPCA actually sees, each at k = 1,
// n/2 and n.
func TestEigenSymTopKDifferentialRandomSPD(t *testing.T) {
	for _, n := range []int{5, 30, 60, 120} {
		rng := rand.New(rand.NewSource(int64(1000 + n)))
		a := randomSPD(rng, n)
		for _, k := range diffKs(n) {
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				checkTopKAgainstOracle(t, a, k)
			})
		}
	}
}

// TestEigenSymTopKDifferentialKernelShaped: RBF-Gram-shaped matrices —
// the exact input family the KPCA path feeds the solver, including the
// rapid spectral decay that makes the tail cluster near zero.
func TestEigenSymTopKDifferentialKernelShaped(t *testing.T) {
	for _, n := range []int{5, 30, 60, 120} {
		a := benchSym(n)
		for _, k := range diffKs(n) {
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				checkTopKAgainstOracle(t, a, k)
			})
		}
	}
}

// repeatedEigenvalueMatrix builds Q·diag(vals)·Qᵀ for a deterministic
// orthogonal Q, so the eigenvalues (and their multiplicities) are known
// exactly.
func spectrumMatrix(rng *rand.Rand, vals []float64) *Matrix {
	n := len(vals)
	// Orthogonalize a random matrix by Gram-Schmidt to get Q.
	q := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		for prev := 0; prev < j; prev++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += col[i] * q.At(i, prev)
			}
			for i := 0; i < n; i++ {
				col[i] -= dot * q.At(i, prev)
			}
		}
		nrm := Norm2(col)
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i]/nrm)
		}
	}
	d := NewMatrix(n, n)
	for i, v := range vals {
		d.Set(i, i, v)
	}
	return Mul(Mul(q, d), q.T())
}

// TestEigenSymTopKAdversarial: the shapes inverse iteration is known to
// find hard — repeated and tightly clustered eigenvalues, rank
// deficiency, near-zero trace (an indefinite spectrum straddling 0).
func TestEigenSymTopKAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := []struct {
		name string
		a    *Matrix
		k    int
	}{
		{"repeated", spectrumMatrix(rng, []float64{5, 5, 5, 2, 2, 1, 1, 1}), 8},
		{"clustered", spectrumMatrix(rng, []float64{
			3, 3 - 1e-13, 3 - 2e-13, 1, 1 - 1e-13, 0.5, 0.1, 0.05}), 8},
		{"rank-deficient", spectrumMatrix(rng, []float64{4, 2, 1, 0, 0, 0, 0}), 7},
		{"near-zero-trace", spectrumMatrix(rng, []float64{3, 1, 0.5, -0.5, -1, -3}), 6},
		{"identity", Identity(6), 6},
		{"zero", NewMatrix(4, 4), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkTopKAgainstOracle(t, tc.a, tc.k)
		})
	}
}

// TestEigenSymTopKDegenerateSizes: 0×0 and 1×1 inputs, where the
// reduction and iteration machinery must degrade to no-ops.
func TestEigenSymTopKDegenerateSizes(t *testing.T) {
	vals, vecs := EigenSymTopK(NewMatrix(0, 0), 3)
	if len(vals) != 0 || vecs.Rows != 0 || vecs.Cols != 0 {
		t.Errorf("0×0: got %v, %d×%d", vals, vecs.Rows, vecs.Cols)
	}
	one := FromRows([][]float64{{-2.5}})
	vals, vecs = EigenSymTopK(one, 1)
	if len(vals) != 1 || !approxEq(vals[0], -2.5, 1e-15) {
		t.Errorf("1×1: eigenvalues %v, want [-2.5]", vals)
	}
	if vecs.Rows != 1 || vecs.Cols != 1 || !approxEq(vecs.At(0, 0), 1, 1e-15) {
		t.Errorf("1×1: vectors %v, want [[1]]", vecs)
	}
}

// TestEigenSymTopKClampsK: k outside [0, n] is clamped, matching the
// "component budget" call sites that pass min(n, MaxComponents).
func TestEigenSymTopKClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 5)
	vals, vecs := EigenSymTopK(a, 99)
	if vecs.Cols != 5 || len(vals) != 5 {
		t.Errorf("k>n: got %d cols, want 5", vecs.Cols)
	}
	vals, vecs = EigenSymTopK(a, -3)
	if vecs.Cols != 0 || len(vals) != 5 {
		t.Errorf("k<0: got %d cols (%d values), want 0 cols, 5 values", vecs.Cols, len(vals))
	}
}

// TestEigenSymTopKDeterministic: two runs on the same input are
// bit-identical — the solver has no random state, and the sign
// canonicalization removes the one free choice the eigenproblem leaves.
func TestEigenSymTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSPD(rng, 40)
	v1, m1 := EigenSymTopK(a, 12)
	v2, m2 := EigenSymTopK(a, 12)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("eigenvalue %d differs across runs: %v vs %v", i, v1[i], v2[i])
		}
	}
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatalf("eigenvector entry %d differs across runs", i)
		}
	}
}

// TestEigenSymTopKDoesNotMutateInput: like EigenSym, the input matrix is
// cloned, never written.
func TestEigenSymTopKDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 9)
	before := a.Clone()
	EigenSymTopK(a, 4)
	for i := range a.Data {
		if a.Data[i] != before.Data[i] {
			t.Fatal("EigenSymTopK mutated its input")
		}
	}
}

// TestEigenSymTopKPanicsOnNonSquare mirrors the EigenSym contract.
func TestEigenSymTopKPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-square input")
		}
	}()
	EigenSymTopK(NewMatrix(2, 3), 1)
}
