package experiments

import (
	"fmt"
	"sort"

	"driftclean/internal/core"
	"driftclean/internal/dp"
	"driftclean/internal/eval"
	"driftclean/internal/learn"
	"driftclean/internal/mutex"
	"driftclean/internal/seedlabel"
	"driftclean/internal/sparsevec"
)

// Figure2 regenerates the sub-instance frequency distributions of DP and
// non-DP trigger instances under the "animal" concept: one column per
// trigger plus the class-average distribution, over a shared vocabulary
// of the most frequent sub-instances.
func (r *Runner) Figure2() *Table {
	const concept = "animal"
	sys := r.sys
	truth := sys.Oracle.TruthLabels(sys.KB, concept)

	// Pick triggers: every ground-truth Intentional DP plus the non-DPs
	// with the most sub-instances.
	type trig struct {
		name string
		lbl  dp.Label
		subs int
	}
	var trigs []trig
	for e, lbl := range truth {
		trigs = append(trigs, trig{e, lbl, len(sys.KB.SubInstances(concept, e))})
	}
	sort.Slice(trigs, func(i, j int) bool {
		if trigs[i].lbl.IsDP() != trigs[j].lbl.IsDP() {
			return trigs[i].lbl.IsDP()
		}
		if trigs[i].subs != trigs[j].subs {
			return trigs[i].subs > trigs[j].subs
		}
		return trigs[i].name < trigs[j].name
	})
	var selected []trig
	dps, nons := 0, 0
	for _, tr := range trigs {
		switch {
		case tr.lbl == dp.Intentional && dps < 2:
			selected = append(selected, tr)
			dps++
		case tr.lbl == dp.NonDP && nons < 4:
			selected = append(selected, tr)
			nons++
		}
	}

	// Distributions over the class; vocabulary = top sub-instances by
	// total class frequency, plus everything the DPs trigger.
	dist := map[string]sparsevec.Vector{}
	for _, tr := range selected {
		v := sparsevec.New()
		for _, s := range sys.KB.SubInstances(concept, tr.name) {
			v.Inc(s, float64(sys.KB.Count(concept, s)))
		}
		dist[tr.name] = v.Normalized()
	}
	avg := sparsevec.New()
	for _, e := range sys.KB.Instances(concept) {
		avg.Inc(e, float64(sys.KB.Count(concept, e)))
	}
	avgN := avg.Normalized()

	vocab := avgN.TopK(10)
	for _, tr := range selected {
		if tr.lbl.IsDP() {
			vocab = append(vocab, dist[tr.name].TopK(5)...)
		}
	}
	vocab = dedupStrings(vocab)
	if len(vocab) > 16 {
		vocab = vocab[:16]
	}

	t := &Table{
		ID:     "fig2",
		Title:  fmt.Sprintf("sub-instance distributions of triggers under %q", concept),
		Header: []string{"sub-instance"},
	}
	for _, tr := range selected {
		tag := "non-DP"
		if tr.lbl == dp.Intentional {
			tag = "DP"
		}
		t.Header = append(t.Header, fmt.Sprintf("%s(%s)", tr.name, tag))
	}
	t.Header = append(t.Header, "AVG")
	for _, word := range vocab {
		row := []string{word}
		for _, tr := range selected {
			row = append(row, f4s(dist[tr.name][word]))
		}
		row = append(row, f4s(avgN[word]))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper Fig 2: chicken's distribution diverges from AVG (mass on beef/pork/milk); non-DPs track AVG"
	return t
}

// Figure3 regenerates the per-class feature profiles: mean and quartiles
// of f1..f4 for Intentional DPs, Accidental DPs and non-DPs.
func (r *Runner) Figure3() *Table {
	sys := r.sys
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		return &Table{ID: "fig3", Title: "feature profiles", Notes: "analysis failed: " + err.Error()}
	}
	vals := map[dp.Label][][]float64{} // label -> feature -> values
	for _, lbl := range []dp.Label{dp.NonDP, dp.Intentional, dp.Accidental} {
		vals[lbl] = make([][]float64, 4)
	}
	for _, c := range evalConceptsIn(sys.KB, r.evalConcepts) {
		truth := sys.Oracle.TruthLabels(sys.KB, c)
		// Quantiles sort internally, but the running mean sums floats in
		// collection order; iterate entities sorted so the table bytes
		// are identical run to run.
		ents := make([]string, 0, len(truth))
		for e := range truth {
			ents = append(ents, e)
		}
		sort.Strings(ents)
		for _, e := range ents {
			lbl := truth[e]
			v := a.Features.Vector(c, e)
			for i := 0; i < 4; i++ {
				vals[lbl][i] = append(vals[lbl][i], v[i])
			}
		}
	}
	t := &Table{
		ID:     "fig3",
		Title:  "feature value profiles per class (mean [q25 q50 q75])",
		Header: []string{"feature", "non-DPs", "Intentional DPs", "Accidental DPs"},
	}
	for i := 0; i < 4; i++ {
		row := []string{fmt.Sprintf("f%d", i+1)}
		for _, lbl := range []dp.Label{dp.NonDP, dp.Intentional, dp.Accidental} {
			xs := vals[lbl][i]
			if len(xs) == 0 {
				row = append(row, "-")
				continue
			}
			var sum float64
			for _, x := range xs {
				sum += x
			}
			q := eval.Quantiles(xs, []float64{0.25, 0.5, 0.75})
			row = append(row, fmt.Sprintf("%.4f [%.4f %.4f %.4f]", sum/float64(len(xs)), q[0], q[1], q[2]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper Fig 3: non-DPs high f1; Intentional DPs f2>2; Accidental DPs lowest f3 and f4"
	return t
}

// Figure4 regenerates the histogram of pairwise concept cosine
// similarity with the mutually-exclusive / irrelevant-or-related /
// highly-similar bands.
func (r *Runner) Figure4() *Table {
	a := mutex.Analyze(r.sys.KB, r.opts.Core.Mutex)
	bounds := []float64{0, 1e-4, 1e-3, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
	buckets := a.Histogram(bounds)
	cfg := r.opts.Core.Mutex
	if cfg.ExclusiveThreshold == 0 {
		cfg = mutex.DefaultConfig()
	}
	t := &Table{
		ID:     "fig4",
		Title:  "distribution of cosine similarity between concept cores",
		Header: []string{"cosine range", "# concept pairs", "band"},
	}
	for _, b := range buckets {
		band := "irrelevant / related"
		if b.Hi <= cfg.ExclusiveThreshold {
			band = "mutually exclusive"
		} else if b.Lo >= cfg.SimilarThreshold {
			band = "highly similar"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%g, %g)", b.Lo, b.Hi), d(b.Count), band,
		})
	}
	t.Notes = fmt.Sprintf("thresholds: exclusive < %g, highly similar > %g (paper: 1e-4 and 0.1 at web scale)",
		cfg.ExclusiveThreshold, cfg.SimilarThreshold)
	return t
}

// Figure5a regenerates the per-iteration pair count and precision curve.
func (r *Runner) Figure5a() *Table {
	sys := r.sys
	t := &Table{
		ID:     "fig5a",
		Title:  "number and precision of distinct isA pairs per iteration",
		Header: []string{"iteration", "# distinct pairs", "precision"},
	}
	for _, it := range sys.Extraction.PerIteration {
		prec := precisionUpToIteration(sys, it.Iteration)
		t.Rows = append(t.Rows, []string{d(it.Iteration), d(it.DistinctPairs), f3(prec)})
	}
	t.Notes = "paper Fig 5a: 16.8M pairs at 90%+ precision in iteration 1, 90.5M below 50% by iteration 5"
	return t
}

func precisionUpToIteration(sys *core.System, iter int) float64 {
	correct, total := 0, 0
	for _, c := range sys.KB.Concepts() {
		for _, e := range sys.KB.InstancesAtIteration(c, iter) {
			total++
			if sys.Oracle.PairCorrect(c, e) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Figure5b regenerates the seed-threshold sweep: labeled-data precision
// and label rate as the evidence threshold k grows.
func (r *Runner) Figure5b() *Table {
	sys := r.sys
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		return &Table{ID: "fig5b", Title: "threshold sweep", Notes: "analysis failed: " + err.Error()}
	}
	t := &Table{
		ID:     "fig5b",
		Title:  "precision and recall of seed labeling vs threshold k",
		Header: []string{"k", "precision", "label rate", "#seeds"},
	}
	for _, k := range r.opts.ThresholdSweep {
		cfg := r.opts.Core.Seed
		cfg.K = k
		lab := seedlabel.New(sys.KB, a.Mutex, cfg)
		good, total, instances := 0, 0, 0
		for _, c := range sys.KB.Concepts() {
			instances += len(sys.KB.Instances(c))
			for e, lbl := range lab.Seeds(c) {
				total++
				if sys.Oracle.SeedLabelCorrect(sys.KB, c, e, lbl) {
					good++
				}
			}
		}
		prec, rate := 0.0, 0.0
		if total > 0 {
			prec = float64(good) / float64(total)
		}
		if instances > 0 {
			rate = float64(total) / float64(instances)
		}
		t.Rows = append(t.Rows, []string{d(k), f3(prec), f3(rate), d(total)})
	}
	t.Notes = "paper Fig 5b: precision 0.902→1.0 and recall 15%→0.8% as k goes 0→8; k=4 chosen"
	return t
}

// Figure5c regenerates the detector-accuracy-over-training-iterations
// curve of Algorithm 1.
func (r *Runner) Figure5c() *Table {
	sys := r.sys
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		return &Table{ID: "fig5c", Title: "training convergence", Notes: "analysis failed: " + err.Error()}
	}
	truthByConcept := map[string]map[string]dp.Label{}
	for _, task := range a.Tasks {
		truthByConcept[task.Concept] = sys.Oracle.TruthLabels(sys.KB, task.Concept)
	}
	taskByConcept := map[string]*learn.Task{}
	for _, task := range a.Tasks {
		taskByConcept[task.Concept] = task
	}
	t := &Table{
		ID:     "fig5c",
		Title:  "DP-detector accuracy over Algorithm 1 training iterations",
		Header: []string{"iteration", "accuracy", "objective"},
	}
	cfg := r.opts.Core.MultiTask
	cfg.Tol = 1e-300 // effectively disable early stopping: trace every iteration
	var accs []float64
	res, err := learn.TrainMultiTask(a.Tasks, cfg, func(iter int, dets map[string]*learn.LinearDetector) {
		agree, total := 0, 0
		for concept, det := range dets {
			task := taskByConcept[concept]
			truth := truthByConcept[concept]
			predicted := learn.PredictTask(det, task, false)
			for e, lbl := range predicted {
				tl, ok := truth[e]
				if !ok {
					continue
				}
				total++
				if tl == lbl {
					agree++
				}
			}
		}
		if total > 0 {
			accs = append(accs, float64(agree)/float64(total))
		} else {
			accs = append(accs, 0)
		}
	})
	if err != nil {
		t.Notes = "training failed: " + err.Error()
		return t
	}
	for i, acc := range accs {
		t.Rows = append(t.Rows, []string{d(i + 1), f3(acc), f5(res.Objective[i])})
	}
	t.Notes = "paper Fig 5c: accuracy climbs 0.835→0.921 and stabilizes by iteration 20; objective is monotone (Theorem 1)"
	return t
}

func dedupStrings(xs []string) []string {
	seen := map[string]struct{}{}
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
