// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec 5) on the synthetic substrate. Each method of
// Runner corresponds to one experiment in DESIGN.md's per-experiment
// index and returns a renderable Table with the same rows/series the
// paper reports. Absolute numbers differ from the paper (our corpus is a
// seeded synthetic world, not 1.68B web pages); the shapes — who wins, by
// roughly what factor, where the knees fall — are the reproduction
// target, and EXPERIMENTS.md records both sides.
package experiments

import (
	"fmt"
	"sort"

	"driftclean/internal/baseline"
	"driftclean/internal/clean"
	"driftclean/internal/core"
	"driftclean/internal/dp"
	"driftclean/internal/eval"
	"driftclean/internal/kb"
	"driftclean/internal/rank"
	"driftclean/internal/seedlabel"
)

// Options configures an experiment run.
type Options struct {
	Core core.Config
	// EvalConcepts is how many concepts play the role of the paper's 20
	// labeled evaluation concepts (Table 1).
	EvalConcepts int
	// RankKs are the precision@k cut-offs of Table 2.
	RankKs []int
	// ThresholdSweep is the k range of Fig 5b.
	ThresholdSweep []int
	// CuratedMEx is how many concepts get pre-identified exclusion
	// knowledge for the MEx baseline.
	CuratedMEx int
}

// Default returns the standard experiment scale: large enough for the
// paper's dynamics, small enough to run in well under a minute.
func Default() Options {
	cfg := core.DefaultConfig()
	return Options{
		Core:           cfg,
		EvalConcepts:   20,
		RankKs:         []int{50, 200, 500}, // the paper's 100/1000/2000 scaled to our concept sizes
		ThresholdSweep: []int{1, 2, 3, 4, 5, 6, 7, 8},
		CuratedMEx:     6,
	}
}

// Runner executes experiments against one built system. Experiments that
// mutate the KB (cleaning) rebuild a fresh, identical system first, so a
// single Runner can produce every table in any order.
type Runner struct {
	opts         Options
	sys          *core.System
	evalConcepts []string
}

// NewRunner builds the system (world, corpus, drifted extraction).
func NewRunner(opts Options) *Runner {
	if opts.EvalConcepts <= 0 {
		opts.EvalConcepts = 20
	}
	if len(opts.RankKs) == 0 {
		opts.RankKs = Default().RankKs
	}
	if len(opts.ThresholdSweep) == 0 {
		opts.ThresholdSweep = Default().ThresholdSweep
	}
	if opts.CuratedMEx <= 0 {
		opts.CuratedMEx = Default().CuratedMEx
	}
	sys := core.Build(opts.Core)
	return &Runner{
		opts:         opts,
		sys:          sys,
		evalConcepts: sys.World.EvaluationConcepts(opts.EvalConcepts),
	}
}

// System exposes the underlying built system (read-only use expected).
func (r *Runner) System() *core.System { return r.sys }

// EvalConcepts returns the evaluation concept names.
func (r *Runner) EvalConcepts() []string { return r.evalConcepts }

// freshSystem rebuilds an identical (deterministic) system for
// KB-mutating experiments.
func (r *Runner) freshSystem() *core.System { return core.Build(r.opts.Core) }

// evalConceptsIn filters the evaluation concepts to those present in the
// KB with at least one instance.
func evalConceptsIn(k *kb.KB, concepts []string) []string {
	var out []string
	for _, c := range concepts {
		if len(k.Instances(c)) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// All runs every experiment in paper order.
func (r *Runner) All() []*Table {
	return []*Table{
		r.Table1(), r.Table2(), r.Table3(), r.Table4(), r.Table5(),
		r.Figure2(), r.Figure3(), r.Figure4(),
		r.Figure5a(), r.Figure5b(), r.Figure5c(),
	}
}

// ByID runs one experiment by its identifier ("table1" … "fig5c").
func (r *Runner) ByID(id string) (*Table, error) {
	switch id {
	case "table1":
		return r.Table1(), nil
	case "table2":
		return r.Table2(), nil
	case "table3":
		return r.Table3(), nil
	case "table4":
		return r.Table4(), nil
	case "table5":
		return r.Table5(), nil
	case "fig2":
		return r.Figure2(), nil
	case "fig3":
		return r.Figure3(), nil
	case "fig4":
		return r.Figure4(), nil
	case "fig5a":
		return r.Figure5a(), nil
	case "fig5b":
		return r.Figure5b(), nil
	case "fig5c":
		return r.Figure5c(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	return []string{"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c"}
}

// Table1 regenerates the labeled-instance statistics per evaluation
// concept: instance counts, correctness, and ground-truth DP counts.
func (r *Runner) Table1() *Table {
	t := &Table{
		ID:    "table1",
		Title: "statistics on evaluation concepts (ground-truth labeled)",
		Header: []string{"concept", "#Instances", "#Correct", "#Error",
			"Error %", "#Intent. DPs", "#Accid. DPs", "#Non-DPs"},
	}
	var total eval.ConceptStats
	for _, c := range evalConceptsIn(r.sys.KB, r.evalConcepts) {
		s := r.sys.Oracle.ConceptStats(r.sys.KB, c)
		t.Rows = append(t.Rows, []string{
			c, d(s.Instances), d(s.Correct), d(s.Errors), f3(s.ErrorPct),
			d(s.IntentionalDPs), d(s.AccidentalDPs), d(s.NonDPs),
		})
		total.Instances += s.Instances
		total.Correct += s.Correct
		total.Errors += s.Errors
		total.IntentionalDPs += s.IntentionalDPs
		total.AccidentalDPs += s.AccidentalDPs
		total.NonDPs += s.NonDPs
	}
	errPct := 0.0
	if total.Instances > 0 {
		errPct = float64(total.Errors) / float64(total.Instances)
	}
	t.Rows = append(t.Rows, []string{
		"Overall", d(total.Instances), d(total.Correct), d(total.Errors),
		f3(errPct), d(total.IntentionalDPs), d(total.AccidentalDPs), d(total.NonDPs),
	})
	t.Notes = "paper Table 1: 87,246 instances over 20 concepts, 57% errors"
	return t
}

// Table2 regenerates the ranking-model comparison: average precision of
// the top-k instances per model.
func (r *Runner) Table2() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "precision of top-k instances per ranking model",
		Header: []string{"Ranking Model"},
	}
	for _, k := range r.opts.RankKs {
		t.Header = append(t.Header, fmt.Sprintf("p@%d", k))
	}
	concepts := evalConceptsIn(r.sys.KB, r.evalConcepts)
	models := []struct {
		name  string
		score func(concept string) rank.Scores
	}{
		{"Frequency", func(c string) rank.Scores { return rank.Frequency(r.sys.KB, c) }},
		{"PageRank", func(c string) rank.Scores {
			return rank.PageRank(rank.BuildGraph(r.sys.KB, c), rank.DefaultConfig())
		}},
		{"Random Walk", func(c string) rank.Scores {
			return rank.RandomWalk(rank.BuildGraph(r.sys.KB, c), rank.DefaultConfig())
		}},
	}
	for _, m := range models {
		row := []string{m.name}
		ranked := map[string][]string{}
		for _, c := range concepts {
			ranked[c] = m.score(c).Ranked()
		}
		for _, k := range r.opts.RankKs {
			var sum float64
			n := 0
			for _, c := range concepts {
				if len(ranked[c]) == 0 {
					continue
				}
				sum += r.sys.Oracle.PrecisionAtK(c, ranked[c], k)
				n++
			}
			if n > 0 {
				row = append(row, f4s(sum/float64(n)))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper Table 2: Random Walk 0.80/0.61/0.56 beats PageRank and Frequency at every k"
	return t
}

// Table3 regenerates the cleaning-method comparison on perror / rerror /
// pcorrect / rcorrect.
func (r *Runner) Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "cleaning performance vs previous methods",
		Header: []string{"Cleaning Method", "perror", "rerror", "pcorrect", "rcorrect"},
	}
	sys := r.sys
	concepts := evalConceptsIn(sys.KB, r.evalConcepts)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Notes = "analysis failed: " + err.Error()
		return t
	}
	lab := a.Labeler

	before := eval.MergeCleaning(r.removedMetrics(sys, concepts, nil))
	t.Rows = append(t.Rows, []string{"Before Cleaning", "-", "-", f3(before.PCorr), "1.000"})

	curated := sys.World.EvaluationConcepts(r.opts.CuratedMEx)
	add := func(name string, removed []kb.Pair) {
		m := eval.MergeCleaning(r.removedMetrics(sys, concepts, removed))
		t.Rows = append(t.Rows, []string{name, f3(m.PError), f3(m.RError), f3(m.PCorr), f3(m.RCorr)})
	}
	add("MEx", baseline.MEx(sys.KB, a.Mutex, sys.KB.Concepts(), curated))
	add("TCh", baseline.TypeCheck(sys.KB, sys.World, sys.KB.Concepts()))
	add("PRDual-Rank", baseline.PRDualRank(sys.KB, lab, sys.KB.Concepts(), baseline.DefaultPRConfig()))
	scoresOf := func(c string) map[string]float64 {
		return rank.RandomWalk(rank.BuildGraph(sys.KB, c), rank.DefaultConfig())
	}
	add("RW-Rank", baseline.RWRank(sys.KB, lab, sys.KB.Concepts(), scoresOf, 0))

	// DP cleaning mutates: run on a fresh identical system.
	fresh := r.freshSystem()
	cr, err := fresh.CleanDPs(core.DetectMultiTask)
	if err != nil {
		t.Notes = "DP cleaning failed: " + err.Error()
		return t
	}
	var per []eval.CleaningMetrics
	for _, c := range concepts {
		per = append(per, fresh.Oracle.Cleaning(c, cr.BeforeInstances[c], fresh.KB))
	}
	m := eval.MergeCleaning(per)
	t.Rows = append(t.Rows, []string{"DP Cleaning", f3(m.PError), f3(m.RError), f3(m.PCorr), f3(m.RCorr)})
	t.Notes = "paper Table 3: DP Cleaning 0.970/0.915/0.892/0.939 dominates; MEx/TCh precise but rerror<0.16"
	return t
}

// removedMetrics scores a removal proposal per concept.
func (r *Runner) removedMetrics(sys *core.System, concepts []string, removed []kb.Pair) []eval.CleaningMetrics {
	removedSet := map[string]map[string]bool{}
	for _, p := range removed {
		if removedSet[p.Concept] == nil {
			removedSet[p.Concept] = map[string]bool{}
		}
		removedSet[p.Concept][p.Instance] = true
	}
	var out []eval.CleaningMetrics
	for _, c := range concepts {
		out = append(out, sys.Oracle.CleaningRemovedSet(c, sys.KB.Instances(c), removedSet[c]))
	}
	return out
}

// Table4 regenerates the DP-detection comparison.
func (r *Runner) Table4() *Table {
	t := &Table{
		ID:     "table4",
		Title:  "effectiveness of DP detection methods",
		Header: []string{"Detection Method", "Precision", "Recall", "F1"},
	}
	sys := r.sys
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Notes = "analysis failed: " + err.Error()
		return t
	}
	evalSet := map[string]bool{}
	for _, c := range r.evalConcepts {
		evalSet[c] = true
	}
	methods := []struct {
		name string
		kind core.DetectorKind
	}{
		{"Ad-hoc 1 (f1)", core.DetectAdHoc1},
		{"Ad-hoc 2 (f2)", core.DetectAdHoc2},
		{"Ad-hoc 3 (f3)", core.DetectAdHoc3},
		{"Ad-hoc 4 (f4)", core.DetectAdHoc4},
		{"Supervised (Random Forest)", core.DetectSupervised},
		{"Semi-Supervised", core.DetectSemiSupervised},
		{"Semi-Supervised Multi-Task", core.DetectMultiTask},
	}
	for _, m := range methods {
		labels, err := sys.Detect(a, m.kind)
		if err != nil {
			t.Rows = append(t.Rows, []string{m.name, "-", "-", "-"})
			continue
		}
		var agg eval.PRF1
		for concept, predicted := range labels {
			if !evalSet[concept] {
				continue
			}
			truth := sys.Oracle.TruthLabels(sys.KB, concept)
			d := eval.Detection(truth, predicted)
			agg.TP += d.TP
			agg.FP += d.FP
			agg.FN += d.FN
		}
		p, rc, f1 := prf(agg.TP, agg.FP, agg.FN)
		t.Rows = append(t.Rows, []string{m.name, f3(p), f3(rc), f3(f1)})
	}
	t.Notes = "paper Table 4: ad-hoc F1 0.63-0.77 < Supervised 0.82 < Semi-Supervised 0.91 < Multi-Task 0.94"
	return t
}

func prf(tp, fp, fn int) (p, r, f1 float64) {
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// Table5 regenerates the per-concept DP-cleaning evaluation: the
// Intentional-DP sentence-check quality (pstc, rstc) and the cleaning
// outcome (perror, rerror, pcorr, rcorr).
func (r *Runner) Table5() *Table {
	t := &Table{
		ID:     "table5",
		Title:  "per-concept evaluation of DP cleaning",
		Header: []string{"concept", "pstc", "rstc", "perror", "rerror", "pcorr", "rcorr"},
	}
	// Sentence check on the drifted KB with ground-truth Intentional DPs
	// (the paper labels Intentional DPs manually for this experiment).
	sys := r.sys
	stc := map[string]eval.PRF1{}
	scoreCache := map[string]rank.Scores{}
	scoresOf := func(c string) rank.Scores {
		if s, ok := scoreCache[c]; ok {
			return s
		}
		s := rank.RandomWalk(rank.BuildGraph(sys.KB, c), rank.DefaultConfig())
		scoreCache[c] = s
		return s
	}
	concepts := evalConceptsIn(sys.KB, r.evalConcepts)
	for _, c := range concepts {
		var candidates []int
		flagged := map[int]bool{}
		for e, lbl := range sys.Oracle.TruthLabels(sys.KB, c) {
			if lbl != dp.Intentional {
				continue
			}
			for _, exID := range sys.KB.TriggeredExtractions(c, e) {
				ex := sys.KB.Extraction(exID)
				if !ex.Active || ex.Concept != c {
					continue
				}
				candidates = append(candidates, exID)
				if !clean.ExtractionPassesCheck(sys.KB, ex, scoresOf) {
					flagged[exID] = true
				}
			}
		}
		candidates = sortDedupInts(candidates)
		stc[c] = sys.Oracle.SentenceCheck(sys.KB, candidates, flagged)
	}

	// Cleaning outcome on a fresh system.
	fresh := r.freshSystem()
	cr, err := fresh.CleanDPs(core.DetectMultiTask)
	if err != nil {
		t.Notes = "DP cleaning failed: " + err.Error()
		return t
	}
	var perAll []eval.CleaningMetrics
	var stcAgg eval.PRF1
	for _, c := range concepts {
		m := fresh.Oracle.Cleaning(c, cr.BeforeInstances[c], fresh.KB)
		perAll = append(perAll, m)
		s := stc[c]
		stcAgg.TP += s.TP
		stcAgg.FP += s.FP
		stcAgg.FN += s.FN
		// A concept with no DP-triggered parses or no errors has nothing
		// to measure on those columns; render "-" rather than 0/0.
		pstc, rstc := f3(s.Precision), f3(s.Recall)
		if s.TP+s.FP+s.FN == 0 {
			pstc, rstc = "-", "-"
		}
		perr, rerr := f3(m.PError), f3(m.RError)
		if m.Removed == 0 && m.Errors == 0 {
			perr, rerr = "-", "-"
		}
		t.Rows = append(t.Rows, []string{
			c, pstc, rstc, perr, rerr, f3(m.PCorr), f3(m.RCorr),
		})
	}
	overall := eval.MergeCleaning(perAll)
	p, rc, _ := prf(stcAgg.TP, stcAgg.FP, stcAgg.FN)
	t.Rows = append(t.Rows, []string{
		"Overall", f3(p), f3(rc),
		f3(overall.PError), f3(overall.RError), f3(overall.PCorr), f3(overall.RCorr),
	})
	t.Notes = "paper Table 5 overall: pstc 0.953 rstc 0.891, perror 0.969 rerror 0.914 pcorr 0.892 rcorr 0.939"
	return t
}

func sortDedupInts(xs []int) []int {
	seen := map[int]struct{}{}
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// sharedLabeler builds a seed labeler for the current system KB state.
func (r *Runner) sharedLabeler() (*seedlabel.Labeler, error) {
	a, err := r.sys.Analyze(r.sys.KB)
	if err != nil {
		return nil, err
	}
	return a.Labeler, nil
}
