package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable experiment result: the rows/series a table or
// figure of the paper reports.
type Table struct {
	ID     string // "table1" .. "fig5c"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(t.ID), t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4s(v float64) string { return fmt.Sprintf("%.4f", v) }
func f5(v float64) string  { return fmt.Sprintf("%.5f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
