package experiments

import (
	"strconv"
	"strings"
	"testing"

	"driftclean/internal/core"
)

// smallOptions keeps experiment tests fast while preserving dynamics.
func smallOptions() Options {
	opts := Default()
	opts.Core.World.NumDomains = 3
	opts.Core.World.InstancesPerConceptMin = 60
	opts.Core.World.InstancesPerConceptMax = 120
	opts.Core.Corpus.NumSentences = 25000
	opts.Core.Clean.MaxRounds = 2
	opts.EvalConcepts = 10
	opts.RankKs = []int{20, 50, 100}
	return opts
}

var sharedRunner *Runner

func runner(t *testing.T) *Runner {
	t.Helper()
	if sharedRunner == nil {
		sharedRunner = NewRunner(smallOptions())
	}
	return sharedRunner
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); rows=%d", tab.ID, row, col, len(tab.Rows))
	}
	return tab.Rows[row][col]
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number", s)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := runner(t).Table1()
	if len(tab.Rows) < 2 {
		t.Fatal("Table 1 has no concept rows")
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Overall" {
		t.Fatalf("last row %q, want Overall", last[0])
	}
	// Errors must be substantial before cleaning (paper: 57%).
	errPct := parseF(t, last[4])
	if errPct < 0.15 {
		t.Errorf("overall error rate %.3f — not enough drift for the experiments", errPct)
	}
	// Consistency: instances = correct + errors.
	for _, row := range tab.Rows {
		inst, _ := strconv.Atoi(row[1])
		correct, _ := strconv.Atoi(row[2])
		errs, _ := strconv.Atoi(row[3])
		if inst != correct+errs {
			t.Errorf("row %s: %d != %d + %d", row[0], inst, correct, errs)
		}
	}
}

func TestTable2RandomWalkWins(t *testing.T) {
	tab := runner(t).Table2()
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 2 rows = %d", len(tab.Rows))
	}
	// Shape: Random Walk >= PageRank and > Frequency at the largest k.
	lastCol := len(tab.Header) - 1
	freq := parseF(t, cell(t, tab, 0, lastCol))
	pr := parseF(t, cell(t, tab, 1, lastCol))
	rw := parseF(t, cell(t, tab, 2, lastCol))
	t.Logf("p@%s: freq=%.4f pagerank=%.4f randomwalk=%.4f", tab.Header[lastCol], freq, pr, rw)
	if rw < freq || rw < pr {
		t.Errorf("Random Walk (%.4f) must dominate Frequency (%.4f) and PageRank (%.4f)", rw, freq, pr)
	}
}

func TestTable3DPCleaningDominates(t *testing.T) {
	tab := runner(t).Table3()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 3 rows = %d, want 6", len(tab.Rows))
	}
	get := func(name string) (rerror, pcorr float64) {
		for _, row := range tab.Rows {
			if row[0] == name {
				if row[2] == "-" {
					return 0, parseF(t, row[3])
				}
				return parseF(t, row[2]), parseF(t, row[3])
			}
		}
		t.Fatalf("method %q missing", name)
		return 0, 0
	}
	mexR, _ := get("MEx")
	tchR, _ := get("TCh")
	dpR, dpP := get("DP Cleaning")
	_, beforeP := get("Before Cleaning")
	t.Logf("rerror: MEx=%.3f TCh=%.3f DP=%.3f; pcorrect before=%.3f after=%.3f",
		mexR, tchR, dpR, beforeP, dpP)
	if dpR <= mexR || dpR <= tchR {
		t.Errorf("DP cleaning rerror %.3f must beat MEx %.3f and TCh %.3f", dpR, mexR, tchR)
	}
	if dpP < beforeP+0.1 {
		t.Errorf("DP cleaning pcorrect %.3f barely improves on before %.3f", dpP, beforeP)
	}
}

func TestTable4MultiTaskBest(t *testing.T) {
	tab := runner(t).Table4()
	if len(tab.Rows) != 7 {
		t.Fatalf("Table 4 rows = %d, want 7", len(tab.Rows))
	}
	f1 := map[string]float64{}
	for _, row := range tab.Rows {
		if row[3] != "-" {
			f1[row[0]] = parseF(t, row[3])
		}
	}
	mt := f1["Semi-Supervised Multi-Task"]
	t.Logf("F1 per method: %v", f1)
	// Paper shape, adapted to the substrate (see EXPERIMENTS.md): the
	// learned detector clearly beats the weaker single-property
	// heuristics; the exclusion-based heuristics (ad-hoc 2/4) and the
	// forest are competitive here because evidence-gated exclusion is
	// itself near-oracle on synthetic drift, so for them we only require
	// the learned method to stay in the same band.
	if mt <= f1["Ad-hoc 3 (f3)"] {
		t.Errorf("multi-task F1 %.3f should beat ad-hoc 3 %.3f", mt, f1["Ad-hoc 3 (f3)"])
	}
	if mt < f1["Ad-hoc 1 (f1)"]-0.05 {
		t.Errorf("multi-task F1 %.3f far below ad-hoc 1 %.3f", mt, f1["Ad-hoc 1 (f1)"])
	}
	if sup := f1["Supervised (Random Forest)"]; mt < sup-0.1 {
		t.Errorf("multi-task F1 %.3f far below supervised %.3f", mt, sup)
	}
	if mt < 0.4 {
		t.Errorf("multi-task F1 %.3f too low", mt)
	}
	// The detection step's real job is feeding the cleaner; Table 3/5
	// assert the end-to-end quality that the paper's Table 4 ordering is
	// a proxy for.
}

func TestTable5PerConceptRows(t *testing.T) {
	tab := runner(t).Table5()
	if len(tab.Rows) < 2 {
		t.Fatal("Table 5 empty")
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Overall" {
		t.Fatalf("last row %q", last[0])
	}
	pstc := parseF(t, last[1])
	rstc := parseF(t, last[2])
	t.Logf("overall pstc=%.3f rstc=%.3f", pstc, rstc)
	if pstc < 0.5 {
		t.Errorf("sentence-check precision %.3f too low (paper: 0.95)", pstc)
	}
	if rstc < 0.5 {
		t.Errorf("sentence-check recall %.3f too low (paper: 0.89)", rstc)
	}
}

func TestFigure2DPDivergesFromAVG(t *testing.T) {
	tab := runner(t).Figure2()
	if len(tab.Rows) == 0 {
		t.Fatal("Figure 2 empty")
	}
	// Find a DP column and verify its distribution puts mass somewhere
	// the AVG has little.
	dpCol := -1
	for i, h := range tab.Header {
		if strings.Contains(h, "(DP)") {
			dpCol = i
			break
		}
	}
	if dpCol < 0 {
		t.Skip("no Intentional DP under animal in this run")
	}
	avgCol := len(tab.Header) - 1
	diverges := false
	for _, row := range tab.Rows {
		dv := parseF(t, row[dpCol])
		av := parseF(t, row[avgCol])
		if dv > 0.05 && av < dv/3 {
			diverges = true
		}
	}
	if !diverges {
		t.Error("DP distribution does not diverge from AVG anywhere")
	}
}

func TestFigure3Shape(t *testing.T) {
	tab := runner(t).Figure3()
	if len(tab.Rows) != 4 {
		t.Fatalf("Figure 3 rows = %d, want 4", len(tab.Rows))
	}
	mean := func(cellVal string) float64 {
		return parseF(t, strings.Fields(cellVal)[0])
	}
	// f1: non-DPs above Accidental DPs.
	if mean(cell(t, tab, 0, 1)) <= mean(cell(t, tab, 0, 3)) {
		t.Error("Fig 3a: f1(non-DP) must exceed f1(Accidental)")
	}
	// f2: Intentional DPs above non-DPs.
	if mean(cell(t, tab, 1, 2)) <= mean(cell(t, tab, 1, 1)) {
		t.Error("Fig 3b: f2(Intentional) must exceed f2(non-DP)")
	}
	// f3: Accidental lowest.
	if mean(cell(t, tab, 2, 3)) >= mean(cell(t, tab, 2, 1)) {
		t.Error("Fig 3c: f3(Accidental) must be below f3(non-DP)")
	}
	// f4: Accidental lowest.
	if mean(cell(t, tab, 3, 3)) >= mean(cell(t, tab, 3, 1)) {
		t.Error("Fig 3d: f4(Accidental) must be below f4(non-DP)")
	}
}

func TestFigure4Bands(t *testing.T) {
	tab := runner(t).Figure4()
	total := 0
	exclusive := 0
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		total += n
		if row[2] == "mutually exclusive" {
			exclusive += n
		}
	}
	if total == 0 {
		t.Fatal("Figure 4 counted no concept pairs")
	}
	if exclusive == 0 {
		t.Error("no pairs in the mutually exclusive band")
	}
	// Paper shape: the vast majority of pairs are exclusive.
	if float64(exclusive)/float64(total) < 0.5 {
		t.Errorf("only %d/%d pairs exclusive; expected the dominant band", exclusive, total)
	}
}

func TestFigure5aPrecisionDecays(t *testing.T) {
	tab := runner(t).Figure5a()
	if len(tab.Rows) < 2 {
		t.Fatal("Figure 5a has fewer than 2 iterations")
	}
	first := parseF(t, cell(t, tab, 0, 2))
	last := parseF(t, cell(t, tab, len(tab.Rows)-1, 2))
	t.Logf("precision iteration 1: %.3f, final: %.3f", first, last)
	if first < 0.8 {
		t.Errorf("iteration-1 precision %.3f too low", first)
	}
	if last > first-0.15 {
		t.Errorf("precision decay %.3f -> %.3f too weak", first, last)
	}
	// Pair counts grow monotonically.
	prev := 0
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		if n < prev {
			t.Error("distinct pairs must be monotone")
		}
		prev = n
	}
}

func TestFigure5bMonotoneTradeoff(t *testing.T) {
	tab := runner(t).Figure5b()
	if len(tab.Rows) < 4 {
		t.Fatal("Figure 5b too short")
	}
	firstPrec := parseF(t, cell(t, tab, 0, 1))
	lastPrec := parseF(t, cell(t, tab, len(tab.Rows)-1, 1))
	firstRate := parseF(t, cell(t, tab, 0, 2))
	lastRate := parseF(t, cell(t, tab, len(tab.Rows)-1, 2))
	t.Logf("k sweep: precision %.3f→%.3f, rate %.3f→%.3f", firstPrec, lastPrec, firstRate, lastRate)
	if lastPrec < firstPrec-0.03 {
		t.Errorf("precision should not fall materially as k grows: %.3f -> %.3f", firstPrec, lastPrec)
	}
	if lastRate >= firstRate {
		t.Errorf("label rate should shrink as k grows: %.3f -> %.3f", firstRate, lastRate)
	}
}

func TestFigure5cAccuracyImproves(t *testing.T) {
	tab := runner(t).Figure5c()
	if len(tab.Rows) < 3 {
		t.Fatal("Figure 5c too short")
	}
	first := parseF(t, cell(t, tab, 0, 1))
	last := parseF(t, cell(t, tab, len(tab.Rows)-1, 1))
	t.Logf("accuracy %.3f -> %.3f over %d iterations", first, last, len(tab.Rows))
	if last < first-0.02 {
		t.Errorf("accuracy degraded %.3f -> %.3f", first, last)
	}
	// Objective monotone (Theorem 1).
	prev := parseF(t, cell(t, tab, 0, 2))
	for i := 1; i < len(tab.Rows); i++ {
		cur := parseF(t, cell(t, tab, i, 2))
		if cur > prev*(1+1e-9) {
			t.Errorf("objective increased at row %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestByIDAndIDs(t *testing.T) {
	r := runner(t)
	for _, id := range IDs() {
		if id == "table3" || id == "table5" {
			continue // expensive: covered by their own tests
		}
		tab, err := r.ByID(id)
		if err != nil {
			t.Errorf("ByID(%s): %v", id, err)
			continue
		}
		if tab.ID != id {
			t.Errorf("ByID(%s) returned table %q", id, tab.ID)
		}
		if out := tab.Render(); !strings.Contains(out, strings.ToUpper(id)) {
			t.Errorf("Render of %s missing header", id)
		}
		if csv := tab.CSV(); len(csv) == 0 {
			t.Errorf("CSV of %s empty", id)
		}
	}
	if _, err := r.ByID("nope"); err == nil {
		t.Error("ByID(nope) should fail")
	}
}

func TestRenderAndCSVEscaping(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{`has,comma`, `has"quote`}},
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("CSV escaping broken: %q", csv)
	}
	if r := tab.Render(); !strings.Contains(r, "has,comma") {
		t.Errorf("Render broken: %q", r)
	}
}

var _ = core.DefaultConfig // keep import if unused in some builds
