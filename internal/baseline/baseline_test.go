package baseline

import (
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/kb"
	"driftclean/internal/mutex"
	"driftclean/internal/rank"
	"driftclean/internal/seedlabel"
	"driftclean/internal/world"
)

type pipeline struct {
	w   *world.World
	c   *corpus.Corpus
	k   *kb.KB
	mx  *mutex.Analysis
	lab *seedlabel.Labeler
	o   *eval.Oracle
}

func buildPipeline(t testing.TB) *pipeline {
	t.Helper()
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 3
	wcfg.InstancesPerConceptMin = 60
	wcfg.InstancesPerConceptMax = 120
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 30000
	c := corpus.Generate(w, ccfg)
	res := extract.Run(c, extract.DefaultConfig())
	mx := mutex.Analyze(res.KB, mutex.DefaultConfig())
	return &pipeline{
		w:   w,
		c:   c,
		k:   res.KB,
		mx:  mx,
		lab: seedlabel.New(res.KB, mx, seedlabel.DefaultConfig()),
		o:   eval.NewOracle(w, c),
	}
}

func metricsFor(p *pipeline, concepts []string, removed []kb.Pair) eval.CleaningMetrics {
	removedSet := map[string]map[string]bool{}
	for _, r := range removed {
		if removedSet[r.Concept] == nil {
			removedSet[r.Concept] = map[string]bool{}
		}
		removedSet[r.Concept][r.Instance] = true
	}
	var per []eval.CleaningMetrics
	for _, c := range concepts {
		per = append(per, p.o.CleaningRemovedSet(c, p.k.Instances(c), removedSet[c]))
	}
	return eval.MergeCleaning(per)
}

func TestMExHighPrecisionLowRecall(t *testing.T) {
	p := buildPipeline(t)
	concepts := p.k.Concepts()
	// Pre-identified exclusion knowledge covers only a handful of
	// curated popular concepts, as in the method the paper compares.
	curated := p.w.EvaluationConcepts(6)
	removed := MEx(p.k, p.mx, concepts, curated)
	if len(removed) == 0 {
		t.Fatal("MEx removed nothing")
	}
	m := metricsFor(p, concepts, removed)
	t.Logf("MEx: perror=%.3f rerror=%.3f pcorr=%.3f rcorr=%.3f removed=%d",
		m.PError, m.RError, m.PCorr, m.RCorr, m.Removed)
	if m.PError < 0.7 {
		t.Errorf("MEx perror %.3f, want high (paper: 0.91)", m.PError)
	}
	if m.RError > 0.6 {
		t.Errorf("MEx rerror %.3f, want low (paper: 0.16)", m.RError)
	}
}

func TestTypeCheckHighPrecisionLowRecall(t *testing.T) {
	p := buildPipeline(t)
	concepts := p.k.Concepts()
	removed := TypeCheck(p.k, p.w, concepts)
	if len(removed) == 0 {
		t.Fatal("TypeCheck removed nothing")
	}
	m := metricsFor(p, concepts, removed)
	t.Logf("TCh: perror=%.3f rerror=%.3f pcorr=%.3f rcorr=%.3f removed=%d",
		m.PError, m.RError, m.PCorr, m.RCorr, m.Removed)
	if m.PError < 0.7 {
		t.Errorf("TCh perror %.3f, want high (paper: 0.94)", m.PError)
	}
	if m.RError > 0.6 {
		t.Errorf("TCh rerror %.3f, want low (paper: 0.15)", m.RError)
	}
}

func TestPRDualRankHigherRecallLowerPrecision(t *testing.T) {
	p := buildPipeline(t)
	concepts := p.k.Concepts()
	removed := PRDualRank(p.k, p.lab, concepts, DefaultPRConfig())
	if len(removed) == 0 {
		t.Fatal("PRDualRank removed nothing")
	}
	m := metricsFor(p, concepts, removed)
	mex := metricsFor(p, concepts, MEx(p.k, p.mx, concepts, p.w.EvaluationConcepts(6)))
	t.Logf("PRDual: perror=%.3f rerror=%.3f (MEx rerror=%.3f)", m.PError, m.RError, mex.RError)
	if m.RError <= mex.RError {
		t.Errorf("PRDual rerror %.3f should exceed MEx %.3f (paper: 0.65 vs 0.16)", m.RError, mex.RError)
	}
}

func TestRWRankRemoves(t *testing.T) {
	p := buildPipeline(t)
	concepts := p.k.Concepts()
	scoresOf := func(c string) map[string]float64 {
		return rank.RandomWalk(rank.BuildGraph(p.k, c), rank.DefaultConfig())
	}
	removed := RWRank(p.k, p.lab, concepts, scoresOf, 0)
	if len(removed) == 0 {
		t.Fatal("RWRank removed nothing")
	}
	m := metricsFor(p, concepts, removed)
	t.Logf("RWRank: perror=%.3f rerror=%.3f", m.PError, m.RError)
	if m.RError < 0.2 {
		t.Errorf("RWRank rerror %.3f, want substantial (paper: 0.58)", m.RError)
	}
}

func TestConceptTypeInference(t *testing.T) {
	p := buildPipeline(t)
	tp, ok := conceptType(p.k, p.w, "animal")
	if !ok {
		t.Fatal("animal concept type not inferred")
	}
	if tp != p.w.Concept("animal").ID {
		t.Errorf("animal type %d, want concept ID %d", tp, p.w.Concept("animal").ID)
	}
}

func TestMExEmptyKB(t *testing.T) {
	k := kb.New()
	mx := mutex.Analyze(k, mutex.DefaultConfig())
	if got := MEx(k, mx, nil, nil); len(got) != 0 {
		t.Errorf("MEx on empty KB = %v", got)
	}
}
