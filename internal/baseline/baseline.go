// Package baseline implements the four cleaning methods the paper
// compares against in Table 3:
//
//   - MEx — Mutual Exclusion cleaning (Curran et al., PACLING 2007):
//     remove a pair when its instance is better supported under a
//     mutually exclusive concept;
//   - TCh — Type Checking (Pasca et al. 2006; Carlson et al. 2010): the
//     paper runs Stanford NER; we substitute a partial gazetteer carried
//     by the synthetic world (DESIGN.md §1) and remove pairs whose
//     instance type contradicts the concept's majority type;
//   - PRDual-Rank (Fang & Chang, WSDM 2011): precision scores propagated
//     between pairs and the sentences that support them, thresholded;
//   - RW-Rank: the same thresholding, with the random-walk model as the
//     scorer.
//
// The ranking baselines learn their thresholds from the seed-evidence
// labels (evidenced-correct pairs should be kept, evidenced-incorrect
// removed) — the paper's "well-learned thresholds". None of the baselines
// sees ground truth.
package baseline

import (
	"sort"

	"driftclean/internal/floats"
	"driftclean/internal/kb"
	"driftclean/internal/mutex"
	"driftclean/internal/seedlabel"
	"driftclean/internal/world"
)

// MEx removes (C, e) when some mutually exclusive concept C' holds e with
// strictly greater support — the instance "belongs" to the other side.
//
// Faithful to the method the paper compares against, exclusion knowledge
// is restricted to *pre-identified* concept pairs: curated lists the
// concepts whose pairwise exclusions are known in advance (the paper's
// "cities"/"politicians" examples). That prior-knowledge requirement is
// exactly why the baseline's recall collapses at millions of concepts.
// A nil curated set means full knowledge of all discovered exclusions —
// the ablation variant.
func MEx(k *kb.KB, mx *mutex.Analysis, concepts, curated []string) []kb.Pair {
	inCurated := func(string) bool { return true }
	if curated != nil {
		set := make(map[string]bool, len(curated))
		for _, c := range curated {
			set[c] = true
		}
		inCurated = func(c string) bool { return set[c] }
	}
	var removed []kb.Pair
	for _, c := range concepts {
		if !inCurated(c) {
			continue
		}
		for _, e := range k.Instances(c) {
			myCount := k.Count(c, e)
			for _, other := range k.ConceptsOfInstance(e) {
				if other == c || !inCurated(other) || !mx.Exclusive(c, other) {
					continue
				}
				if k.Count(other, e) > myCount {
					removed = append(removed, kb.Pair{Concept: c, Instance: e})
					break
				}
			}
		}
	}
	return removed
}

// TypeCheck removes (C, e) when the gazetteer knows e's type and it
// differs from the concept's majority core type. Gazetteer coverage is
// partial, which reproduces the paper's observed TCh profile: precise but
// low recall.
func TypeCheck(k *kb.KB, w *world.World, concepts []string) []kb.Pair {
	var removed []kb.Pair
	for _, c := range concepts {
		ctype, ok := conceptType(k, w, c)
		if !ok {
			continue
		}
		for _, e := range k.Instances(c) {
			etype, known := w.NERType(e)
			if known && etype != ctype {
				removed = append(removed, kb.Pair{Concept: c, Instance: e})
			}
		}
	}
	return removed
}

// conceptType infers a concept's expected type as the majority gazetteer
// type among its core instances (no ground truth involved).
func conceptType(k *kb.KB, w *world.World, concept string) (int, bool) {
	counts := map[int]int{}
	for _, e := range k.InstancesAtIteration(concept, 1) {
		if t, ok := w.NERType(e); ok {
			counts[t] += k.Count(concept, e)
		}
	}
	best, bestN, total := -1, 0, 0
	for t, n := range counts {
		total += n
		if n > bestN || (n == bestN && t < best) {
			best, bestN = t, n
		}
	}
	if total == 0 {
		return 0, false
	}
	return best, true
}

// PRConfig controls the ranking baselines.
type PRConfig struct {
	// Iterations of score propagation.
	Iterations int
	// Prior is the initial score of unlabeled pairs.
	Prior float64
	// FallbackQuantile is the removal threshold when a concept has no
	// evidence labels to learn one from.
	FallbackQuantile float64
}

// DefaultPRConfig returns the experiment settings.
func DefaultPRConfig() PRConfig {
	return PRConfig{Iterations: 10, Prior: 0.5, FallbackQuantile: 0.3}
}

// PRDualRank scores each pair by propagating precision estimates between
// pairs and their supporting extractions (the paper's tuple↔pattern
// duality mapped onto pairs↔sentences), then removes pairs below a
// per-concept learned threshold.
func PRDualRank(k *kb.KB, lab *seedlabel.Labeler, concepts []string, cfg PRConfig) []kb.Pair {
	if cfg.Iterations <= 0 {
		cfg = DefaultPRConfig()
	}
	var removed []kb.Pair
	for _, c := range concepts {
		scores := prScores(k, lab, c, cfg)
		removed = append(removed, thresholdRemove(k, lab, c, scores, cfg.FallbackQuantile)...)
	}
	return removed
}

func prScores(k *kb.KB, lab *seedlabel.Labeler, concept string, cfg PRConfig) map[string]float64 {
	insts := k.Instances(concept)
	pairScore := make(map[string]float64, len(insts))
	seeded := make(map[string]bool, len(insts))
	for _, e := range insts {
		if lab.EvidencedCorrect(concept, e) {
			pairScore[e] = 1
			seeded[e] = true
		} else {
			pairScore[e] = cfg.Prior
		}
	}
	// Collect the active extractions per instance once.
	type ext struct{ instances []string }
	extByID := map[int]*ext{}
	pairExts := map[string][]int{}
	for _, e := range insts {
		info := k.Info(concept, e)
		if info == nil {
			continue
		}
		for _, exID := range info.Extractions {
			x := k.Extraction(exID)
			if !x.Active || x.Concept != concept {
				continue
			}
			if extByID[exID] == nil {
				extByID[exID] = &ext{instances: x.Instances}
			}
			pairExts[e] = append(pairExts[e], exID)
		}
	}
	extScore := map[int]float64{}
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Sentence precision = mean of its pairs' precision.
		for id, x := range extByID {
			var s float64
			n := 0
			for _, e := range x.instances {
				if v, ok := pairScore[e]; ok {
					s += v
					n++
				}
			}
			if n > 0 {
				extScore[id] = s / float64(n)
			}
		}
		// Pair precision = mean of its sentences' precision; seeds stay 1.
		for _, e := range insts {
			if seeded[e] {
				continue
			}
			exts := pairExts[e]
			if len(exts) == 0 {
				continue
			}
			var s float64
			for _, id := range exts {
				s += extScore[id]
			}
			pairScore[e] = s / float64(len(exts))
		}
	}
	return pairScore
}

// RWRank removes pairs whose random-walk score falls below a per-concept
// learned threshold.
func RWRank(k *kb.KB, lab *seedlabel.Labeler, concepts []string, scoresOf func(string) map[string]float64, fallbackQuantile float64) []kb.Pair {
	if fallbackQuantile <= 0 {
		fallbackQuantile = DefaultPRConfig().FallbackQuantile
	}
	var removed []kb.Pair
	for _, c := range concepts {
		removed = append(removed, thresholdRemove(k, lab, c, scoresOf(c), fallbackQuantile)...)
	}
	return removed
}

// thresholdRemove learns the removal threshold that maximizes F1 of
// error-removal on the concept's evidence labels, then removes all pairs
// scoring at or below it.
func thresholdRemove(k *kb.KB, lab *seedlabel.Labeler, concept string, scores map[string]float64, fallbackQuantile float64) []kb.Pair {
	insts := k.Instances(concept)
	type pt struct {
		score   float64
		labeled bool
		isError bool
	}
	pts := make([]pt, len(insts))
	for i, e := range insts {
		pts[i] = pt{
			score:   scores[e],
			labeled: lab.EvidencedCorrect(concept, e) || lab.EvidencedIncorrect(concept, e),
			isError: lab.EvidencedIncorrect(concept, e),
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].score < pts[j].score })

	nLabeled, nErrors := 0, 0
	for _, p := range pts {
		if p.labeled {
			nLabeled++
			if p.isError {
				nErrors++
			}
		}
	}
	var thresh float64
	if nErrors > 0 && nErrors < nLabeled {
		bestF1 := -1.0
		tp, fp := 0, 0
		// Sweep: removing everything at or below pts[i].score.
		for i := 0; i < len(pts); i++ {
			if pts[i].labeled {
				if pts[i].isError {
					tp++
				} else {
					fp++
				}
			}
			if i+1 < len(pts) && floats.Identical(pts[i+1].score, pts[i].score) {
				continue
			}
			fn := nErrors - tp
			if tp > 0 {
				p := float64(tp) / float64(tp+fp)
				r := float64(tp) / float64(tp+fn)
				if f1 := 2 * p * r / (p + r); f1 > bestF1 {
					bestF1, thresh = f1, pts[i].score
				}
			}
		}
	} else if len(pts) > 0 {
		// No usable labels: remove the lowest quantile.
		idx := int(float64(len(pts)) * fallbackQuantile)
		if idx >= len(pts) {
			idx = len(pts) - 1
		}
		thresh = pts[idx].score
	}
	var removed []kb.Pair
	for _, e := range insts {
		if scores[e] <= thresh {
			removed = append(removed, kb.Pair{Concept: concept, Instance: e})
		}
	}
	return removed
}
