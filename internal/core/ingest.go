package core

import (
	"errors"
	"fmt"

	"driftclean/internal/corpus"
	"driftclean/internal/extract"
)

// ErrIngestStopped reports that a checkpoint's cleaning loop stopped
// early (the clean.Config.OnRound hook returned true — typically a
// canceled context). The checkpoint was rolled back. Match with
// errors.Is.
var ErrIngestStopped = errors.New("core: ingest checkpoint stopped before convergence")

// Ingestor drives the incremental pipeline over one persistent System:
// sentence batches are appended to an extract.Stream, each checkpoint
// replays the batch-equivalent extraction into a fresh KB and cleans it
// with the system's detect-and-clean loop, and the system's caches —
// the signature-keyed task cache, the graph-signature walk memo, the
// shared score cache — scope the expensive analysis work to concepts
// whose inputs actually changed since the previous checkpoint.
//
// Correctness contract: after any successful Ingest, the system's KB is
// bit-identical (bench.Fingerprint) to a from-scratch batch run —
// extract.Run followed by CleanDPs with the same config and method —
// over the concatenation of every batch ingested so far. A failed
// Ingest rolls the stream back and restores the previous checkpoint's
// KB, so the ingestor either advances one full checkpoint or is left
// exactly as it was.
//
// An Ingestor is single-writer, like the System it wraps.
type Ingestor struct {
	sys    *System
	method DetectorKind
	stream *extract.Stream

	// committed holds the last successful checkpoint's state, restored
	// on a failed Ingest.
	committed struct {
		res *extract.Result
	}
	checkpoints int
}

// IngestStats reports one successful checkpoint.
type IngestStats struct {
	// Checkpoint is the 1-based index of this checkpoint.
	Checkpoint int
	// BatchSentences and TotalSentences count this batch and the running
	// total.
	BatchSentences, TotalSentences int
	// CoreAdded and AmbiguousAdded split the batch's parses.
	CoreAdded, AmbiguousAdded int
	// PairsBefore and PairsAfter count distinct pairs at this checkpoint
	// before and after cleaning.
	PairsBefore, PairsAfter int
	// Result is the cleaning outcome (rounds, rollbacks, convergence)
	// plus the pre-cleaning instance snapshot for evaluation.
	Result *CleanResult
	// TaskReuse and WalkReuse report how many per-concept tasks and
	// random walks were served from the cross-checkpoint caches during
	// this checkpoint — the dirty-concept scoping at work.
	TaskReuse, WalkReuse int
}

// NewIngestor wraps a prepared system (see Prepare; World/Corpus/Oracle
// may be nil when no evaluation is needed) for incremental ingestion
// with the given detection method.
func NewIngestor(sys *System, method DetectorKind) *Ingestor {
	return &Ingestor{
		sys:    sys,
		method: method,
		stream: extract.NewStream(sys.Cfg.propagate().Extract),
	}
}

// System returns the wrapped system; its KB is the last successful
// checkpoint's cleaned KB (nil before the first).
func (g *Ingestor) System() *System { return g.sys }

// Checkpoints returns the number of successful checkpoints so far.
func (g *Ingestor) Checkpoints() int { return g.checkpoints }

// Ingest appends one sentence batch and advances to the next
// checkpoint: replay extraction over everything ingested so far, then
// run the detect-and-clean loop on the fresh KB. onExtracted, when
// non-nil, runs between the two — the seam callers use to measure the
// pre-cleaning state (e.g. KB precision before cleaning).
//
// On any error the stream is rewound and the system restored to the
// previous checkpoint, so a failed batch can simply be retried. An
// empty batch is valid: it re-cleans and re-publishes the current
// state, which is also how a caller re-runs a checkpoint after raising
// MaxRounds or switching methods.
func (g *Ingestor) Ingest(batch []corpus.Sentence, onExtracted func(*System)) (st *IngestStats, err error) {
	mark := g.stream.Mark()
	taskHits0, _ := g.sys.TaskCacheStats()
	walkHits0 := g.walkHits()
	defer func() {
		r := recover()
		if r == nil && err == nil {
			return
		}
		// Roll back: un-append the batch and restore the last committed
		// checkpoint. The caches need no rollback — they are keyed by
		// input signatures, never by checkpoint identity. A panic (e.g.
		// an injected fault escalated by Check) still rolls back, then
		// resumes unwinding for the API boundary's recover.
		g.stream.Rewind(mark)
		g.sys.Extraction = g.committed.res
		if g.committed.res != nil {
			g.sys.KB = g.committed.res.KB
		} else {
			g.sys.KB = nil
		}
		if r != nil {
			panic(r)
		}
	}()

	st = &IngestStats{Checkpoint: g.checkpoints + 1, BatchSentences: len(batch)}
	st.CoreAdded, st.AmbiguousAdded = g.stream.Append(batch)
	st.TotalSentences = g.stream.Sentences()

	res := g.stream.Replay()
	g.sys.Extraction = res
	g.sys.KB = res.KB
	st.PairsBefore = res.KB.NumPairs()
	if onExtracted != nil {
		onExtracted(g.sys)
	}

	cr, err := g.sys.CleanDPs(g.method)
	if err != nil {
		return nil, fmt.Errorf("core: ingest checkpoint %d: %w", st.Checkpoint, err)
	}
	if cr.Clean.Stopped {
		return nil, fmt.Errorf("%w (checkpoint %d)", ErrIngestStopped, st.Checkpoint)
	}
	st.Result = cr
	st.PairsAfter = g.sys.KB.NumPairs()
	taskHits1, _ := g.sys.TaskCacheStats()
	st.TaskReuse = taskHits1 - taskHits0
	st.WalkReuse = g.walkHits() - walkHits0

	g.committed.res = res
	g.checkpoints++
	return st, nil
}

// walkHits reads the walk memo's hit counter (0 before first use).
func (g *Ingestor) walkHits() int {
	if g.sys.walkMemo == nil {
		return 0
	}
	hits, _ := g.sys.walkMemo.Stats()
	return hits
}
