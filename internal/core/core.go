// Package core orchestrates the full system of the paper: synthetic
// world → Hearst corpus → semantic-based iterative extraction (which
// drifts) → mutual-exclusion discovery → seed labeling → feature
// extraction → KPCA → DP detection → DP-based cleaning. It is the engine
// behind the public driftclean API, the experiments, and the CLIs.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"driftclean/internal/clean"
	"driftclean/internal/corpus"
	"driftclean/internal/dp"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/fault"
	"driftclean/internal/feature"
	"driftclean/internal/kb"
	"driftclean/internal/kpca"
	"driftclean/internal/learn"
	"driftclean/internal/linalg"
	"driftclean/internal/mutex"
	"driftclean/internal/par"
	"driftclean/internal/rank"
	"driftclean/internal/seedlabel"
	"driftclean/internal/world"
)

// Config assembles the configuration of every subsystem.
type Config struct {
	World     world.Config
	Corpus    corpus.Config
	Extract   extract.Config
	Mutex     mutex.Config
	Seed      seedlabel.Config
	KPCA      kpca.Config
	MultiTask learn.MultiTaskConfig
	Forest    learn.ForestConfig
	Clean     clean.Config

	// MinTaskInstances skips DP detection for concepts with fewer
	// instances (they have too little signal and, per the paper, often no
	// mutually exclusive concepts either).
	MinTaskInstances int
	// KPCAFitCap bounds the number of points used to fit each concept's
	// kernel PCA (all labeled points are always included); the rest are
	// projected afterwards.
	KPCAFitCap int
	// SharedDim is the common KPCA dimensionality all tasks are padded
	// to for multi-task training.
	SharedDim int

	// Parallelism is the single worker-count knob for every parallel
	// stage of the pipeline: corpus sharding, the extraction parse and
	// disambiguation scans, the per-concept analysis fan-out, and the
	// cleaning score prewarm. The default (0, or any value below 1) uses
	// every CPU; 1 forces the serial path everywhere, which is the A/B
	// lever behind the determinism guarantee — output is identical at any
	// setting. Subsystem configs that set their own Parallelism keep it.
	Parallelism int

	// Fault, when non-nil, is the chaos-testing injector shared by every
	// pipeline stage: it is propagated into the corpus, extraction and
	// cleaning subconfigs (unless they carry their own) and consulted at
	// the "core.analyze" site once per analysis pass. nil — the
	// production default — is a zero-cost no-op.
	Fault *fault.Injector
}

// workers resolves the configured parallelism to a worker count.
func (c Config) workers() int { return par.Workers(c.Parallelism) }

// propagate copies the top-level Parallelism into subsystem configs that
// did not choose their own.
func (c Config) propagate() Config {
	if c.Corpus.Parallelism == 0 {
		c.Corpus.Parallelism = c.Parallelism
	}
	if c.Extract.Parallelism == 0 {
		c.Extract.Parallelism = c.Parallelism
	}
	if c.Clean.Parallelism == 0 {
		c.Clean.Parallelism = c.Parallelism
	}
	if c.Corpus.Fault == nil {
		c.Corpus.Fault = c.Fault
	}
	if c.Extract.Fault == nil {
		c.Extract.Fault = c.Fault
	}
	if c.Clean.Fault == nil {
		c.Clean.Fault = c.Fault
	}
	return c
}

// DefaultConfig returns the configuration used across the experiments:
// a mid-size world and corpus that run in seconds while exhibiting the
// paper's drift dynamics.
func DefaultConfig() Config {
	return Config{
		World:            world.DefaultConfig(),
		Corpus:           corpus.DefaultConfig(),
		Extract:          extract.DefaultConfig(),
		Mutex:            mutex.DefaultConfig(),
		Seed:             seedlabel.DefaultConfig(),
		KPCA:             kpca.DefaultConfig(),
		MultiTask:        learn.DefaultMultiTaskConfig(),
		Forest:           learn.DefaultForestConfig(),
		Clean:            clean.DefaultConfig(),
		MinTaskInstances: 8,
		KPCAFitCap:       200,
		SharedDim:        12,
	}
}

// System holds the built substrate: the world, the corpus and the
// (drifted) extraction result.
//
// A System memoizes analysis work across calls: the per-concept
// random-walk score cache is shared between every Analyze pass and the
// cleaning rounds (rollbacks invalidate exactly the concepts they
// touch), and a full *Analysis is reused verbatim when the KB has not
// mutated since it was computed. Like the KB itself, a System's
// orchestration methods (Analyze, Detect, CleanDPs) are not safe for
// concurrent use.
type System struct {
	Cfg        Config
	World      *world.World
	Corpus     *corpus.Corpus
	Extraction *extract.Result
	KB         *kb.KB
	Oracle     *eval.Oracle

	// scoreCache is the cross-round walk cache, created lazily by the
	// first Analyze.
	scoreCache *rank.Cache
	// walkMemo backs scoreCache with graph-signature-keyed walk reuse,
	// so a checkpoint replay's fresh KB (new pointer, cold cache) still
	// skips the power iteration for every concept whose trigger graph is
	// unchanged from the previous checkpoint.
	walkMemo *rank.WalkMemo
	// memo holds the last Analysis with the KB identity + version it was
	// computed from; a hit requires both to be unchanged.
	memo struct {
		k        *kb.KB
		version  uint64
		analysis *Analysis
	}
	// taskCache persists each concept's learning task across analysis
	// passes, keyed by a signature of the task's exact inputs (instance
	// names, seed labels, raw feature matrix). A task is a pure function
	// of those inputs and the fixed config, so a signature hit skips the
	// KPCA fit and projection — the dominant analysis cost — and returns
	// the cached task verbatim. Guarded by taskMu (buildTask fans out).
	taskMu     sync.Mutex
	taskCache  map[string]taskEntry
	taskHits   int
	taskMisses int

	// manifoldCache memoizes each concept's manifold regularizer matrix
	// (Eq 17) keyed on the task pointer it was built from. Cached tasks
	// are returned pointer-identical by buildTask, a rebuilt task is a
	// fresh allocation, and the matrix is a pure function of the task
	// under the fixed config — so pointer identity is exactly "same
	// matrix", and detection skips the O(n²) k-NN graph for every
	// concept whose task survived from the previous pass. Guarded by
	// manifoldMu (TrainMultiTask builds task states serially today, but
	// the cache must not rely on that).
	manifoldMu    sync.Mutex
	manifoldCache map[string]manifoldEntry
}

type taskEntry struct {
	sig  uint64
	task *learn.Task
}

type manifoldEntry struct {
	task *learn.Task
	a    *linalg.Matrix
}

// ScoreCache returns the system's shared cross-round random-walk cache,
// creating it on first use. Its configuration matches the feature
// extractor's (rank.DefaultConfig), which is also the cleaning loop's
// default Eq 21 walk configuration. The cache computes walks through
// the system's signature-keyed walk memo, so concepts whose trigger
// graphs are unchanged across checkpoint replays reuse their scores.
func (s *System) ScoreCache() *rank.Cache {
	if s.scoreCache == nil {
		if s.walkMemo == nil {
			s.walkMemo = rank.NewWalkMemo()
		}
		s.scoreCache = rank.NewCache(rank.DefaultConfig())
		s.scoreCache.SetWalk(s.walkMemo.Walk)
	}
	return s.scoreCache
}

// TaskCacheStats reports how many buildTask calls reused a cached task
// versus rebuilt one (KPCA fit + projection) since the system was
// created.
func (s *System) TaskCacheStats() (hits, misses int) {
	s.taskMu.Lock()
	defer s.taskMu.Unlock()
	return s.taskHits, s.taskMisses
}

// Prepare generates the world and corpus and wires up the oracle, but
// runs no extraction: the system's KB starts empty. It is the substrate
// of the incremental ingest path (Ingestor), where sentences arrive in
// batches after the system exists.
func Prepare(cfg Config) *System {
	cfg = cfg.propagate()
	w := world.New(cfg.World)
	c := corpus.Generate(w, cfg.Corpus)
	return &System{
		Cfg:    cfg,
		World:  w,
		Corpus: c,
		Oracle: eval.NewOracle(w, c),
	}
}

// Build generates the world and corpus and runs the iterative extraction.
func Build(cfg Config) *System {
	sys := Prepare(cfg)
	res := extract.Run(sys.Corpus, sys.Cfg.Extract)
	sys.Extraction = res
	sys.KB = res.KB
	return sys
}

// Analysis bundles the per-KB-state analysis artifacts.
type Analysis struct {
	Mutex    *mutex.Analysis
	Labeler  *seedlabel.Labeler
	Features *feature.Extractor
	// Tasks holds one learning task per analyzable concept, padded to the
	// shared dimensionality; Concepts lists them in task order.
	Tasks    []*learn.Task
	Concepts []string
}

// Analyze runs mutual-exclusion discovery, seed labeling, feature
// extraction and KPCA over the current state of the given KB (use
// sys.KB, or a KB mid-cleaning). Per-concept work (random walks,
// features, KPCA) is fanned out across CPUs; results are deterministic
// regardless of parallelism.
//
// Analysis is a pure function of the KB state and the (fixed) config,
// so a repeated call on an unmutated KB — detected by pointer identity
// plus the KB's mutation version — returns the previous *Analysis
// without recomputing anything. Between cleaning rounds, the shared
// score cache goes further: only concepts a rollback touched are
// re-walked.
func (s *System) Analyze(k *kb.KB) (*Analysis, error) {
	s.Cfg.Fault.Check("core.analyze")
	if s.memo.analysis != nil && s.memo.k == k && s.memo.version == k.Version() {
		return s.memo.analysis, nil
	}
	a := &Analysis{
		Mutex: mutex.Analyze(k, s.Cfg.Mutex),
	}
	a.Labeler = seedlabel.New(k, a.Mutex, s.Cfg.Seed)
	a.Features = feature.NewExtractorWithCache(k, a.Mutex, s.ScoreCache())

	var eligible []string
	for _, concept := range k.Concepts() {
		if len(k.Instances(concept)) >= s.Cfg.MinTaskInstances {
			eligible = append(eligible, concept)
		}
	}
	parallelism := s.Cfg.workers()
	a.Features.Warm(eligible, parallelism)

	// par.For (rather than a raw goroutine pool) so a panic inside a
	// task build — including one injected at the core.solve fault site —
	// is captured and re-thrown on this goroutine, where the public API's
	// stage recovery can turn it into ErrStagePanic.
	tasks := make([]*learn.Task, len(eligible))
	errs := make([]error, len(eligible))
	par.For(len(eligible), parallelism, func(i int) {
		tasks[i], errs[i] = s.buildTask(k, a, eligible[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: building task for %q: %w", eligible[i], err)
		}
	}
	for i, task := range tasks {
		if task == nil {
			continue
		}
		a.Tasks = append(a.Tasks, task)
		a.Concepts = append(a.Concepts, eligible[i])
	}
	s.memo.k, s.memo.version, s.memo.analysis = k, k.Version(), a
	return a, nil
}

// buildTask assembles the learning task of one concept: candidates are
// the triggering instances plus every seed-labeled instance; raw features
// are transformed by a per-concept KPCA fitted on (capped) task points.
//
// The expensive tail — KPCA fit, projection, padding — is skipped when
// the task's inputs are unchanged since the last pass: the task is a
// pure function of (names, seed labels, raw feature matrix) under the
// system's fixed config, so an identical input signature returns the
// previously built task bit for bit. This is what scopes re-analysis to
// dirty concepts: the raw feature matrix already aggregates every
// cross-concept dependency (f2/f6 read other concepts' pair counts and
// the exclusion structure), so "feature vectors unchanged" is exactly
// the condition under which the old task is still the right answer.
func (s *System) buildTask(k *kb.KB, a *Analysis, concept string) (*learn.Task, error) {
	seeds := a.Labeler.Seeds(concept)
	var names []string
	seen := map[string]bool{}
	for _, e := range k.Instances(concept) {
		if len(k.SubInstances(concept, e)) > 0 {
			names = append(names, e)
			seen[e] = true
		}
	}
	for e := range seeds {
		if !seen[e] {
			names = append(names, e)
		}
	}
	sort.Strings(names)
	if len(names) < 2 {
		return nil, nil
	}
	raw := a.Features.Matrix(concept, names)

	sig := taskSignature(concept, names, seeds, raw, s.Cfg.KPCA)
	s.taskMu.Lock()
	if e, ok := s.taskCache[concept]; ok && e.sig == sig {
		s.taskHits++
		s.taskMu.Unlock()
		return e.task, nil
	}
	s.taskMisses++
	s.taskMu.Unlock()

	// The eigensolve below is the analysis hot spot, so it gets its own
	// chaos seam: a signature miss is exactly "this concept pays for a
	// KPCA fit this pass".
	if err := s.Cfg.Fault.Hit("core.solve"); err != nil {
		return nil, err
	}

	// Fit KPCA on all labeled points plus a deterministic sample of the
	// rest, capped for tractability; project everything.
	fitIdx := make([]int, 0, len(names))
	var unlabeled []int
	for i, e := range names {
		if _, ok := seeds[e]; ok {
			fitIdx = append(fitIdx, i)
		} else {
			unlabeled = append(unlabeled, i)
		}
	}
	fitCap := s.Cfg.KPCAFitCap
	if fitCap <= 0 {
		fitCap = DefaultConfig().KPCAFitCap
	}
	stride := 1
	if room := fitCap - len(fitIdx); room > 0 && len(unlabeled) > room {
		stride = (len(unlabeled) + room - 1) / room
	}
	for i := 0; i < len(unlabeled); i += stride {
		fitIdx = append(fitIdx, unlabeled[i])
	}
	if len(fitIdx) < 2 {
		fitIdx = []int{0, 1}
	}
	fitX := make([][]float64, len(fitIdx))
	for i, idx := range fitIdx {
		fitX[i] = raw[idx]
	}
	kcfg := s.Cfg.KPCA
	if kcfg.MaxComponents <= 0 || kcfg.MaxComponents > s.sharedDim() {
		kcfg.MaxComponents = s.sharedDim()
	}
	tr, err := kpca.Fit(fitX, kcfg)
	if err != nil {
		// Degenerate concepts (e.g. all task points identical after an
		// aggressive cleaning round) have no kernel structure to extract;
		// fall back to the raw features as the representation.
		tr = nil
	}
	task := &learn.Task{Concept: concept}
	// Batch projection: one shared kernel-row scratch for the whole task
	// instead of a fresh row per instance.
	var proj [][]float64
	if tr != nil {
		proj = tr.ProjectAll(raw)
	}
	for i, e := range names {
		lbl, labeled := seeds[e]
		x := raw[i]
		if tr != nil {
			x = proj[i]
		}
		task.Instances = append(task.Instances, learn.Instance{
			Name:    e,
			X:       x,
			Raw:     raw[i],
			Label:   lbl,
			Labeled: labeled,
		})
	}
	task.PadTo(s.sharedDim())
	s.taskMu.Lock()
	if s.taskCache == nil {
		s.taskCache = make(map[string]taskEntry)
	}
	s.taskCache[concept] = taskEntry{sig: sig, task: task}
	s.taskMu.Unlock()
	return task, nil
}

// taskSignature hashes the exact inputs a concept's learning task is a
// function of: the sorted instance names, each name's seed label (or
// its absence), the raw feature matrix bit for bit, and the KPCA solver
// configuration. The solver bytes matter for the Session delta-reuse
// path: a cached task embeds the eigensolver's (and kernel precision's)
// numerical fingerprint, so a config that switches solvers mid-flight —
// e.g. the Jacobi escape hatch — must miss rather than replay top-k
// projections. Names are sorted and the matrix rows follow name order,
// so the signature is deterministic; equal signatures mean the
// previously built task is byte-identical to what a rebuild would
// produce.
func taskSignature(concept string, names []string, seeds map[string]dp.Label, raw [][]float64, kcfg kpca.Config) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	_, _ = h.Write([]byte(concept))
	_, _ = h.Write([]byte{0})
	kernel32 := byte(0)
	if kcfg.Kernel32 {
		kernel32 = 1
	}
	_, _ = h.Write([]byte{byte(kcfg.Solver), kernel32})
	u64(uint64(len(names)))
	for i, e := range names {
		_, _ = h.Write([]byte(e))
		if lbl, ok := seeds[e]; ok {
			_, _ = h.Write([]byte{1, byte(lbl)})
		} else {
			_, _ = h.Write([]byte{0, 0})
		}
		for _, v := range raw[i] {
			u64(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

func (s *System) sharedDim() int {
	if s.Cfg.SharedDim > 0 {
		return s.Cfg.SharedDim
	}
	return DefaultConfig().SharedDim
}

// DetectorKind selects a DP detection method (Table 4).
type DetectorKind int

const (
	// DetectMultiTask is the paper's method: semi-supervised multi-task
	// Concept Adaptive Drift Detection.
	DetectMultiTask DetectorKind = iota
	// DetectSemiSupervised trains each concept separately with the
	// manifold regularizer (Eq 15).
	DetectSemiSupervised
	// DetectSupervised is the Random Forest baseline on raw features.
	DetectSupervised
	// DetectRidge is plain least-squares on the KPCA representation
	// (ablation: KPCA without semi-supervision).
	DetectRidge
	// DetectAdHoc1..4 threshold a single raw feature.
	DetectAdHoc1
	DetectAdHoc2
	DetectAdHoc3
	DetectAdHoc4
)

// String names the detection method the way Table 4 labels it.
func (k DetectorKind) String() string {
	switch k {
	case DetectMultiTask:
		return "semi-supervised multi-task"
	case DetectSemiSupervised:
		return "semi-supervised"
	case DetectSupervised:
		return "supervised (random forest)"
	case DetectRidge:
		return "ridge"
	case DetectAdHoc1, DetectAdHoc2, DetectAdHoc3, DetectAdHoc4:
		return fmt.Sprintf("ad-hoc %d", int(k-DetectAdHoc1)+1)
	default:
		return fmt.Sprintf("DetectorKind(%d)", int(k))
	}
}

// Detect runs the chosen detection method over the analysis tasks and
// returns per-concept instance labels (all three classes). A KB without
// any seed labels (e.g. no drift at all) yields an empty label set —
// there is nothing to learn from and nothing to clean.
func (s *System) Detect(a *Analysis, kind DetectorKind) (clean.Labels, error) {
	out := clean.Labels{}
	anyLabels := false
	for _, t := range a.Tasks {
		if t.LabeledCount() > 0 {
			anyLabels = true
			break
		}
	}
	if !anyLabels {
		return out, nil
	}
	switch kind {
	case DetectMultiTask:
		mtCfg := s.Cfg.MultiTask
		mtCfg.ManifoldOf = s.manifoldFor
		res, err := learn.TrainMultiTask(a.Tasks, mtCfg, nil)
		if err != nil {
			return nil, err
		}
		fallback := meanDetector(res.Detectors)
		for _, t := range a.Tasks {
			det := res.Detectors[t.Concept]
			if det == nil {
				// Knowledge transfer to label-less concepts: the averaged
				// detector carries the shared structure.
				det = fallback
			}
			if det == nil {
				continue
			}
			out[t.Concept] = learn.PredictTask(calibrateFor(det, t, a.Tasks), t, false)
		}
	case DetectSemiSupervised:
		for _, t := range a.Tasks {
			det, err := learn.TrainSemiSupervised(t, learn.DefaultSemiSupervisedConfig())
			if err != nil {
				continue // concepts without seeds stay undetected
			}
			out[t.Concept] = learn.PredictTask(calibrateFor(det, t, a.Tasks), t, false)
		}
	case DetectRidge:
		for _, t := range a.Tasks {
			det, err := learn.TrainRidge(t, 1e-2)
			if err != nil {
				continue
			}
			out[t.Concept] = learn.PredictTask(calibrateFor(det, t, a.Tasks), t, false)
		}
	case DetectSupervised:
		// The paper's conventional supervised baseline trains per
		// concept — exactly why it starves on concepts with little seed
		// data (Sec 3: "lots of concepts do not have much training
		// data"). Concepts whose forest cannot be trained stay
		// undetected.
		for _, t := range a.Tasks {
			f, err := learn.TrainForest(t, s.Cfg.Forest)
			if err != nil {
				continue
			}
			out[t.Concept] = learn.PredictTask(f, t, true)
		}
	case DetectAdHoc1, DetectAdHoc2, DetectAdHoc3, DetectAdHoc4:
		featIdx := int(kind - DetectAdHoc1)
		det, err := learn.TrainAdHocPooled(a.Tasks, featIdx)
		if err != nil {
			return nil, err
		}
		for _, t := range a.Tasks {
			out[t.Concept] = learn.PredictTask(det, t, true)
		}
	default:
		return nil, fmt.Errorf("core: unknown detector kind %d", kind)
	}
	for _, t := range a.Tasks {
		guardDPs(out[t.Concept], t)
	}
	return out, nil
}

// manifoldFor is the memoizing learn.MultiTaskConfig.ManifoldOf
// provider: it returns the cached manifold matrix when the concept's
// task is the same object as last time, and builds and caches it
// otherwise. See manifoldCache for why pointer identity is sound.
func (s *System) manifoldFor(t *learn.Task, cfg learn.ManifoldConfig) *linalg.Matrix {
	s.manifoldMu.Lock()
	if e, ok := s.manifoldCache[t.Concept]; ok && e.task == t {
		s.manifoldMu.Unlock()
		return e.a
	}
	s.manifoldMu.Unlock()
	a := learn.ManifoldMatrix(t, cfg)
	s.manifoldMu.Lock()
	if s.manifoldCache == nil {
		s.manifoldCache = make(map[string]manifoldEntry)
	}
	s.manifoldCache[t.Concept] = manifoldEntry{task: t, a: a}
	s.manifoldMu.Unlock()
	return a
}

// guardDPs demotes DP predictions with no observable exclusive-class
// signal to non-DP. By Definitions 3 and 4, an Intentional DP is
// polysemous across exclusive concepts (f2 ≥ 1) and an Accidental DP is
// an erroneous extraction whose instance or sub-instances are rooted in
// an exclusive concept (f2 or f6 positive); a "DP" exhibiting neither is
// indistinguishable from a clean trigger with rare sub-instances, the
// dominant false-positive mode.
func guardDPs(labels map[string]dp.Label, t *learn.Task) {
	if labels == nil {
		return
	}
	for _, in := range t.Instances {
		lbl, ok := labels[in.Name]
		if !ok || !lbl.IsDP() || in.Labeled {
			continue
		}
		f2, f6 := in.Raw[1], in.Raw[5]
		switch lbl {
		case dp.Intentional:
			// A polysemous instance shows up in an exclusive concept, and
			// its drift drags a visible cluster across the boundary.
			if f2 == 0 && f6 < 0.2 {
				labels[in.Name] = dp.NonDP
			}
		case dp.Accidental:
			if f2 == 0 && f6 == 0 {
				labels[in.Name] = dp.NonDP
			}
		}
	}
}

// calibrateFor tunes a linear detector's DP margin on the task's own
// seeds when they contain enough examples of *both* sides, and otherwise
// on the pooled seeds of all tasks. A concept whose seeds contain no DP
// examples cannot estimate a margin at all (plain argmax then over-fires
// on every borderline trigger), so borrowing the global margin is the
// same cross-concept transfer that motivates the multi-task objective.
func calibrateFor(det *learn.LinearDetector, t *learn.Task, all []*learn.Task) *learn.CalibratedLinear {
	dpSeeds, nonSeeds := 0, 0
	for _, in := range t.Instances {
		if !in.Labeled {
			continue
		}
		if in.Label.IsDP() {
			dpSeeds++
		} else {
			nonSeeds++
		}
	}
	if dpSeeds >= 1 && nonSeeds >= 1 {
		return learn.Calibrate(det, t)
	}
	return learn.Calibrate(det, all...)
}

// meanDetector averages the W matrices of all trained detectors — the
// shared-structure fallback for concepts without any seed labels.
func meanDetector(dets map[string]*learn.LinearDetector) *learn.LinearDetector {
	var sum *linalg.Matrix
	n := 0
	for _, d := range dets {
		if sum == nil {
			sum = d.W.Clone()
		} else {
			linalg.AddInPlace(sum, 1, d.W)
		}
		n++
	}
	if sum == nil {
		return nil
	}
	return &learn.LinearDetector{W: linalg.Scale(1/float64(n), sum)}
}

// CleanResult reports a full DP-cleaning run.
type CleanResult struct {
	Clean *clean.Result
	// BeforeInstances snapshots each concept's instances prior to
	// cleaning, for before/after evaluation.
	BeforeInstances map[string][]string
}

// CleanDPs runs the iterative detect-and-clean loop of Sec 4 on the
// system's KB using the given detection method, mutating the KB.
func (s *System) CleanDPs(kind DetectorKind) (*CleanResult, error) {
	before := map[string][]string{}
	for _, c := range s.KB.Concepts() {
		before[c] = s.KB.Instances(c)
	}
	var detectErr error
	res := clean.Run(s.KB, func(k *kb.KB) clean.Labels {
		a, err := s.Analyze(k)
		if err != nil {
			detectErr = err
			return clean.Labels{}
		}
		labels, err := s.Detect(a, kind)
		if err != nil {
			detectErr = err
			return clean.Labels{}
		}
		return onlyDPs(labels)
	}, s.cleanConfig())
	if detectErr != nil {
		return nil, detectErr
	}
	return &CleanResult{Clean: res, BeforeInstances: before}, nil
}

// cleanConfig is the propagated cleaning config wired to the system's
// shared score cache, so the Eq 21 walks of the cleaning loop and the
// f3/f4 walks of each round's analysis pass are computed once per
// concept per round, and untouched concepts carry over between rounds.
func (s *System) cleanConfig() clean.Config {
	cfg := s.Cfg.propagate().Clean
	if cfg.Walk == s.ScoreCache().Config() {
		cfg.Cache = s.ScoreCache()
	}
	return cfg
}

// onlyDPs strips non-DP predictions from a label set.
func onlyDPs(labels clean.Labels) clean.Labels {
	out := clean.Labels{}
	for c, m := range labels {
		for e, l := range m {
			if !l.IsDP() {
				continue
			}
			if out[c] == nil {
				out[c] = map[string]dp.Label{}
			}
			out[c][e] = l
		}
	}
	return out
}
