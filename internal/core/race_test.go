package core

import (
	"fmt"
	"reflect"
	"testing"
)

// hammerConfig is smaller than testConfig: the race hammer builds many
// Analysis runs, and -race multiplies the cost of each.
func hammerConfig() Config {
	cfg := DefaultConfig()
	cfg.World.NumDomains = 2
	cfg.World.InstancesPerConceptMin = 40
	cfg.World.InstancesPerConceptMax = 80
	cfg.Corpus.NumSentences = 8000
	cfg.Clean.MaxRounds = 2
	return cfg
}

// TestAnalyzeParallelHammer runs Analyze concurrently from parallel
// subtests over one shared System. Under `go test -race` this is the
// regression gate for the worker pool in Analyze (shared tasks/errs
// slices written from worker goroutines) and for the feature extractor's
// cache fills; every run must also produce bit-identical tasks — the
// "deterministic regardless of parallelism" contract that the drift
// metrics depend on.
func TestAnalyzeParallelHammer(t *testing.T) {
	sys := Build(hammerConfig())
	ref, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Tasks) == 0 {
		t.Fatal("reference analysis built no tasks")
	}
	for i := 0; i < 6; i++ {
		t.Run(fmt.Sprintf("analyze-%d", i), func(t *testing.T) {
			t.Parallel()
			a, err := sys.Analyze(sys.KB)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Concepts, ref.Concepts) {
				t.Fatalf("concept order differs across runs:\n%v\nvs\n%v", a.Concepts, ref.Concepts)
			}
			if len(a.Tasks) != len(ref.Tasks) {
				t.Fatalf("task count %d, want %d", len(a.Tasks), len(ref.Tasks))
			}
			for ti := range a.Tasks {
				if !reflect.DeepEqual(a.Tasks[ti].Instances, ref.Tasks[ti].Instances) {
					t.Fatalf("task %q instances differ between parallel analysis runs", a.Tasks[ti].Concept)
				}
			}
		})
	}
}

// TestDetectParallelHammer runs the full detect stage concurrently over
// one analysis — detectors read shared task slices; labels must match.
func TestDetectParallelHammer(t *testing.T) {
	sys := Build(hammerConfig())
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.Detect(a, DetectMultiTask)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("detect-%d", i), func(t *testing.T) {
			t.Parallel()
			got, err := sys.Detect(a, DetectMultiTask)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatal("detection labels differ across parallel runs")
			}
		})
	}
}
