package core

import (
	"testing"

	"driftclean/internal/dp"
	"driftclean/internal/learn"
	"driftclean/internal/linalg"
)

// sharedTestSystem caches one built system across the detection-path
// tests in this file (Build is deterministic).
var sharedSys *System

func testSystem(t *testing.T) *System {
	t.Helper()
	if sharedSys == nil {
		sharedSys = Build(testConfig())
	}
	return sharedSys
}

func TestDetectAllKinds(t *testing.T) {
	sys := testSystem(t)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []DetectorKind{
		DetectMultiTask, DetectSemiSupervised, DetectSupervised, DetectRidge,
		DetectAdHoc1, DetectAdHoc2, DetectAdHoc3, DetectAdHoc4,
	}
	for _, kind := range kinds {
		labels, err := sys.Detect(a, kind)
		if err != nil {
			t.Errorf("%v: %v", kind, err)
			continue
		}
		total := 0
		for _, m := range labels {
			total += len(m)
		}
		if total == 0 {
			t.Errorf("%v produced no predictions", kind)
		}
	}
	if _, err := sys.Detect(a, DetectorKind(99)); err == nil {
		t.Error("unknown detector kind must error")
	}
}

func TestGuardDPs(t *testing.T) {
	task := &learn.Task{Concept: "c", Instances: []learn.Instance{
		{Name: "bare", Raw: []float64{0, 0, 0, 0, 1, 0}},      // no exclusive signal
		{Name: "poly", Raw: []float64{0, 1, 0, 0, 1, 0}},      // f2 > 0
		{Name: "cluster", Raw: []float64{0, 0, 0, 0, 1, 0.5}}, // f6 high
		{Name: "weak6", Raw: []float64{0, 0, 0, 0, 1, 0.1}},   // f6 below Intentional bar
		{Name: "seeded", Raw: []float64{0, 0, 0, 0, 1, 0}, Labeled: true, Label: dp.Intentional},
	}}
	labels := map[string]dp.Label{
		"bare":    dp.Intentional,
		"poly":    dp.Intentional,
		"cluster": dp.Intentional,
		"weak6":   dp.Intentional,
		"seeded":  dp.Intentional,
	}
	guardDPs(labels, task)
	if labels["bare"] != dp.NonDP {
		t.Error("bare prediction must be demoted")
	}
	if labels["poly"] != dp.Intentional || labels["cluster"] != dp.Intentional {
		t.Error("signalled predictions must survive")
	}
	if labels["weak6"] != dp.NonDP {
		t.Error("weak-f6 Intentional must be demoted")
	}
	if labels["seeded"] != dp.Intentional {
		t.Error("seed-labeled predictions are never demoted")
	}
	// Accidental: f6 > 0 suffices.
	labels2 := map[string]dp.Label{"weak6": dp.Accidental, "bare": dp.Accidental}
	guardDPs(labels2, task)
	if labels2["weak6"] != dp.Accidental {
		t.Error("accidental with f6 > 0 must survive")
	}
	if labels2["bare"] != dp.NonDP {
		t.Error("accidental without any signal must be demoted")
	}
	guardDPs(nil, task) // must not panic
}

func TestMeanDetector(t *testing.T) {
	d1 := &learn.LinearDetector{W: linalg.Scale(2, linalg.Identity(3))}
	d2 := &learn.LinearDetector{W: linalg.NewMatrix(3, 3)}
	mean := meanDetector(map[string]*learn.LinearDetector{"a": d1, "b": d2})
	if got := mean.W.At(0, 0); got != 1 {
		t.Errorf("mean W[0,0] = %v, want 1", got)
	}
	if meanDetector(nil) != nil {
		t.Error("empty mean must be nil")
	}
}

func TestCalibrateForFallsBackWhenOneSided(t *testing.T) {
	det := &learn.LinearDetector{W: linalg.Identity(3)}
	// Task with only non-DP seeds.
	oneSided := &learn.Task{Concept: "c"}
	pool := &learn.Task{Concept: "pool"}
	for i := 0; i < 10; i++ {
		oneSided.Instances = append(oneSided.Instances, learn.Instance{
			Name: string(rune('a' + i)), X: []float64{0, 0, 1}, Labeled: true, Label: dp.NonDP,
		})
		lbl := dp.NonDP
		x := []float64{0, 0, 1}
		if i%2 == 0 {
			lbl = dp.Intentional
			x = []float64{1, 0, 0}
		}
		pool.Instances = append(pool.Instances, learn.Instance{
			Name: string(rune('A' + i)), X: x, Labeled: true, Label: lbl,
		})
	}
	// One-sided task borrows the pool; pooled calibration can find a
	// separating margin while the task alone cannot.
	cal := calibrateFor(det, oneSided, []*learn.Task{oneSided, pool})
	calOwn := learn.Calibrate(det, oneSided)
	if calOwn.Delta != 0 {
		t.Fatalf("one-sided calibration should be inert, delta=%v", calOwn.Delta)
	}
	_ = cal // pooled margin may legitimately be 0 here; the point is no panic and the fallback path runs
}

func TestBuildTaskDegenerateFeatures(t *testing.T) {
	// A KB where a concept's instances all have identical features must
	// not fail task building (KPCA falls back to raw features).
	sys := testSystem(t)
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) == 0 {
		t.Fatal("no tasks")
	}
}
