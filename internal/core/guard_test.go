package core

import (
	"testing"

	"driftclean/internal/dp"
	"driftclean/internal/learn"
)

// guardTask builds a one-instance task with the given raw f2/f6 features
// and seed-label status.
func guardTask(name string, f2, f6 float64, labeled bool, seedLabel dp.Label) *learn.Task {
	return &learn.Task{
		Concept: "animal",
		Instances: []learn.Instance{{
			Name:    name,
			Raw:     []float64{0, f2, 0, 0, 0, f6, 0, 0},
			Labeled: labeled,
			Label:   seedLabel,
		}},
	}
}

func TestGuardDPsTable(t *testing.T) {
	cases := []struct {
		name    string
		label   dp.Label
		f2, f6  float64
		labeled bool
		want    dp.Label
	}{
		{
			name:  "intentional with no exclusive signal is demoted",
			label: dp.Intentional, f2: 0, f6: 0,
			want: dp.NonDP,
		},
		{
			name:  "intentional with exclusive-concept membership survives",
			label: dp.Intentional, f2: 1, f6: 0,
			want: dp.Intentional,
		},
		{
			name:  "intentional with strong sub-instance drift survives",
			label: dp.Intentional, f2: 0, f6: 0.5,
			want: dp.Intentional,
		},
		{
			name:  "intentional with weak sub-instance drift alone is demoted",
			label: dp.Intentional, f2: 0, f6: 0.1,
			want: dp.NonDP,
		},
		{
			name:  "accidental with no signal at all is demoted",
			label: dp.Accidental, f2: 0, f6: 0,
			want: dp.NonDP,
		},
		{
			name:  "accidental with any sub-instance signal survives",
			label: dp.Accidental, f2: 0, f6: 0.05,
			want: dp.Accidental,
		},
		{
			name:  "accidental with exclusive membership survives",
			label: dp.Accidental, f2: 2, f6: 0,
			want: dp.Accidental,
		},
		{
			// Seed-labeled instances carry human/oracle ground truth; the
			// guard must never override them, signal or not.
			name:  "seed-labeled intentional is exempt from the guard",
			label: dp.Intentional, f2: 0, f6: 0,
			labeled: true,
			want:    dp.Intentional,
		},
		{
			name:  "seed-labeled accidental is exempt from the guard",
			label: dp.Accidental, f2: 0, f6: 0,
			labeled: true,
			want:    dp.Accidental,
		},
		{
			name:  "non-DP predictions pass through untouched",
			label: dp.NonDP, f2: 0, f6: 0,
			want: dp.NonDP,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			task := guardTask("chicken", tc.f2, tc.f6, tc.labeled, tc.label)
			labels := map[string]dp.Label{"chicken": tc.label}
			guardDPs(labels, task)
			if got := labels["chicken"]; got != tc.want {
				t.Errorf("guardDPs(%v, f2=%v, f6=%v, labeled=%v) = %v, want %v",
					tc.label, tc.f2, tc.f6, tc.labeled, got, tc.want)
			}
		})
	}
}

func TestGuardDPsSkipsUnpredictedAndNil(t *testing.T) {
	task := guardTask("chicken", 0, 0, false, dp.Intentional)
	guardDPs(nil, task) // must not panic

	labels := map[string]dp.Label{"other": dp.Intentional}
	guardDPs(labels, task)
	if labels["other"] != dp.Intentional {
		t.Error("instances absent from the task must not be rewritten")
	}
}
