package core

import (
	"testing"

	"driftclean/internal/dp"
	"driftclean/internal/eval"
	"driftclean/internal/kpca"
)

// testConfig returns a small but drift-exhibiting configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.World.NumDomains = 3
	cfg.World.InstancesPerConceptMin = 60
	cfg.World.InstancesPerConceptMax = 120
	cfg.Corpus.NumSentences = 25000
	cfg.Clean.MaxRounds = 3
	return cfg
}

func TestBuildProducesDriftedKB(t *testing.T) {
	sys := Build(testConfig())
	if sys.KB.NumPairs() == 0 {
		t.Fatal("empty KB")
	}
	prec := sys.Oracle.KBPrecision(sys.KB, nil)
	if prec > 0.85 {
		t.Errorf("KB precision %.3f — no drift to clean?", prec)
	}
	if prec < 0.3 {
		t.Errorf("KB precision %.3f — too dirty, extraction is broken", prec)
	}
}

func TestAnalyzeBuildsTasks(t *testing.T) {
	sys := Build(testConfig())
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) == 0 {
		t.Fatal("no tasks built")
	}
	dim := sys.sharedDim()
	labeledTasks := 0
	for _, task := range a.Tasks {
		if task.Dim() != dim {
			t.Fatalf("task %q dim %d, want %d", task.Concept, task.Dim(), dim)
		}
		if task.LabeledCount() > 0 {
			labeledTasks++
		}
	}
	if labeledTasks == 0 {
		t.Fatal("no task has seed labels")
	}
}

func TestDetectMultiTaskFindsDPs(t *testing.T) {
	sys := Build(testConfig())
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := sys.Detect(a, DetectMultiTask)
	if err != nil {
		t.Fatal(err)
	}
	dps := 0
	for _, m := range labels {
		for _, l := range m {
			if l.IsDP() {
				dps++
			}
		}
	}
	if dps == 0 {
		t.Fatal("multi-task detector found no DPs on a drifted KB")
	}
}

func TestDetectionQualityOrdering(t *testing.T) {
	// The paper's Table 4 ordering on F1: ad-hoc < multi-task, and the
	// learned detectors should beat the weakest ad-hoc method.
	sys := Build(testConfig())
	a, err := sys.Analyze(sys.KB)
	if err != nil {
		t.Fatal(err)
	}
	f1 := func(kind DetectorKind) float64 {
		labels, err := sys.Detect(a, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var merged eval.PRF1
		for concept, predicted := range labels {
			truth := sys.Oracle.TruthLabels(sys.KB, concept)
			m := eval.Detection(truth, predicted)
			merged.TP += m.TP
			merged.FP += m.FP
			merged.FN += m.FN
		}
		if merged.TP == 0 {
			return 0
		}
		p := float64(merged.TP) / float64(merged.TP+merged.FP)
		r := float64(merged.TP) / float64(merged.TP+merged.FN)
		return 2 * p * r / (p + r)
	}
	mt := f1(DetectMultiTask)
	ad3 := f1(DetectAdHoc3)
	t.Logf("F1: multitask=%.3f adhoc3=%.3f", mt, ad3)
	if mt < 0.5 {
		t.Errorf("multi-task F1 %.3f too low", mt)
	}
	if mt <= ad3 {
		t.Errorf("multi-task F1 %.3f should beat ad-hoc3 %.3f", mt, ad3)
	}
}

// TestCleanDPsImprovesPrecision is the headline end-to-end check: DP
// cleaning must raise KB precision substantially while keeping most
// correct pairs (paper: 43% -> 89% precision with rcorr 94%).
func TestCleanDPsImprovesPrecision(t *testing.T) {
	sys := Build(testConfig())
	before := sys.Oracle.KBPrecision(sys.KB, nil)
	cr, err := sys.CleanDPs(DetectMultiTask)
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Oracle.KBPrecision(sys.KB, nil)

	var per []eval.CleaningMetrics
	for c, beforeInsts := range cr.BeforeInstances {
		per = append(per, sys.Oracle.Cleaning(c, beforeInsts, sys.KB))
	}
	m := eval.MergeCleaning(per)
	t.Logf("precision %.3f -> %.3f; perror=%.3f rerror=%.3f pcorr=%.3f rcorr=%.3f (removed %d)",
		before, after, m.PError, m.RError, m.PCorr, m.RCorr, m.Removed)

	if after < before+0.15 {
		t.Errorf("cleaning improved precision only %.3f -> %.3f", before, after)
	}
	if m.RCorr < 0.75 {
		t.Errorf("rcorr %.3f — cleaning destroyed too many correct pairs", m.RCorr)
	}
	if m.PError < 0.7 {
		t.Errorf("perror %.3f — removals too imprecise", m.PError)
	}
}

func TestOnlyDPsFilter(t *testing.T) {
	in := map[string]map[string]dp.Label{
		"c": {"a": dp.Intentional, "b": dp.NonDP, "d": dp.Accidental},
	}
	out := onlyDPs(in)
	if len(out["c"]) != 2 {
		t.Errorf("onlyDPs kept %d labels, want 2", len(out["c"]))
	}
	if _, ok := out["c"]["b"]; ok {
		t.Error("non-DP label leaked through")
	}
}

func TestDetectorKindString(t *testing.T) {
	if DetectMultiTask.String() == "" || DetectAdHoc2.String() != "ad-hoc 2" {
		t.Error("DetectorKind.String broken")
	}
}

// TestTaskSignatureIncludesSolverConfig: the Session delta-reuse cache
// must miss when the KPCA solver or kernel precision changes — a cached
// task carries that solver's numerical fingerprint, and replaying it
// under another configuration would silently mix solver outputs.
func TestTaskSignatureIncludesSolverConfig(t *testing.T) {
	names := []string{"a", "b"}
	seeds := map[string]dp.Label{"a": dp.Intentional}
	raw := [][]float64{{1, 2}, {3, 4}}
	base := kpca.DefaultConfig()
	jac := base
	jac.Solver = kpca.SolverJacobi
	k32 := base
	k32.Kernel32 = true

	sigBase := taskSignature("c", names, seeds, raw, base)
	if got := taskSignature("c", names, seeds, raw, base); got != sigBase {
		t.Fatal("taskSignature is not deterministic")
	}
	if got := taskSignature("c", names, seeds, raw, jac); got == sigBase {
		t.Error("switching to the Jacobi solver did not change the signature")
	}
	if got := taskSignature("c", names, seeds, raw, k32); got == sigBase {
		t.Error("enabling Kernel32 did not change the signature")
	}
}
