package lint

import (
	"fmt"
	"runtime"
	"testing"
)

func TestFileIncluded(t *testing.T) {
	goos, goarch := runtime.GOOS, runtime.GOARCH
	otherOS := "windows"
	if goos == "windows" {
		otherOS = "linux"
	}
	otherArch := "s390x"
	if goarch == "s390x" {
		otherArch = "amd64"
	}

	cases := []struct {
		name string
		file string
		src  string
		want bool
	}{
		{"plain file", "a.go", "package p\n", true},
		{"host goos tag", "a.go", fmt.Sprintf("//go:build %s\n\npackage p\n", goos), true},
		{"foreign goos tag", "a.go", fmt.Sprintf("//go:build %s\n\npackage p\n", otherOS), false},
		{"negated host", "a.go", fmt.Sprintf("//go:build !%s\n\npackage p\n", goos), false},
		{"negated foreign", "a.go", fmt.Sprintf("//go:build !%s\n\npackage p\n", otherOS), true},
		{"host goarch tag", "a.go", fmt.Sprintf("//go:build %s\n\npackage p\n", goarch), true},
		{"or with foreign", "a.go", fmt.Sprintf("//go:build %s || %s\n\npackage p\n", otherOS, goos), true},
		{"and with foreign", "a.go", fmt.Sprintf("//go:build %s && %s\n\npackage p\n", otherOS, goos), false},
		{"unknown custom tag", "a.go", "//go:build sometag\n\npackage p\n", false},
		{"negated custom tag", "a.go", "//go:build !sometag\n\npackage p\n", true},
		{"go version tag", "a.go", "//go:build go1.22\n\npackage p\n", true},
		{"constraint after package clause ignored", "a.go",
			fmt.Sprintf("package p\n\n//go:build %s\n", otherOS), true},
		{"host goos suffix", fmt.Sprintf("f_%s.go", goos), "package p\n", true},
		{"foreign goos suffix", fmt.Sprintf("f_%s.go", otherOS), "package p\n", false},
		{"foreign goarch suffix", fmt.Sprintf("f_%s.go", otherArch), "package p\n", false},
		{"foreign goos_goarch suffix", fmt.Sprintf("f_%s_%s.go", otherOS, goarch), "package p\n", false},
		{"host goos_goarch suffix", fmt.Sprintf("f_%s_%s.go", goos, goarch), "package p\n", true},
		{"unix is not a filename constraint", "mmap_unix.go", "package p\n", true},
		{"non-constraint suffix", "kb_store.go", "package p\n", true},
	}
	for _, tc := range cases {
		if got := fileIncluded(tc.file, []byte(tc.src)); got != tc.want {
			t.Errorf("%s: fileIncluded(%q) = %v, want %v", tc.name, tc.file, got, tc.want)
		}
	}

	// The repo's real OS-split pair: exactly one half may be selected,
	// whichever platform the tests run on.
	unixSrc := []byte("//go:build unix\n\npackage p\n")
	otherSrc := []byte("//go:build !unix\n\npackage p\n")
	if fileIncluded("mmap_unix.go", unixSrc) == fileIncluded("mmap_other.go", otherSrc) {
		t.Error("unix and !unix halves were both selected (or both dropped)")
	}
}
