// Package fixture exercises the faultsite analyzer: sites must be
// compile-time strings named "pkg.operation" with the package prefix
// matching the registering package, and globally unique.
package fixture

import (
	"fmt"

	"driftclean/internal/fault"
)

func literals(inj *fault.Injector) error {
	if err := inj.Hit("fixture.ok"); err != nil {
		return err
	}
	inj.Check("fixture.checked")
	return inj.Hit("fixture." + "concat") // constant concatenation resolves
}

func badNames(inj *fault.Injector) {
	inj.Check("Fixture.upper")    // want `violates the "pkg\.operation" naming convention`
	inj.Check("nodot")            // want `violates the "pkg\.operation" naming convention`
	inj.Check("other.elsewhere")  // want `registered in package fixture; the prefix must match`
	inj.Check("fixture.Op.extra") // want `violates the "pkg\.operation" naming convention`
}

func dup(inj *fault.Injector) {
	inj.Check("fixture.dup")
	inj.Check("fixture.dup") // want `fault site "fixture\.dup" is also registered at .*; site names must be globally unique`
}

func dynamic(inj *fault.Injector, i int) {
	inj.Check(fmt.Sprintf("fixture.%d", i)) // want `not resolvable to compile-time strings`
}

// orphanParam is never called, so its site parameter has no bindings.
func orphanParam(inj *fault.Injector, site string) {
	inj.Check(site) // want `not resolvable to compile-time strings`
}

// helper's site parameter is bound at each call site; the analyzer
// resolves it to the union of the callers' constant arguments.
func helper(inj *fault.Injector, op string) {
	inj.Check("fixture." + op)
}

func callsHelper(inj *fault.Injector) {
	helper(inj, "viaA")
	helper(inj, "viaB")
}

func inClosure(inj *fault.Injector) {
	run := func() {
		inj.Check("fixture.closure")
	}
	run()
}

func suppressed(inj *fault.Injector, site string) {
	//lint:ignore faultsite demo of an intentionally dynamic site
	inj.Check(site)
}
