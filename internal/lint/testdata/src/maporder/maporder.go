// Package fixture exercises the maporder analyzer: map iteration must
// not feed order-sensitive sinks (escaping slices, output, hashes,
// channels) without a sort.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice "keys" is appended to in map-iteration order and never sorted`
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: clean
	}
	sort.Strings(keys)
	return keys
}

func sortedBySlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted by a sort.Slice call: clean
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

type pair struct {
	k string
	n int
}

// sortPairs is the project-local helper idiom the analyzer recognizes
// by its name prefix.
func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
}

func localSortHelper(m map[string]int) []pair {
	var ps []pair
	for k, n := range m {
		ps = append(ps, pair{k: k, n: n}) // sorted by the sortPairs helper: clean
	}
	sortPairs(ps)
	return ps
}

func sortBeforeOnly(m map[string]int) []string {
	keys := []string{"seed"}
	sort.Strings(keys)
	for k := range m {
		keys = append(keys, k) // want `slice "keys" is appended to in map-iteration order and never sorted`
	}
	return keys
}

func printsDirectly(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration leaks map order`
	}
}

func buildsString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside map iteration leaks map order`
	}
	return b.String()
}

func sendsOnChannel(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration leaks map order`
	}
}

type sink struct {
	rows []string
}

func appendsIntoField(m map[string]int, s *sink) {
	for k := range m {
		s.rows = append(s.rows, k) // want `append into s\.rows inside map iteration depends on map order`
	}
}

func commutative(m map[string]int) (int, map[string]int) {
	total := 0
	copied := make(map[string]int, len(m))
	for k, v := range m {
		total += v    // order-independent: clean
		copied[k] = v // map-to-map copy: clean
	}
	return total, copied
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered: clean
	}
	return out
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore maporder caller sorts; this helper feeds a set
		keys = append(keys, k)
	}
	return keys
}
