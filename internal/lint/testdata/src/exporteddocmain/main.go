// Command fixture shows that package main is exempt from exporteddoc:
// nothing imports a main package, so exports there carry no contract.
package main

func Undocumented() {}

func main() {}
