// Package fixture exercises the versionbump analyzer: every exported
// method of a version-stamped type that mutates receiver state must
// bump the version on every mutating path.
package fixture

type entry struct {
	n     int
	names []string
}

// Store is version-stamped: it has an unexported unsigned version field.
type Store struct {
	version uint64
	counts  map[string]*entry
	order   []string
}

// Add mutates and bumps: clean.
func (s *Store) Add(k string) {
	s.version++
	s.counts[k] = &entry{n: 1}
	s.order = append(s.order, k)
}

// Put mutates with no bump anywhere.
func (s *Store) Put(k string) {
	s.counts[k] = &entry{} // want `Put mutates receiver state on a path with no s\.version bump`
}

// MaybeBump bumps only on one branch; the fallthrough path mutates
// without a bump.
func (s *Store) MaybeBump(k string, b bool) {
	s.counts[k] = &entry{} // want `MaybeBump mutates receiver state on a path with no s\.version bump`
	if b {
		s.version++
	}
}

// Drop bumps after the mutation on every path: clean (the early return
// happens before any mutation).
func (s *Store) Drop(k string) {
	if _, ok := s.counts[k]; !ok {
		return
	}
	delete(s.counts, k)
	s.version++
}

// Alias mutates through a local bound to a receiver map entry — the
// taint analysis must see through the alias.
func (s *Store) Alias(k string) {
	e := s.counts[k]
	e.n++ // want `Alias mutates receiver state on a path with no s\.version bump`
}

// AliasBumped is the same aliased write with a bump: clean.
func (s *Store) AliasBumped(k string) {
	e := s.counts[k]
	e.n++
	s.version++
}

// put is an unexported helper: no obligation of its own.
func (s *Store) put(k string) {
	s.counts[k] = &entry{}
}

// touch is the bump helper.
func (s *Store) touch() {
	s.version++
}

// Via mutates through the unexported helper and never bumps.
func (s *Store) Via(k string) {
	s.put(k) // want `Via mutates receiver state on a path with no s\.version bump`
}

// ViaBumped mutates through the helper and bumps through a helper too:
// clean.
func (s *Store) ViaBumped(k string) {
	s.put(k)
	s.touch()
}

// Get only reads: clean.
func (s *Store) Get(k string) int {
	if e, ok := s.counts[k]; ok {
		return e.n
	}
	return 0
}

// Snapshot copies values out; the struct copy breaks the alias, so
// writing the copy is clean.
func (s *Store) Snapshot() []entry {
	out := make([]entry, 0, len(s.order))
	for _, k := range s.order {
		e := *s.counts[k]
		e.n *= 2
		out = append(out, e)
	}
	return out
}

// Plain has no version field: its mutators carry no obligation.
type Plain struct {
	m map[string]int
}

// Set mutates an unversioned type: clean.
func (p *Plain) Set(k string) {
	p.m[k] = 1
}

// Suppressed shows the escape hatch for a justified exception.
func (s *Store) Suppressed(k string) {
	//lint:ignore versionbump fixture demonstrates an acknowledged stale-cache hazard
	s.counts[k] = &entry{}
}
