// Package fixture exercises the lockhold analyzer: no blocking
// operation may execute while a sync mutex is held.
package fixture

import (
	"sync"
	"time"
)

type box struct {
	mu    sync.Mutex
	state sync.RWMutex
	wg    sync.WaitGroup
	ch    chan int
	n     int
}

func sendUnderLock(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while b\.mu\.Lock is held`
	b.mu.Unlock()
}

func recvUnderLock(b *box) int {
	b.mu.Lock()
	v := <-b.ch // want `channel receive while b\.mu\.Lock is held`
	b.mu.Unlock()
	return v
}

func releasedFirst(b *box) int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return <-b.ch // lock already released: clean
}

func deferHoldsToExit(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while b\.mu\.Lock is held`
	b.n++
}

func waitUnderLock(b *box) {
	b.mu.Lock()
	b.wg.Wait() // want `sync\.WaitGroup\.Wait while b\.mu\.Lock is held`
	b.mu.Unlock()
}

func waitAfterUnlock(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.wg.Wait() // the singleflight idiom: wait after releasing, clean
}

func nonBlockingSelect(b *box) {
	b.mu.Lock()
	select {
	case b.ch <- b.n: // has a default: never blocks, clean
	default:
	}
	b.mu.Unlock()
}

func blockingSelect(b *box) {
	b.mu.Lock()
	select {
	case b.ch <- b.n: // want `channel send while b\.mu\.Lock is held`
	case v := <-b.ch: // want `channel receive while b\.mu\.Lock is held`
		b.n = v
	}
	b.mu.Unlock()
}

func readLock(b *box) {
	b.state.RLock()
	<-b.ch // want `channel receive while b\.state\.RLock is held`
	b.state.RUnlock()
}

func distinctLocks(b *box, other *sync.Mutex) {
	b.mu.Lock()
	other.Lock()
	other.Unlock()
	// other's unlock does not release b.mu:
	<-b.ch // want `channel receive while b\.mu\.Lock is held`
	b.mu.Unlock()
}

func branchRelease(b *box, done bool) {
	b.mu.Lock()
	if done {
		b.mu.Unlock()
		return
	}
	<-b.ch // want `channel receive while b\.mu\.Lock is held`
	b.mu.Unlock()
}

func suppressed(b *box) {
	b.mu.Lock()
	//lint:ignore lockhold startup barrier; contended only before serving begins
	<-b.ch
	b.mu.Unlock()
}
