// Package fixture exercises the norand analyzer: global math/rand
// functions are findings, injected *rand.Rand methods and the
// constructors are not.
package fixture

import "math/rand"

func globals() {
	_ = rand.Intn(10)                  // want `global math/rand\.Intn uses shared unseeded state`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle uses shared unseeded state`
	_ = rand.Float64()                 // want `global math/rand\.Float64 uses shared unseeded state`
	rand.Seed(42)                      // want `global math/rand\.Seed uses shared unseeded state`
}

func reference() {
	f := rand.Perm // want `global math/rand\.Perm uses shared unseeded state`
	_ = f
}

func injected(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
	rng.Shuffle(4, func(i, j int) {})
	return rng.Intn(10)
}

func suppressed() int {
	//lint:ignore norand demo code seeds globally on purpose
	return rand.Intn(10)
}

func trailing() float64 {
	return rand.Float64() //lint:ignore norand trailing-style suppression
}
