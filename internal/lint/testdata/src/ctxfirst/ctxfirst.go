// Package fixture exercises the ctxfirst analyzer: context.Context
// anywhere but the first parameter is a finding.
package fixture

import "context"

func good(ctx context.Context, n int) { _, _ = ctx, n }

func noCtx(a, b int) { _, _ = a, b }

func bad(n int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_, _ = n, ctx
}

var _ = func(s string, ctx context.Context) { // want `context\.Context must be the first parameter`
	_, _ = s, ctx
}

func suppressed(n int, ctx context.Context) { //lint:ignore ctxfirst callback shape fixed by external API
	_, _ = n, ctx
}
