// Package fixture exercises the floateq analyzer: ==/!= on float
// operands are findings unless a side is an exact constant zero, the
// operands are the same expression (NaN idiom), or both are constants.
package fixture

type score float64

func compare(a, b float64, xs []float64, s score) bool {
	if a == b { // want `== on float operands is not reproducible`
		return true
	}
	if a != b { // want `!= on float operands is not reproducible`
		return false
	}
	_ = xs[0] == xs[1]  // want `== on float operands is not reproducible`
	_ = s == score(a)   // want `== on float operands is not reproducible`
	var f32 float32
	_ = f32 == 2.5 // want `== on float operands is not reproducible`
	return false
}

func allowed(a, b float64, n, m int) bool {
	_ = a == 0   // exact-zero sentinel
	_ = 0.0 != b // exact-zero sentinel, constant on the left
	_ = a != a   // NaN idiom
	const c = 1.5
	_ = 1.5 == c // both constants, folded at compile time
	return n == m
}

func suppressed(a, b float64) bool {
	//lint:ignore floateq bit-exact comparison is the point of this check
	return a == b
}
