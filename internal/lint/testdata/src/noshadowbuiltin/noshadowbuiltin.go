// Package fixture exercises the noshadowbuiltin analyzer: declarations
// reusing predeclared names are findings; struct fields, methods and
// ordinary names are not.
package fixture

func locals(points []int) int {
	cap := len(points) // want `"cap" shadows the predeclared identifier`
	var min int        // want `"min" shadows the predeclared identifier`
	for _, p := range points {
		if p < min {
			min = p
		}
	}
	return cap + min
}

func params(len int) int { // want `"len" shadows the predeclared identifier`
	return len
}

func results() (new int) { // want `"new" shadows the predeclared identifier`
	return 0
}

type max struct { // want `"max" shadows the predeclared identifier`
	// Fields named after builtins are reached by selector and stay
	// harmless.
	cap int
	len int
}

// Methods likewise never capture a builtin reference.
func (m max) copy() int { return m.cap + m.len }

const iota = 3 // want `"iota" shadows the predeclared identifier`

func clean(limit int, xs []string) []string {
	out := make([]string, 0, limit)
	for _, x := range xs {
		if len(out) < cap(out) {
			out = append(out, x)
		}
	}
	return out
}

func suppressed() int {
	//lint:ignore noshadowbuiltin fixture demonstrates sanctioned shadowing
	println := 4
	return println
}
