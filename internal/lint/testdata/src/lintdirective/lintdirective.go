// Package fixture holds a malformed //lint:ignore directive (analyzer
// name but no reason); the harness asserts it is reported.
package fixture

//lint:ignore floateq
func orphan(a, b float64) bool {
	return a < b
}
