// Package linalg (fixture) exercises the hotalloc analyzer: the
// package name is one of the declared hot packages, so loop bodies must
// stay allocation-free.
package linalg

type vec struct {
	data []float64
}

func perIteration(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		buf := make([]float64, 8) // want `make inside a hot-path loop`
		_ = buf
		p := new(vec) // want `new inside a hot-path loop`
		_ = p
		v := &vec{} // want `&composite-literal inside a hot-path loop`
		_ = v
		s := []int{1, 2, 3} // want `slice/map literal inside a hot-path loop`
		_ = s
		m := map[int]int{i: i} // want `slice/map literal inside a hot-path loop`
		_ = m
		f := func() int { return i } // want `closure allocated inside a hot-path loop`
		_ = f
		out = append(out, float64(i)) // want `append to "out" grows in a hot-path loop with no pre-sized make`
	}
	return out
}

func preallocated(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // pre-sized make before the loop: amortized zero allocations
	}
	return out
}

func hoisted(n int) float64 {
	buf := make([]float64, 8)
	v := vec{data: buf}
	sum := 0.0
	for i := 0; i < n; i++ {
		buf[i%8] = float64(i) // reuse, no allocation
		w := vec{data: buf}   // struct value: stack-friendly, not flagged
		sum += w.data[0] + v.data[0]
	}
	return sum
}

func nested(m, n int) int {
	total := 0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row := make([]int, 4) // want `make inside a hot-path loop`
			total += row[0] + i + j
		}
	}
	return total
}

func inClosure(n int) func() []int {
	return func() []int {
		var out []int
		for i := 0; i < n; i++ {
			out = append(out, i) // want `append to "out" grows in a hot-path loop with no pre-sized make`
		}
		return out
	}
}

func rangeLoop(src []float64) float64 {
	acc := 0.0
	for _, v := range src {
		acc += v // arithmetic only: clean
	}
	return acc
}

func suppressed(n int) []byte {
	out := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		//lint:ignore hotalloc cold setup loop, runs once per process
		tmp := make([]byte, 16)
		out = append(out, tmp...) // pre-sized make before the loop: clean
	}
	return out
}
