// Package fixture exercises the errchecklite analyzer: a bare call
// statement that drops an error result is a finding; explicit `_ =`,
// handled errors and never-fails writers are not.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

func fails() error { return nil }

func multi() (int, error) { return 0, nil }

func void() {}

type closer struct{}

func (closer) Close() error { return nil }

func body(f *os.File) {
	fails() // want `error returned by fixture\.fails is silently discarded`
	multi() // want `error returned by fixture\.multi is silently discarded`
	f.Close() // want `error returned by \(os\.File\)\.Close is silently discarded`
	var c closer
	c.Close() // want `error returned by \(fixture\.closer\)\.Close is silently discarded`

	_ = fails() // explicit discard is a visible decision
	if err := fails(); err != nil {
		_ = err
	}
	void()            // no error to drop
	fmt.Println("hi") // fmt printers are allowlisted
	var sb strings.Builder
	sb.WriteString("x") // strings.Builder never returns a non-nil error
}

func suppressed() {
	//lint:ignore errchecklite error intentionally dropped in teardown
	fails()
}
