// Package fixture exercises the exporteddoc analyzer: exported
// functions and types need doc comments starting with their name.
package fixture

// Documented is a properly documented type.
type Documented struct{}

// A Config with a leading article also satisfies the convention.
type Config struct{}

type Undoc struct{} // want `exported Undoc has no doc comment`

// This comment does not start with the declared name.
type Mismatch struct{} // want `doc comment of exported Mismatch should start with "Mismatch"`

// Exported is documented.
func Exported() {}

func Bare() {} // want `exported Bare has no doc comment`

func unexported() {} // unexported declarations need no doc

//lint:ignore exporteddoc internal-only export kept for gob
func Legacy() {}

// Grouped declarations documented collectively satisfy the check.
type (
	First  struct{}
	Second struct{}
)

type (
	Orphan struct{} // want `exported Orphan has no doc comment`
)

// Public is documented; its undocumented method is a finding.
type Public struct{}

func (Public) Method() {} // want `exported Method has no doc comment`

type hidden struct{}

// methods on unexported receivers are unreachable API — exempt even
// though this doc does not start with the name.
func (hidden) Exposed() {}
