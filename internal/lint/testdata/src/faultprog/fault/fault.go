// Package fault (fixture) stands in for the generated site registry:
// its Registry is deliberately stale so the freshness check fires.
package fault

// Registry lists one real site and one that no longer exists.
var Registry = []string{"corpus.shard", "stale.gone"}
