// Package extract (fixture) deliberately registers no fault site: the
// faultsite coverage rule must flag the whole package.
package extract

// Resolve is stage work with no chaos seam.
func Resolve() int { return 1 }
