// Package corpus (fixture) is a covered stage: it registers one fault
// site, satisfying the faultsite coverage rule.
package corpus

import "driftclean/internal/fault"

// Shard exercises the one chaos seam of this fixture stage.
func Shard(inj *fault.Injector) error {
	return inj.Hit("corpus.shard")
}
