// Package fixture is the negative case: near-misses for every analyzer
// that are all legal. Running the full suite over this package must
// produce zero diagnostics.
package fixture

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// Sampler draws from an injected, seeded generator.
type Sampler struct {
	rng *rand.Rand
	mu  sync.Mutex
	n   int
}

// NewSampler seeds a generator for reproducible draws.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// Draw returns the next sample.
func (s *Sampler) Draw() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.rng.Intn(100)
}

// Near reports whether v is an unset sentinel.
func Near(v float64) bool {
	return v == 0 || v != v
}

// Describe renders a sampler state, handling every error.
func Describe(ctx context.Context, s *Sampler) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	fmt.Println("describing")
	return fmt.Sprintf("n=%d", s.Draw()), nil
}
