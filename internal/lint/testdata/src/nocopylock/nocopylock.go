// Package fixture exercises the nocopylock analyzer: lock-bearing
// structs passed, received, returned or assigned by value are findings;
// pointers and fresh composite literals are not.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ g guarded }

type waits struct{ wg sync.WaitGroup }

func byValParam(g guarded) { // want `by-value parameter copies a struct containing sync\.Mutex`
	_ = g
}

func (g guarded) byValRecv() {} // want `by-value receiver copies a struct containing sync\.Mutex`

func (g *guarded) ptrRecv() {} // pointers are fine

func byValResult() guarded // want `by-value result copies a struct containing sync\.Mutex`

func nested(w wrapper) { // want `by-value parameter copies a struct containing sync\.Mutex`
	_ = w
}

func waitGroup(w waits) { // want `by-value parameter copies a struct containing sync\.WaitGroup`
	_ = w
}

func copies() {
	var a guarded
	b := a // want `assignment copies a value containing sync\.Mutex`
	_ = b
	p := &a // taking a pointer is fine
	c := *p // want `assignment copies a value containing sync\.Mutex`
	_ = c
	fresh := guarded{}  // composite literals are fresh values
	slice := []*guarded{&fresh}
	for _, g := range slice { // pointers range fine
		_ = g
	}
	vals := []guarded{}
	for _, g := range vals { // want `range copies a value containing sync\.Mutex per iteration`
		_ = g
	}
}

func suppressed(g guarded) { //lint:ignore nocopylock fixture demonstrates suppression
	_ = g
}

func plain(n int, s string) {} // non-lock params are fine
