package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` loops over maps whose bodies feed an
// order-sensitive sink without the result being sorted afterwards. Map
// iteration order is randomized per run; a map-range that appends to a
// slice which escapes unsorted, or that writes directly to output or a
// hash, makes the program's observable bytes depend on that order —
// the exact class of nondeterminism the serial-vs-parallel fingerprint
// A/B catches at runtime, caught here at compile time instead.
//
// Sinks, per iteration body:
//
//   - self-append `s = append(s, ...)`: a finding unless a call that
//     sorts s (sort.*, slices.Sort*, or a project sortXxx helper taking
//     s) appears later in the same function;
//   - direct output: fmt.Print/Fprint families, io.WriteString, any
//     Write/WriteString/WriteByte/WriteRune method call (writers,
//     hashes, string builders);
//   - channel sends.
//
// Commutative uses — counters, sums, map-to-map copies, min/max — do
// not depend on order and are not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration must not feed order-sensitive sinks (slices, output, hashes) unsorted",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, body := enclosingFunc(n); body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
}

// enclosingFunc narrows the inspection to function bodies so the sort
// search has a scope to run in.
func enclosingFunc(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n, n.Body
	case *ast.FuncLit:
		return n, n.Body
	}
	return nil, nil
}

// checkMapRanges finds map ranges directly inside this function body
// (closures are their own scope and handled by their own visit). The
// seen set dedupes sinks that sit inside nested map ranges: one
// order-dependent statement is one finding, however many map loops
// enclose it.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	seen := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, body, rng, seen)
		return true
	})
}

func checkMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, seen map[ast.Node]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if seen[n] {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			seen[n] = true
			p.Reportf(n.Pos(), "channel send inside map iteration leaks map order; collect and sort first")
		case *ast.CallExpr:
			if name, ok := outputCall(p, n); ok {
				seen[n] = true
				p.Reportf(n.Pos(), "%s inside map iteration leaks map order into the output; collect keys and sort first", name)
			}
		case *ast.AssignStmt:
			seen[n] = true
			checkSelfAppend(p, fnBody, rng, n)
		}
		return true
	})
}

// checkSelfAppend flags `s = append(s, ...)` in a map-range body when s
// is never sorted later in the function.
func checkSelfAppend(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || !isBuiltin(p, call.Fun, "append") || len(call.Args) == 0 {
			continue
		}
		target, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			// Append into a field or index expression: order-dependent and
			// not sortable by a later local call we can see; flag it.
			p.Reportf(as.Pos(), "append into %s inside map iteration depends on map order; collect into a local slice and sort", exprString(lhs))
			continue
		}
		src, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || src.Name != target.Name {
			continue // not the growing self-append shape
		}
		obj := p.Info.Uses[target]
		if obj == nil {
			obj = p.Info.Defs[target]
		}
		if obj == nil {
			continue
		}
		if sortedAfter(p, fnBody, rng.End(), obj) {
			continue
		}
		p.Reportf(as.Pos(), "slice %q is appended to in map-iteration order and never sorted in this function; sort it or iterate sorted keys", target.Name)
	}
}

// sortedAfter reports whether, after pos, the function calls a sorting
// function with the slice (by object identity) among its arguments.
// Recognized sorters: anything in package sort or slices, and local
// helpers whose name starts with "sort" (the kb.sortPairs idiom).
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(p *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			path := fn.Pkg().Path()
			if path == "sort" || path == "slices" {
				return true
			}
		}
		return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// outputCall recognizes calls that immediately externalize bytes: fmt
// print families, io.WriteString, and Write* methods on any receiver
// (io.Writer implementations, hash.Hash, strings.Builder).
func outputCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
				return "fmt." + fn.Name(), true
			}
		case "io":
			if fn.Name() == "WriteString" {
				return "io.WriteString", true
			}
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
			return exprString(sel), true
		}
	}
	return "", false
}

// isBuiltin reports whether fun names the given predeclared function.
func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders a short source-ish form of simple expressions for
// messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
