package lint

import "go/ast"

// This file is the dataflow half of the layer cfg.go provides: small,
// purpose-built path queries over a function's CFG. They are phrased as
// *may* analyses over the over-approximated graph, which makes the
// analyzers' *must* obligations sound: "some path reaches this point
// without a version bump" can only over-report, never miss.

// eventFn classifies AST nodes as events for a path query (a version
// bump, an Unlock call, ...).
type eventFn func(ast.Node) bool

// hasEvent reports whether any node of the block satisfies ev.
func (blk *cfgBlock) hasEvent(ev eventFn) bool {
	found := false
	blk.forEachNode(func(n ast.Node) bool {
		if found {
			return false
		}
		if ev(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// eventsAround reports whether an ev node occurs before (resp. after)
// the target node in the block's straight-line execution order. The
// target itself never counts as an event.
func (blk *cfgBlock) eventsAround(target ast.Node, ev eventFn) (before, after bool) {
	passed := false
	blk.forEachNode(func(n ast.Node) bool {
		if n == target {
			passed = true
			return true
		}
		if ev(n) {
			if passed {
				after = true
			} else {
				before = true
			}
		}
		return true
	})
	return before, after
}

// reachesStartWithout computes, per block, whether some path from the
// function entry to the block's *start* executes no ev node. The entry
// block's start is trivially reachable event-free.
func reachesStartWithout(g *cfg, ev eventFn) []bool {
	clean := make([]bool, len(g.blocks))
	hasEv := make([]bool, len(g.blocks))
	for i, b := range g.blocks {
		hasEv[i] = b.hasEvent(ev)
	}
	clean[g.entry.index] = true
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if hasEv[b.index] {
			continue // every path through b executes the event
		}
		for _, s := range b.succs {
			if !clean[s.index] {
				clean[s.index] = true
				work = append(work, s)
			}
		}
	}
	return clean
}

// reachesExitWithout computes, per block, whether from the block's *end*
// some path to a function exit executes no further ev node. Exit blocks
// (returns, or no successors) qualify trivially.
func reachesExitWithout(g *cfg, ev eventFn) []bool {
	clean := make([]bool, len(g.blocks))
	hasEv := make([]bool, len(g.blocks))
	for i, b := range g.blocks {
		hasEv[i] = b.hasEvent(ev)
	}
	var work []*cfgBlock
	for _, b := range g.exits() {
		clean[b.index] = true
		work = append(work, b)
	}
	// preds index for the backward sweep.
	preds := make([][]*cfgBlock, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			preds[s.index] = append(preds[s.index], b)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		// From a predecessor's end, taking the edge into b executes b's
		// nodes; the path stays event-free only if b itself is clean.
		if hasEv[b.index] {
			continue
		}
		for _, p := range preds[b.index] {
			if !clean[p.index] {
				clean[p.index] = true
				work = append(work, p)
			}
		}
	}
	return clean
}

// walkWhileHeld visits every node reachable from the node `from` in
// block `start` (exclusive) along CFG paths that have not yet executed a
// node satisfying `release`. It is the critical-section walker behind
// lockhold: from = the Lock call, release = the matching Unlock. Cycles
// are cut with a per-block visited set; visiting stops along a path as
// soon as release fires (the releasing node itself is not visited).
func walkWhileHeld(g *cfg, start *cfgBlock, from ast.Node, release eventFn, visit func(ast.Node)) {
	// Tail of the starting block: nodes after `from`.
	passed := false
	released := false
	start.forEachNode(func(n ast.Node) bool {
		if n == from {
			passed = true
			return true
		}
		if !passed || released {
			return true
		}
		if release(n) {
			released = true
			return false
		}
		visit(n)
		return true
	})
	if released {
		return
	}
	seen := make([]bool, len(g.blocks))
	work := []*cfgBlock{}
	push := func(b *cfgBlock) {
		if !seen[b.index] {
			seen[b.index] = true
			work = append(work, b)
		}
	}
	for _, s := range start.succs {
		push(s)
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		rel := false
		b.forEachNode(func(n ast.Node) bool {
			if rel {
				return false
			}
			if release(n) {
				rel = true
				return false
			}
			visit(n)
			return true
		})
		if rel {
			continue
		}
		for _, s := range b.succs {
			push(s)
		}
	}
}
