package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckLite flags call statements that silently discard an error
// result: `f()` as a bare statement where f's results include an error.
// A dropped error in the extraction or persistence path means a
// truncated KB or a half-written results CSV that still "succeeds" —
// the metrics drift and nobody notices. Handle the error or assign it
// to _ explicitly (an explicit `_ =` is a visible, reviewable decision;
// a bare call is not).
//
// This is the "lite" contract: only expression statements are checked
// (not defer/go statements and not errors dropped through _ in
// multi-assign), and writers that cannot fail are allowlisted —
// fmt.Print*/Fprint* (this codebase prints to stdout/stderr and
// strings.Builder only), and the methods of strings.Builder and
// bytes.Buffer, which are documented to always return nil errors.
var ErrcheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "forbid silently discarded error returns in non-test code",
	Run:  runErrcheckLite,
}

func runErrcheckLite(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call]
			if !ok || !returnsError(tv.Type, errType) {
				return true
			}
			name, allowed := calleeName(p, call)
			if allowed {
				return true
			}
			if name == "" {
				name = "call"
			}
			p.Reportf(call.Pos(), "error returned by %s is silently discarded; handle it or assign it to _ explicitly", name)
			return true
		})
	}
}

// returnsError reports whether a call's result type includes error.
func returnsError(t types.Type, errType types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// calleeName resolves the called function's display name and whether it
// is allowlisted as never-fails.
func calleeName(p *Pass, call *ast.CallExpr) (name string, allowed bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	name = fn.Name()
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			obj := named.Obj()
			name = "(" + obj.Pkg().Name() + "." + obj.Name() + ")." + fn.Name()
			// strings.Builder and bytes.Buffer Write* methods are
			// documented to always return a nil error.
			full := obj.Pkg().Path() + "." + obj.Name()
			if full == "strings.Builder" || full == "bytes.Buffer" {
				return name, true
			}
		}
		return name, false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return name, true
	}
	return name, false
}
