package lint

import (
	"go/ast"
	"go/types"
)

// NoCopyLock flags values of lock-bearing types (structs containing
// sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond,
// sync.Pool or sync.Map, directly or transitively) that are passed,
// received, returned or assigned by value. A copied mutex guards
// nothing: the copy and the original serialize independently, which in
// this codebase means two goroutines can both think they own a feature
// cache. Pass *T instead.
//
// Creation is fine — composite literals and calls produce fresh values —
// so only copies of *existing* values are reported: by-value receivers,
// parameters and results in function signatures, and assignments whose
// right-hand side reads an existing variable (identifier, selector,
// index, dereference) or a range element.
var NoCopyLock = &Analyzer{
	Name: "nocopylock",
	Doc:  "forbid by-value passing/copying of structs containing sync primitives",
	Run:  runNoCopyLock,
}

func runNoCopyLock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkLockFields(p, n.Recv, "receiver")
				}
				checkLockFields(p, n.Type.Params, "parameter")
				checkLockFields(p, n.Type.Results, "result")
			case *ast.FuncLit:
				checkLockFields(p, n.Type.Params, "parameter")
				checkLockFields(p, n.Type.Results, "result")
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if !isBlank(n.Lhs[i]) {
							checkLockCopy(p, rhs)
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, rhs := range n.Values {
						if n.Names[i].Name != "_" {
							checkLockCopy(p, rhs)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && !isBlank(n.Value) {
					if t := exprType(p, n.Value); t != nil {
						if name := lockName(t); name != "" {
							p.Reportf(n.Value.Pos(), "range copies a value containing %s per iteration; range over indices or pointers", name)
						}
					}
				}
			}
			return true
		})
	}
}

// checkLockFields reports non-pointer lock-bearing types in a signature
// field list (receiver, params or results).
func checkLockFields(p *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		if name := lockName(tv.Type); name != "" {
			p.Reportf(field.Type.Pos(), "by-value %s copies a struct containing %s; use a pointer", kind, name)
		}
	}
}

// checkLockCopy reports assignments whose RHS copies an existing
// lock-bearing value. Fresh values (composite literals, calls, pointers)
// are not copies.
func checkLockCopy(p *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
	default:
		return
	}
	tv, ok := p.Info.Types[rhs]
	if !ok {
		return
	}
	if name := lockName(tv.Type); name != "" {
		p.Reportf(rhs.Pos(), "assignment copies a value containing %s; use a pointer", name)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exprType resolves an expression's type, falling back to the defined
// object for identifiers introduced by := (range variables live in
// Info.Defs, not Info.Types).
func exprType(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// lockTypeNames are the sync types whose values must never be copied
// after first use.
var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// lockName returns the name of the first sync primitive found inside t
// (by value — pointers break the chain), or "" if t is copy-safe.
func lockName(t types.Type) string {
	return lockNameRec(t, map[types.Type]bool{})
}

func lockNameRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockNameRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockNameRec(u.Elem(), seen)
	}
	return ""
}
