package lint

import (
	"bufio"
	"bytes"
	"go/build/constraint"
	"runtime"
	"strings"
)

// Build-constraint filtering for the loader. The go tool selects one
// file set per platform before compiling; a loader that parses every
// .go file in a directory instead sees both halves of an OS-split pair
// (mmap_unix.go / mmap_other.go) and fails type-checking on the
// redeclarations. fileIncluded applies the same two selection rules the
// toolchain does — //go:build lines and _GOOS/_GOARCH filename
// suffixes — evaluated for the host platform, which is exactly the file
// set the binaries under analysis are built from.

// knownOS and knownArch are the filename-suffix vocabularies; a final
// "_token" only acts as a constraint when the token is one of these
// (mmap_unix.go has no filename constraint: "unix" works only in
// //go:build lines, mirroring the go tool).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS is the set of GOOS values the "unix" build tag matches.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// fileIncluded reports whether the named file with the given source is
// part of the package when built for the host platform.
func fileIncluded(name string, src []byte) bool {
	if !filenameMatchesHost(name) {
		return false
	}
	expr := goBuildConstraint(src)
	if expr == nil {
		return true
	}
	return expr.Eval(hostTag)
}

// filenameMatchesHost applies the *_GOOS.go / *_GOARCH.go /
// *_GOOS_GOARCH.go filename rules against the host platform.
func filenameMatchesHost(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if n := len(parts); n >= 3 && knownOS[parts[n-2]] && knownArch[parts[n-1]] {
		return parts[n-2] == runtime.GOOS && parts[n-1] == runtime.GOARCH
	} else if n >= 2 && knownArch[parts[n-1]] {
		return parts[n-1] == runtime.GOARCH
	} else if n >= 2 && knownOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// goBuildConstraint returns the file's //go:build expression, or nil if
// it has none. Only lines above the package clause count, per the spec;
// legacy // +build lines are ignored (the repo has none, and a file
// carrying only the legacy form simply goes unfiltered).
func goBuildConstraint(src []byte) constraint.Expr {
	sc := bufio.NewScanner(bytes.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			return nil
		}
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return nil
			}
			return expr
		}
	}
	return nil
}

// hostTag is the truth assignment for one build tag on the host
// platform: GOOS, GOARCH, the "unix" umbrella, and go1.N release tags
// (always satisfied — the toolchain compiling this module is at least
// the version go.mod demands). Everything else, including "cgo" and
// custom -tags, is false, matching how the repo's binaries are built.
func hostTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	}
	return strings.HasPrefix(tag, "go1.")
}
