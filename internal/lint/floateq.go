package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Exact float
// comparison is how eigen-solver, kPCA and random-walk code silently
// loses reproducibility: a reassociated sum or an extra FMA flips the
// comparison and the whole bootstrap fixpoint moves. Use the epsilon
// helpers in driftclean/internal/floats instead.
//
// Allowlisted (never reported):
//   - comparisons where either operand is an exact constant zero —
//     "was this ever set / is the denominator empty" sentinel checks are
//     well-defined because 0 is exactly representable and arises only
//     from exact paths;
//   - x != x and x == x on the same expression — the idiomatic NaN test;
//   - comparisons where both operands are compile-time constants.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on float operands; use internal/floats epsilon helpers",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := p.Info.Types[be.X]
			ty, oky := p.Info.Types[be.Y]
			if !okx || !oky || !isFloat(tx.Type) || !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded at compile time
			}
			if isConstZero(tx) || isConstZero(ty) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x is the NaN check
			}
			p.Reportf(be.OpPos, "%s on float operands is not reproducible across compilers/targets; use driftclean/internal/floats.Equal (or an explicit tolerance)", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil || tv.Value.Kind() == constant.Unknown {
		return false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return ok && v == 0
}

// sameExpr reports whether two expressions are syntactically identical
// chains of identifiers and selectors/indexes over identifiers — enough
// to recognize the x != x NaN idiom without a full printer round-trip.
func sameExpr(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(x.X, y.X) && sameExpr(x.Index, y.Index)
	case *ast.ParenExpr:
		return sameExpr(x.X, b)
	}
	if y, ok := b.(*ast.ParenExpr); ok {
		return sameExpr(a, y.X)
	}
	return false
}
