package lint

import (
	"go/ast"
	"go/types"
)

// NoRand flags any use of math/rand's package-level functions (Intn,
// Float64, Shuffle, Perm, Seed, ...). Global rand state is shared,
// lock-contended and — worse for this project — unseedable per
// experiment: two runs interleave differently and the drift metrics stop
// being reproducible. All randomness must flow through an injected,
// seeded *rand.Rand; the constructors rand.New, rand.NewSource and
// rand.NewZipf are therefore allowed.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid global math/rand functions; inject a seeded *rand.Rand",
	Run:  runNoRand,
}

// norandAllowed are the math/rand package-level functions that build
// injectable generators rather than touching the global one.
var norandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runNoRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on *rand.Rand etc. — injected state, fine
			}
			if norandAllowed[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "global %s.%s uses shared unseeded state; thread a seeded *rand.Rand through the call path", path, fn.Name())
			return true
		})
	}
}
