package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"driftclean/internal/lint"
)

// wantRe extracts the expected-diagnostic annotation from a fixture
// line: a trailing comment of the form `// want `+"`regex`"+``.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// loadFixture type-checks one testdata package.
func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.NewLoader().LoadDir(dir, "driftclean/internal/lint/testdata/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return pkg
}

// wants scans the fixture sources for `// want` annotations.
func wants(t *testing.T, dir string) []expectation {
	t.Helper()
	var out []expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			out = append(out, expectation{file: abs, line: i + 1, re: re})
		}
	}
	return out
}

// checkFixture runs one analyzer over its fixture package and asserts
// the diagnostics match the `// want` annotations exactly — same file,
// same line, message matching the regex — with no extras and no misses.
func checkFixture(t *testing.T, analyzerName, fixture string) {
	t.Helper()
	var analyzer *lint.Analyzer
	for _, a := range lint.All() {
		if a.Name == analyzerName {
			analyzer = a
		}
	}
	if analyzer == nil {
		t.Fatalf("no analyzer named %q", analyzerName)
	}
	pkg := loadFixture(t, fixture)
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{analyzer})
	expected := wants(t, filepath.Join("testdata", "src", fixture))

	matched := make([]bool, len(diags))
	for _, want := range expected {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != want.file || d.Pos.Line != want.line {
				continue
			}
			if !want.re.MatchString(d.Message) {
				t.Errorf("%s:%d: diagnostic %q does not match want /%s/", want.file, want.line, d.Message, want.re)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic /%s/, got none", want.file, want.line, want.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, d := range diags {
		if d.Pos.Column <= 0 || d.Pos.Filename == "" {
			t.Errorf("diagnostic without a precise position: %+v", d)
		}
		if d.Analyzer != analyzerName {
			t.Errorf("diagnostic attributed to %q, want %q: %s", d.Analyzer, analyzerName, d)
		}
	}
}

func TestNoRand(t *testing.T)       { checkFixture(t, "norand", "norand") }
func TestFloatEq(t *testing.T)      { checkFixture(t, "floateq", "floateq") }
func TestNoCopyLock(t *testing.T)   { checkFixture(t, "nocopylock", "nocopylock") }
func TestErrcheckLite(t *testing.T) { checkFixture(t, "errchecklite", "errchecklite") }
func TestCtxFirst(t *testing.T)     { checkFixture(t, "ctxfirst", "ctxfirst") }
func TestExportedDoc(t *testing.T)  { checkFixture(t, "exporteddoc", "exporteddoc") }
func TestNoShadowBuiltin(t *testing.T) {
	checkFixture(t, "noshadowbuiltin", "noshadowbuiltin")
}
func TestMapOrder(t *testing.T)    { checkFixture(t, "maporder", "maporder") }
func TestFaultSite(t *testing.T)   { checkFixture(t, "faultsite", "faultsite") }
func TestVersionBump(t *testing.T) { checkFixture(t, "versionbump", "versionbump") }
func TestHotAlloc(t *testing.T)    { checkFixture(t, "hotalloc", "hotalloc") }
func TestLockHold(t *testing.T)    { checkFixture(t, "lockhold", "lockhold") }

// TestFaultSiteProgram exercises the whole-program rules of faultsite —
// per-stage coverage and registry freshness — over a three-package
// fixture program: a covered stage, an uncovered stage, and a stale
// registry package.
func TestFaultSiteProgram(t *testing.T) {
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, dir := range []struct{ sub, imp string }{
		{"corpus", "test/faultprog/internal/corpus"},
		{"extract", "test/faultprog/internal/extract"},
		{"fault", "test/faultprog/fault"},
	} {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", "faultprog", dir.sub))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(abs, dir.imp)
		if err != nil {
			t.Fatalf("loading %s: %v", dir.sub, err)
		}
		pkgs = append(pkgs, pkg)
	}
	var faultsite *lint.Analyzer
	for _, a := range lint.All() {
		if a.Name == "faultsite" {
			faultsite = a
		}
	}
	diags := lint.Run(pkgs, []*lint.Analyzer{faultsite})
	var coverage, stale int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "registers no fault site"):
			coverage++
			if !strings.Contains(d.Message, "internal/extract") {
				t.Errorf("coverage finding names wrong package: %s", d)
			}
		case strings.Contains(d.Message, "registry is stale"):
			stale++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if coverage != 1 || stale != 1 {
		t.Errorf("got %d coverage and %d stale findings, want 1 and 1: %v", coverage, stale, diags)
	}

	// The generator helpers see the same program: names resolve cleanly
	// and render into a deterministic registry file.
	names, err := lint.FaultSiteNames(pkgs)
	if err != nil {
		t.Fatalf("FaultSiteNames: %v", err)
	}
	if len(names) != 1 || names[0] != "corpus.shard" {
		t.Errorf("FaultSiteNames = %v, want [corpus.shard]", names)
	}
	src := string(lint.GenerateSiteRegistry(names))
	if !strings.Contains(src, "Code generated by driftlint -gensites") ||
		!strings.Contains(src, "\"corpus.shard\",") ||
		!strings.Contains(src, "package fault") {
		t.Errorf("generated registry malformed:\n%s", src)
	}
}

// TestFaultSiteNamesRejectsUnresolvable pins the generator's refusal to
// emit a registry while any site is dynamic.
func TestFaultSiteNamesRejectsUnresolvable(t *testing.T) {
	pkg := loadFixture(t, "faultsite")
	if _, err := lint.FaultSiteNames([]*lint.Package{pkg}); err == nil {
		t.Fatal("expected an error for unresolvable fixture sites")
	}
}

// TestCleanPackage runs the full suite over the clean fixture: a file
// full of near-misses that must produce zero findings.
func TestCleanPackage(t *testing.T) {
	pkg := loadFixture(t, "clean")
	diags := lint.Run([]*lint.Package{pkg}, lint.All())
	for _, d := range diags {
		t.Errorf("clean fixture produced a finding: %s", d)
	}
}

// TestMainPackageExempt checks the exporteddoc main-package exemption.
func TestMainPackageExempt(t *testing.T) {
	pkg := loadFixture(t, "exporteddocmain")
	diags := lint.Run([]*lint.Package{pkg}, lint.All())
	for _, d := range diags {
		t.Errorf("main-package fixture produced a finding: %s", d)
	}
}

// TestMalformedIgnore checks that a //lint:ignore directive without a
// reason is itself reported, at the directive's own position.
func TestMalformedIgnore(t *testing.T) {
	pkg := loadFixture(t, "lintdirective")
	diags := lint.Run([]*lint.Package{pkg}, lint.All())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lintdirective" || !strings.Contains(d.Message, "malformed //lint:ignore") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if filepath.Base(d.Pos.Filename) != "lintdirective.go" || d.Pos.Line != 5 {
		t.Errorf("diagnostic at %s:%d, want lintdirective.go:5", d.Pos.Filename, d.Pos.Line)
	}
}

// TestByName covers the -only filter resolution.
func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("empty filter: got %d analyzers, err %v", len(all), err)
	}
	two, err := lint.ByName("floateq, norand")
	if err != nil || len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "norand" {
		t.Fatalf("two-name filter: got %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer name did not error")
	}
}

// TestDiagnosticString pins the canonical rendering format.
func TestDiagnosticString(t *testing.T) {
	pkg := loadFixture(t, "floateq")
	diags := lint.Run([]*lint.Package{pkg}, lint.All())
	if len(diags) == 0 {
		t.Fatal("expected findings in floateq fixture")
	}
	s := diags[0].String()
	want := fmt.Sprintf("%s: %s [%s]", diags[0].Pos, diags[0].Message, diags[0].Analyzer)
	if s != want || !strings.Contains(s, ".go:") || !strings.HasSuffix(s, "]") {
		t.Errorf("String() = %q", s)
	}
}
