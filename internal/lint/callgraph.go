package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// This file approximates the program's call graph over every package
// the shared Loader produced. The approximation is conservative and
// cheap: only statically-resolved calls are recorded (direct function
// calls and method calls whose callee go/types names), interface
// dispatch and function-typed values are left unresolved. That is
// exactly the precision the faultsite analyzer needs — fault sites must
// be compile-time strings reaching the injector through statically
// traceable wrappers, and anything more dynamic is reported rather than
// guessed at.

// callSite is one static call to a known function: where it happens and
// which declared function's body it happens in.
type callSite struct {
	call   *ast.CallExpr
	caller *types.Func // enclosing declared function (literals attribute to it)
	pkg    *Package
}

// callGraph indexes the static calls of a loaded program.
type callGraph struct {
	// callsTo lists every static call site of a callee.
	callsTo map[*types.Func][]callSite
	// declPkg maps a declared function to the package its body lives in.
	declPkg map[*types.Func]*Package
	// declOf maps a declared function to its AST declaration.
	declOf map[*types.Func]*ast.FuncDecl
}

// buildCallGraph indexes every package once. Function literals are
// attributed to their enclosing declared function: a call made inside a
// closure is treated as a call made by the function that created the
// closure, which over-approximates when the closure escapes — the safe
// direction for every query the analyzers ask.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{
		callsTo: map[*types.Func][]callSite{},
		declPkg: map[*types.Func]*Package{},
		declOf:  map[*types.Func]*ast.FuncDecl{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				cg.declPkg[fn] = pkg
				cg.declOf[fn] = fd
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeFunc(pkg.Info, call); callee != nil {
						cg.callsTo[callee] = append(cg.callsTo[callee], callSite{call: call, caller: fn, pkg: pkg})
					}
					return true
				})
			}
		}
	}
	return cg
}

// calleeFunc resolves the *types.Func a call statically targets, or nil
// for dynamic calls (function values, interface methods resolve to the
// interface's method object, which is fine: it simply never matches a
// concrete declaration).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// maxConstDepth bounds the interprocedural constant-propagation walk;
// sites reached through deeper wrapper chains are reported as
// unresolvable rather than chased forever.
const maxConstDepth = 6

// resolveStrings resolves an expression to the exhaustive set of string
// values it can hold at compile time, following constants, literal
// concatenation, and — through the call graph — parameters bound at
// every static call site of the enclosing function. The boolean reports
// whether resolution was exhaustive; on false the value set is
// meaningless and the caller should report the expression.
func (cg *callGraph) resolveStrings(pkg *Package, enclosing *types.Func, e ast.Expr, depth int) ([]string, bool) {
	if depth > maxConstDepth {
		return nil, false
	}
	e = ast.Unparen(e)
	// Constant-folded by the type checker (literals, consts, and any
	// constant expression over them).
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return []string{constant.StringVal(tv.Value)}, true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		ls, ok := cg.resolveStrings(pkg, enclosing, e.X, depth+1)
		if !ok {
			return nil, false
		}
		rs, ok := cg.resolveStrings(pkg, enclosing, e.Y, depth+1)
		if !ok {
			return nil, false
		}
		var out []string
		for _, l := range ls {
			for _, r := range rs {
				out = append(out, l+r)
			}
		}
		return out, true
	case *ast.Ident:
		obj, _ := pkg.Info.Uses[e].(*types.Var)
		if obj == nil || enclosing == nil {
			return nil, false
		}
		idx := paramIndex(enclosing, obj)
		if idx < 0 {
			return nil, false
		}
		sites := cg.callsTo[enclosing]
		if len(sites) == 0 {
			return nil, false // parameter with no visible binding
		}
		var out []string
		for _, site := range sites {
			if idx >= len(site.call.Args) {
				return nil, false // variadic or mismatched call shape
			}
			vs, ok := cg.resolveStrings(site.pkg, site.caller, site.call.Args[idx], depth+1)
			if !ok {
				return nil, false
			}
			out = append(out, vs...)
		}
		return out, true
	}
	return nil, false
}

// paramIndex returns the position of obj among fn's declared parameters,
// or -1.
func paramIndex(fn *types.Func, obj *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return i
		}
	}
	return -1
}
