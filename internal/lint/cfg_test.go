package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFuncBody parses src (a complete function declaration) and
// returns its body.
func parseFuncBody(t testing.TB, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// callEvent matches calls to a bare function of the given name.
func callEvent(name string) eventFn {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// blockCalling finds the block containing a call to name.
func blockCalling(t *testing.T, g *cfg, name string) *cfgBlock {
	t.Helper()
	ev := callEvent(name)
	for _, b := range g.blocks {
		if b.hasEvent(ev) {
			return b
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// TestCFGPathQueries drives the join behavior of branches, loops,
// switches and gotos through the two may-path queries: can the marker
// call be reached from the entry, and can an exit be reached from it,
// without passing an ev() call.
func TestCFGPathQueries(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// cleanFromEntry / cleanToExit: expected results at the block
		// containing the call to "probe".
		cleanFromEntry bool
		cleanToExit    bool
	}{
		{
			name:           "if without else leaves a clean path",
			src:            "func f(b bool) {\n\tif b {\n\t\tev()\n\t}\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "if-else with ev on both arms blocks every path",
			src:            "func f(b bool) {\n\tif b {\n\t\tev()\n\t} else {\n\t\tev()\n\t}\n\tprobe()\n}",
			cleanFromEntry: false,
			cleanToExit:    true,
		},
		{
			name:           "loop body is skippable at zero iterations",
			src:            "func f(n int) {\n\tfor i := 0; i < n; i++ {\n\t\tev()\n\t}\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "ev after probe on the only path",
			src:            "func f() {\n\tprobe()\n\tev()\n}",
			cleanFromEntry: true,
			cleanToExit:    false,
		},
		{
			name:           "early return bypasses the later ev",
			src:            "func f(b bool) {\n\tprobe()\n\tif b {\n\t\treturn\n\t}\n\tev()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "switch default arm stays clean",
			src:            "func f(x int) {\n\tswitch x {\n\tcase 0:\n\t\tev()\n\tdefault:\n\t}\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "fallthrough chains ev into the next arm but the direct path is clean",
			src:            "func f(x int) {\n\tswitch x {\n\tcase 0:\n\t\tev()\n\t\tfallthrough\n\tcase 1:\n\t\tprobe()\n\t}\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "goto skips over the ev",
			src:            "func f() {\n\tgoto L\n\tev()\nL:\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "continue skips ev only within an iteration, loop exit stays clean",
			src:            "func f(xs []int) {\n\tfor _, x := range xs {\n\t\tif x == 0 {\n\t\t\tcontinue\n\t\t}\n\t\tev()\n\t}\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "infinite loop with break before ev",
			src:            "func f(b bool) {\n\tfor {\n\t\tif b {\n\t\t\tbreak\n\t\t}\n\t\tev()\n\t}\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "select arm with ev, other arm clean",
			src:            "func f(a, b chan int) {\n\tselect {\n\tcase <-a:\n\t\tev()\n\tcase <-b:\n\t}\n\tprobe()\n}",
			cleanFromEntry: true,
			cleanToExit:    true,
		},
		{
			name:           "straight line through ev",
			src:            "func f() {\n\tev()\n\tprobe()\n}",
			cleanFromEntry: false,
			cleanToExit:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildCFG(parseFuncBody(t, tc.src))
			ev := callEvent("ev")
			probeBlk := blockCalling(t, g, "probe")
			entryClean := reachesStartWithout(g, ev)
			exitClean := reachesExitWithout(g, ev)
			// Refine with intra-block ordering, the way analyzers consume
			// the queries.
			var probeNode ast.Node
			probeBlk.forEachNode(func(n ast.Node) bool {
				if callEvent("probe")(n) {
					probeNode = n
					return false
				}
				return true
			})
			before, after := probeBlk.eventsAround(probeNode, ev)
			fromEntry := entryClean[probeBlk.index] && !before
			toExit := exitClean[probeBlk.index] && !after
			if fromEntry != tc.cleanFromEntry {
				t.Errorf("clean path from entry = %v, want %v", fromEntry, tc.cleanFromEntry)
			}
			if toExit != tc.cleanToExit {
				t.Errorf("clean path to exit = %v, want %v", toExit, tc.cleanToExit)
			}
		})
	}
}

// TestCFGDefers checks defers are collected in source order, including
// nested ones, and are not modeled as edges.
func TestCFGDefers(t *testing.T) {
	g := buildCFG(parseFuncBody(t, "func f(b bool) {\n\tdefer one()\n\tif b {\n\t\tdefer two()\n\t}\n\tfor i := 0; i < 3; i++ {\n\t\tdefer three()\n\t}\n}"))
	if len(g.defers) != 3 {
		t.Fatalf("collected %d defers, want 3", len(g.defers))
	}
	names := []string{"one", "two", "three"}
	for i, ds := range g.defers {
		id, ok := ds.Call.Fun.(*ast.Ident)
		if !ok || id.Name != names[i] {
			t.Errorf("defer %d is %v, want call to %s", i, ds.Call.Fun, names[i])
		}
	}
}

// TestCFGReturns checks explicit returns mark their blocks and show up
// as exits alongside the fall-off block.
func TestCFGReturns(t *testing.T) {
	g := buildCFG(parseFuncBody(t, "func f(b bool) int {\n\tif b {\n\t\treturn 1\n\t}\n\treturn 2\n}"))
	returns := 0
	for _, b := range g.blocks {
		if b.returns {
			returns++
		}
	}
	if returns != 2 {
		t.Errorf("%d return blocks, want 2", returns)
	}
	if len(g.exits()) < 2 {
		t.Errorf("%d exits, want at least the two returns", len(g.exits()))
	}
}

// TestWalkWhileHeld checks the critical-section walker stops at the
// release on each path and covers held branches.
func TestWalkWhileHeld(t *testing.T) {
	src := "func f(b bool) {\n\tlock()\n\ta()\n\tif b {\n\t\trelease()\n\t\tafterRelease()\n\t} else {\n\t\tstillHeld()\n\t}\n\ttail()\n}"
	g := buildCFG(parseFuncBody(t, src))
	lockBlk := blockCalling(t, g, "lock")
	var lockNode ast.Node
	lockBlk.forEachNode(func(n ast.Node) bool {
		if callEvent("lock")(n) {
			lockNode = n
			return false
		}
		return true
	})
	visited := map[string]bool{}
	walkWhileHeld(g, lockBlk, lockNode, callEvent("release"), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				visited[id.Name] = true
			}
		}
	})
	for _, want := range []string{"a", "stillHeld", "tail"} {
		if !visited[want] {
			t.Errorf("held section did not visit %s; visited %v", want, visited)
		}
	}
	if visited["afterRelease"] {
		t.Errorf("walk crossed the release; visited %v", visited)
	}
}

// FuzzCFG feeds synthetic function bodies through the CFG builder and
// checks structural invariants: indexes are consistent, edges stay in
// range, the entry is always present, and the dataflow queries return
// one verdict per block without panicking.
func FuzzCFG(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"if a {\n\tb()\n} else if c {\n\td()\n}",
		"for i := 0; i < 10; i++ {\n\tif i == 3 {\n\t\tcontinue\n\t}\n\tif i == 5 {\n\t\tbreak\n\t}\n}",
		"for k, v := range m {\n\t_ = k\n\t_ = v\n}",
		"switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}",
		"select {\ncase <-ch:\n\ta()\ndefault:\n}",
		"L:\n\tfor {\n\t\tfor {\n\t\t\tbreak L\n\t\t}\n\t}",
		"goto Done\nDone:\n\treturn",
		"defer f()\ndefer g()\nreturn",
		"switch v := x.(type) {\ncase int:\n\t_ = v\ncase string:\n}",
		"f := func() {\n\tfor {\n\t}\n}\nf()",
		"for {\n\tselect {\n\tcase <-a:\n\t\treturn\n\tcase b <- 1:\n\t}\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f(a, c bool, x any, i int, m map[int]int, ch, b chan int) {\n" + body + "\n}"
		file, err := parser.ParseFile(token.NewFileSet(), "fuzz.go", src, 0)
		if err != nil {
			t.Skip()
		}
		var fn *ast.FuncDecl
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn = fd
				break
			}
		}
		if fn == nil || fn.Body == nil {
			t.Skip()
		}
		g := buildCFG(fn.Body)
		if g.entry == nil || len(g.blocks) == 0 {
			t.Fatal("cfg has no entry")
		}
		for i, blk := range g.blocks {
			if blk.index != i {
				t.Fatalf("block %d has index %d", i, blk.index)
			}
			for _, s := range blk.succs {
				if s.index < 0 || s.index >= len(g.blocks) || g.blocks[s.index] != s {
					t.Fatalf("block %d has an out-of-graph successor", i)
				}
			}
		}
		never := func(ast.Node) bool { return false }
		always := func(n ast.Node) bool { _, ok := n.(*ast.CallExpr); return ok }
		for _, ev := range []eventFn{never, always} {
			if got := reachesStartWithout(g, ev); len(got) != len(g.blocks) {
				t.Fatalf("forward query returned %d results for %d blocks", len(got), len(g.blocks))
			}
			if got := reachesExitWithout(g, ev); len(got) != len(g.blocks) {
				t.Fatalf("backward query returned %d results for %d blocks", len(got), len(g.blocks))
			}
		}
		if !reachesStartWithout(g, never)[g.entry.index] {
			t.Fatal("entry must be reachable event-free from itself")
		}
		// The walker must terminate and stay within the graph.
		count := 0
		walkWhileHeld(g, g.entry, nil, never, func(ast.Node) { count++ })
		_ = count
	})
}
