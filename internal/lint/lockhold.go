package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHold walks each critical section — the CFG region between a
// sync mutex Lock/RLock and the matching Unlock/RUnlock on the same
// lock expression — and reports blocking operations inside it:
//
//   - channel sends and receives (except comm operations of a select
//     that has a default clause, which never block);
//   - sync.WaitGroup.Wait and time.Sleep;
//   - I/O that can stall indefinitely: net and net/http calls,
//     io.Copy/ReadAll/ReadFull, os file opens/reads/writes.
//
// Blocking while holding a lock turns a slow peer into a pile-up: in
// serve, a stalled reload or singleflight wait under the state mutex
// would freeze every endpoint at once. The existing code is careful to
// release before waiting (singleflight waits on the WaitGroup after
// Unlock, the rank cache receives from the ready channel after
// Unlock); this analyzer keeps it that way.
//
// Scope and approximations: matching is intra-procedural and by lock
// expression path (c.mu, s.state.mu) — calls that block transitively
// are not seen, and a `defer mu.Unlock()` holds the lock to every
// exit, so the walk covers the whole rest of the function, which is
// exactly the defer's runtime behavior. sync.Cond.Wait releases the
// associated locker while parked and is deliberately not flagged.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation on any path between a mutex Lock and its Unlock",
	Run:  runLockHold,
}

func runLockHold(p *Pass) {
	for _, f := range p.Files {
		funcBodies(f, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			checkLockSections(p, body)
		})
	}
}

// lockCall is one acquisition site in a function body.
type lockCall struct {
	call *ast.CallExpr
	path string // rendered lock expression, e.g. "c.mu"
	name string // "Lock" or "RLock"
}

func checkLockSections(p *Pass, body *ast.BlockStmt) {
	locks := findLockCalls(p, body)
	if len(locks) == 0 {
		return
	}
	g := buildCFG(body)
	exempt := nonBlockingCommOps(body)
	deferred := deferredCalls(body)
	for _, lk := range locks {
		release := lk.releaseEvent(p, deferred)
		start := blockContaining(g, lk.call)
		if start == nil {
			continue // lock taken in a defer: held during unwinding only
		}
		reported := map[ast.Node]bool{}
		walkWhileHeld(g, start, lk.call, release, func(n ast.Node) {
			desc, blocking := blockingOp(p, n, exempt)
			if blocking && !reported[n] {
				reported[n] = true
				p.Reportf(n.Pos(), "%s while %s.%s is held (acquired at %s); release the lock before blocking", desc, lk.path, lk.name, p.Fset.Position(lk.call.Pos()))
			}
		})
	}
}

// findLockCalls collects the sync Lock/RLock calls directly in this
// function body (not inside nested function literals).
func findLockCalls(p *Pass, body *ast.BlockStmt) []lockCall {
	var out []lockCall
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, fn := syncMethod(p, call)
		if fn == nil {
			return true
		}
		if fn.Name() == "Lock" || fn.Name() == "RLock" {
			out = append(out, lockCall{call: call, path: exprString(sel.X), name: fn.Name()})
		}
		return true
	})
	return out
}

// releaseEvent matches the unlock paired with this acquisition: same
// lock expression path, Unlock for Lock and RUnlock for RLock. A
// `defer mu.Unlock()` is NOT a release at its registration point — it
// runs at function exit, so the lock stays held for the rest of the
// walk, which is exactly the defer's runtime behavior.
func (lk lockCall) releaseEvent(p *Pass, deferred map[ast.Node]bool) eventFn {
	want := "Unlock"
	if lk.name == "RLock" {
		want = "RUnlock"
	}
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[n] {
			return false
		}
		sel, fn := syncMethod(p, call)
		return fn != nil && fn.Name() == want && exprString(sel.X) == lk.path
	}
}

// deferredCalls collects the call expressions registered by defer
// statements in this body (outside nested function literals).
func deferredCalls(body *ast.BlockStmt) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ds, ok := n.(*ast.DeferStmt); ok {
			out[ds.Call] = true
		}
		return true
	})
	return out
}

// syncMethod resolves a call to a method declared in package sync and
// returns its selector and func object, or nils.
func syncMethod(p *Pass, call *ast.CallExpr) (*ast.SelectorExpr, *types.Func) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, nil
	}
	return sel, fn
}

// blockContaining locates the CFG block whose node list contains the
// call (by node identity). Calls inside defer statements return nil —
// they run at unwinding, outside the section the Lock starts.
func blockContaining(g *cfg, call *ast.CallExpr) *cfgBlock {
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue
			}
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if _, isLit := x.(*ast.FuncLit); isLit {
					return false
				}
				if x == call {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

// nonBlockingCommOps collects every node inside the comm clauses of
// selects that carry a default: those sends and receives never block.
func nonBlockingCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	exempt := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cc := range sel.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cc := range sel.Body.List {
			comm := cc.(*ast.CommClause).Comm
			if comm == nil {
				continue
			}
			ast.Inspect(comm, func(x ast.Node) bool {
				if x != nil {
					exempt[x] = true
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// blockingFuncs maps "pkgpath.Func" names of package-level functions
// that can block indefinitely.
var blockingFuncs = map[string]bool{
	"time.Sleep":   true,
	"io.Copy":      true,
	"io.CopyN":     true,
	"io.ReadAll":   true,
	"io.ReadFull":  true,
	"os.Open":      true,
	"os.OpenFile":  true,
	"os.Create":    true,
	"os.ReadFile":  true,
	"os.WriteFile": true,
	"os.ReadDir":   true,
}

// blockingFileMethods are *os.File methods that hit the disk.
var blockingFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Sync": true, "ReadFrom": true, "WriteTo": true,
}

// blockingOp classifies a node as a potentially indefinitely-blocking
// operation, returning a short description for the diagnostic.
func blockingOp(p *Pass, n ast.Node, exempt map[ast.Node]bool) (string, bool) {
	if exempt[n] {
		return "", false
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.CallExpr:
		sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		pkgPath := fn.Pkg().Path()
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			switch {
			case pkgPath == "sync" && fn.Name() == "Wait" && recvNamed(sig) == "WaitGroup":
				return "sync.WaitGroup.Wait", true
			case pkgPath == "os" && recvNamed(sig) == "File" && blockingFileMethods[fn.Name()]:
				return "os.File." + fn.Name(), true
			case pkgPath == "net" || pkgPath == "net/http" || strings.HasPrefix(pkgPath, "net/"):
				return pkgPath + " call", true
			}
			return "", false
		}
		if blockingFuncs[pkgPath+"."+fn.Name()] {
			return pkgPath + "." + fn.Name(), true
		}
		if pkgPath == "net" || pkgPath == "net/http" || strings.HasPrefix(pkgPath, "net/") {
			return pkgPath + "." + fn.Name(), true
		}
	}
	return "", false
}

// recvNamed returns the name of a method receiver's named type.
func recvNamed(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
