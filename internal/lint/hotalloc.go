package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the flat-kernel discipline of the numeric hot path
// (DESIGN.md §7): the linalg/kpca/rank/feature packages were rewritten
// around preallocated flat buffers precisely so the per-round working
// set stays allocation-free, and the benchmark fingerprint A/B only
// stays meaningful if that property holds. The analyzer flags heap
// allocations syntactically inside loop bodies of those packages:
//
//   - make(...) and new(...) calls;
//   - pointer-producing composite literals (&T{...}) and slice/map
//     composite literals;
//   - function literals (closures capture by reference and allocate);
//   - growing self-appends `s = append(s, ...)` whose slice has no
//     visible capacity-sized make (make(T, n, c)) before the loop —
//     append into a pre-sized buffer amortizes to zero allocations,
//     append into a bare slice reallocates as it grows.
//
// The check is syntactic per loop nest (a node inside two nested loops
// reports once) and does not cross closure boundaries: a closure's own
// loops are analyzed when the literal's body is visited.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no heap allocations inside loop bodies of the hot packages (linalg, kpca, rank, feature)",
	Run:  runHotAlloc,
}

// hotPackages are the package names whose loops carry the
// allocation-free obligation.
var hotPackages = map[string]bool{
	"linalg":  true,
	"kpca":    true,
	"rank":    true,
	"feature": true,
}

func runHotAlloc(p *Pass) {
	if !hotPackages[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		funcBodies(f, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			seen := map[ast.Node]bool{}
			forEachLoopBody(body, func(loop ast.Stmt, loopBody *ast.BlockStmt) {
				checkLoopAllocs(p, body, loop, loopBody, seen)
			})
		})
	}
}

// forEachLoopBody yields every for/range statement directly inside this
// function body, including loops nested in other loops, but not loops
// inside function literals (their enclosing body is visited separately).
func forEachLoopBody(body *ast.BlockStmt, fn func(loop ast.Stmt, loopBody *ast.BlockStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			fn(n, n.Body)
		case *ast.RangeStmt:
			fn(n, n.Body)
		}
		return true
	})
}

// checkLoopAllocs reports the allocation sites inside one loop body.
// seen dedupes across nested loops within the same function.
func checkLoopAllocs(p *Pass, fnBody *ast.BlockStmt, loop ast.Stmt, loopBody *ast.BlockStmt, seen map[ast.Node]bool) {
	ast.Inspect(loopBody, func(n ast.Node) bool {
		if seen[n] {
			// Already reported by an inner loop visit; still recurse so
			// unseen siblings inside are found.
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			seen[n] = true
			p.Reportf(n.Pos(), "closure allocated inside a hot-path loop; hoist the function value out of the loop")
			return false
		case *ast.CallExpr:
			if isBuiltin(p, n.Fun, "make") {
				seen[n] = true
				p.Reportf(n.Pos(), "make inside a hot-path loop allocates every iteration; hoist the buffer and reuse it")
			} else if isBuiltin(p, n.Fun, "new") {
				seen[n] = true
				p.Reportf(n.Pos(), "new inside a hot-path loop allocates every iteration; hoist the value out of the loop")
			}
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				seen[n] = true
				seen[lit] = true // don't re-report the literal itself
				p.Reportf(n.Pos(), "&composite-literal inside a hot-path loop escapes to the heap every iteration; hoist or reuse it")
			}
		case *ast.CompositeLit:
			if allocatingLiteral(p, n) {
				seen[n] = true
				p.Reportf(n.Pos(), "slice/map literal inside a hot-path loop allocates every iteration; hoist it out of the loop")
			}
		case *ast.AssignStmt:
			checkHotAppend(p, fnBody, loop, n, seen)
		}
		return true
	})
}

// allocatingLiteral reports whether a composite literal's type makes it
// a guaranteed heap/backing-array allocation: slices and maps. Struct
// and array values can live on the stack and are not flagged.
func allocatingLiteral(p *Pass, lit *ast.CompositeLit) bool {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// checkHotAppend flags growing self-appends in a hot loop when the
// target slice has no capacity-sized make before the loop.
func checkHotAppend(p *Pass, fnBody *ast.BlockStmt, loop ast.Stmt, as *ast.AssignStmt, seen map[ast.Node]bool) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || seen[call] || !isBuiltin(p, call.Fun, "append") || len(call.Args) < 2 {
			continue
		}
		target, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		src, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || src.Name != target.Name {
			continue
		}
		obj := p.Info.Uses[target]
		if obj == nil {
			obj = p.Info.Defs[target]
		}
		if obj == nil || cappedMakeBefore(p, fnBody, loop.Pos(), obj) {
			continue
		}
		seen[call] = true
		p.Reportf(as.Pos(), "append to %q grows in a hot-path loop with no pre-sized make before the loop; preallocate with make(..., 0, n)", target.Name)
	}
}

// cappedMakeBefore reports whether obj is assigned a make with an
// explicit capacity (make(T, len, cap)) before pos in the function.
func cappedMakeBefore(p *Pass, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if p.Info.Uses[id] != obj && p.Info.Defs[id] != obj {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if ok && isBuiltin(p, call.Fun, "make") && len(call.Args) >= 3 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
