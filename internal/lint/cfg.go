package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of driftlint's dataflow layer: a
// lightweight intra-procedural CFG built from a function body's AST,
// pure go/ast with no dependency beyond the standard library. The new
// whole-program analyzers (versionbump, lockhold, maporder, hotalloc)
// phrase their invariants as path properties — "every mutating path
// bumps the version", "no blocking op between Lock and Unlock" — and
// answer them by walking these blocks instead of guessing from syntax.
//
// The model is deliberately simple and conservative:
//
//   - Blocks are maximal straight-line statement runs; edges are the
//     possible successors. Both arms of every branch are assumed
//     reachable (no constant folding), so path queries over-approximate
//     the real executions — sound for "on all paths" obligations.
//   - panic(...) and calls to the fault injector's Check/Hit are NOT
//     treated as terminators: an analyzer asking "does every path reach
//     X" must not be satisfied by a path that dies in a panic.
//     Explicit `return` and terminating keywords end blocks.
//   - Deferred calls are collected per function into cfg.defers rather
//     than modeled as edges; analyzers that care (lockhold's
//     defer mu.Unlock()) look there.
//   - goto is resolved to its label when the label exists; break and
//     continue honor labels and loop/switch nesting.

// cfgBlock is one straight-line run of statements with its successor
// edges. index is the block's position in cfg.blocks (stable, used as a
// dataflow bitset key).
type cfgBlock struct {
	index int
	// nodes are the statements and (for branches) controlling
	// expressions executed in this block, in order.
	nodes []ast.Node
	succs []*cfgBlock
	// returns marks a block ending in an explicit return statement.
	returns bool
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// defers lists every defer statement in the body, in source order,
	// including those nested in branches and loops.
	defers []*ast.DeferStmt
}

// exits returns the blocks control can leave the function from: blocks
// with an explicit return and blocks that fall off the end (no
// successors). Unreachable blocks with no successors are included — the
// over-approximation analyzers want.
func (g *cfg) exits() []*cfgBlock {
	var out []*cfgBlock
	for _, b := range g.blocks {
		if b.returns || len(b.succs) == 0 {
			out = append(out, b)
		}
	}
	return out
}

// cfgBuilder carries the loop/label context while translating an AST
// body into blocks.
type cfgBuilder struct {
	g *cfg
	// cur is the block statements are currently appended to; nil after a
	// terminator until the next statement starts a fresh block.
	cur *cfgBlock

	// breakTo / continueTo map the innermost enclosing loop or switch to
	// its exit and post blocks; the slices are stacks.
	breakTo    []*cfgBlock
	continueTo []*cfgBlock
	// labels maps label names to the blocks their statements start in
	// (for goto) and to the break/continue targets of labeled loops.
	labelBlocks   map[string]*cfgBlock
	labelBreak    map[string]*cfgBlock
	labelContinue map[string]*cfgBlock
	// gotos records unresolved forward gotos: the block the goto ends
	// and the label it targets.
	gotos []pendingGoto
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG translates a function body into a cfg. A nil body (external
// declaration) yields a single empty entry block.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		g:             &cfg{},
		labelBlocks:   map[string]*cfgBlock{},
		labelBreak:    map[string]*cfgBlock{},
		labelContinue: map[string]*cfgBlock{},
	}
	entry := b.newBlock()
	b.g.entry = entry
	b.cur = entry
	if body != nil {
		b.stmts(body.List)
	}
	for _, pg := range b.gotos {
		if target, ok := b.labelBlocks[pg.label]; ok {
			b.edge(pg.from, target)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge adds from→to, deduplicating.
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// startBlock ensures statements have a block to land in after a
// terminator made cur nil (the new block is unreachable unless a label
// or goto links it).
func (b *cfgBuilder) startBlock() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		cur := b.startBlock()
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		after := b.newBlock()
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cur, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.loop(s, "", s.Init, s.Cond, s.Post, s.Body)

	case *ast.RangeStmt:
		b.rangeLoop(s, "")

	case *ast.LabeledStmt:
		// The labeled statement starts a fresh block so gotos can target it.
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.labelBlocks[s.Label.Name] = head
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.loop(inner, s.Label.Name, inner.Init, inner.Cond, inner.Post, inner.Body)
		case *ast.RangeStmt:
			b.rangeLoop(inner, s.Label.Name)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Labeled switch/select: break <label> exits it. Model the break
			// target, then build the statement normally.
			after := b.newBlock()
			b.labelBreak[s.Label.Name] = after
			b.stmt(inner)
			b.edge(b.cur, after)
			b.cur = after
		default:
			b.stmt(inner)
		}

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body, nil)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Body, s.Assign)

	case *ast.SelectStmt:
		// The select itself contributes no nodes: each arm's comm
		// statement lands in that arm's block, keeping paths separate.
		cur := b.startBlock()
		after := b.newBlock()
		b.breakTo = append(b.breakTo, after)
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			arm := b.newBlock()
			b.edge(cur, arm)
			if comm.Comm != nil {
				arm.nodes = append(arm.nodes, comm.Comm)
			}
			b.cur = arm
			b.stmts(comm.Body)
			b.edge(b.cur, after)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		if len(s.Body.List) == 0 {
			b.edge(cur, after)
		}
		b.cur = after

	case *ast.BranchStmt:
		cur := b.startBlock()
		cur.nodes = append(cur.nodes, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.edge(cur, b.labelBreak[s.Label.Name])
			} else if n := len(b.breakTo); n > 0 {
				b.edge(cur, b.breakTo[n-1])
			}
			b.cur = nil
		case token.CONTINUE:
			if s.Label != nil {
				b.edge(cur, b.labelContinue[s.Label.Name])
			} else if n := len(b.continueTo); n > 0 {
				b.edge(cur, b.continueTo[n-1])
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// switchLike wires fallthrough edges; nothing to do here.
		}

	case *ast.ReturnStmt:
		cur := b.startBlock()
		cur.nodes = append(cur.nodes, s)
		cur.returns = true
		b.cur = nil

	case *ast.DeferStmt:
		cur := b.startBlock()
		cur.nodes = append(cur.nodes, s)
		b.g.defers = append(b.g.defers, s)

	default:
		cur := b.startBlock()
		cur.nodes = append(cur.nodes, s)
	}
}

// loop wires a for-loop: head (init+cond) → body → post → head, with
// head → after for loop exit. A nil cond makes `for {}` — the after
// block is then only reachable through break.
func (b *cfgBuilder) loop(_ ast.Stmt, label string, init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt) {
	cur := b.startBlock()
	if init != nil {
		cur.nodes = append(cur.nodes, init)
	}
	head := b.newBlock()
	b.edge(cur, head)
	if cond != nil {
		head.nodes = append(head.nodes, cond)
	}
	after := b.newBlock()
	postB := b.newBlock()
	if post != nil {
		postB.nodes = append(postB.nodes, post)
	}
	b.edge(postB, head)
	if cond != nil {
		b.edge(head, after)
	}
	if label != "" {
		b.labelBreak[label] = after
		b.labelContinue[label] = postB
	}
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, postB)
	bodyB := b.newBlock()
	b.edge(head, bodyB)
	b.cur = bodyB
	b.stmts(body.List)
	b.edge(b.cur, postB)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = after
}

// rangeLoop wires a range loop: head (the range expression, evaluated
// each conceptual iteration for dataflow purposes) → body → head, with
// head → after (a range loop always terminates or breaks).
func (b *cfgBuilder) rangeLoop(s *ast.RangeStmt, label string) {
	cur := b.startBlock()
	head := b.newBlock()
	b.edge(cur, head)
	// Only the range operands live in the head; the body statements get
	// their own blocks (storing the whole RangeStmt would fold the body
	// into the head and break path sensitivity).
	for _, e := range []ast.Expr{s.X, s.Key, s.Value} {
		if e != nil {
			head.nodes = append(head.nodes, e)
		}
	}
	after := b.newBlock()
	b.edge(head, after)
	if label != "" {
		b.labelBreak[label] = after
		b.labelContinue[label] = head
	}
	b.breakTo = append(b.breakTo, after)
	b.continueTo = append(b.continueTo, head)
	bodyB := b.newBlock()
	b.edge(head, bodyB)
	b.cur = bodyB
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = after
}

// switchLike wires switch and type-switch statements: the tag block
// fans out to every case arm (and to after when no default exists);
// fallthrough chains arms in source order.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, assign ast.Stmt) {
	cur := b.startBlock()
	if init != nil {
		cur.nodes = append(cur.nodes, init)
	}
	if tag != nil {
		cur.nodes = append(cur.nodes, tag)
	}
	if assign != nil {
		cur.nodes = append(cur.nodes, assign)
	}
	after := b.newBlock()
	b.breakTo = append(b.breakTo, after)
	hasDefault := false
	arms := make([]*cfgBlock, len(body.List))
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		arm := b.newBlock()
		arms[i] = arm
		b.edge(cur, arm)
		for _, e := range cc.List {
			arm.nodes = append(arm.nodes, e)
		}
	}
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		b.cur = arms[i]
		b.stmts(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(arms) {
			b.edge(b.cur, arms[i+1])
			b.cur = nil
			continue
		}
		b.edge(b.cur, after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	if !hasDefault {
		b.edge(cur, after)
	}
	b.cur = after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// forEachNode visits the block's nodes and, within each, every nested
// expression — but does NOT descend into function literals: a closure's
// body is a different function with its own CFG.
func (blk *cfgBlock) forEachNode(fn func(ast.Node) bool) {
	for _, n := range blk.nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			if x == nil {
				return true
			}
			return fn(x)
		})
	}
}

// funcBodies yields every function body in a file — declarations and
// function literals.
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, nil, n.Body)
			}
		case *ast.FuncLit:
			fn(nil, n, n.Body)
		}
		return true
	})
}
