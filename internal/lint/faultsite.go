package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"regexp"
	"sort"
	"strings"
)

// FaultSite statically audits the fault-injection seams (internal/fault
// call sites) the chaos suite depends on:
//
//   - every site string passed to Injector.Hit / Injector.Check must be
//     resolvable to compile-time constants — through literal
//     concatenation and statically-traceable wrapper parameters (the
//     serve.do → doPinned chain resolves to one site per endpoint);
//   - site names follow the "<pkg>.<operation>" convention, with <pkg>
//     equal to the package the call site lives in;
//   - sites are globally unique across registration call sites;
//   - every declared pipeline-stage and serving package registers at
//     least one site, so a new stage cannot silently ship without a
//     chaos seam;
//   - the generated registry internal/fault/sites_gen.go matches the
//     sites actually found in the source — a stale registry is a
//     finding, and chaos_test.go consumes the registry instead of a
//     hand-maintained list.
var FaultSite = &Analyzer{
	Name:       "faultsite",
	Doc:        "fault sites are constant, uniquely named pkg.op strings; registry and stage coverage stay current",
	RunProgram: runFaultSite,
}

// faultSiteRe is the naming convention: lowercase package prefix, a dot,
// and a lowerCamel operation name.
var faultSiteRe = regexp.MustCompile(`^[a-z][a-z0-9]*\.[a-z][a-zA-Z0-9]*$`)

// requiredFaultPackages are the stage and serving packages that must
// each register at least one fault site whenever they are part of the
// analyzed program (matched by import-path suffix).
var requiredFaultPackages = []string{
	"internal/corpus",
	"internal/extract",
	"internal/clean",
	"internal/core",
	"internal/serve",
}

// foundSite is one resolved site registration.
type foundSite struct {
	site string
	pkg  *Package
	call *ast.CallExpr
}

func runFaultSite(p *ProgramPass) {
	sites, _ := collectFaultSites(p)

	// Global uniqueness across registration call sites.
	byName := map[string][]foundSite{}
	for _, s := range sites {
		byName[s.site] = append(byName[s.site], s)
	}
	for _, name := range sortedKeys(byName) {
		regs := byName[name]
		for i, s := range regs {
			if i > 0 {
				p.Reportf(s.call.Pos(), "fault site %q is also registered at %s; site names must be globally unique", name, p.Fset.Position(regs[0].call.Pos()))
			}
		}
	}

	// Per-package stage coverage.
	for _, req := range requiredFaultPackages {
		for _, pkg := range p.Pkgs {
			if !strings.HasSuffix(pkg.ImportPath, req) {
				continue
			}
			n := 0
			for _, s := range sites {
				if s.pkg == pkg {
					n++
				}
			}
			if n == 0 && len(pkg.Files) > 0 {
				p.Reportf(pkg.Files[0].Package, "package %s registers no fault site; every pipeline stage and serving package needs at least one chaos seam", pkg.ImportPath)
			}
		}
	}

	// Registry freshness: when the real fault package is part of the
	// program, its generated registry must list exactly the found sites.
	checkRegistry(p, sites)
}

// collectFaultSites resolves every Hit/Check call in the program
// (outside the fault package itself) to its constant site names,
// reporting unresolvable or ill-named sites along the way. The returned
// list is sorted by site name, then position.
func collectFaultSites(p *ProgramPass) ([]foundSite, bool) {
	cg := p.CallGraph()
	clean := true
	var sites []foundSite
	for _, pkg := range p.Pkgs {
		if isFaultPackage(pkg) {
			continue // the injector's own internals are not registrations
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// Calls inside function literals are attributed to the
				// enclosing declared function, matching the call graph.
				enclosing, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if !isInjectorCall(pkg.Info, call) || len(call.Args) != 1 {
						return true
					}
					vals, ok := cg.resolveStrings(pkg, enclosing, call.Args[0], 0)
					if !ok || len(vals) == 0 {
						clean = false
						p.Reportf(call.Args[0].Pos(), "fault site is not resolvable to compile-time strings; the chaos registry cannot enumerate it — pass a literal or a statically-bound parameter")
						return true
					}
					for _, v := range vals {
						if !faultSiteRe.MatchString(v) {
							clean = false
							p.Reportf(call.Args[0].Pos(), "fault site %q violates the \"pkg.operation\" naming convention", v)
							continue
						}
						if prefix := v[:strings.IndexByte(v, '.')]; prefix != pkg.Types.Name() {
							clean = false
							p.Reportf(call.Args[0].Pos(), "fault site %q is registered in package %s; the prefix must match the registering package", v, pkg.Types.Name())
							continue
						}
						sites = append(sites, foundSite{site: v, pkg: pkg, call: call})
					}
					return true
				})
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].site != sites[j].site {
			return sites[i].site < sites[j].site
		}
		return sites[i].call.Pos() < sites[j].call.Pos()
	})
	return sites, clean
}

// isInjectorCall reports whether the call is Injector.Hit or
// Injector.Check on the fault package's injector type.
func isInjectorCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || (fn.Name() != "Hit" && fn.Name() != "Check") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Injector" && obj.Pkg() != nil && obj.Pkg().Name() == "fault"
}

// isFaultPackage reports whether pkg is the injector implementation
// itself.
func isFaultPackage(pkg *Package) bool {
	return pkg.Types.Name() == "fault" && path.Base(pkg.ImportPath) == "fault"
}

// checkRegistry compares the generated registry variable in the fault
// package against the collected sites.
func checkRegistry(p *ProgramPass, sites []foundSite) {
	var faultPkg *Package
	for _, pkg := range p.Pkgs {
		if isFaultPackage(pkg) {
			faultPkg = pkg
		}
	}
	if faultPkg == nil {
		return
	}
	reg, pos, ok := registryContents(faultPkg)
	if !ok {
		p.Reportf(faultPkg.Files[0].Package, "package %s has no generated Registry variable; run `go run ./cmd/driftlint -gensites` to create internal/fault/sites_gen.go", faultPkg.ImportPath)
		return
	}
	want := uniqueSiteNames(sites)
	if len(reg) != len(want) {
		p.Reportf(pos, "fault site registry is stale: lists %d sites, source registers %d; run `go run ./cmd/driftlint -gensites`", len(reg), len(want))
		return
	}
	for i := range want {
		if reg[i] != want[i] {
			p.Reportf(pos, "fault site registry is stale: entry %d is %q, source says %q; run `go run ./cmd/driftlint -gensites`", i, reg[i], want[i])
			return
		}
	}
}

// registryContents extracts the string entries of the fault package's
// Registry variable.
func registryContents(pkg *Package) (entries []string, pos token.Pos, ok bool) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, isGen := decl.(*ast.GenDecl)
			if !isGen {
				continue
			}
			for _, spec := range gd.Specs {
				vs, isVal := spec.(*ast.ValueSpec)
				if !isVal {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "Registry" || i >= len(vs.Values) {
						continue
					}
					lit, isLit := vs.Values[i].(*ast.CompositeLit)
					if !isLit {
						continue
					}
					entries = []string{}
					for _, el := range lit.Elts {
						if bl, isStr := el.(*ast.BasicLit); isStr {
							if s, err := unquote(bl.Value); err == nil {
								entries = append(entries, s)
							}
						}
					}
					return entries, name.Pos(), true
				}
			}
		}
	}
	return nil, token.NoPos, false
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		var out string
		if _, err := fmt.Sscanf(s, "%q", &out); err != nil {
			return "", err
		}
		return out, nil
	}
	return "", fmt.Errorf("lint: not a quoted string: %s", s)
}

// uniqueSiteNames dedups and sorts the collected site names.
func uniqueSiteNames(sites []foundSite) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range sites {
		if !seen[s.site] {
			seen[s.site] = true
			out = append(out, s.site)
		}
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string][]foundSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FaultSiteNames runs the fault-site collector over a loaded program and
// returns the sorted unique site names. cmd/driftlint -gensites uses it
// to (re)generate internal/fault/sites_gen.go; the error reports
// unresolvable sites, which must be fixed before generation.
func FaultSiteNames(pkgs []*Package) ([]string, error) {
	var diags []Diagnostic
	var cg *callGraph
	pass := &ProgramPass{
		Analyzer: FaultSite,
		Fset:     pkgs[0].Fset,
		Pkgs:     pkgs,
		cg:       &cg,
		diags:    &diags,
		ign:      newIgnoreIndex(pkgs[0].Fset, nil),
	}
	sites, clean := collectFaultSites(pass)
	if !clean {
		return nil, fmt.Errorf("lint: %d fault site(s) are unresolvable or ill-named; fix them before generating the registry", len(diags))
	}
	return uniqueSiteNames(sites), nil
}

// GenerateSiteRegistry renders sites_gen.go: the fault package's
// generated registry of every fault site in the program, consumed by
// the chaos suite's every-site-visited test.
func GenerateSiteRegistry(sites []string) []byte {
	var buf bytes.Buffer
	buf.WriteString("// Code generated by driftlint -gensites; DO NOT EDIT.\n\n")
	buf.WriteString("package fault\n\n")
	buf.WriteString("// Registry lists every fault site registered in the module's source,\n")
	buf.WriteString("// sorted. The faultsite analyzer keeps it current (a mismatch is a\n")
	buf.WriteString("// finding) and the chaos suite's every-site-visited test consumes it,\n")
	buf.WriteString("// so a new pipeline stage cannot ship without chaos coverage.\n")
	buf.WriteString("var Registry = []string{\n")
	for _, s := range sites {
		fmt.Fprintf(&buf, "\t%q,\n", s)
	}
	buf.WriteString("}\n")
	return buf.Bytes()
}
