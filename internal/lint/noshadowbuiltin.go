package lint

import (
	"go/types"
)

// NoShadowBuiltin flags declarations — variables, constants, parameters,
// named results, type names and function names — that reuse the name of
// a predeclared Go identifier (len, cap, min, max, new, copy, ...).
// Inside the shadowing scope the builtin silently stops being callable,
// and the resulting errors read like nonsense at a distance ("cannot
// call non-function cap"); `cap := cfg.KPCAFitCap` in core.go hid
// exactly that trap. Struct fields and methods are exempt: selector
// syntax keeps them from ever capturing a builtin reference.
var NoShadowBuiltin = &Analyzer{
	Name: "noshadowbuiltin",
	Doc:  "forbid declarations that shadow predeclared identifiers (len, cap, min, max, ...)",
	Run:  runNoShadowBuiltin,
}

func runNoShadowBuiltin(p *Pass) {
	for ident, obj := range p.Info.Defs {
		if obj == nil || ident.Name == "_" {
			continue // the package clause and blank identifiers define nothing
		}
		if types.Universe.Lookup(ident.Name) == nil {
			continue
		}
		switch o := obj.(type) {
		case *types.Var:
			if o.IsField() {
				continue // fields are reached by selector, never bare
			}
		case *types.Func:
			if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue // methods likewise
			}
		case *types.Label:
			continue // labels live in their own namespace
		}
		p.Reportf(ident.Pos(), "%q shadows the predeclared identifier; rename it so the builtin stays callable", ident.Name)
	}
}
