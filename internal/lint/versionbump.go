package lint

import (
	"go/ast"
	"go/types"
)

// VersionBump is the static proof obligation behind the random-walk
// score cache's soundness argument (DESIGN.md §8): cache entries are
// keyed on (KB pointer, kb.Version()), which is only sound if every
// mutation of a version-stamped value is accompanied by a version bump.
// The analyzer applies to any struct declaring an unexported `version`
// field of unsigned-integer type (kb.KB today) and checks:
//
//   - every exported method whose body may write receiver state must
//     execute a version bump (a write to recv.version, directly or via
//     a same-type helper that bumps) on EVERY path that performs such a
//     mutation;
//   - unexported methods carry no obligation of their own: they are
//     reachable only through exported mutators, which the rule covers —
//     a call to an unexported mutating helper counts as a mutation at
//     the call site.
//
// "Writes receiver state" is computed with a small intra-procedural
// taint analysis: the receiver taints every local bound to one of its
// reference-typed projections (`info := kb.pairs[p]`, range values over
// receiver slices, taken addresses), and a write through any tainted
// root — field stores, element stores, deletes, inc/dec — is a
// mutation. Rebinding a tainted local is not. Reference-typed
// *parameters* that alias receiver state are not tracked (no
// interprocedural aliasing); in practice such helpers also touch the
// receiver directly and are caught through that access.
//
// The check itself is a path query over the function's CFG: a mutation
// node M is a finding iff some entry→M prefix executes no bump AND some
// M→exit suffix executes no bump — i.e. a complete execution exists
// that mutates without bumping.
var VersionBump = &Analyzer{
	Name: "versionbump",
	Doc:  "exported mutators of version-stamped types must bump the version on all mutating paths",
	Run:  runVersionBump,
}

func runVersionBump(p *Pass) {
	stamped := versionedTypes(p)
	if len(stamped) == 0 {
		return
	}
	// First pass: classify every method of a versioned type as directly
	// mutating and/or directly bumping.
	kind := map[*types.Func]methodFacts{}
	var methods []versionedMethod
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recvType := namedRecvType(fn)
			if recvType == nil || !stamped[recvType] {
				continue
			}
			recvObj := recvVarObj(p, fd)
			if recvObj == nil {
				continue
			}
			m := versionedMethod{fn: fn, decl: fd, recv: recvObj}
			m.tainted = taintedLocals(p, fd, recvObj)
			facts := methodFacts{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if isVersionWrite(p, n, recvObj) {
					facts.bumps = true
					return true
				}
				if mutatesState(p, n, m.tainted) {
					facts.mutates = true
				}
				return true
			})
			kind[fn] = facts
			methods = append(methods, m)
		}
	}
	// Propagate mutation through same-type method calls to a fixpoint:
	// calling a mutating helper mutates the caller too.
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if kind[m.fn].mutates {
				continue
			}
			found := false
			ast.Inspect(m.decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if callee := sameTypeCallee(p, n, m.recv); callee != nil && kind[callee].mutates {
					found = true
				}
				return true
			})
			if found {
				f := kind[m.fn]
				f.mutates = true
				kind[m.fn] = f
				changed = true
			}
		}
	}
	// Second pass: exported mutators must bump on every mutating path.
	for _, m := range methods {
		if !m.fn.Exported() || !kind[m.fn].mutates {
			continue
		}
		checkBumpPaths(p, m, kind)
	}
}

type methodFacts struct {
	mutates bool // writes receiver state (directly, after propagation)
	bumps   bool // writes recv.version directly
}

type versionedMethod struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	recv    *types.Var
	tainted map[types.Object]bool
}

// checkBumpPaths runs the CFG path query for one exported mutator.
func checkBumpPaths(p *Pass, m versionedMethod, kind map[*types.Func]methodFacts) {
	g := buildCFG(m.decl.Body)
	bump := func(n ast.Node) bool {
		if isVersionWrite(p, n, m.recv) {
			return true
		}
		callee := sameTypeCallee(p, n, m.recv)
		return callee != nil && kind[callee].bumps
	}
	mutation := func(n ast.Node) bool {
		if mutatesState(p, n, m.tainted) {
			return true
		}
		callee := sameTypeCallee(p, n, m.recv)
		return callee != nil && kind[callee].mutates
	}
	entryClean := reachesStartWithout(g, bump)
	exitClean := reachesExitWithout(g, bump)
	for _, blk := range g.blocks {
		reported := false
		blk.forEachNode(func(n ast.Node) bool {
			if reported || !mutation(n) {
				return true
			}
			before, after := blk.eventsAround(n, bump)
			unbumpedBefore := entryClean[blk.index] && !before
			unbumpedAfter := exitClean[blk.index] && !after
			if unbumpedBefore && unbumpedAfter {
				p.Reportf(n.Pos(), "%s mutates receiver state on a path with no %s.version bump; version-keyed caches would go stale", m.fn.Name(), m.recv.Name())
				reported = true // one finding per block is enough
				return false
			}
			return true
		})
	}
}

// taintedLocals computes the receiver's alias set: locals bound to
// reference-typed projections of the receiver, to a fixpoint.
func taintedLocals(p *Pass, fd *ast.FuncDecl, recv *types.Var) map[types.Object]bool {
	tainted := map[types.Object]bool{types.Object(recv): true}
	rooted := func(e ast.Expr) bool { return tainted[rootObj(p, e)] }
	for changed := true; changed; {
		changed = false
		add := func(id *ast.Ident) {
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true // multi-value call results: not tracked
				}
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					rhs := ast.Unparen(n.Rhs[i])
					if isReferenceType(p.Info.Types[rhs].Type) && rooted(rhs) {
						add(id)
					}
				}
			case *ast.RangeStmt:
				if !rooted(n.X) || n.Value == nil {
					return true
				}
				if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
					if isReferenceType(p.Info.Types[n.Value].Type) {
						add(id)
					}
				}
			}
			return true
		})
	}
	return tainted
}

// isReferenceType reports whether writing through a value of this type
// can reach shared state: pointers, maps, slices and channels qualify;
// value copies (structs, strings, numbers) do not.
func isReferenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}

// versionedTypes collects the package's named struct types that declare
// an unexported `version` field of unsigned-integer type.
func versionedTypes(p *Pass) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != "version" || f.Exported() {
				continue
			}
			if basic, ok := f.Type().(*types.Basic); ok && basic.Info()&types.IsUnsigned != 0 {
				out[named] = true
			}
		}
	}
	return out
}

// namedRecvType unwraps a method's receiver to its named type.
func namedRecvType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// recvVarObj returns the receiver variable's object, or nil for an
// anonymous receiver (which can never be mutated through).
func recvVarObj(p *Pass, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := p.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// isVersionWrite reports whether n writes recv.version (assignment or
// increment/decrement).
func isVersionWrite(p *Pass, n ast.Node, recv *types.Var) bool {
	var lhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		lhs = n.Lhs
	case *ast.IncDecStmt:
		lhs = []ast.Expr{n.X}
	default:
		return false
	}
	for _, e := range lhs {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "version" {
			continue
		}
		if rootObj(p, sel.X) == types.Object(recv) {
			return true
		}
	}
	return false
}

// mutatesState reports whether n writes state reachable from the
// receiver: an assignment or inc/dec through a tainted root (but not a
// plain rebinding of a tainted local), or delete() on a tainted map.
// Writes to recv.version itself are bumps, not mutations.
func mutatesState(p *Pass, n ast.Node, tainted map[types.Object]bool) bool {
	stateWrite := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if _, isIdent := e.(*ast.Ident); isIdent {
			return false // rebinding a local, not writing through it
		}
		if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "version" {
			return false // the bump, classified separately
		}
		return tainted[rootObj(p, e)]
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, e := range n.Lhs {
			if stateWrite(e) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return stateWrite(n.X)
	case *ast.CallExpr:
		if isBuiltin(p, n.Fun, "delete") && len(n.Args) > 0 {
			return tainted[rootObj(p, n.Args[0])]
		}
	}
	return false
}

// rootObj unwraps selectors, indexes, stars and address-of down to the
// root identifier's object (nil when the root is not a plain
// identifier).
func rootObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return obj
		default:
			return nil
		}
	}
}

// sameTypeCallee resolves n as a method call recv.m(...) on the same
// receiver object and returns the callee, or nil.
func sameTypeCallee(p *Pass, n ast.Node, recv *types.Var) *types.Func {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if rootObj(p, sel.X) != types.Object(recv) {
		return nil
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	return fn
}
