// Package lint is driftclean's project-native static-analysis suite.
//
// The paper's pipeline is only trustworthy if every run is deterministic
// and every metric reproducible: perror/rerror/pcorr/rcorr depend on
// exact fixpoints, and tiny scoring nondeterminism compounds across
// bootstrapping iterations exactly the way semantic drift does. The
// analyzers in this package enforce the project invariants that guard
// that reproducibility:
//
//	norand      — no global math/rand calls; randomness flows through an
//	              injected seeded *rand.Rand (experiment reproducibility).
//	floateq     — no ==/!= between float operands outside a small
//	              allowlist; use an epsilon helper (guards kPCA, eigen
//	              and rank code against brittle exact comparisons).
//	nocopylock  — no by-value passing or copying of structs that contain
//	              sync.Mutex / sync.WaitGroup and friends.
//	errchecklite— no silently discarded error returns in non-test code.
//	ctxfirst    — context.Context parameters come first.
//	exporteddoc — exported declarations carry doc comments.
//	noshadowbuiltin — no declarations that shadow predeclared
//	              identifiers (len, cap, min, max, new, ...).
//	maporder    — no map iteration feeding an order-sensitive sink
//	              (returned slices, output, hashes) without a sort.
//	faultsite   — fault-injection sites are compile-time strings,
//	              uniquely named "pkg.op", covering every stage, and the
//	              generated registry (internal/fault/sites_gen.go) is
//	              current.
//	versionbump — every exported kb.KB mutator bumps the mutation
//	              version on all paths (rank.Cache soundness).
//	hotalloc    — no heap allocations inside loop bodies of the declared
//	              hot packages (linalg, kpca, rank, feature).
//	lockhold    — no blocking operation on any path between Lock and
//	              Unlock.
//
// The last five are dataflow analyzers: they walk a lightweight
// intra-procedural CFG (cfg.go, dataflow.go) and a conservative static
// call graph (callgraph.go) built over the same Loader results, so the
// invariants PR 3–5 enforce dynamically (fingerprint A/Bs, chaos
// coverage, benchmarks) are also proven at compile time.
//
// Analyzers run over packages loaded and type-checked once by the shared
// Loader. Diagnostics render as "file:line:col: message [analyzer]" and
// can be suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory: an unexplained suppression is itself a finding,
// and so is a stale suppression that no longer suppresses anything when
// the full suite runs (see Options.ReportStale).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Exactly one of Run (per
// package) and RunProgram (once, over every loaded package — for
// whole-program invariants like fault-site uniqueness) is set.
type Analyzer struct {
	// Name is the short identifier used in diagnostics, -only filters and
	// //lint:ignore comments.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole loaded program at once.
	RunProgram func(*ProgramPass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
	ign   *ignoreIndex
}

// Reportf records a diagnostic at pos unless a matching //lint:ignore
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.diags, p.ign, p.Analyzer.Name, p.Fset.Position(pos), format, args...)
}

// ProgramPass carries every loaded package through one whole-program
// analyzer. CallGraph builds the conservative static call graph on
// first use and memoizes it across analyzers.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	cg    **callGraph
	diags *[]Diagnostic
	ign   *ignoreIndex
}

// Reportf records a diagnostic at pos unless a matching //lint:ignore
// comment suppresses it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.diags, p.ign, p.Analyzer.Name, p.Fset.Position(pos), format, args...)
}

// CallGraph returns the program's static call graph, building it once.
func (p *ProgramPass) CallGraph() *callGraph {
	if *p.cg == nil {
		*p.cg = buildCallGraph(p.Pkgs)
	}
	return *p.cg
}

func report(diags *[]Diagnostic, ign *ignoreIndex, analyzer string, position token.Position, format string, args ...any) {
	if ign.suppressed(analyzer, position) {
		return
	}
	*diags = append(*diags, Diagnostic{
		Analyzer: analyzer,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the canonical "file:line:col: message [analyzer]" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All returns every analyzer in the suite, sorted by name.
func All() []*Analyzer {
	as := []*Analyzer{
		NoRand,
		FloatEq,
		NoCopyLock,
		ErrcheckLite,
		CtxFirst,
		ExportedDoc,
		NoShadowBuiltin,
		MapOrder,
		FaultSite,
		VersionBump,
		HotAlloc,
		LockHold,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves a comma-separated analyzer filter ("a,b") against the
// suite, erroring on unknown names. An empty filter selects everything.
func ByName(filter string) ([]*Analyzer, error) {
	all := All()
	if strings.TrimSpace(filter) == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(Names(), ","))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the analyzer names in the suite.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Options tunes a suite run.
type Options struct {
	// ReportStale reports //lint:ignore directives that suppressed
	// nothing during the run as findings. Only set it when every
	// analyzer runs (no -only filter): under a filter, a directive for
	// an unselected analyzer is silent by construction, not stale.
	ReportStale bool
}

// Result is the outcome of a suite run.
type Result struct {
	// Diags are the findings, sorted by position.
	Diags []Diagnostic
	// Ignores counts every well-formed //lint:ignore directive seen in
	// the analyzed sources — the quantity the cmd/driftlint -maxignores
	// ratchet bounds.
	Ignores int
}

// Run applies the analyzers to every loaded package and returns the
// findings sorted by position. Suppressed diagnostics are dropped;
// malformed //lint:ignore comments are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunSuite(pkgs, analyzers, Options{}).Diags
}

// RunSuite is Run with options and suppression accounting.
func RunSuite(pkgs []*Package, analyzers []*Analyzer, opts Options) Result {
	var diags []Diagnostic
	var fset *token.FileSet
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		fset = pkg.Fset
		allFiles = append(allFiles, pkg.Files...)
	}
	ign := newIgnoreIndex(fset, allFiles)
	diags = append(diags, ign.malformed...)

	var program []*Analyzer
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				ign:      ign,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			program = append(program, a)
		}
	}
	if len(program) > 0 && len(pkgs) > 0 {
		var cg *callGraph
		for _, a := range program {
			pass := &ProgramPass{
				Analyzer: a,
				Fset:     pkgs[0].Fset,
				Pkgs:     pkgs,
				cg:       &cg,
				diags:    &diags,
				ign:      ign,
			}
			a.RunProgram(pass)
		}
	}
	if opts.ReportStale {
		for _, d := range ign.directives {
			if d.used == 0 {
				diags = append(diags, Diagnostic{
					Analyzer: "lintdirective",
					Pos:      d.pos,
					Message: fmt.Sprintf("stale //lint:ignore %s: no such finding on this line anymore; delete the suppression",
						strings.Join(d.names, ",")),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return Result{Diags: diags, Ignores: len(ign.directives)}
}

// directive is one well-formed //lint:ignore comment and its usage
// count across a run.
type directive struct {
	pos   token.Position
	names []string
	used  int
}

// ignoreIndex maps (file, line) to the directives suppressing analyzers
// there. A //lint:ignore comment covers its own line and the line
// immediately below it, matching the common trailing-comment and
// line-above styles.
type ignoreIndex struct {
	byLine     map[string]map[int][]*directive
	directives []*directive
	malformed  []Diagnostic
}

func newIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore comment: need \"//lint:ignore <analyzer>[,<analyzer>] <reason>\"",
					})
					continue
				}
				d := &directive{pos: pos, names: strings.Split(fields[0], ",")}
				idx.directives = append(idx.directives, d)
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					idx.byLine[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					lines[line] = append(lines[line], d)
				}
			}
		}
	}
	return idx
}

func (idx *ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range idx.byLine[pos.Filename][pos.Line] {
		for _, name := range d.names {
			if name == analyzer {
				d.used++
				return true
			}
		}
	}
	return false
}
