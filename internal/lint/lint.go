// Package lint is driftclean's project-native static-analysis suite.
//
// The paper's pipeline is only trustworthy if every run is deterministic
// and every metric reproducible: perror/rerror/pcorr/rcorr depend on
// exact fixpoints, and tiny scoring nondeterminism compounds across
// bootstrapping iterations exactly the way semantic drift does. The
// analyzers in this package enforce the project invariants that guard
// that reproducibility:
//
//	norand      — no global math/rand calls; randomness flows through an
//	              injected seeded *rand.Rand (experiment reproducibility).
//	floateq     — no ==/!= between float operands outside a small
//	              allowlist; use an epsilon helper (guards kPCA, eigen
//	              and rank code against brittle exact comparisons).
//	nocopylock  — no by-value passing or copying of structs that contain
//	              sync.Mutex / sync.WaitGroup and friends.
//	errchecklite— no silently discarded error returns in non-test code.
//	ctxfirst    — context.Context parameters come first.
//	exporteddoc — exported declarations carry doc comments.
//	noshadowbuiltin — no declarations that shadow predeclared
//	              identifiers (len, cap, min, max, new, ...).
//
// Analyzers run over packages loaded and type-checked once by the shared
// Loader. Diagnostics render as "file:line:col: message [analyzer]" and
// can be suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory: an unexplained suppression is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics, -only filters and
	// //lint:ignore comments.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
	ign   *ignoreIndex
}

// Reportf records a diagnostic at pos unless a matching //lint:ignore
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ign.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the canonical "file:line:col: message [analyzer]" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All returns every analyzer in the suite, sorted by name.
func All() []*Analyzer {
	as := []*Analyzer{
		NoRand,
		FloatEq,
		NoCopyLock,
		ErrcheckLite,
		CtxFirst,
		ExportedDoc,
		NoShadowBuiltin,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves a comma-separated analyzer filter ("a,b") against the
// suite, erroring on unknown names. An empty filter selects everything.
func ByName(filter string) ([]*Analyzer, error) {
	all := All()
	if strings.TrimSpace(filter) == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(Names(), ","))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the analyzer names in the suite.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Run applies the analyzers to every loaded package and returns the
// findings sorted by position. Suppressed diagnostics are dropped;
// malformed //lint:ignore comments are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ign := newIgnoreIndex(pkg.Fset, pkg.Files)
		diags = append(diags, ign.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				ign:      ign,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreIndex maps (file, line) to the analyzers suppressed there. A
// //lint:ignore comment covers its own line and the line immediately
// below it, matching the common trailing-comment and line-above styles.
type ignoreIndex struct {
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

func newIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore comment: need \"//lint:ignore <analyzer>[,<analyzer>] <reason>\"",
					})
					continue
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx.byLine[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx *ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	return idx.byLine[pos.Filename][pos.Line][analyzer]
}
