package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFirst flags function signatures that take a context.Context
// anywhere but the first parameter. The convention keeps call sites
// scannable and makes cancellation plumbing mechanical when the serving
// layer grows around the pipeline.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	check := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for fi, field := range ft.Params.List {
			if fi > 0 && isContext(p, field.Type) {
				p.Reportf(field.Type.Pos(), "context.Context must be the first parameter")
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Type)
			case *ast.FuncLit:
				check(n.Type)
			}
			return true
		})
	}
}

func isContext(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ExportedDoc flags exported top-level functions and types without a doc
// comment that starts with the declared name — the go doc convention.
// Exported API is the contract between the pipeline's subsystems;
// undocumented exports are how feature semantics (which f-vector slot
// means what) silently diverge between packages.
//
// Exempt: command (package main) sources, since nothing imports them;
// methods on unexported receiver types, which are unreachable outside
// the package; and specs inside a grouped declaration whose group
// carries a doc comment (the group doc describes them collectively, so
// the name-prefix rule is waived).
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "exported functions and types need a doc comment starting with their name",
	Run:  runExportedDoc,
}

func runExportedDoc(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || hasUnexportedRecv(d) {
					continue
				}
				checkDoc(p, d.Doc, d.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if ts.Doc == nil && len(d.Specs) == 1 {
						checkDoc(p, d.Doc, ts.Name)
						continue
					}
					if ts.Doc == nil && d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != "" {
						continue // grouped decl documented collectively
					}
					checkDoc(p, ts.Doc, ts.Name)
				}
			}
		}
	}
}

// hasUnexportedRecv reports whether fd is a method on an unexported
// receiver type.
func hasUnexportedRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}

func checkDoc(p *Pass, doc *ast.CommentGroup, name *ast.Ident) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		p.Reportf(name.Pos(), "exported %s has no doc comment", name.Name)
		return
	}
	first := strings.Fields(doc.Text())
	// Allow a leading article ("A Config ...", "The KB ...") — go doc's
	// own corpus uses both forms.
	w := first[0]
	if (w == "A" || w == "An" || w == "The") && len(first) > 1 {
		w = first[1]
	}
	if w != name.Name {
		p.Reportf(name.Pos(), "doc comment of exported %s should start with %q", name.Name, name.Name)
	}
}
