package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Dir is the package directory (absolute).
	Dir string
	// ImportPath is the package's module-relative import path.
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages once, sharing a file set and a
// source importer (which caches dependency packages) across the run. It
// uses only the standard library: go/parser for syntax and go/types with
// the "source" importer for semantics, so driftlint needs no
// dependencies beyond the toolchain.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a ready Loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// LoadPatterns resolves go-style package patterns against the module
// rooted at root and loads the matching packages. Supported patterns are
// "./..." (or a bare "..."), "./dir/..." subtrees and plain "./dir"
// directories, mirroring what the go tool accepts for local packages.
// Test files (*_test.go) are excluded: the analyzers' contracts target
// non-test code, and external test packages would otherwise need a
// second type-checking universe.
func (l *Loader) LoadPatterns(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}
	selected := map[string]bool{}
	for _, pat := range patterns {
		matched, err := matchPattern(root, dirs, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range matched {
			selected[d] = true
		}
	}
	var order []string
	for d := range selected {
		order = append(order, d)
	}
	sort.Strings(order)

	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range order {
		pkg, err := l.LoadDir(dir, importPathFor(modPath, root, dir))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir (non-test
// files only), returning nil if the directory holds no Go files.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s: %w", path, err)
		}
		// Apply build constraints the way the toolchain does, so an
		// OS-split pair (file_unix.go / file_other.go) contributes only
		// the host platform's half and type-checks cleanly.
		if !fileIncluded(name, src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// moduleDirs lists every directory under root that contains at least one
// non-test Go file, skipping testdata, vendor, hidden and VCS trees.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking module: %w", err)
	}
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}

// matchPattern expands one package pattern to absolute directories.
func matchPattern(root string, dirs []string, pat string) ([]string, error) {
	clean := strings.TrimPrefix(pat, "./")
	if clean == "..." || clean == "" && strings.HasSuffix(pat, "...") {
		return dirs, nil
	}
	if rest, ok := strings.CutSuffix(clean, "/..."); ok {
		base := filepath.Join(root, rest)
		var out []string
		for _, d := range dirs {
			if d == base || strings.HasPrefix(d, base+string(filepath.Separator)) {
				out = append(out, d)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
		return out, nil
	}
	dir := filepath.Join(root, clean)
	for _, d := range dirs {
		if d == dir {
			return []string{dir}, nil
		}
	}
	return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

func importPathFor(modPath, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
