// Package floats provides the epsilon comparisons that the floateq
// analyzer (internal/lint) demands in place of == and != on floats.
// Exact float equality is the quiet killer of reproducible drift
// metrics: one reassociated sum in an eigen iteration and a fixpoint
// comparison flips, so every comparison that means "numerically the
// same" must carry an explicit tolerance.
package floats

import "math"

// Eps is the default absolute/relative tolerance used by Equal. It is
// loose enough to absorb order-of-evaluation noise in the linalg and
// kpca paths yet far tighter than any decision threshold in the
// pipeline.
const Eps = 1e-9

// Equal reports whether a and b agree within Eps, absolutely for small
// magnitudes and relatively for large ones. NaN equals nothing,
// matching IEEE semantics.
func Equal(a, b float64) bool {
	return EqualTol(a, b, Eps)
}

// EqualTol is Equal with an explicit tolerance.
func EqualTol(a, b, tol float64) bool {
	if a == b { //lint:ignore floateq fast path; exact equality is a correct subset of any tolerance
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// IsZero reports whether v is within Eps of zero.
func IsZero(v float64) bool {
	return math.Abs(v) <= Eps
}

// Identical reports exact (bitwise, modulo -0 == 0) float equality. The
// few places where exact comparison is the correct tool — sort
// comparators, whose total order an epsilon would make intransitive,
// and adjacent-duplicate skips over already-sorted values — must say so
// by name instead of with a bare ==, which the floateq analyzer
// (internal/lint) rejects.
func Identical(a, b float64) bool {
	return a == b //lint:ignore floateq Identical is the named escape hatch for intentional exact comparison
}
