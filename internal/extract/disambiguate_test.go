package extract

import (
	"reflect"
	"testing"

	"driftclean/internal/hearst"
	"driftclean/internal/kb"
)

// knownKB builds a KB where each concept holds the given instances as
// iteration-1 knowledge.
func knownKB(known map[string][]string) *kb.KB {
	k := kb.New()
	sid := 0
	for concept, insts := range known {
		for _, e := range insts {
			k.AddExtraction(sid, concept, nil, []string{e}, nil, 1)
			sid++
		}
	}
	return k
}

func TestDisambiguateTable(t *testing.T) {
	cases := []struct {
		name         string
		known        map[string][]string
		parse        hearst.Parse
		wantOK       bool
		wantConcept  string
		wantTriggers []string
	}{
		{
			name:  "clear winner by known-instance count",
			known: map[string][]string{"food": {"pork", "beef"}, "animal": {"dog"}},
			parse: hearst.Parse{
				Candidates: []string{"food", "animal"},
				Instances:  []string{"pork", "beef", "emu"},
			},
			wantOK:       true,
			wantConcept:  "food",
			wantTriggers: []string{"pork", "beef"},
		},
		{
			name:  "exact tie between top two stays pending",
			known: map[string][]string{"food": {"pork"}, "animal": {"dog"}},
			parse: hearst.Parse{
				Candidates: []string{"food", "animal"},
				Instances:  []string{"pork", "dog"},
			},
			wantOK: false,
		},
		{
			name:  "no candidate knows any instance",
			known: map[string][]string{"food": {"pork"}},
			parse: hearst.Parse{
				Candidates: []string{"food", "animal"},
				Instances:  []string{"quartz", "basalt"},
			},
			wantOK: false,
		},
		{
			name:  "single candidate with one known instance wins",
			known: map[string][]string{"food": {"pork"}},
			parse: hearst.Parse{
				Candidates: []string{"food"},
				Instances:  []string{"pork", "granite"},
			},
			wantOK:       true,
			wantConcept:  "food",
			wantTriggers: []string{"pork"},
		},
		{
			name:  "single candidate with nothing known stays pending",
			known: map[string][]string{"food": {"pork"}},
			parse: hearst.Parse{
				Candidates: []string{"animal"},
				Instances:  []string{"granite"},
			},
			wantOK: false,
		},
		{
			name: "three-way: strict winner over tied runners-up",
			known: map[string][]string{
				"food":   {"pork", "beef", "rice"},
				"animal": {"dog"},
				"plant":  {"fern"},
			},
			parse: hearst.Parse{
				Candidates: []string{"food", "animal", "plant"},
				Instances:  []string{"pork", "beef", "dog", "fern"},
			},
			wantOK:       true,
			wantConcept:  "food",
			wantTriggers: []string{"pork", "beef"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := knownKB(tc.known)
			concept, triggers, ok := disambiguate(k, tc.parse)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if concept != tc.wantConcept {
				t.Errorf("concept = %q, want %q", concept, tc.wantConcept)
			}
			if !reflect.DeepEqual(triggers, tc.wantTriggers) {
				t.Errorf("triggers = %v, want %v", triggers, tc.wantTriggers)
			}
		})
	}
}

// TestDisambiguateTieBreaksAcrossIterations reproduces the paper's
// retry behavior end to end: a sentence tied in one iteration resolves
// in a later one after new knowledge breaks the tie.
func TestDisambiguateTieBreaksAcrossIterations(t *testing.T) {
	k := knownKB(map[string][]string{"food": {"pork"}, "animal": {"dog"}})
	p := hearst.Parse{
		SentenceID: 99,
		Candidates: []string{"food", "animal"},
		Instances:  []string{"pork", "dog", "beef"},
	}
	if _, _, ok := disambiguate(k, p); ok {
		t.Fatal("1-1 tie must stay pending in the first pass")
	}

	// New knowledge arrives: beef is food. The same parse now resolves.
	k.AddExtraction(500, "food", nil, []string{"beef"}, nil, 1)
	concept, triggers, ok := disambiguate(k, p)
	if !ok || concept != "food" {
		t.Fatalf("after tie-break: concept=%q ok=%v, want food", concept, ok)
	}
	if !reflect.DeepEqual(triggers, []string{"pork", "beef"}) {
		t.Errorf("triggers = %v, want [pork beef]", triggers)
	}

	// And resolvePending applies it the same way at any worker count.
	for _, workers := range []int{1, 4} {
		resolved, still := resolvePending(k, []hearst.Parse{p}, workers, nil)
		if len(resolved) != 1 || len(still) != 0 {
			t.Fatalf("workers=%d: resolved=%d still=%d", workers, len(resolved), len(still))
		}
		if resolved[0].concept != "food" {
			t.Errorf("workers=%d: concept = %q", workers, resolved[0].concept)
		}
	}
}
