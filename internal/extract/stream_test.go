package extract

import (
	"testing"

	"driftclean/internal/corpus"
)

func TestStreamingBasics(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 12000)
	x := NewExtractor(DefaultConfig())
	// Two batches.
	half := c.Len() / 2
	core1 := x.Add(c.Sentences[:half])
	if core1 == 0 {
		t.Fatal("no core extractions from first batch")
	}
	r1 := x.Extend()
	if r1 == 0 {
		t.Fatal("first Extend resolved nothing")
	}
	pairsAfter1 := x.KB().NumPairs()

	x.Add(c.Sentences[half:])
	x.Extend()
	if x.KB().NumPairs() <= pairsAfter1 {
		t.Error("second batch added no pairs")
	}
	res := x.Result()
	if res.Unresolved != x.Pending() {
		t.Error("Result unresolved mismatch")
	}
}

func TestStreamingLaterBatchResolvesEarlierPending(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 12000)
	// Batch 1: only ambiguous sentences (no knowledge to resolve them).
	var ambiguous, unambiguous []corpus.Sentence
	for _, s := range c.Sentences {
		if c.Truth(s.ID).Kind == corpus.Modifier {
			ambiguous = append(ambiguous, s)
		} else {
			unambiguous = append(unambiguous, s)
		}
	}
	x := NewExtractor(DefaultConfig())
	x.Add(ambiguous[:500])
	if got := x.Extend(); got != 0 {
		t.Fatalf("ambiguous-only batch resolved %d sentences with an empty KB", got)
	}
	pendingBefore := x.Pending()

	// Batch 2: unambiguous knowledge arrives; pending sentences resolve.
	x.Add(unambiguous)
	x.Extend()
	if x.Pending() >= pendingBefore {
		t.Errorf("pending did not shrink: %d -> %d", pendingBefore, x.Pending())
	}
}

func TestStreamingUnambiguousAlwaysCore(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 6000)
	x := NewExtractor(DefaultConfig())
	x.Add(c.Sentences[:3000])
	x.Extend()
	x.Add(c.Sentences[3000:])
	x.Extend()
	k := x.KB()
	// Every extraction without triggers must be recorded at iteration 1.
	for id := 0; id < k.NumExtractions(); id++ {
		ex := k.Extraction(id)
		if len(ex.Triggers) == 0 && ex.Iteration != 1 {
			t.Fatalf("core extraction %d at iteration %d", id, ex.Iteration)
		}
		if len(ex.Triggers) > 0 && ex.Iteration < 2 {
			t.Fatalf("triggered extraction %d at iteration %d", id, ex.Iteration)
		}
	}
}

func TestStreamingMatchesBatchOnCorePairs(t *testing.T) {
	// The core pair set (unambiguous evidence) must be identical between
	// streaming and one-shot extraction; ambiguous resolution order may
	// differ, core evidence may not.
	w := testWorld()
	c := testCorpus(w, 8000)

	batch := Run(c, DefaultConfig())
	x := NewExtractor(DefaultConfig())
	third := c.Len() / 3
	x.Add(c.Sentences[:third])
	x.Extend()
	x.Add(c.Sentences[third : 2*third])
	x.Extend()
	x.Add(c.Sentences[2*third:])
	x.Extend()

	for _, concept := range batch.KB.Concepts() {
		a := batch.KB.InstancesAtIteration(concept, 1)
		b := x.KB().InstancesAtIteration(concept, 1)
		if len(a) != len(b) {
			t.Fatalf("core set of %q differs: %d vs %d", concept, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("core set of %q differs at %d: %s vs %s", concept, i, a[i], b[i])
			}
		}
	}
}
