package extract

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/kb"
)

func TestStreamingBasics(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 12000)
	x := NewExtractor(DefaultConfig())
	// Two batches.
	half := c.Len() / 2
	core1 := x.Add(c.Sentences[:half])
	if core1 == 0 {
		t.Fatal("no core extractions from first batch")
	}
	r1 := x.Extend()
	if r1 == 0 {
		t.Fatal("first Extend resolved nothing")
	}
	pairsAfter1 := x.KB().NumPairs()

	x.Add(c.Sentences[half:])
	x.Extend()
	if x.KB().NumPairs() <= pairsAfter1 {
		t.Error("second batch added no pairs")
	}
	res := x.Result()
	if res.Unresolved != x.Pending() {
		t.Error("Result unresolved mismatch")
	}
}

func TestStreamingLaterBatchResolvesEarlierPending(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 12000)
	// Batch 1: only ambiguous sentences (no knowledge to resolve them).
	var ambiguous, unambiguous []corpus.Sentence
	for _, s := range c.Sentences {
		if c.Truth(s.ID).Kind == corpus.Modifier {
			ambiguous = append(ambiguous, s)
		} else {
			unambiguous = append(unambiguous, s)
		}
	}
	x := NewExtractor(DefaultConfig())
	x.Add(ambiguous[:500])
	if got := x.Extend(); got != 0 {
		t.Fatalf("ambiguous-only batch resolved %d sentences with an empty KB", got)
	}
	pendingBefore := x.Pending()

	// Batch 2: unambiguous knowledge arrives; pending sentences resolve.
	x.Add(unambiguous)
	x.Extend()
	if x.Pending() >= pendingBefore {
		t.Errorf("pending did not shrink: %d -> %d", pendingBefore, x.Pending())
	}
}

func TestStreamingUnambiguousAlwaysCore(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 6000)
	x := NewExtractor(DefaultConfig())
	x.Add(c.Sentences[:3000])
	x.Extend()
	x.Add(c.Sentences[3000:])
	x.Extend()
	k := x.KB()
	// Every extraction without triggers must be recorded at iteration 1.
	for id := 0; id < k.NumExtractions(); id++ {
		ex := k.Extraction(id)
		if len(ex.Triggers) == 0 && ex.Iteration != 1 {
			t.Fatalf("core extraction %d at iteration %d", id, ex.Iteration)
		}
		if len(ex.Triggers) > 0 && ex.Iteration < 2 {
			t.Fatalf("triggered extraction %d at iteration %d", id, ex.Iteration)
		}
	}
}

func TestStreamingMatchesBatchOnCorePairs(t *testing.T) {
	// The core pair set (unambiguous evidence) must be identical between
	// streaming and one-shot extraction; ambiguous resolution order may
	// differ, core evidence may not.
	w := testWorld()
	c := testCorpus(w, 8000)

	batch := Run(c, DefaultConfig())
	x := NewExtractor(DefaultConfig())
	third := c.Len() / 3
	x.Add(c.Sentences[:third])
	x.Extend()
	x.Add(c.Sentences[third : 2*third])
	x.Extend()
	x.Add(c.Sentences[2*third:])
	x.Extend()

	for _, concept := range batch.KB.Concepts() {
		a := batch.KB.InstancesAtIteration(concept, 1)
		b := x.KB().InstancesAtIteration(concept, 1)
		if len(a) != len(b) {
			t.Fatalf("core set of %q differs: %d vs %d", concept, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("core set of %q differs at %d: %s vs %s", concept, i, a[i], b[i])
			}
		}
	}
}

// kbFingerprint digests the full observable KB state — pairs, counts,
// extraction count — plus each extraction's id/iteration, so two KBs
// with equal fingerprints are interchangeable for the pipeline.
func kbFingerprint(t *testing.T, k *kb.KB) string {
	t.Helper()
	h := fnv.New64a()
	for _, p := range k.Pairs() {
		fmt.Fprintf(h, "%s\x00%s\x00%d\x1f", p.Concept, p.Instance, k.Count(p.Concept, p.Instance))
	}
	fmt.Fprintf(h, "|ex=%d", k.NumExtractions())
	for id := 0; id < k.NumExtractions(); id++ {
		ex := k.Extraction(id)
		if ex == nil {
			fmt.Fprintf(h, "|%d:nil", id)
			continue
		}
		fmt.Fprintf(h, "|%d:%s@%d", id, ex.Concept, ex.Iteration)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestStreamReplayMatchesRunAtEveryCheckpoint is the contract Stream
// exists for: after each appended batch, Replay must be bit-identical —
// pairs, counts, extraction iterations, per-iteration stats, unresolved
// accounting — to Run over the concatenation of all batches so far.
func TestStreamReplayMatchesRunAtEveryCheckpoint(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 12000)
	s := NewStream(DefaultConfig())

	bounds := []int{c.Len() / 4, c.Len() / 2, 3 * c.Len() / 4, c.Len()}
	start := 0
	for ck, end := range bounds {
		s.Append(c.Sentences[start:end])
		start = end
		got := s.Replay()
		want := Run(&corpus.Corpus{Sentences: c.Sentences[:end]}, DefaultConfig())

		if gf, wf := kbFingerprint(t, got.KB), kbFingerprint(t, want.KB); gf != wf {
			t.Fatalf("checkpoint %d: replay KB %s != batch KB %s", ck+1, gf, wf)
		}
		if got.Iterations != want.Iterations {
			t.Fatalf("checkpoint %d: iterations %d != %d", ck+1, got.Iterations, want.Iterations)
		}
		if !reflect.DeepEqual(got.PerIteration, want.PerIteration) {
			t.Fatalf("checkpoint %d: per-iteration stats differ:\n%+v\n%+v",
				ck+1, got.PerIteration, want.PerIteration)
		}
		if got.Unparseable != want.Unparseable || got.Unresolved != want.Unresolved {
			t.Fatalf("checkpoint %d: accounting (%d,%d) != (%d,%d)", ck+1,
				got.Unparseable, got.Unresolved, want.Unparseable, want.Unresolved)
		}
	}
}

// TestStreamRewindRestoresExactState: appending a batch, rewinding it
// away, and appending it again must be indistinguishable — in replayed
// KB and in stream accounting — from having appended it once.
func TestStreamRewindRestoresExactState(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 8000)
	half := c.Len() / 2

	s := NewStream(DefaultConfig())
	s.Append(c.Sentences[:half])
	fpOne := kbFingerprint(t, s.Replay().KB)

	mark := s.Mark()
	s.Append(c.Sentences[half:])
	fpBoth := kbFingerprint(t, s.Replay().KB)
	if fpBoth == fpOne {
		t.Fatal("second batch changed nothing; test world too small")
	}

	s.Rewind(mark)
	if s.Sentences() != half {
		t.Fatalf("after rewind Sentences() = %d, want %d", s.Sentences(), half)
	}
	if fp := kbFingerprint(t, s.Replay().KB); fp != fpOne {
		t.Fatalf("after rewind replay %s != pre-batch %s", fp, fpOne)
	}

	s.Append(c.Sentences[half:])
	if fp := kbFingerprint(t, s.Replay().KB); fp != fpBoth {
		t.Fatalf("re-appended replay %s != original %s", fp, fpBoth)
	}
}
