package extract

import (
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/eval"
	"driftclean/internal/world"
)

func testWorld() *world.World {
	cfg := world.DefaultConfig()
	cfg.NumDomains = 4
	cfg.InstancesPerConceptMin = 60
	cfg.InstancesPerConceptMax = 150
	return world.New(cfg)
}

func testCorpus(w *world.World, n int) *corpus.Corpus {
	cfg := corpus.DefaultConfig()
	cfg.NumSentences = n
	return corpus.Generate(w, cfg)
}

func TestRunBasics(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 20000)
	res := Run(c, DefaultConfig())
	if res.KB.NumPairs() == 0 {
		t.Fatal("no pairs extracted")
	}
	if res.Iterations < 2 {
		t.Fatalf("only %d iterations; semantic iterations never fired", res.Iterations)
	}
	if len(res.PerIteration) != res.Iterations {
		t.Fatalf("PerIteration has %d entries for %d iterations", len(res.PerIteration), res.Iterations)
	}
}

func TestPairsGrowAcrossIterations(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 20000)
	res := Run(c, DefaultConfig())
	first := res.PerIteration[0].DistinctPairs
	last := res.PerIteration[len(res.PerIteration)-1].DistinctPairs
	if last <= first {
		t.Fatalf("pairs did not grow: iter1=%d final=%d", first, last)
	}
	for i := 1; i < len(res.PerIteration); i++ {
		if res.PerIteration[i].DistinctPairs < res.PerIteration[i-1].DistinctPairs {
			t.Fatal("distinct pairs must be monotone during extraction")
		}
	}
}

// TestSemanticDriftOccurs is the headline property of the substrate: the
// extraction must reproduce the paper's Fig 5(a) shape — high precision in
// iteration 1, substantially degraded after the semantic iterations.
func TestSemanticDriftOccurs(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 40000)
	res := Run(c, DefaultConfig())
	oracle := eval.NewOracle(w, c)

	corePrecision := precisionAtIteration(oracle, res, 1)
	finalPrecision := oracle.KBPrecision(res.KB, nil)
	t.Logf("core precision %.3f, final precision %.3f, pairs %d -> %d, iterations %d",
		corePrecision, finalPrecision,
		res.PerIteration[0].DistinctPairs, res.KB.NumPairs(), res.Iterations)

	if corePrecision < 0.85 {
		t.Errorf("iteration-1 precision %.3f, want >= 0.85 (paper: >90%%)", corePrecision)
	}
	if finalPrecision > corePrecision-0.2 {
		t.Errorf("final precision %.3f vs core %.3f: drift too weak (paper: drops below 50%%)",
			finalPrecision, corePrecision)
	}
}

// precisionAtIteration computes precision over pairs first seen at or
// before the given iteration.
func precisionAtIteration(o *eval.Oracle, res *Result, iter int) float64 {
	correct, total := 0, 0
	for _, concept := range res.KB.Concepts() {
		for _, e := range res.KB.InstancesAtIteration(concept, iter) {
			total++
			if o.PairCorrect(concept, e) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestTriggersRecorded(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 20000)
	res := Run(c, DefaultConfig())
	triggered := 0
	for id := 0; id < res.KB.NumExtractions(); id++ {
		ex := res.KB.Extraction(id)
		if ex.Iteration == 1 {
			if len(ex.Triggers) != 0 {
				t.Fatal("iteration-1 extraction has triggers")
			}
			continue
		}
		if len(ex.Triggers) == 0 {
			t.Fatal("semantic-iteration extraction without triggers")
		}
		triggered++
		// Triggers must have been extracted instances of the same concept.
		for _, trig := range ex.Triggers {
			if !res.KB.Has(ex.Concept, trig) {
				t.Fatalf("trigger %q not in KB under %q", trig, ex.Concept)
			}
		}
	}
	if triggered == 0 {
		t.Fatal("no triggered extractions at all")
	}
}

func TestDeterministic(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 5000)
	r1 := Run(c, DefaultConfig())
	r2 := Run(c, DefaultConfig())
	if r1.KB.NumPairs() != r2.KB.NumPairs() || r1.Iterations != r2.Iterations {
		t.Fatal("extraction is not deterministic")
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 20000)
	res := Run(c, Config{MaxIterations: 3})
	if res.Iterations > 3 {
		t.Fatalf("ran %d iterations with MaxIterations=3", res.Iterations)
	}
}

func TestUnresolvedAccounting(t *testing.T) {
	w := testWorld()
	c := testCorpus(w, 20000)
	res := Run(c, DefaultConfig())
	resolved := 0
	for _, it := range res.PerIteration {
		resolved += it.NewExtractions
	}
	if resolved+res.Unresolved+res.Unparseable != c.Len() {
		t.Fatalf("accounting mismatch: resolved %d + unresolved %d + unparseable %d != %d sentences",
			resolved, res.Unresolved, res.Unparseable, c.Len())
	}
}
