// Package extract implements the semantic-based iterative bootstrapping
// extractor the paper builds on (Sec 1, "Semantic-based Extraction"; the
// Probase mechanism of Wu et al., SIGMOD 2012).
//
// Iteration 1 extracts only sentences whose Hearst parse has a single
// unambiguous candidate concept — the "core pairs" of Sec 3.2.1. Each
// later iteration revisits the still-ambiguous sentences and resolves a
// sentence when the knowledge learned so far singles out one candidate:
// the candidate concept with strictly the most already-known instances
// among the sentence's candidate instances wins, and those known instances
// are recorded as the extraction's *triggers*. Ties stay pending and are
// retried after more knowledge arrives. The loop runs to fixpoint.
//
// This mechanism is exactly what makes semantic drift possible: when a
// polysemous bridge ("chicken") or an earlier erroneous pair is the only
// known instance in a sentence, the wrong candidate wins and the wrong
// pairs are learned, which lets them trigger further wrong resolutions.
//
// Both hot paths are data-parallel and deterministic: the one-time Hearst
// parse is pure per sentence, and the per-iteration disambiguation scan
// reads a KB frozen at the start of the iteration. Each fans out across
// Config.Parallelism workers writing into sentence-ordered slots, so the
// merged output — and therefore the KB — is byte-identical to a serial
// run regardless of worker count.
package extract

import (
	"driftclean/internal/corpus"
	"driftclean/internal/fault"
	"driftclean/internal/hearst"
	"driftclean/internal/kb"
	"driftclean/internal/par"
)

// Config controls the extraction loop.
type Config struct {
	// MaxIterations bounds the number of semantic iterations (the paper
	// ran ~100; 99.999% of pairs arrived within 10).
	MaxIterations int
	// Parallelism is the worker count for the parse phase and the
	// per-iteration disambiguation scan. 1 forces the serial path; values
	// below 1 use every CPU. The result is identical at any setting.
	Parallelism int
	// Fault, when non-nil, is consulted at the "extract.parse" site once
	// per parsed batch and at "extract.resolve" once per semantic
	// iteration (chaos testing); nil is the production no-op.
	Fault *fault.Injector
}

// DefaultConfig returns the standard extraction configuration.
func DefaultConfig() Config { return Config{MaxIterations: 50} }

// workers resolves the configured parallelism to a worker count.
func (c Config) workers() int { return par.Workers(c.Parallelism) }

// IterStats records the state after one iteration (Fig 5a's x-axis).
type IterStats struct {
	Iteration      int
	NewExtractions int
	DistinctPairs  int
}

// Result is the outcome of an extraction run.
type Result struct {
	KB           *kb.KB
	Iterations   int
	PerIteration []IterStats
	// Unparseable counts sentences the Hearst parser rejected;
	// Unresolved counts ambiguous sentences never disambiguated.
	Unparseable int
	Unresolved  int
}

// parsedSentence is the slot one sentence's parse outcome lands in.
type parsedSentence struct {
	parse hearst.Parse
	ok    bool
}

// parseAll parses every sentence into sentence-ordered slots, fanning
// across the given worker count. hearst.ParseSentence is pure, so any
// schedule produces the same slots.
func parseAll(sentences []corpus.Sentence, workers int, inj *fault.Injector) []parsedSentence {
	inj.Check("extract.parse")
	out := make([]parsedSentence, len(sentences))
	par.For(len(sentences), workers, func(i int) {
		out[i].parse, out[i].ok = hearst.ParseSentence(sentences[i].ID, sentences[i].Text)
	})
	return out
}

// resolution is one disambiguated pending sentence.
type resolution struct {
	parse    hearst.Parse
	concept  string
	triggers []string
}

// resolvePending scans the pending pool against a frozen KB and returns
// the resolutions (in pending order) and the still-ambiguous remainder.
// Each slot depends only on the frozen KB and its own parse, so the scan
// is embarrassingly parallel; collecting into index-ordered slots keeps
// the apply order — and therefore the KB — identical to a serial scan.
func resolvePending(k *kb.KB, pending []hearst.Parse, workers int, inj *fault.Injector) (resolved []resolution, still []hearst.Parse) {
	inj.Check("extract.resolve")
	slots := make([]resolution, len(pending))
	hits := make([]bool, len(pending))
	par.For(len(pending), workers, func(i int) {
		concept, triggers, ok := disambiguate(k, pending[i])
		if !ok {
			return
		}
		slots[i] = resolution{pending[i], concept, triggers}
		hits[i] = true
	})
	for i := range slots {
		if hits[i] {
			resolved = append(resolved, slots[i])
		} else {
			still = append(still, pending[i])
		}
	}
	return resolved, still
}

// Run performs the full iterative extraction over a corpus.
func Run(c *corpus.Corpus, cfg Config) *Result {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = DefaultConfig().MaxIterations
	}
	workers := cfg.workers()
	res := &Result{KB: kb.New()}

	// Parse everything once (parallel), then merge in sentence order.
	parsed := parseAll(c.Sentences, workers, cfg.Fault)
	var pending []hearst.Parse
	newInIter := 0
	for i := range parsed {
		if !parsed[i].ok {
			res.Unparseable++
			continue
		}
		p := parsed[i].parse
		if p.Ambiguous() {
			pending = append(pending, p)
			continue
		}
		// Iteration 1: unambiguous sentences only (core pairs).
		res.KB.AddExtraction(p.SentenceID, p.Candidates[0], p.Candidates, p.Instances, nil, 1)
		newInIter++
	}
	res.Iterations = 1
	res.PerIteration = append(res.PerIteration, IterStats{
		Iteration:      1,
		NewExtractions: newInIter,
		DistinctPairs:  res.KB.NumPairs(),
	})

	// Semantic iterations: resolve pending sentences against a KB frozen
	// at the start of each iteration, then apply all resolutions at once
	// (new knowledge only helps "in the next iteration", Sec 1).
	for iter := 2; iter <= cfg.MaxIterations && len(pending) > 0; iter++ {
		resolved, still := resolvePending(res.KB, pending, workers, cfg.Fault)
		if len(resolved) == 0 {
			break
		}
		for _, r := range resolved {
			res.KB.AddExtraction(r.parse.SentenceID, r.concept, r.parse.Candidates, r.parse.Instances, r.triggers, iter)
		}
		pending = still
		res.Iterations = iter
		res.PerIteration = append(res.PerIteration, IterStats{
			Iteration:      iter,
			NewExtractions: len(resolved),
			DistinctPairs:  res.KB.NumPairs(),
		})
	}
	res.Unresolved = len(pending)
	return res
}

// disambiguate picks the candidate concept with strictly the most known
// instances among the sentence's instances. It returns ok=false when no
// candidate has known instances or when the top two candidates tie.
func disambiguate(k *kb.KB, p hearst.Parse) (concept string, triggers []string, ok bool) {
	bestCount, secondCount := 0, 0
	var best string
	var bestKnown []string
	for _, c := range p.Candidates {
		var known []string
		for _, e := range p.Instances {
			if k.Has(c, e) {
				known = append(known, e)
			}
		}
		switch {
		case len(known) > bestCount:
			secondCount = bestCount
			bestCount = len(known)
			best = c
			bestKnown = known
		case len(known) > secondCount:
			secondCount = len(known)
		}
	}
	if bestCount == 0 || bestCount == secondCount {
		return "", nil, false
	}
	return best, bestKnown, true
}
