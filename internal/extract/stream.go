package extract

import (
	"driftclean/internal/corpus"
	"driftclean/internal/hearst"
	"driftclean/internal/kb"
)

// Extractor is the incremental form of Run: sentences arrive in batches
// (the web is crawled continuously; Probase-style systems extend their
// KB rather than rebuild it), each Extend run resolves what the current
// knowledge allows and keeps the rest pending for later batches.
//
// Unambiguous sentences always enter as iteration-1 (core-quality)
// evidence regardless of when they arrive — "core" means unambiguous
// support, not chronology. Ambiguous sentences resolve at the semantic
// iteration that disambiguates them.
type Extractor struct {
	cfg Config
	kb  *kb.KB

	pending     []hearst.Parse
	iteration   int
	perIter     []IterStats
	unparseable int
}

// NewExtractor creates an empty incremental extractor.
func NewExtractor(cfg Config) *Extractor {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = DefaultConfig().MaxIterations
	}
	return &Extractor{cfg: cfg, kb: kb.New(), iteration: 1}
}

// KB exposes the knowledge base being built.
func (x *Extractor) KB() *kb.KB { return x.kb }

// Pending returns the number of ambiguous sentences awaiting resolution.
func (x *Extractor) Pending() int { return len(x.pending) }

// PerIteration returns the accumulated iteration statistics.
func (x *Extractor) PerIteration() []IterStats { return x.perIter }

// Add parses and ingests a batch of sentences: unambiguous parses are
// extracted immediately as core evidence; ambiguous parses join the
// pending pool. It returns the number of core extractions made. The
// parse fans out across Config.Parallelism workers; the merge runs in
// sentence order, so the KB is independent of the worker count.
func (x *Extractor) Add(sentences []corpus.Sentence) int {
	core := 0
	parsed := parseAll(sentences, x.cfg.workers(), x.cfg.Fault)
	for i := range parsed {
		if !parsed[i].ok {
			x.unparseable++
			continue
		}
		p := parsed[i].parse
		if p.Ambiguous() {
			x.pending = append(x.pending, p)
			continue
		}
		x.kb.AddExtraction(p.SentenceID, p.Candidates[0], p.Candidates, p.Instances, nil, 1)
		core++
	}
	if core > 0 {
		x.perIter = append(x.perIter, IterStats{
			Iteration:      1,
			NewExtractions: core,
			DistinctPairs:  x.kb.NumPairs(),
		})
	}
	return core
}

// Extend runs semantic iterations over the pending pool until a fixpoint
// or the iteration budget, returning the number of sentences resolved.
func (x *Extractor) Extend() int {
	resolvedTotal := 0
	for iter := 0; iter < x.cfg.MaxIterations && len(x.pending) > 0; iter++ {
		x.iteration++
		resolved, still := resolvePending(x.kb, x.pending, x.cfg.workers(), x.cfg.Fault)
		if len(resolved) == 0 {
			break
		}
		for _, r := range resolved {
			x.kb.AddExtraction(r.parse.SentenceID, r.concept, r.parse.Candidates, r.parse.Instances, r.triggers, x.iteration)
		}
		x.pending = still
		resolvedTotal += len(resolved)
		x.perIter = append(x.perIter, IterStats{
			Iteration:      x.iteration,
			NewExtractions: len(resolved),
			DistinctPairs:  x.kb.NumPairs(),
		})
	}
	return resolvedTotal
}

// Result assembles a Run-compatible result from the current state.
func (x *Extractor) Result() *Result {
	return &Result{
		KB:           x.kb,
		Iterations:   x.iteration,
		PerIteration: append([]IterStats(nil), x.perIter...),
		Unparseable:  x.unparseable,
		Unresolved:   len(x.pending),
	}
}
