package extract

import (
	"driftclean/internal/corpus"
	"driftclean/internal/hearst"
	"driftclean/internal/kb"
)

// Extractor is the incremental form of Run: sentences arrive in batches
// (the web is crawled continuously; Probase-style systems extend their
// KB rather than rebuild it), each Extend run resolves what the current
// knowledge allows and keeps the rest pending for later batches.
//
// Unambiguous sentences always enter as iteration-1 (core-quality)
// evidence regardless of when they arrive — "core" means unambiguous
// support, not chronology. Ambiguous sentences resolve at the semantic
// iteration that disambiguates them.
type Extractor struct {
	cfg Config
	kb  *kb.KB

	pending     []hearst.Parse
	iteration   int
	perIter     []IterStats
	unparseable int
}

// NewExtractor creates an empty incremental extractor.
func NewExtractor(cfg Config) *Extractor {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = DefaultConfig().MaxIterations
	}
	return &Extractor{cfg: cfg, kb: kb.New(), iteration: 1}
}

// KB exposes the knowledge base being built.
func (x *Extractor) KB() *kb.KB { return x.kb }

// Pending returns the number of ambiguous sentences awaiting resolution.
func (x *Extractor) Pending() int { return len(x.pending) }

// PerIteration returns the accumulated iteration statistics.
func (x *Extractor) PerIteration() []IterStats { return x.perIter }

// Add parses and ingests a batch of sentences: unambiguous parses are
// extracted immediately as core evidence; ambiguous parses join the
// pending pool. It returns the number of core extractions made. The
// parse fans out across Config.Parallelism workers; the merge runs in
// sentence order, so the KB is independent of the worker count.
func (x *Extractor) Add(sentences []corpus.Sentence) int {
	core := 0
	parsed := parseAll(sentences, x.cfg.workers(), x.cfg.Fault)
	for i := range parsed {
		if !parsed[i].ok {
			x.unparseable++
			continue
		}
		p := parsed[i].parse
		if p.Ambiguous() {
			x.pending = append(x.pending, p)
			continue
		}
		x.kb.AddExtraction(p.SentenceID, p.Candidates[0], p.Candidates, p.Instances, nil, 1)
		core++
	}
	if core > 0 {
		x.perIter = append(x.perIter, IterStats{
			Iteration:      1,
			NewExtractions: core,
			DistinctPairs:  x.kb.NumPairs(),
		})
	}
	return core
}

// Extend runs semantic iterations over the pending pool until a fixpoint
// or the iteration budget, returning the number of sentences resolved.
func (x *Extractor) Extend() int {
	resolvedTotal := 0
	for iter := 0; iter < x.cfg.MaxIterations && len(x.pending) > 0; iter++ {
		x.iteration++
		resolved, still := resolvePending(x.kb, x.pending, x.cfg.workers(), x.cfg.Fault)
		if len(resolved) == 0 {
			break
		}
		for _, r := range resolved {
			x.kb.AddExtraction(r.parse.SentenceID, r.concept, r.parse.Candidates, r.parse.Instances, r.triggers, x.iteration)
		}
		x.pending = still
		resolvedTotal += len(resolved)
		x.perIter = append(x.perIter, IterStats{
			Iteration:      x.iteration,
			NewExtractions: len(resolved),
			DistinctPairs:  x.kb.NumPairs(),
		})
	}
	return resolvedTotal
}

// Result assembles a Run-compatible result from the current state.
func (x *Extractor) Result() *Result {
	return &Result{
		KB:           x.kb,
		Iterations:   x.iteration,
		PerIteration: append([]IterStats(nil), x.perIter...),
		Unparseable:  x.unparseable,
		Unresolved:   len(x.pending),
	}
}

// Stream is the checkpointed incremental extractor behind the session
// API. Where Extractor extends one live KB (and therefore resolves
// early-batch sentences with less knowledge than a batch run would
// have), Stream keeps the *parses* — each sentence is parsed exactly
// once, on arrival — and materializes the KB by replay: every Replay
// runs the semantic fixpoint from the accumulated core evidence over
// the full ambiguous pool, so the result is bit-identical to Run over
// the concatenation of all appended batches, extraction IDs and
// iteration numbers included. Replaying is cheap relative to a full
// rerun because the Hearst parse — the only per-sentence string work —
// never repeats; the fixpoint is integer bookkeeping over parses.
//
// A Stream is single-writer: Append, Replay, Mark and Rewind must not
// be called concurrently.
type Stream struct {
	cfg Config

	// cores and pending hold unambiguous and ambiguous parses in
	// arrival order — exactly the per-class order Run's sentence-order
	// scan produces when batches arrive in corpus order.
	cores       []hearst.Parse
	pending     []hearst.Parse
	unparseable int
	sentences   int
}

// NewStream creates an empty checkpointed extractor.
func NewStream(cfg Config) *Stream {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = DefaultConfig().MaxIterations
	}
	return &Stream{cfg: cfg}
}

// Sentences returns the number of sentences appended so far.
func (s *Stream) Sentences() int { return s.sentences }

// Pending returns the current size of the ambiguous parse pool.
func (s *Stream) Pending() int { return len(s.pending) }

// StreamMark is an opaque position in a Stream's append history,
// captured by Mark and restored by Rewind.
type StreamMark struct {
	cores, pending, unparseable, sentences int
}

// Mark captures the stream's current position so a failed checkpoint
// can be rolled back with Rewind.
func (s *Stream) Mark() StreamMark {
	return StreamMark{len(s.cores), len(s.pending), s.unparseable, s.sentences}
}

// Rewind truncates the stream back to a previous Mark, discarding every
// sentence appended since. Append only ever appends, so truncation
// restores the exact prior state.
func (s *Stream) Rewind(m StreamMark) {
	s.cores = s.cores[:m.cores]
	s.pending = s.pending[:m.pending]
	s.unparseable = m.unparseable
	s.sentences = m.sentences
}

// Append parses one batch of sentences (fanning across
// Config.Parallelism workers, merged in sentence order) and files each
// parse as core (unambiguous) or pending (ambiguous). It returns the
// number of parses added to each pool. No KB is touched — call Replay
// to materialize the checkpoint.
func (s *Stream) Append(batch []corpus.Sentence) (core, ambiguous int) {
	parsed := parseAll(batch, s.cfg.workers(), s.cfg.Fault)
	for i := range parsed {
		if !parsed[i].ok {
			s.unparseable++
			continue
		}
		p := parsed[i].parse
		if p.Ambiguous() {
			s.pending = append(s.pending, p)
			ambiguous++
			continue
		}
		s.cores = append(s.cores, p)
		core++
	}
	s.sentences += len(batch)
	return core, ambiguous
}

// Replay materializes the batch-equivalent extraction over everything
// appended so far: all core parses enter a fresh KB as iteration 1 in
// arrival order, then the semantic iterations resolve the ambiguous
// pool against a KB frozen per iteration — the same loop Run uses. The
// result (KB contents, extraction IDs, iteration stats) is identical to
// Run over the concatenation of every appended batch.
func (s *Stream) Replay() *Result {
	res := &Result{KB: kb.New()}
	for _, p := range s.cores {
		res.KB.AddExtraction(p.SentenceID, p.Candidates[0], p.Candidates, p.Instances, nil, 1)
	}
	res.Iterations = 1
	res.PerIteration = append(res.PerIteration, IterStats{
		Iteration:      1,
		NewExtractions: len(s.cores),
		DistinctPairs:  res.KB.NumPairs(),
	})

	pending := append([]hearst.Parse(nil), s.pending...)
	workers := s.cfg.workers()
	for iter := 2; iter <= s.cfg.MaxIterations && len(pending) > 0; iter++ {
		resolved, still := resolvePending(res.KB, pending, workers, s.cfg.Fault)
		if len(resolved) == 0 {
			break
		}
		for _, r := range resolved {
			res.KB.AddExtraction(r.parse.SentenceID, r.concept, r.parse.Candidates, r.parse.Instances, r.triggers, iter)
		}
		pending = still
		res.Iterations = iter
		res.PerIteration = append(res.PerIteration, IterStats{
			Iteration:      iter,
			NewExtractions: len(resolved),
			DistinctPairs:  res.KB.NumPairs(),
		})
	}
	res.Unparseable = s.unparseable
	res.Unresolved = len(pending)
	return res
}
