package rank

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
)

// Signature hashes the graph's full structure — nodes, core restart
// weights, and weighted out-edges — into an FNV-64a digest. RandomWalk
// is a pure function of (Graph, Config), and BuildGraph emits nodes and
// edges in a deterministic order, so two graphs with equal signatures
// produce bit-identical walk scores under the same configuration.
// Computing the signature is O(V+E), far below the power iteration's
// O(MaxIter·E), which is what makes cross-snapshot walk memoization pay.
func (g *Graph) Signature() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	sep := []byte{0}
	u64(uint64(len(g.Nodes)))
	for i, name := range g.Nodes {
		_, _ = h.Write([]byte(name))
		_, _ = h.Write(sep)
		if g.Core[i] {
			u64(math.Float64bits(g.CoreWeight[i]))
		} else {
			u64(^uint64(0))
		}
	}
	for u, edges := range g.Out {
		if len(edges) == 0 {
			continue
		}
		u64(uint64(u))
		u64(uint64(len(edges)))
		for _, e := range edges {
			u64(uint64(e.To))
			u64(math.Float64bits(e.Weight))
		}
	}
	return h.Sum64()
}

// WalkMemo caches one random-walk result per concept across KB
// snapshots, keyed by the concept's trigger-graph Signature. It exists
// for the incremental ingest path: every checkpoint replays extraction
// into a *fresh* KB, which resets the pointer-bound Cache, yet most
// concepts' trigger graphs are unchanged from the previous checkpoint —
// identical signature, identical scores, no power iteration.
//
// Install it as a Cache's walk implementation (Cache.SetWalk). A memo
// is bound to a single walk Config; do not share one across caches with
// different configurations. Returned score maps are shared and must be
// treated as read-only, the same contract Cache itself has.
type WalkMemo struct {
	mu      sync.Mutex
	entries map[string]walkEntry
	hits    int
	misses  int
}

type walkEntry struct {
	sig    uint64
	scores Scores
}

// NewWalkMemo returns an empty walk memo.
func NewWalkMemo() *WalkMemo {
	return &WalkMemo{entries: make(map[string]walkEntry)}
}

// Walk is a drop-in walk implementation for Cache.SetWalk: it returns
// the memoized scores when the concept's graph signature is unchanged
// and otherwise computes RandomWalk and replaces the concept's entry.
func (m *WalkMemo) Walk(g *Graph, cfg Config) Scores {
	sig := g.Signature()
	m.mu.Lock()
	e, ok := m.entries[g.Concept]
	if ok && e.sig == sig {
		m.hits++
		m.mu.Unlock()
		return e.scores
	}
	m.misses++
	m.mu.Unlock()
	s := RandomWalk(g, cfg)
	m.mu.Lock()
	m.entries[g.Concept] = walkEntry{sig: sig, scores: s}
	m.mu.Unlock()
	return s
}

// Stats reports memo hits and misses since creation.
func (m *WalkMemo) Stats() (hits, misses int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of memoized concepts.
func (m *WalkMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
