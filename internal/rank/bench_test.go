package rank

import (
	"fmt"
	"testing"

	"driftclean/internal/kb"
)

// benchKB builds a drifted-looking trigger structure: a core of seeds,
// then iterations where each new instance is triggered by an earlier
// one, with repeated extractions so edge weights exceed 1.
func benchKB(instances int) *kb.KB {
	k := kb.New()
	id := 0
	names := make([]string, instances)
	for i := range names {
		names[i] = fmt.Sprintf("e%03d", i)
	}
	core := names[:10]
	k.AddExtraction(id, "c", nil, core, nil, 1)
	id++
	for i := 10; i < instances; i++ {
		trig := names[(i*7)%i] // deterministic earlier instance
		k.AddExtraction(id, "c", nil, []string{names[i]}, []string{trig}, 2+i/20)
		id++
		if i%3 == 0 { // repeat some extractions for weight > 1
			k.AddExtraction(id, "c", nil, []string{names[i]}, []string{trig}, 2+i/20)
			id++
		}
	}
	return k
}

func BenchmarkBuildGraph(b *testing.B) {
	k := benchKB(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(k, "c")
	}
}

func BenchmarkRandomWalk(b *testing.B) {
	g := BuildGraph(benchKB(400), "c")
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomWalk(g, cfg)
	}
}
