package rank

import (
	"math"
	"testing"

	"driftclean/internal/kb"
)

// chainKB builds: core {dog, chicken}; chicken triggers pork; pork
// triggers milk. dog triggers nothing.
func chainKB() *kb.KB {
	k := kb.New()
	k.AddExtraction(1, "animal", nil, []string{"dog", "chicken"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	k.AddExtraction(3, "animal", nil, []string{"milk"}, []string{"pork"}, 3)
	return k
}

func TestBuildGraphStructure(t *testing.T) {
	g := BuildGraph(chainKB(), "animal")
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %v", g.Nodes)
	}
	chicken := g.Index["chicken"]
	pork := g.Index["pork"]
	milk := g.Index["milk"]
	if !g.Core[g.Index["dog"]] || !g.Core[chicken] {
		t.Error("core flags wrong for iteration-1 instances")
	}
	if g.Core[pork] || g.Core[milk] {
		t.Error("triggered instances must not be core")
	}
	if len(g.Out[chicken]) != 1 || g.Out[chicken][0].To != pork {
		t.Errorf("chicken out-edges = %v", g.Out[chicken])
	}
	if len(g.In[milk]) != 1 || g.In[milk][0].To != pork {
		t.Errorf("milk in-edges = %v", g.In[milk])
	}
}

func TestBuildGraphIgnoresInactive(t *testing.T) {
	k := chainKB()
	k.RollbackExtractions([]int{1}) // pork extraction (ID 1) rolled back
	g := BuildGraph(k, "animal")
	if _, ok := g.Index["pork"]; ok {
		t.Error("rolled-back pork still in graph")
	}
	chicken := g.Index["chicken"]
	if len(g.Out[chicken]) != 0 {
		t.Errorf("chicken should have no surviving out-edges, got %v", g.Out[chicken])
	}
}

func TestFrequencyScores(t *testing.T) {
	k := kb.New()
	k.AddExtraction(1, "animal", nil, []string{"dog"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"dog", "cat"}, nil, 1)
	s := Frequency(k, "animal")
	if math.Abs(s["dog"]-2.0/3.0) > 1e-12 || math.Abs(s["cat"]-1.0/3.0) > 1e-12 {
		t.Errorf("Frequency = %v", s)
	}
}

func TestRandomWalkSumsToOne(t *testing.T) {
	g := BuildGraph(chainKB(), "animal")
	s := RandomWalk(g, DefaultConfig())
	var sum float64
	for _, v := range s {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
}

func TestRandomWalkCoreAboveDeepDescendants(t *testing.T) {
	g := BuildGraph(chainKB(), "animal")
	s := RandomWalk(g, DefaultConfig())
	if s["chicken"] <= s["pork"] || s["pork"] <= s["milk"] {
		t.Errorf("expected chicken > pork > milk, got %v", s)
	}
	if s["milk"] <= 0 {
		t.Error("reachable node must have positive score")
	}
}

func TestRandomWalkUnreachableFromCore(t *testing.T) {
	k := kb.New()
	k.AddExtraction(1, "c", nil, []string{"a"}, nil, 1)
	// b arrives in iteration 2 with trigger a, c2 triggered by b.
	k.AddExtraction(2, "c", nil, []string{"b"}, []string{"a"}, 2)
	// isolated island: d triggered by b.
	g := BuildGraph(k, "c")
	s := RandomWalk(g, DefaultConfig())
	if s["a"] <= s["b"] {
		t.Errorf("core a should outscore triggered b: %v", s)
	}
}

func TestRandomWalkEmptyConcept(t *testing.T) {
	g := BuildGraph(kb.New(), "nothing")
	if s := RandomWalk(g, DefaultConfig()); len(s) != 0 {
		t.Errorf("scores on empty concept = %v", s)
	}
	if s := PageRank(g, DefaultConfig()); len(s) != 0 {
		t.Errorf("pagerank on empty concept = %v", s)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := BuildGraph(chainKB(), "animal")
	s := PageRank(g, DefaultConfig())
	var sum float64
	for _, v := range s {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("pagerank sums to %v, want 1", sum)
	}
}

func TestPageRankFavorsHighDegree(t *testing.T) {
	k := kb.New()
	k.AddExtraction(1, "c", nil, []string{"hub"}, nil, 1)
	k.AddExtraction(2, "c", nil, []string{"x"}, []string{"hub"}, 2)
	k.AddExtraction(3, "c", nil, []string{"y"}, []string{"hub"}, 2)
	k.AddExtraction(4, "c", nil, []string{"z"}, []string{"hub"}, 2)
	g := BuildGraph(k, "c")
	s := PageRank(g, DefaultConfig())
	if s["hub"] <= s["x"] {
		t.Errorf("hub should outrank leaves: %v", s)
	}
}

func TestRankedOrderDeterministic(t *testing.T) {
	s := Scores{"b": 0.5, "a": 0.5, "c": 0.9}
	got := s.Ranked()
	if got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Errorf("Ranked = %v", got)
	}
}

// The paper's rationale for RWR over Frequency: a drifting error can have
// higher frequency than a correct instance, but it stays far from the
// core in the trigger graph. This test builds that exact situation.
func TestRandomWalkBeatsFrequencyOnDriftedError(t *testing.T) {
	k := kb.New()
	k.AddExtraction(1, "animal", nil, []string{"chicken"}, nil, 1)
	k.AddExtraction(2, "animal", nil, []string{"dolphin"}, nil, 1)
	// "beef" is extracted three times, but always triggered through the
	// drifted chain; "dolphin" is core with count 1.
	k.AddExtraction(3, "animal", nil, []string{"pork"}, []string{"chicken"}, 2)
	k.AddExtraction(4, "animal", nil, []string{"beef"}, []string{"pork"}, 3)
	k.AddExtraction(5, "animal", nil, []string{"beef"}, []string{"pork"}, 3)
	k.AddExtraction(6, "animal", nil, []string{"beef"}, []string{"pork"}, 3)

	freq := Frequency(k, "animal")
	if freq["beef"] <= freq["dolphin"] {
		t.Fatalf("setup broken: beef should be more frequent (beef=%v dolphin=%v)",
			freq["beef"], freq["dolphin"])
	}
	g := BuildGraph(k, "animal")
	rwr := RandomWalk(g, DefaultConfig())
	if rwr["dolphin"] <= rwr["beef"] {
		t.Errorf("RWR should rank core dolphin above drifted beef: %v", rwr)
	}
}
