package rank

import (
	"sync"
	"sync/atomic"
	"testing"
)

// countingCache wraps a Cache's walk with an invocation counter.
func countingCache() (*Cache, *atomic.Int64) {
	c := NewCache(DefaultConfig())
	var n atomic.Int64
	c.SetWalk(func(g *Graph, cfg Config) Scores {
		n.Add(1)
		return RandomWalk(g, cfg)
	})
	return c, &n
}

func TestCacheComputesOncePerConcept(t *testing.T) {
	k := chainKB()
	c, n := countingCache()
	first := c.Scores(k, "animal")
	second := c.Scores(k, "animal")
	if n.Load() != 1 {
		t.Fatalf("walk ran %d times for repeated lookups, want 1", n.Load())
	}
	if len(first) == 0 || len(second) != len(first) {
		t.Fatalf("cached scores differ: %v vs %v", first, second)
	}
}

func TestCacheSingleFlightUnderConcurrency(t *testing.T) {
	k := chainKB()
	c, n := countingCache()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Scores(k, "animal")
		}()
	}
	wg.Wait()
	if n.Load() != 1 {
		t.Fatalf("concurrent lookups ran %d walks, want 1 (single-flight)", n.Load())
	}
}

func TestCacheInvalidateDropsOnlyTouchedConcepts(t *testing.T) {
	k := chainKB()
	k.AddExtraction(10, "food", nil, []string{"pork", "milk"}, nil, 1)
	c, n := countingCache()
	c.Scores(k, "animal")
	c.Scores(k, "food")

	rb := k.RollbackExtractions([]int{1}) // pork under animal (cascades to milk)
	if got := rb.TouchedConcepts(); len(got) != 1 || got[0] != "animal" {
		t.Fatalf("TouchedConcepts = %v, want [animal]", got)
	}
	c.Invalidate(k, rb.TouchedConcepts()...)

	c.Scores(k, "food") // untouched: must stay warm
	if n.Load() != 2 {
		t.Fatalf("food re-walked after unrelated invalidation (walks=%d)", n.Load())
	}
	after := c.Scores(k, "animal") // touched: must recompute
	if n.Load() != 3 {
		t.Fatalf("animal not re-walked after invalidation (walks=%d)", n.Load())
	}
	if _, ok := after["pork"]; ok {
		t.Fatal("recomputed scores still contain rolled-back instance")
	}
}

func TestCacheResetsOnUntrackedMutation(t *testing.T) {
	k := chainKB()
	c, n := countingCache()
	c.Scores(k, "animal")
	// Mutate without telling the cache: next lookup must detect the
	// version bump and recompute rather than serve stale scores.
	k.RollbackExtractions([]int{2}) // milk under animal
	s := c.Scores(k, "animal")
	if n.Load() != 2 {
		t.Fatalf("stale scores served after untracked mutation (walks=%d)", n.Load())
	}
	if _, ok := s["milk"]; ok {
		t.Fatal("scores contain instance rolled back before the lookup")
	}
}

func TestCacheResetsOnDifferentKB(t *testing.T) {
	c, n := countingCache()
	c.Scores(chainKB(), "animal")
	c.Scores(chainKB(), "animal")
	if n.Load() != 2 {
		t.Fatalf("cache served scores across distinct KBs (walks=%d)", n.Load())
	}
}

func TestCacheLeaderPanicReelects(t *testing.T) {
	k := chainKB()
	c := NewCache(DefaultConfig())
	var calls atomic.Int64
	c.SetWalk(func(g *Graph, cfg Config) Scores {
		if calls.Add(1) == 1 {
			panic("injected")
		}
		return RandomWalk(g, cfg)
	})
	func() {
		defer func() { recover() }()
		c.Scores(k, "animal")
	}()
	if s := c.Scores(k, "animal"); len(s) == 0 {
		t.Fatal("no scores after leader panic; entry should have been cleared")
	}
	if calls.Load() != 2 {
		t.Fatalf("walk calls = %d, want 2 (panicked leader + retry)", calls.Load())
	}
}
