// Package rank implements the three instance-scoring models the paper
// compares in Sec 5.2 (Table 2) and uses inside features f3 and f4:
//
//   - Frequency: score proportional to the pair's support count;
//   - PageRank: classic PageRank over the *undirected* trigger graph,
//     exactly the paper's "same graph ... except that the edges are
//     undirected" variant;
//   - Random Walk with Restart: the paper's chosen model (Tong et al.,
//     ICDM 2006) — walks start from the concept's first-iteration (core)
//     instances and follow directed trigger edges, so an instance's score
//     is the probability of reaching it from trusted seeds.
//
// All models operate per concept on the trigger graph recorded in the KB.
package rank

import (
	"math"
	"sort"

	"driftclean/internal/floats"
	"driftclean/internal/kb"
)

// Graph is the per-concept trigger graph: nodes are instances under the
// concept, and a directed edge u->v exists when u triggered the extraction
// of v in some active extraction.
type Graph struct {
	Concept string
	Nodes   []string
	Index   map[string]int
	// Out[i] lists (neighbor index, weight) edges. Weight is the number
	// of distinct active extractions in which the trigger relation held.
	Out [][]Edge
	In  [][]Edge
	// Core marks first-iteration instances (random-walk restart set);
	// CoreWeight carries their support counts, so restart mass is
	// proportional to first-iteration evidence — a count-1 mis-parse in
	// the core receives almost no trust.
	Core       []bool
	CoreWeight []float64
}

// Edge is a weighted adjacency entry.
type Edge struct {
	To     int
	Weight float64
}

// BuildGraph constructs the trigger graph of a concept from the KB.
//
// Adjacency is accumulated per node, CSR style: edge weights build up in
// a scratch counter array (float64 increments of small integers commute
// exactly, so the counts match the old global-map accumulation bit for
// bit), each node's neighbor list is sorted as it is emitted, and both
// Out and In share one flat edge array each instead of a map entry plus
// a slice per node. Edge order is identical to the previous
// sort-by-(from,to) formulation: sources are visited in ascending index
// order and each neighbor list is sorted ascending.
func BuildGraph(k *kb.KB, concept string) *Graph {
	nodes := k.Instances(concept)
	g := &Graph{
		Concept: concept,
		Nodes:   nodes,
		Index:   make(map[string]int, len(nodes)),
	}
	for i, e := range nodes {
		g.Index[e] = i
	}
	n := len(nodes)
	g.Out = make([][]Edge, n)
	g.In = make([][]Edge, n)
	g.Core = make([]bool, n)
	g.CoreWeight = make([]float64, n)
	for _, e := range k.InstancesAtIteration(concept, 1) {
		if i, ok := g.Index[e]; ok {
			g.Core[i] = true
			// Log-damped evidence: a count-1 mis-parse in the core gets a
			// sliver of restart mass, a well-attested head gets several
			// times more, but no single popular instance dominates the
			// restart distribution.
			g.CoreWeight[i] = math.Log2(1 + float64(k.Count(concept, e)))
		}
	}

	// trigSets memoizes each extraction's trigger membership set; an
	// extraction with t triggers in this graph is visited t times, and the
	// old code re-scanned its trigger list for every instance each visit.
	trigSets := make(map[int]map[string]struct{})
	counts := make([]float64, n) // scratch: weight accumulator per target
	touched := make([]int, 0, 16)
	// Edge counts are ~constant-degree in practice; 4n absorbs the first
	// few growth doublings without over-reserving on sparse graphs.
	outFlat := make([]Edge, 0, 4*n)
	outStart := make([]int, n+1)
	inDeg := make([]int, n)
	for u, e := range nodes {
		touched = touched[:0]
		for _, exID := range k.TriggeredExtractions(concept, e) {
			ex := k.Extraction(exID)
			if !ex.Active {
				continue
			}
			ts, ok := trigSets[exID]
			if !ok {
				//lint:ignore hotalloc memo miss path: each extraction's set is built once and reused on every later visit
				ts = make(map[string]struct{}, len(ex.Triggers))
				for _, t := range ex.Triggers {
					ts[t] = struct{}{}
				}
				trigSets[exID] = ts
			}
			for _, sub := range ex.Instances {
				if sub == e {
					continue
				}
				v, ok := g.Index[sub]
				if !ok {
					continue // rolled back
				}
				if _, isTrigger := ts[sub]; isTrigger {
					continue
				}
				if counts[v] == 0 {
					touched = append(touched, v)
				}
				counts[v]++
			}
		}
		sort.Ints(touched)
		outStart[u] = len(outFlat)
		for _, v := range touched {
			// Log damping keeps a polysemous bridge's heavy repeat-trigger
			// edges from funneling its entire mass into the drift cluster.
			outFlat = append(outFlat, Edge{To: v, Weight: math.Log2(1 + counts[v])})
			inDeg[v]++
			counts[v] = 0
		}
	}
	outStart[n] = len(outFlat)
	for u := 0; u < n; u++ {
		if s, e := outStart[u], outStart[u+1]; s < e {
			g.Out[u] = outFlat[s:e:e]
		}
	}
	// CSR transpose for In: prefix-sum the in-degrees, then fill each
	// target's span in ascending source order — the same order the old
	// sorted-key loop appended.
	inFlat := make([]Edge, len(outFlat))
	inStart := make([]int, n+1)
	for v := 0; v < n; v++ {
		inStart[v+1] = inStart[v] + inDeg[v]
	}
	fill := append([]int(nil), inStart[:n]...)
	for u := 0; u < n; u++ {
		for _, ed := range outFlat[outStart[u]:outStart[u+1]] {
			inFlat[fill[ed.To]] = Edge{To: u, Weight: ed.Weight}
			fill[ed.To]++
		}
	}
	for v := 0; v < n; v++ {
		if s, e := inStart[v], inStart[v+1]; s < e {
			g.In[v] = inFlat[s:e:e]
		}
	}
	return g
}

// Scores maps instance -> score for one concept.
type Scores map[string]float64

// Ranked returns the instances sorted by descending score, ties broken by
// name for determinism.
func (s Scores) Ranked() []string {
	out := make([]string, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !floats.Identical(s[out[i]], s[out[j]]) {
			return s[out[i]] > s[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Frequency scores each instance by its normalized support count.
func Frequency(k *kb.KB, concept string) Scores {
	insts := k.Instances(concept)
	out := make(Scores, len(insts))
	total := 0
	for _, e := range insts {
		total += k.Count(concept, e)
	}
	if total == 0 {
		return out
	}
	for _, e := range insts {
		out[e] = float64(k.Count(concept, e)) / float64(total)
	}
	return out
}

// Config holds the iteration parameters shared by the walk models.
type Config struct {
	// Restart is the teleport/restart probability (the paper uses 0.15).
	Restart float64
	// MaxIter and Tol bound the power iteration.
	MaxIter int
	Tol     float64
}

// DefaultConfig mirrors the paper's setting.
func DefaultConfig() Config { return Config{Restart: 0.15, MaxIter: 100, Tol: 1e-10} }

// RandomWalk computes Random-Walk-with-Restart scores on the directed
// trigger graph, restarting uniformly over the concept's core
// (first-iteration) instances. The score of e is the stationary
// probability of the walk being at e — "the probability that we could
// randomly walk from the instances obtained in the first iterations to
// the node of the instance e" (Sec 3.1).
func RandomWalk(g *Graph, cfg Config) Scores {
	n := len(g.Nodes)
	out := make(Scores, n)
	if n == 0 {
		return out
	}
	restart := make([]float64, n)
	var mass float64
	for i, isCore := range g.Core {
		if isCore {
			restart[i] = g.CoreWeight[i]
			if restart[i] <= 0 {
				restart[i] = 1
			}
			mass += restart[i]
		}
	}
	if mass == 0 {
		// Degenerate concept with no core: restart uniformly.
		for i := range restart {
			restart[i] = 1
		}
		mass = float64(n)
	}
	for i := range restart {
		restart[i] /= mass
	}
	outWeight := make([]float64, n)
	for i, edges := range g.Out {
		for _, e := range edges {
			outWeight[i] += e.Weight
		}
	}
	p := append([]float64(nil), restart...)
	next := make([]float64, n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for i := range next {
			next[i] = cfg.Restart * restart[i]
		}
		for i, edges := range g.Out {
			if p[i] == 0 {
				continue
			}
			if outWeight[i] == 0 {
				// Dangling mass teleports back to the restart set.
				for j := range next {
					next[j] += (1 - cfg.Restart) * p[i] * restart[j]
				}
				continue
			}
			share := (1 - cfg.Restart) * p[i] / outWeight[i]
			for _, e := range edges {
				next[e.To] += share * e.Weight
			}
		}
		if l1Delta(p, next) < cfg.Tol {
			p, next = next, p
			break
		}
		p, next = next, p
	}
	for i, e := range g.Nodes {
		out[e] = p[i]
	}
	return out
}

// PageRank computes PageRank on the undirected version of the trigger
// graph with uniform teleport (the paper's comparison model, Sec 5.2).
func PageRank(g *Graph, cfg Config) Scores {
	n := len(g.Nodes)
	out := make(Scores, n)
	if n == 0 {
		return out
	}
	// Undirected adjacency = Out ∪ In.
	adj := make([][]Edge, n)
	deg := make([]float64, n)
	for i := range g.Out {
		adj[i] = append(adj[i], g.Out[i]...)
		adj[i] = append(adj[i], g.In[i]...)
		for _, e := range adj[i] {
			deg[i] += e.Weight
		}
	}
	uniform := 1 / float64(n)
	p := make([]float64, n)
	for i := range p {
		p[i] = uniform
	}
	next := make([]float64, n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for i := range next {
			next[i] = cfg.Restart * uniform
		}
		for i, edges := range adj {
			if p[i] == 0 {
				continue
			}
			if deg[i] == 0 {
				for j := range next {
					next[j] += (1 - cfg.Restart) * p[i] * uniform
				}
				continue
			}
			share := (1 - cfg.Restart) * p[i] / deg[i]
			for _, e := range edges {
				next[e.To] += share * e.Weight
			}
		}
		if l1Delta(p, next) < cfg.Tol {
			p, next = next, p
			break
		}
		p, next = next, p
	}
	for i, e := range g.Nodes {
		out[e] = p[i]
	}
	return out
}

func l1Delta(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
