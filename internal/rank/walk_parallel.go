package rank

import (
	"driftclean/internal/kb"
	"driftclean/internal/par"
)

// WalkConcepts computes Random-Walk-with-Restart scores for every given
// concept, fanning the per-concept graph builds and power iterations
// across the given worker count. Each concept's walk reads only the KB
// (which must not be mutated concurrently) and writes into its own map
// slot, so the result is identical to calling BuildGraph + RandomWalk
// serially, in any order — per-concept scoring is the scalable unit of
// work in this pipeline, exactly as in SetExpan-style bootstrappers.
func WalkConcepts(k *kb.KB, concepts []string, cfg Config, workers int) map[string]Scores {
	slots := make([]Scores, len(concepts))
	// One concept per claim: graph sizes are heavily skewed (the drifted
	// concepts are the big ones), so fine-grained claiming load-balances.
	par.ForChunked(len(concepts), workers, 1, func(i int) {
		slots[i] = RandomWalk(BuildGraph(k, concepts[i]), cfg)
	})
	out := make(map[string]Scores, len(concepts))
	for i, c := range concepts {
		out[c] = slots[i]
	}
	return out
}
