package rank

import (
	"sync"

	"driftclean/internal/kb"
	"driftclean/internal/par"
)

// Cache is a concurrency-safe per-concept random-walk score cache shared
// across the feature extractor and the cleaning rounds — the paper's
// inner loop recomputed every concept's walk from scratch each round,
// but a walk depends only on its own concept's trigger graph, so a
// round needs to re-walk only the concepts it actually changed.
//
// Consistency protocol: entries are bound to one KB at one mutation
// version (kb.Version). A mutator that knows exactly which concepts it
// touched calls Invalidate with that set, which drops those entries and
// re-binds the cache to the KB's new version — everything else stays
// warm. Any KB change the cache is *not* told about (different KB
// pointer, or a version the cache never synced to) is detected on the
// next lookup and clears the whole cache: the fallback is a full
// recompute, never a stale score.
//
// Lookups are single-flight: when several goroutines miss on the same
// concept simultaneously, one runs the walk and the rest wait for its
// result, so concurrent feature extraction never duplicates a walk.
type Cache struct {
	cfg  Config
	walk func(*Graph, Config) Scores

	mu      sync.Mutex
	entries map[string]*cacheEntry
	kb      *kb.KB
	// kbVersion mirrors kb.Version() at the last sync point; it is a
	// staleness stamp for the bound KB, not a mutation counter of the
	// cache itself.
	kbVersion uint64
}

type cacheEntry struct {
	ready  chan struct{} // closed once the leader finished (or failed)
	scores Scores
	ok     bool // false until the leader stored a result
}

// NewCache returns an empty cache computing walks with the given
// configuration.
func NewCache(cfg Config) *Cache {
	return &Cache{cfg: cfg, walk: RandomWalk, entries: make(map[string]*cacheEntry)}
}

// Config returns the walk configuration the cache computes scores with.
// Callers holding a different configuration must not share this cache.
func (c *Cache) Config() Config { return c.cfg }

// SetWalk replaces the walk implementation — an instrumentation seam for
// tests that count walk invocations. It must be called before the first
// lookup and is not safe to call concurrently with lookups.
func (c *Cache) SetWalk(walk func(*Graph, Config) Scores) { c.walk = walk }

// Scores returns the concept's random-walk scores, computing (and
// caching) them on first use. Concurrent callers for the same concept
// coalesce onto a single walk.
func (c *Cache) Scores(k *kb.KB, concept string) Scores {
	for {
		c.mu.Lock()
		c.syncLocked(k)
		e, exists := c.entries[concept]
		if !exists {
			//lint:ignore hotalloc the miss path allocates exactly one entry per concept per KB version; the loop only repeats after a leader panic
			e = &cacheEntry{ready: make(chan struct{})}
			c.entries[concept] = e
			c.mu.Unlock()
			return c.lead(k, concept, e)
		}
		c.mu.Unlock()
		<-e.ready
		if e.ok {
			return e.scores
		}
		// The leader failed (panicked into its recover path): its entry
		// was removed, so loop and elect a new leader.
	}
}

// lead computes the walk as the single-flight leader. If the walk
// panics, the entry is removed (parked waiters re-elect a leader) and
// the panic propagates to this caller only.
func (c *Cache) lead(k *kb.KB, concept string, e *cacheEntry) Scores {
	defer func() {
		if !e.ok {
			c.mu.Lock()
			if c.entries[concept] == e {
				delete(c.entries, concept)
			}
			c.mu.Unlock()
		}
		close(e.ready)
	}()
	s := c.walk(BuildGraph(k, concept), c.cfg)
	e.scores, e.ok = s, true
	return s
}

// Warm computes (and caches) the scores of every given concept with the
// given worker count. Already-cached concepts cost a map hit.
func (c *Cache) Warm(k *kb.KB, concepts []string, workers int) {
	if len(concepts) == 0 {
		return
	}
	// One concept per claim: graph sizes are heavily skewed (the drifted
	// concepts are the big ones), so fine-grained claiming load-balances.
	par.ForChunked(len(concepts), workers, 1, func(i int) {
		c.Scores(k, concepts[i])
	})
}

// Invalidate drops the entries of the given concepts and re-binds the
// cache to the KB's current mutation version. Call it immediately after
// a mutation with the exact concept set the mutation touched (see
// kb.RollbackResult.TouchedConcepts); entries of untouched concepts
// remain valid because a walk reads nothing outside its own concept.
func (c *Cache) Invalidate(k *kb.KB, concepts ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kb != k {
		// Cache was never bound to this KB; a later lookup will resync.
		return
	}
	for _, concept := range concepts {
		delete(c.entries, concept)
	}
	c.kbVersion = k.Version()
}

// Len returns the number of cached concept entries (including in-flight
// ones); used by tests asserting invalidation behavior.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// syncLocked rebinds the cache when the KB pointer or version moved in a
// way Invalidate was not told about, dropping every entry. c.mu held.
func (c *Cache) syncLocked(k *kb.KB) {
	if c.kb == k && c.kbVersion == k.Version() {
		return
	}
	if len(c.entries) > 0 {
		c.entries = make(map[string]*cacheEntry)
	}
	c.kb = k
	c.kbVersion = k.Version()
}
