package seedlabel

import (
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/dp"
	"driftclean/internal/eval"
	"driftclean/internal/extract"
	"driftclean/internal/kb"
	"driftclean/internal/mutex"
	"driftclean/internal/world"
)

// scenarioKB reproduces the paper's running examples in miniature:
//
//	animal core: chicken(x5), dog(x5), cat(x5)
//	food core:   pork(x5), beef(x5), chicken-as-food is NOT core
//	chicken triggers pork and beef under animal  -> Rule 1 Intentional
//	dog triggers cat under animal                -> Rule 3 non-DP
//	new_york: count-1 late extraction under country, evidenced city
//	         -> Rule 2 Accidental
func scenarioKB() *kb.KB {
	k := kb.New()
	rep := func(n int, concept string, insts []string) {
		for i := 0; i < n; i++ {
			k.AddExtraction(len(insts)*1000+i, concept, nil, insts, nil, 1)
		}
	}
	rep(5, "animal", []string{"chicken", "dog", "cat"})
	rep(5, "food", []string{"pork", "beef", "milk"})
	rep(5, "city", []string{"new_york", "boston", "chicago"})
	rep(5, "country", []string{"france", "japan", "norway"})
	// chicken triggers pork/beef under animal (S3 drift).
	k.AddExtraction(1, "animal", []string{"food", "animal"}, []string{"pork", "beef", "chicken"}, []string{"chicken"}, 2)
	// dog triggers cat (correct).
	k.AddExtraction(2, "animal", []string{"animal", "pet"}, []string{"cat", "dog"}, []string{"dog"}, 2)
	// new_york appears once under country in a later iteration.
	k.AddExtraction(3, "country", []string{"country", "city"}, []string{"new_york", "france"}, []string{"france"}, 2)
	return k
}

func newLabeler(t *testing.T, k *kb.KB) *Labeler {
	t.Helper()
	mx := mutex.Analyze(k, mutex.Config{ExclusiveThreshold: 0.02, SimilarThreshold: 0.2, MinCoreSize: 3})
	return New(k, mx, DefaultConfig())
}

func TestEvidencedCorrect(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	if !l.EvidencedCorrect("animal", "chicken") {
		t.Error("chicken (count 5+ in core) must be evidenced correct")
	}
	if l.EvidencedCorrect("animal", "pork") {
		t.Error("pork under animal (late, count 1) must not be evidenced correct")
	}
}

func TestEvidencedIncorrect(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	if !l.EvidencedIncorrect("country", "new_york") {
		t.Error("new_york under country must be evidenced incorrect")
	}
	if l.EvidencedIncorrect("city", "new_york") {
		t.Error("new_york under city is core, not evidenced incorrect")
	}
	if l.EvidencedIncorrect("country", "france") {
		t.Error("core france must not be evidenced incorrect")
	}
}

func TestRule1Intentional(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	lbl, ok := l.Label("animal", "chicken")
	if !ok || lbl != dp.Intentional {
		t.Errorf("chicken label = %v ok=%v, want Intentional", lbl, ok)
	}
}

func TestRule2Accidental(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	lbl, ok := l.Label("country", "new_york")
	if !ok || lbl != dp.Accidental {
		t.Errorf("new_york label = %v ok=%v, want Accidental", lbl, ok)
	}
}

func TestRule3NonDP(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	lbl, ok := l.Label("animal", "dog")
	if !ok || lbl != dp.NonDP {
		t.Errorf("dog label = %v ok=%v, want NonDP", lbl, ok)
	}
}

func TestUnlabeledWhenNoRuleFires(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	// cat is evidenced correct but triggers nothing: stays unlabeled.
	if _, ok := l.Label("animal", "cat"); ok {
		t.Error("non-triggering instance should stay unlabeled")
	}
}

func TestSeedsOnlyTriggeringInstances(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	seeds := l.Seeds("animal")
	if seeds["chicken"] != dp.Intentional || seeds["dog"] != dp.NonDP {
		t.Errorf("Seeds(animal) = %v", seeds)
	}
	if _, ok := seeds["cat"]; ok {
		t.Error("cat triggers nothing; must not be seeded")
	}
}

func TestCollectStats(t *testing.T) {
	l := newLabeler(t, scenarioKB())
	// chicken is Intentional (two drift-evidence subs); france triggered
	// only the single wrong new_york pair, which is below Rule 1's
	// two-sub requirement, so it stays unlabeled; dog is non-DP; pork,
	// beef and new_york are Accidental.
	s := l.CollectStats([]string{"animal", "country", "city"})
	if s.Intentional != 1 || s.NonDP != 1 || s.Accidental != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Candidates != 12 {
		t.Errorf("candidates = %d, want 12 (all instances)", s.Candidates)
	}
	if s.LabelRate() <= 0 || s.LabelRate() > 1 {
		t.Errorf("label rate = %v", s.LabelRate())
	}
}

// End-to-end: seed precision on a real synthetic pipeline should be high —
// the strict rules trade recall for precision (paper: >99% at K=4).
func TestSeedPrecisionOnPipeline(t *testing.T) {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 3
	wcfg.InstancesPerConceptMin = 60
	wcfg.InstancesPerConceptMax = 120
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 30000
	c := corpus.Generate(w, ccfg)
	res := extract.Run(c, extract.DefaultConfig())
	mx := mutex.Analyze(res.KB, mutex.DefaultConfig())
	l := New(res.KB, mx, DefaultConfig())
	oracle := eval.NewOracle(w, c)

	agree, labeled := 0, 0
	classes := map[dp.Label]int{}
	for _, concept := range res.KB.Concepts() {
		for e, lbl := range l.Seeds(concept) {
			labeled++
			classes[lbl]++
			if oracle.SeedLabelCorrect(res.KB, concept, e, lbl) {
				agree++
			}
		}
	}
	if labeled == 0 {
		t.Fatal("no seeds labeled on the pipeline")
	}
	prec := float64(agree) / float64(labeled)
	t.Logf("seed labels: %d (%v), precision %.3f", labeled, classes, prec)
	if prec < 0.85 {
		t.Errorf("seed precision %.3f too low (paper: ~0.99 at K=4)", prec)
	}
	for _, lbl := range []dp.Label{dp.Intentional, dp.Accidental, dp.NonDP} {
		if classes[lbl] == 0 {
			t.Errorf("no %v seeds produced; detector training needs all classes", lbl)
		}
	}
}
