// Package seedlabel prepares the automatically labeled training set of
// Sec 3.2: no human labels exist for millions of concepts, so obvious
// Intentional DPs, Accidental DPs and non-DPs are labeled by strict
// heuristic rules built on evidenced-correct/incorrect instances and the
// discovered mutual-exclusion relations.
//
//	Rule 1: e is an Intentional DP of C when e is evidenced correct for C
//	        but some of its sub-instances are evidenced correct for a
//	        concept mutually exclusive with C.
//	Rule 2: e is an Accidental DP of C when e is evidenced incorrect
//	        for C.
//	Rule 3: e is a non-DP of C when e and all its sub-instances are
//	        evidenced correct for C.
//
// Evidenced correct means: a core pair (first iteration) supported by at
// least K sentences (the paper settles on K=4 via the Fig 5b sweep).
// Evidenced incorrect means: extracted for C exactly once, only after the
// first iteration, while being evidenced correct for a concept exclusive
// with C (the "New York isA Country" situation).
package seedlabel

import (
	"sort"

	"driftclean/internal/dp"
	"driftclean/internal/kb"
	"driftclean/internal/mutex"
)

// Config controls seed labeling.
type Config struct {
	// K is the minimum first-iteration support for evidenced-correct
	// pairs (paper: 4).
	K int
	// WeakCountMax is the maximum support count for a sub-instance to
	// count as drift evidence in Rule 1 (Property 4: drifting errors are
	// weakly supported — empirically, drift subs average ~2 supporting
	// sentences while correct polysemous subs average tens).
	WeakCountMax int
	// AccidentalCountMax is the maximum support count of an
	// evidenced-incorrect pair (the paper says "only once"; a pair that
	// triggered drift gains a handful of extra counts from the sentences
	// it resolved, so a small allowance keeps those labelable).
	AccidentalCountMax int
}

// DefaultConfig returns the paper's K=4 with weak-evidence allowances
// calibrated on the synthetic pipeline.
func DefaultConfig() Config { return Config{K: 4, WeakCountMax: 3, AccidentalCountMax: 2} }

// Labeler computes seed labels over a KB with discovered exclusions.
type Labeler struct {
	kb  *kb.KB
	mx  *mutex.Analysis
	cfg Config

	// evidencedCorrect[c] is the set of evidenced-correct instances of c.
	evidencedCorrect map[string]map[string]bool
	// correctOf[e] lists concepts for which e is evidenced correct.
	correctOf map[string][]string
}

// New builds a labeler. The construction cost is one pass over the KB.
func New(k *kb.KB, mx *mutex.Analysis, cfg Config) *Labeler {
	def := DefaultConfig()
	if cfg.K <= 0 {
		cfg.K = def.K
	}
	if cfg.WeakCountMax <= 0 {
		cfg.WeakCountMax = def.WeakCountMax
	}
	if cfg.AccidentalCountMax <= 0 {
		cfg.AccidentalCountMax = def.AccidentalCountMax
	}
	l := &Labeler{
		kb:               k,
		mx:               mx,
		cfg:              cfg,
		evidencedCorrect: make(map[string]map[string]bool),
		correctOf:        make(map[string][]string),
	}
	for _, c := range k.Concepts() {
		set := map[string]bool{}
		for _, e := range k.InstancesAtIteration(c, 1) {
			if k.Count(c, e) >= cfg.K {
				set[e] = true
				l.correctOf[e] = append(l.correctOf[e], c)
			}
		}
		l.evidencedCorrect[c] = set
	}
	return l
}

// EvidencedCorrect reports whether the pair is evidenced correct.
func (l *Labeler) EvidencedCorrect(concept, instance string) bool {
	return l.evidencedCorrect[concept][instance]
}

// EvidencedIncorrect reports whether the pair is evidenced incorrect:
// weakly supported (count at most AccidentalCountMax), first seen after
// iteration 1, while evidenced correct for a concept mutually exclusive
// with this one.
func (l *Labeler) EvidencedIncorrect(concept, instance string) bool {
	info := l.kb.Info(concept, instance)
	if info == nil || info.Count < 1 || info.Count > l.cfg.AccidentalCountMax || info.FirstIter <= 1 {
		return false
	}
	for _, other := range l.correctOf[instance] {
		if l.mx.Exclusive(concept, other) {
			return true
		}
	}
	return false
}

// driftEvidence reports whether sub looks like a drifting error triggered
// into concept: not evidenced correct for the concept, but evidenced
// correct for a mutually exclusive one that carries at least twice its
// support here (Properties 2 and 4 combined). The ratio test is
// scale-free: drift errors accumulate support proportionally to corpus
// density, but their true home always accumulates more.
func (l *Labeler) driftEvidence(concept, sub string) bool {
	if l.EvidencedCorrect(concept, sub) {
		return false
	}
	here := l.kb.Count(concept, sub)
	for _, other := range l.correctOf[sub] {
		if l.mx.Exclusive(concept, other) && l.kb.Count(other, sub) >= 2*here {
			return true
		}
	}
	return false
}

// Label applies Rules 1–3 to one instance. ok=false means no rule fires
// and the instance stays unlabeled (it becomes semi-supervised fuel).
func (l *Labeler) Label(concept, instance string) (dp.Label, bool) {
	subs := l.kb.SubInstances(concept, instance)
	if l.EvidencedCorrect(concept, instance) {
		if len(subs) == 0 {
			return 0, false
		}
		// Rule 1: sub-instances that look like drifting errors — weakly
		// supported here but evidenced correct for an exclusive concept —
		// make e an Intentional DP. A single such sub is not enough: a
		// clean trigger occasionally drags in one polysemous bridge,
		// while a real Intentional DP pulls in a cluster of them.
		suspicious, driftSubs := 0, 0
		for _, sub := range subs {
			if l.driftEvidence(concept, sub) {
				driftSubs++
				continue
			}
			// A weak, late sub with no positive evidence for C is
			// unexplained; it blocks the non-DP rule below.
			if info := l.kb.Info(concept, sub); info != nil &&
				!l.EvidencedCorrect(concept, sub) &&
				info.FirstIter > 1 && info.Count <= 1 {
				suspicious++
			}
		}
		if driftSubs >= 2 {
			return dp.Intentional, true
		}
		if driftSubs == 1 {
			return 0, false // ambiguous: neither Rule 1 nor Rule 3
		}
		// Rule 3: every sub-instance of e carries positive or at least
		// unsuspicious evidence for C. (The paper requires all subs to be
		// evidenced correct; at our corpus scale the core is too small
		// for that to ever fire, so we use the contrapositive — no sub
		// shows any sign of drift.)
		if suspicious == 0 {
			return dp.NonDP, true
		}
		return 0, false
	}
	// Rule 2.
	if l.EvidencedIncorrect(concept, instance) {
		return dp.Accidental, true
	}
	return 0, false
}

// Seeds labels every instance of a concept the rules can decide. Rules 1
// and 3 only ever fire for triggering instances; Rule 2 also labels
// non-triggering evidenced-incorrect instances — the paper's "New York
// isA Country" seeds, which are training signal for the Accidental class
// even when they triggered nothing.
func (l *Labeler) Seeds(concept string) map[string]dp.Label {
	out := make(map[string]dp.Label)
	for _, e := range l.kb.Instances(concept) {
		if lbl, ok := l.Label(concept, e); ok {
			out[e] = lbl
		}
	}
	return out
}

// Stats summarizes labeling coverage over a set of concepts: the fraction
// of triggering instances that received a seed label, and the per-class
// counts.
type Stats struct {
	Candidates  int
	Labeled     int
	Intentional int
	Accidental  int
	NonDP       int
}

// LabelRate returns Labeled/Candidates (0 when empty).
func (s Stats) LabelRate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Labeled) / float64(s.Candidates)
}

// CollectStats labels all given concepts and aggregates coverage over all
// their instances.
func (l *Labeler) CollectStats(concepts []string) Stats {
	var s Stats
	for _, c := range concepts {
		for _, e := range l.kb.Instances(c) {
			s.Candidates++
			lbl, ok := l.Label(c, e)
			if !ok {
				continue
			}
			s.Labeled++
			switch lbl {
			case dp.Intentional:
				s.Intentional++
			case dp.Accidental:
				s.Accidental++
			default:
				s.NonDP++
			}
		}
	}
	return s
}

// ConceptsWithSeeds returns the concepts (from the given list) that have
// at least one seed label, sorted.
func (l *Labeler) ConceptsWithSeeds(concepts []string) []string {
	var out []string
	for _, c := range concepts {
		if len(l.Seeds(c)) > 0 {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
