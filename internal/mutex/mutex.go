// Package mutex discovers mutually-exclusive and highly-similar concept
// pairs from the knowledge base itself, following Sec 3.2.1 of the paper.
//
// With millions of concepts, exclusion cannot be curated by hand, so the
// paper derives it from the data: the isA pairs of the first iteration are
// the "core pairs"; concept similarity is the cosine between core-instance
// sets (Eq 5); pairs below a low threshold are mutually exclusive, pairs
// above a high threshold are highly similar, and the exclusive sets of
// highly-similar concepts are shared. Concepts with tiny cores receive no
// exclusion relations at all — the paper reports 33.6% of concepts end up
// uncovered, mostly small ones.
package mutex

import (
	"sort"

	"driftclean/internal/kb"
	"driftclean/internal/sparsevec"
)

// Config holds the discovery thresholds.
type Config struct {
	// ExclusiveThreshold: pairs with cosine below it are mutually
	// exclusive (the paper uses 1e-4 at web scale; our synthetic cores
	// are smaller, so the default is coarser).
	ExclusiveThreshold float64
	// SimilarThreshold: pairs with cosine above it are highly similar
	// (the paper uses 0.1).
	SimilarThreshold float64
	// MinCoreSize: concepts with fewer core instances get no relations.
	MinCoreSize int
}

// DefaultConfig returns thresholds tuned for the synthetic worlds.
func DefaultConfig() Config {
	return Config{ExclusiveThreshold: 0.02, SimilarThreshold: 0.2, MinCoreSize: 5}
}

// Analysis is the result of concept-similarity discovery.
type Analysis struct {
	cfg      Config
	concepts []string
	core     map[string]map[string]struct{}
	// sim holds cosine similarity for concept pairs with non-empty
	// core overlap; absent pairs have similarity 0.
	sim map[[2]string]float64
	// exclusive maps each covered concept to its sorted exclusive set.
	exclusive map[string][]string
	similar   map[string][]string
	covered   map[string]bool
}

// Analyze runs the discovery over the current KB.
func Analyze(k *kb.KB, cfg Config) *Analysis {
	if cfg.ExclusiveThreshold <= 0 {
		cfg.ExclusiveThreshold = DefaultConfig().ExclusiveThreshold
	}
	if cfg.SimilarThreshold <= 0 {
		cfg.SimilarThreshold = DefaultConfig().SimilarThreshold
	}
	if cfg.MinCoreSize <= 0 {
		cfg.MinCoreSize = DefaultConfig().MinCoreSize
	}
	a := &Analysis{
		cfg:       cfg,
		core:      make(map[string]map[string]struct{}),
		sim:       make(map[[2]string]float64),
		exclusive: make(map[string][]string),
		similar:   make(map[string][]string),
		covered:   make(map[string]bool),
	}
	a.concepts = k.Concepts()
	for _, c := range a.concepts {
		set := make(map[string]struct{})
		for _, e := range k.InstancesAtIteration(c, 1) {
			set[e] = struct{}{}
		}
		a.core[c] = set
	}
	// Inverted index: instance -> concepts whose core holds it. Only
	// concept pairs sharing a core instance can have non-zero cosine.
	byInstance := map[string][]string{}
	for _, c := range a.concepts {
		for e := range a.core[c] {
			//lint:ignore maporder each byInstance list accumulates c in a.concepts slice order; the map range only selects which key receives it
			byInstance[e] = append(byInstance[e], c)
		}
	}
	overlapping := map[[2]string]bool{}
	for _, cs := range byInstance {
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				overlapping[pairKey(cs[i], cs[j])] = true
			}
		}
	}
	for key := range overlapping {
		s := sparsevec.SetCosine(a.core[key[0]], a.core[key[1]])
		if s > 0 {
			a.sim[key] = s
		}
	}
	// Coverage and relations.
	for _, c := range a.concepts {
		if len(a.core[c]) >= cfg.MinCoreSize {
			a.covered[c] = true
		}
	}
	for _, c1 := range a.concepts {
		if !a.covered[c1] {
			continue
		}
		for _, c2 := range a.concepts {
			if c1 == c2 || !a.covered[c2] {
				continue
			}
			s := a.Sim(c1, c2)
			switch {
			case s < cfg.ExclusiveThreshold:
				a.exclusive[c1] = append(a.exclusive[c1], c2)
			case s > cfg.SimilarThreshold:
				a.similar[c1] = append(a.similar[c1], c2)
			}
		}
	}
	// Propagate exclusion across highly-similar concepts: if C and C' are
	// highly similar, C' inherits C's exclusive set (Sec 3.2.1).
	inherited := map[string]map[string]struct{}{}
	for c, sims := range a.similar {
		for _, s := range sims {
			for _, ex := range a.exclusive[s] {
				if ex == c {
					continue
				}
				if inherited[c] == nil {
					inherited[c] = map[string]struct{}{}
				}
				inherited[c][ex] = struct{}{}
			}
		}
	}
	for c, set := range inherited {
		have := map[string]struct{}{}
		for _, ex := range a.exclusive[c] {
			have[ex] = struct{}{}
		}
		for ex := range set {
			if _, ok := have[ex]; !ok {
				//lint:ignore maporder every a.exclusive list is sort.Strings-ed below before anyone reads it
				a.exclusive[c] = append(a.exclusive[c], ex)
			}
		}
	}
	for c := range a.exclusive {
		sort.Strings(a.exclusive[c])
	}
	for c := range a.similar {
		sort.Strings(a.similar[c])
	}
	return a
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Sim returns the core-set cosine similarity of two concepts (Eq 5).
func (a *Analysis) Sim(c1, c2 string) float64 {
	if c1 == c2 {
		return 1
	}
	return a.sim[pairKey(c1, c2)]
}

// Covered reports whether the concept has enough core instances to carry
// exclusion relations.
func (a *Analysis) Covered(c string) bool { return a.covered[c] }

// Exclusive reports whether two concepts are discovered as mutually
// exclusive. Uncovered concepts are exclusive with nothing.
func (a *Analysis) Exclusive(c1, c2 string) bool {
	if c1 == c2 || !a.covered[c1] || !a.covered[c2] {
		return false
	}
	for _, ex := range a.exclusive[c1] {
		if ex == c2 {
			return true
		}
	}
	return false
}

// ExclusiveConcepts returns the sorted exclusive set of a concept.
func (a *Analysis) ExclusiveConcepts(c string) []string { return a.exclusive[c] }

// SimilarConcepts returns the sorted highly-similar set of a concept.
func (a *Analysis) SimilarConcepts(c string) []string { return a.similar[c] }

// Concepts returns all analyzed concepts, sorted.
func (a *Analysis) Concepts() []string { return a.concepts }

// CoverageRate returns the fraction of concepts with exclusion coverage.
func (a *Analysis) CoverageRate() float64 {
	if len(a.concepts) == 0 {
		return 0
	}
	return float64(len(a.covered)) / float64(len(a.concepts))
}

// HistogramBucket is one bar of Fig 4: the number of covered concept
// pairs whose cosine similarity falls in [Lo, Hi).
type HistogramBucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram computes the Fig 4 distribution of pairwise cosine scores over
// covered concept pairs, using the given bucket boundaries (ascending).
// Pairs with zero overlap land in the first bucket.
func (a *Analysis) Histogram(bounds []float64) []HistogramBucket {
	buckets := make([]HistogramBucket, len(bounds))
	for i := range bounds {
		buckets[i].Lo = bounds[i]
		if i+1 < len(bounds) {
			buckets[i].Hi = bounds[i+1]
		} else {
			buckets[i].Hi = 1.0000001
		}
	}
	var covered []string
	for _, c := range a.concepts {
		if a.covered[c] {
			covered = append(covered, c)
		}
	}
	for i := 0; i < len(covered); i++ {
		for j := i + 1; j < len(covered); j++ {
			s := a.Sim(covered[i], covered[j])
			for b := len(buckets) - 1; b >= 0; b-- {
				if s >= buckets[b].Lo {
					buckets[b].Count++
					break
				}
			}
		}
	}
	return buckets
}
