package mutex

import (
	"testing"

	"driftclean/internal/corpus"
	"driftclean/internal/extract"
	"driftclean/internal/kb"
	"driftclean/internal/world"
)

// handKB builds concepts with controlled core overlap:
// a and b are disjoint; a and a_alias share most instances; tiny has a
// 2-instance core (below MinCoreSize).
func handKB() *kb.KB {
	k := kb.New()
	add := func(concept string, insts ...string) {
		k.AddExtraction(len(insts), concept, nil, insts, nil, 1)
	}
	add("a", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8")
	add("b", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8")
	add("a_alias", "a1", "a2", "a3", "a4", "a5", "a6", "x1", "x2")
	add("tiny", "t1", "t2")
	return k
}

func TestExclusiveAndSimilar(t *testing.T) {
	a := Analyze(handKB(), DefaultConfig())
	if !a.Exclusive("a", "b") {
		t.Error("disjoint concepts a and b must be exclusive")
	}
	if a.Exclusive("a", "a_alias") {
		t.Error("overlapping concepts must not be exclusive")
	}
	if s := a.Sim("a", "a_alias"); s < 0.5 {
		t.Errorf("Sim(a, a_alias) = %v, want high", s)
	}
	sims := a.SimilarConcepts("a")
	if len(sims) != 1 || sims[0] != "a_alias" {
		t.Errorf("SimilarConcepts(a) = %v", sims)
	}
}

func TestSimSymmetricSelfOne(t *testing.T) {
	a := Analyze(handKB(), DefaultConfig())
	if a.Sim("a", "b") != a.Sim("b", "a") {
		t.Error("Sim must be symmetric")
	}
	if a.Sim("a", "a") != 1 {
		t.Error("Sim(c, c) must be 1")
	}
}

func TestTinyConceptUncovered(t *testing.T) {
	a := Analyze(handKB(), DefaultConfig())
	if a.Covered("tiny") {
		t.Error("tiny concept should be uncovered")
	}
	if a.Exclusive("tiny", "a") || a.Exclusive("a", "tiny") {
		t.Error("uncovered concepts carry no exclusion relations")
	}
}

func TestExclusionPropagatedAcrossSimilar(t *testing.T) {
	// a_alias should inherit a's exclusion with b even if its direct
	// similarity to b were borderline.
	a := Analyze(handKB(), DefaultConfig())
	if !a.Exclusive("a_alias", "b") {
		t.Error("a_alias should be exclusive with b (directly or inherited)")
	}
}

func TestHistogramCountsAllCoveredPairs(t *testing.T) {
	a := Analyze(handKB(), DefaultConfig())
	buckets := a.Histogram([]float64{0, 0.01, 0.1, 0.5})
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	// 3 covered concepts -> 3 pairs.
	if total != 3 {
		t.Errorf("histogram total %d, want 3", total)
	}
}

func TestEndToEndDiscoveryOnSyntheticWorld(t *testing.T) {
	wcfg := world.DefaultConfig()
	wcfg.NumDomains = 3
	wcfg.InstancesPerConceptMin = 60
	wcfg.InstancesPerConceptMax = 120
	w := world.New(wcfg)
	ccfg := corpus.DefaultConfig()
	ccfg.NumSentences = 30000
	c := corpus.Generate(w, ccfg)
	res := extract.Run(c, extract.DefaultConfig())
	a := Analyze(res.KB, DefaultConfig())

	// The named domain: animal and food must be discovered exclusive
	// (their cores share at most anchored bridges).
	if !a.Exclusive("animal", "food") {
		t.Errorf("animal/food not discovered exclusive (sim=%v)", a.Sim("animal", "food"))
	}
	// Alias concepts must be discovered similar to their base, not
	// exclusive.
	aliases := 0
	for _, concept := range w.Concepts {
		if concept.SimilarOf < 0 {
			continue
		}
		base := w.Concepts[concept.SimilarOf]
		if !a.Covered(concept.Name) || !a.Covered(base.Name) {
			continue
		}
		aliases++
		if a.Exclusive(concept.Name, base.Name) {
			t.Errorf("alias %q discovered exclusive with base %q (sim=%v)",
				concept.Name, base.Name, a.Sim(concept.Name, base.Name))
		}
	}
	if aliases == 0 {
		t.Log("no covered alias pairs in this world; similarity branch unexercised")
	}
	if a.CoverageRate() == 0 {
		t.Error("no concepts covered")
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	a := Analyze(handKB(), Config{})
	if !a.Exclusive("a", "b") {
		t.Error("zero config should fall back to defaults")
	}
}
