package serve

import "container/list"

// lruCache is a mutex-guarded LRU map from string keys to immutable
// query results. Values cached by the service are never mutated after
// insertion (the snapshot layer returns fresh or shared-immutable
// slices), so handing the same value to many readers is safe.
type lruCache struct {
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRU returns a cache bounded to limit entries; limit <= 0 disables
// caching entirely (every Get misses, every Add is a no-op).
func newLRU(limit int) *lruCache {
	return &lruCache{max: limit, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached value and whether it was present, promoting the
// entry to most-recently-used. Callers must hold the service mutex.
func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes a key, evicting the least-recently-used entry
// when over capacity. Callers must hold the service mutex.
func (c *lruCache) add(key string, val any) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.ll.Len() }
