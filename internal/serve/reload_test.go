package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"driftclean/internal/fault"
	"driftclean/internal/snapshot"
)

// fakeClock is a manual clock for breaker-cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// reloadFixture wires a Reloader whose loader counts calls and fails on
// demand, recording every backoff sleep.
type reloadFixture struct {
	svc    *Service
	rl     *Reloader
	clock  *fakeClock
	slept  []time.Duration
	loads  int
	failed bool // loader returns an error while set
}

func newReloadFixture(t *testing.T, cfg ReloadConfig) *reloadFixture {
	t.Helper()
	f := &reloadFixture{
		svc:   New(snapshot.Freeze(chainKB(4)), Options{}),
		clock: &fakeClock{t: time.Unix(1000, 0)},
	}
	cfg.Sleep = func(d time.Duration) { f.slept = append(f.slept, d) }
	cfg.Now = f.clock.now
	f.rl = NewReloader(f.svc, func() (*snapshot.Snapshot, error) {
		f.loads++
		if f.failed {
			return nil, errors.New("disk gone")
		}
		return snapshot.Freeze(chainKB(4)), nil
	}, cfg)
	return f
}

// TestReloadRetriesTransientFailure: a reload whose first attempts hit
// injected faults must retry with backoff and eventually publish — and
// the service must come out fresh, not stale.
func TestReloadRetriesTransientFailure(t *testing.T) {
	inj := fault.New(1, map[string]fault.Rule{"serve.reload": {FailFirst: 2}})
	f := newReloadFixture(t, ReloadConfig{MaxAttempts: 4, Fault: inj})
	gen := f.svc.Generation()
	if err := f.rl.Reload(); err != nil {
		t.Fatalf("Reload with 2 transient failures and 4 attempts: %v", err)
	}
	if f.loads != 1 {
		t.Fatalf("loader ran %d times, want 1 (two attempts consumed by faults)", f.loads)
	}
	if len(f.slept) != 2 {
		t.Fatalf("slept %d times, want 2 (one backoff per failed attempt)", len(f.slept))
	}
	if f.svc.Stale() {
		t.Fatal("service marked stale after a successful reload")
	}
	if f.svc.Generation() == gen {
		t.Fatal("reload did not publish a new snapshot generation")
	}
}

// TestReloadBackoffGrowsAndIsDeterministic: the backoff schedule doubles
// (within the jitter band) up to the cap, and two reloaders with the
// same JitterSeed sleep the exact same schedule.
func TestReloadBackoffGrowsAndIsDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		inj := fault.New(1, map[string]fault.Rule{"serve.reload": {FailFirst: 1000}})
		f := newReloadFixture(t, ReloadConfig{
			MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
			JitterSeed: seed, Fault: inj,
		})
		if err := f.rl.Reload(); err == nil {
			t.Fatal("Reload succeeded with all attempts faulted")
		}
		return f.slept
	}
	a := run(7)
	if len(a) != 4 {
		t.Fatalf("slept %d times, want 4", len(a))
	}
	// Attempt i retries after base·2^(i-1) jittered into [d/2, d), capped.
	caps := []time.Duration{10, 20, 40, 40}
	for i, d := range a {
		max := caps[i] * time.Millisecond
		if d < max/2 || d >= max {
			t.Errorf("sleep %d = %v, want in [%v, %v)", i, d, max/2, max)
		}
	}
	b := run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed slept %v then %v", a, b)
		}
	}
}

// TestReloadFailureServesStaleLastGood: when every attempt fails, the
// last-good snapshot keeps serving and is marked stale; the next
// successful reload clears the flag.
func TestReloadFailureServesStaleLastGood(t *testing.T) {
	f := newReloadFixture(t, ReloadConfig{MaxAttempts: 2, BreakerThreshold: 100})
	f.failed = true
	gen := f.svc.Generation()
	if err := f.rl.Reload(); err == nil {
		t.Fatal("Reload succeeded with a failing loader")
	}
	if !f.svc.Stale() {
		t.Fatal("service not marked stale after reload failure")
	}
	if f.svc.Generation() != gen {
		t.Fatal("failed reload changed the published snapshot")
	}
	if _, err := f.svc.Stats(context.Background()); err != nil {
		t.Fatalf("stale service stopped answering queries: %v", err)
	}
	f.failed = false
	if err := f.rl.Reload(); err != nil {
		t.Fatalf("recovery reload: %v", err)
	}
	if f.svc.Stale() {
		t.Fatal("stale flag survived a successful reload")
	}
}

// TestReloadBreakerOpensAndRecovers: BreakerThreshold consecutive failed
// reloads open the breaker — further calls are shed without touching the
// loader — and after the cooldown a half-open trial can close it again.
func TestReloadBreakerOpensAndRecovers(t *testing.T) {
	f := newReloadFixture(t, ReloadConfig{
		MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 5 * time.Second,
	})
	f.failed = true
	for i := 0; i < 3; i++ {
		if err := f.rl.Reload(); errors.Is(err, ErrBreakerOpen) || err == nil {
			t.Fatalf("reload %d: err = %v, want plain failure", i, err)
		}
	}
	if !f.rl.BreakerOpen() {
		t.Fatal("breaker still closed after threshold failures")
	}
	loadsBefore := f.loads
	if err := f.rl.Reload(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if f.loads != loadsBefore {
		t.Fatal("open breaker still invoked the loader")
	}

	// Half-open trial that fails re-opens the breaker for a fresh cooldown.
	f.clock.advance(6 * time.Second)
	if err := f.rl.Reload(); errors.Is(err, ErrBreakerOpen) || err == nil {
		t.Fatalf("half-open trial: err = %v, want plain failure", err)
	}
	if !f.rl.BreakerOpen() {
		t.Fatal("failed half-open trial did not re-open the breaker")
	}

	// After another cooldown the loader recovers and the breaker closes.
	f.clock.advance(6 * time.Second)
	f.failed = false
	if err := f.rl.Reload(); err != nil {
		t.Fatalf("recovery reload: %v", err)
	}
	if f.rl.BreakerOpen() || f.svc.Stale() {
		t.Fatal("breaker or stale flag survived a successful reload")
	}
}

// TestQueryFaultInjection: an injector on the serve.* sites makes
// queries fail deterministically with ErrInjected — and a nil injector
// (the production default) never does.
func TestQueryFaultInjection(t *testing.T) {
	inj := fault.New(3, map[string]fault.Rule{"serve.*": {FailFirst: 2}})
	svc := New(snapshot.Freeze(chainKB(4)), Options{Fault: inj})
	ctx := context.Background()
	if _, err := svc.Stats(ctx); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first faulted query: %v, want ErrInjected", err)
	}
	if _, err := svc.Stats(ctx); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("second faulted query: %v, want ErrInjected", err)
	}
	if _, err := svc.Stats(ctx); err != nil {
		t.Fatalf("query after FailFirst window: %v", err)
	}
}
