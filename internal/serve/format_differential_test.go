package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"driftclean/internal/kb"
	"driftclean/internal/kb/binsnap"
	"driftclean/internal/kb/kbio"
)

// TestFormatsServeIdenticalResponses is the differential gate for the
// binary snapshot format: the same KB saved as gob and as binary,
// loaded back through the auto-detecting opener (gob → heap decode,
// binary → zero-copy mmap), must produce byte-identical JSON for every
// /v1/* response the service can emit — the serving layer is not
// allowed to know or care which representation backs a snapshot.
func TestFormatsServeIdenticalResponses(t *testing.T) {
	k := differentialKB(t)
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "kb.gob")
	binPath := filepath.Join(dir, "kb.bin")
	if err := k.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	if err := binsnap.WriteFile(binPath, k); err != nil {
		t.Fatal(err)
	}

	gobSnap, gf, err := kbio.FreezeFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	binSnap, bf, err := kbio.FreezeFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if gf != kbio.FormatGob || bf != kbio.FormatBinary {
		t.Fatalf("formats %v, %v", gf, bf)
	}

	t.Run("single service", func(t *testing.T) {
		assertServicesAgree(t, k,
			New(gobSnap, Options{}),
			New(binSnap, Options{}))
	})

	t.Run("sharded router", func(t *testing.T) {
		const shards = 3
		mk := func(path string) *Router {
			snap, _, err := kbio.FreezeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			ring := NewRing(shards, 0)
			parts := snap.Partition(shards, ring.Owner)
			svcs := make([]*Service, shards)
			for i := range svcs {
				svcs[i] = New(parts[i], Options{})
			}
			return NewRouter(svcs, ring, RouterOptions{})
		}
		assertServicesAgree(t, k, mk(gobPath), mk(binPath))
	})
}

// querySurface is the part of the /v1/* surface shared by Service and
// Router that the differential test drives.
type querySurface interface {
	Stats(ctx context.Context) (StatsResult, error)
	Concepts(ctx context.Context) ([]ConceptInfo, error)
	Instances(ctx context.Context, concept string) ([]InstanceInfo, error)
	Explain(ctx context.Context, concept, instance string, maxSupports int) (kb.Explanation, error)
	Drifted(ctx context.Context, concept string, n int) ([]DriftedInstance, error)
}

// assertServicesAgree compares the full query surface of two services
// backed by different snapshot formats of the same KB, response by
// response, at the JSON byte level.
func assertServicesAgree(t *testing.T, k *kb.KB, gobSvc, binSvc querySurface) {
	t.Helper()
	ctx := context.Background()

	// Generation is process-global freeze state, not response content;
	// it necessarily differs between the two freezes.
	wantStats, err1 := gobSvc.Stats(ctx)
	gotStats, err2 := binSvc.Stats(ctx)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	wantStats.Generation, gotStats.Generation = 0, 0
	assertSameJSON(t, "stats", wantStats, gotStats)

	compare := func(what string, f func(querySurface) (any, error)) {
		t.Helper()
		want, err1 := f(gobSvc)
		got, err2 := f(binSvc)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: errors diverge: gob=%v binary=%v", what, err1, err2)
		}
		if err1 != nil {
			// Failures must agree on classification and message too.
			if errors.Is(err1, ErrNotFound) != errors.Is(err2, ErrNotFound) || err1.Error() != err2.Error() {
				t.Fatalf("%s: errors diverge: gob=%v binary=%v", what, err1, err2)
			}
			return
		}
		assertSameJSON(t, what, want, got)
	}

	compare("concepts", func(s querySurface) (any, error) { return s.Concepts(ctx) })
	compare("drifted all", func(s querySurface) (any, error) { return s.Drifted(ctx, "", 50) })
	compare("instances of missing", func(s querySurface) (any, error) { return s.Instances(ctx, "no-such") })
	compare("explain of missing", func(s querySurface) (any, error) { return s.Explain(ctx, "no-such", "none", 0) })

	for _, c := range k.Concepts() {
		c := c
		compare("instances "+c, func(s querySurface) (any, error) { return s.Instances(ctx, c) })
		compare("drifted "+c, func(s querySurface) (any, error) { return s.Drifted(ctx, c, 10) })
		for _, e := range k.Instances(c) {
			e := e
			for _, maxS := range []int{0, 2} {
				maxS := maxS
				compare(fmt.Sprintf("explain %s/%s/%d", c, e, maxS), func(s querySurface) (any, error) {
					return s.Explain(ctx, c, e, maxS)
				})
			}
		}
	}
}

// assertSameJSON requires two responses to encode to identical bytes —
// the literal wire-format equality the HTTP layer inherits.
func assertSameJSON(t *testing.T, what string, want, got any) {
	t.Helper()
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(w) != string(g) {
		t.Fatalf("%s: responses differ\n gob:    %s\n binary: %s", what, w, g)
	}
}

// differentialKB grows a KB through the real mutation API: several
// concepts, multi-iteration trigger chains, shared instances across
// concepts, and rollback-induced inactive state.
func differentialKB(t *testing.T) *kb.KB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	k := kb.New()
	sentence := 0
	for c := 0; c < 5; c++ {
		concept := fmt.Sprintf("concept%d", c)
		known := []string{}
		for it := 1; it <= 4; it++ {
			for n := 0; n < 4; n++ {
				inst := fmt.Sprintf("c%d-i%d-e%d", c, it, n)
				var triggers []string
				if it > 1 {
					triggers = []string{known[rng.Intn(len(known))]}
				}
				k.AddExtraction(sentence, concept, []string{concept}, []string{inst}, triggers, it)
				sentence++
				known = append(known, inst)
			}
		}
		// A shared instance under every concept exercises the reverse
		// index, and a rollback leaves inactive extractions behind.
		k.AddExtraction(sentence, concept, nil, []string{"shared-instance"}, []string{known[0]}, 4)
		sentence++
		k.RemovePairs([]kb.Pair{{Concept: concept, Instance: fmt.Sprintf("c%d-i2-e0", c)}})
	}
	return k
}
