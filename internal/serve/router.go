// Router: scatter-gather serving over a concept-sharded fleet.
//
// The KB is partitioned by concept (consistent hashing, see Ring) into
// N independent Services, each holding its own snapshot shard with its
// own cache, admission queue and reload/stale state — one shard
// rebuilding or failing never blocks the rest. The Router is the
// fleet's single query façade: listing queries (Concepts, Stats, the
// fleet-wide Drifted) scatter to every shard and merge deterministically,
// point lookups (Instances, Explain, concept-scoped Drifted) route
// straight to the owning shard. For the same underlying snapshot, the
// merged responses are byte-identical at any shard count — sharding is
// a capacity decision, never a semantic one.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"driftclean/internal/fault"
	"driftclean/internal/kb"
)

// ErrShard is wrapped into every scatter-gather error caused by a shard
// failing or timing out. HTTP layers map it onto 503: the fleet is
// partially unavailable, the request was not at fault.
var ErrShard = errors.New("serve: shard failure")

// Querier is the read-side query surface shared by a single Service and
// a sharded Router, so transports serve either through one code path.
type Querier interface {
	Stats(ctx context.Context) (StatsResult, error)
	Concepts(ctx context.Context) ([]ConceptInfo, error)
	Instances(ctx context.Context, concept string) ([]InstanceInfo, error)
	Explain(ctx context.Context, concept, instance string, maxSupports int) (kb.Explanation, error)
	Drifted(ctx context.Context, concept string, n int) ([]DriftedInstance, error)
	Generation() uint64
	Stale() bool
	ExpvarHandler() http.Handler
}

// Compile-time checks that both backends satisfy the shared surface.
var (
	_ Querier = (*Service)(nil)
	_ Querier = (*Router)(nil)
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// AllowPartial turns shard failures during scatter-gather into
	// degraded responses: the healthy shards' results merge normally and
	// the request's GatherStatus (WithGatherStatus) is marked degraded.
	// When false (the default), any shard failure fails the whole gather
	// with an ErrShard-wrapped error — strict mode never serves a
	// partial listing silently.
	AllowPartial bool
	// Fault, when non-nil, is consulted at the "serve.route" site on
	// every point lookup and the "serve.gather" site on every
	// scatter-gather (chaos testing); nil is the production no-op.
	Fault *fault.Injector
}

// Router scatter-gathers queries over a fleet of concept-sharded
// Services. All methods are safe for concurrent use.
type Router struct {
	shards       []*Service
	ring         *Ring
	allowPartial bool
	fault        *fault.Injector
}

// NewRouter builds a Router over the given shard services. Shard i must
// hold the snapshot partition the ring assigns to index i — the caller
// (driftserve, the load harness) partitions via ring.Owner and keeps
// the two aligned. The ring's shard count must equal len(shards).
func NewRouter(shards []*Service, ring *Ring, opts RouterOptions) *Router {
	if ring.Shards() != len(shards) {
		panic(fmt.Sprintf("serve: ring has %d shards, got %d services", ring.Shards(), len(shards)))
	}
	return &Router{
		shards:       shards,
		ring:         ring,
		allowPartial: opts.AllowPartial,
		fault:        opts.Fault,
	}
}

// NumShards returns the fleet size.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns shard i's Service (for per-shard reload wiring and
// tests).
func (r *Router) Shard(i int) *Service { return r.shards[i] }

// Owner returns the index of the shard owning the concept.
func (r *Router) Owner(concept string) int { return r.ring.Owner(concept) }

// Generation returns the largest generation any shard is serving. While
// a rolling reload is in flight, shards legitimately diverge; the
// newest generation together with Stale describes the fleet state.
func (r *Router) Generation() uint64 {
	var g uint64
	for _, s := range r.shards {
		if sg := s.Generation(); sg > g {
			g = sg
		}
	}
	return g
}

// Stale reports whether any shard is serving a stale snapshot.
func (r *Router) Stale() bool {
	for _, s := range r.shards {
		if s.Stale() {
			return true
		}
	}
	return false
}

// route resolves a point lookup to its owning shard, consulting the
// serve.route fault site.
func (r *Router) route(concept string) (*Service, error) {
	if err := r.fault.Hit("serve.route"); err != nil {
		return nil, fmt.Errorf("serve: routing %q: %w", concept, err)
	}
	return r.shards[r.ring.Owner(concept)], nil
}

// Stats sums every shard's scoped statistics into the fleet aggregate.
// Because pairs and extractions partition cleanly by concept, the sum
// equals the unsharded snapshot's statistics exactly.
func (r *Router) Stats(ctx context.Context) (StatsResult, error) {
	per, ok, err := gather(ctx, r, func(s *Service) (StatsResult, error) {
		return s.Stats(ctx)
	})
	if err != nil {
		return StatsResult{}, err
	}
	var out StatsResult
	for i, sr := range per {
		if !ok[i] {
			continue
		}
		if sr.Generation > out.Generation {
			out.Generation = sr.Generation
		}
		out.Stats.Concepts += sr.Stats.Concepts
		out.Stats.DistinctPairs += sr.Stats.DistinctPairs
		out.Stats.TotalCount += sr.Stats.TotalCount
		out.Stats.ActiveExtractions += sr.Stats.ActiveExtractions
	}
	return out, nil
}

// Concepts scatter-gathers every shard's concept listing and merges by
// name. Ownership is disjoint, so sorting the concatenation reproduces
// the unsharded sorted listing byte for byte.
func (r *Router) Concepts(ctx context.Context) ([]ConceptInfo, error) {
	per, ok, err := gather(ctx, r, func(s *Service) ([]ConceptInfo, error) {
		return s.Concepts(ctx)
	})
	if err != nil {
		return nil, err
	}
	var out []ConceptInfo
	for i, cs := range per {
		if ok[i] {
			out = append(out, cs...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if out == nil {
		out = []ConceptInfo{} // healthy-but-empty fleets answer [], not null
	}
	return out, nil
}

// Instances routes to the shard owning the concept.
func (r *Router) Instances(ctx context.Context, concept string) ([]InstanceInfo, error) {
	s, err := r.route(concept)
	if err != nil {
		return nil, err
	}
	return s.Instances(ctx, concept)
}

// Explain routes to the shard owning the concept.
func (r *Router) Explain(ctx context.Context, concept, instance string, maxSupports int) (kb.Explanation, error) {
	s, err := r.route(concept)
	if err != nil {
		return kb.Explanation{}, err
	}
	return s.Explain(ctx, concept, instance, maxSupports)
}

// Drifted ranks provenance-chain depths. With a concept it routes to
// the owning shard; with an empty concept it scatter-gathers each
// shard's local top-n and re-ranks the union under the same canonical
// order (depth descending, concept, name), which yields exactly the
// unsharded fleet-wide ranking: the global top n is always contained in
// the union of per-shard top n.
func (r *Router) Drifted(ctx context.Context, concept string, n int) ([]DriftedInstance, error) {
	if concept != "" {
		s, err := r.route(concept)
		if err != nil {
			return nil, err
		}
		return s.Drifted(ctx, concept, n)
	}
	per, ok, err := gather(ctx, r, func(s *Service) ([]DriftedInstance, error) {
		return s.Drifted(ctx, "", n)
	})
	if err != nil {
		return nil, err
	}
	var rows []DriftedInstance
	for i, rs := range per {
		if ok[i] {
			rows = append(rows, rs...)
		}
	}
	sortDrifted(rows)
	if len(rows) > n {
		rows = rows[:n:n]
	}
	if rows == nil {
		rows = []DriftedInstance{}
	}
	return rows, nil
}

// Metrics returns the fleet-wide aggregate of every shard's metrics.
func (r *Router) Metrics() Metrics {
	var m Metrics
	for _, s := range r.shards {
		m.merge(s.Metrics())
	}
	return m
}

// ShardMetrics returns each shard's own metrics, indexed by shard.
func (r *Router) ShardMetrics() []Metrics {
	out := make([]Metrics, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.Metrics()
	}
	return out
}

// ExpvarHandler serves the fleet aggregate under "driftserve" (the same
// shape a single Service exports) plus the per-shard breakdown under
// "shards".
func (r *Router) ExpvarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeExpvar(w, map[string]any{
			"driftserve": r.Metrics(),
			"shards":     r.ShardMetrics(),
		})
	})
}

// gather runs call against every shard concurrently and collects the
// results in shard order (the slice index is the shard index; ok marks
// which entries are valid). In strict mode any shard error fails the
// gather with an ErrShard-wrapped error naming the lowest failing
// shard. With AllowPartial, failures degrade the response instead: the
// request's GatherStatus is marked and only the healthy shards' results
// come back — unless every shard failed, which is an error either way.
func gather[T any](ctx context.Context, r *Router, call func(*Service) (T, error)) ([]T, []bool, error) {
	if err := r.fault.Hit("serve.gather"); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrShard, err)
	}
	n := len(r.shards)
	res := make([]T, n)
	errs := make([]error, n)
	if n == 1 {
		// Single-shard fleets skip the goroutine fan-out; the merge path
		// stays identical.
		res[0], errs[0] = call(r.shards[0])
	} else {
		var wg sync.WaitGroup
		for i, s := range r.shards {
			wg.Add(1)
			go func(i int, s *Service) {
				defer wg.Done()
				res[i], errs[i] = call(s)
			}(i, s)
		}
		wg.Wait()
	}
	ok := make([]bool, n)
	failed := 0
	firstErr := -1
	for i, err := range errs {
		ok[i] = err == nil
		if err != nil {
			failed++
			if firstErr < 0 {
				firstErr = i
			}
		}
	}
	if failed == 0 {
		return res, ok, nil
	}
	if !r.allowPartial || failed == n {
		return nil, nil, fmt.Errorf("%w: shard %d of %d: %w", ErrShard, firstErr, n, errs[firstErr])
	}
	markDegraded(ctx, failed)
	return res, ok, nil
}

// GatherStatus records, per request, whether a scatter-gather response
// was degraded by shard failures (AllowPartial mode). Transports attach
// one with WithGatherStatus and surface Degraded to the client (the
// X-Driftclean-Degraded header).
type GatherStatus struct {
	degraded     atomic.Bool
	failedShards atomic.Int64
}

// Degraded reports whether any gather under this request lost shards.
func (g *GatherStatus) Degraded() bool { return g.degraded.Load() }

// FailedShards returns how many shard calls failed across the request's
// gathers.
func (g *GatherStatus) FailedShards() int { return int(g.failedShards.Load()) }

type gatherStatusKey struct{}

// WithGatherStatus derives a context carrying a fresh GatherStatus for
// one request.
func WithGatherStatus(ctx context.Context) (context.Context, *GatherStatus) {
	gs := &GatherStatus{}
	return context.WithValue(ctx, gatherStatusKey{}, gs), gs
}

// markDegraded flags the request's GatherStatus, when one is attached.
func markDegraded(ctx context.Context, failed int) {
	if gs, ok := ctx.Value(gatherStatusKey{}).(*GatherStatus); ok {
		gs.degraded.Store(true)
		gs.failedShards.Add(int64(failed))
	}
}
