package serve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultRingReplicas is the virtual-node count per shard used when
// NewRing is given zero replicas. 128 vnodes keep the per-shard load
// spread within a few percent of uniform at the fleet sizes this server
// targets while the ring stays small enough that Owner's binary search
// is a handful of cache lines.
const DefaultRingReplicas = 128

// Ring is a consistent-hash ring mapping concept IDs onto shard
// indices. Each shard contributes `replicas` virtual nodes, placed by
// hashing "shard/<i>/<v>"; a concept is owned by the shard whose vnode
// is the first at or clockwise after the concept's own hash. The
// mapping is a pure function of (shards, replicas, concept), so every
// process — router, load harness, test — derives identical ownership
// without coordination, and growing the fleet by one shard remaps only
// the keys landing in the new shard's arcs instead of rehashing
// everything (the property that makes incremental resharding cheap).
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	shards int
	hashes []uint64 // sorted vnode positions
	owners []int    // owners[i] = shard owning hashes[i]
}

// NewRing builds a ring of the given shard count. replicas is the
// virtual-node count per shard; 0 selects DefaultRingReplicas. Shard
// counts below one are treated as one.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	type vnode struct {
		hash  uint64
		shard int
	}
	vns := make([]vnode, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			key := "shard/" + strconv.Itoa(s) + "/" + strconv.Itoa(v)
			vns = append(vns, vnode{hash: hashKey(key), shard: s})
		}
	}
	// Ties (astronomically unlikely 64-bit collisions) break toward the
	// lower shard index so ownership stays deterministic regardless.
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].hash != vns[j].hash {
			return vns[i].hash < vns[j].hash
		}
		return vns[i].shard < vns[j].shard
	})
	r := &Ring{
		shards: shards,
		hashes: make([]uint64, len(vns)),
		owners: make([]int, len(vns)),
	}
	for i, vn := range vns {
		r.hashes[i] = vn.hash
		r.owners[i] = vn.shard
	}
	return r
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the index of the shard owning the concept, in
// [0, Shards()).
func (r *Ring) Owner(concept string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashKey(concept)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: past the last vnode, ownership circles to the first
	}
	return r.owners[i]
}

// hashKey is the ring's hash function: FNV-64a finished with a
// murmur-style avalanche. Raw FNV is weak on exactly the keys rings
// see — families sharing a long prefix and differing in a short suffix
// ("person-17", "person-18", vnode keys themselves) land within a few
// multiples of the FNV prime of each other, clustering whole families
// into one arc and starving shards. The finalizer diffuses every input
// bit across the word, restoring a uniform spread while staying a pure,
// dependency-free function.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit finalizer from MurmurHash3 (public domain).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
