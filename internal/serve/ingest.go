package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"driftclean/internal/corpus"
	"driftclean/internal/fault"
	"driftclean/internal/snapshot"
)

// IngestRun advances the underlying incremental pipeline by one
// sentence batch and returns the new checkpoint's snapshot. The root
// package's Session provides the canonical implementation (Ingest
// followed by Publish); tests substitute stubs.
type IngestRun func(ctx context.Context, batch []corpus.Sentence) (*snapshot.Snapshot, error)

// Ingester bridges the write side of the incremental pipeline to the
// read side of the service: each Ingest call runs one pipeline
// checkpoint and, only on success, hot-swaps the resulting snapshot
// into the service. On any failure the current snapshot is left
// untouched and merely marked stale — readers keep getting complete,
// consistent answers from the last good generation, never a torn view
// of a half-applied batch. The pipeline itself rolls a failed batch
// back (Session's failure atomicity), so the same batch can be retried
// and a later success clears the stale flag via Swap.
//
// Ingest calls are serialized by an internal mutex, matching the
// single-writer contract of the pipeline underneath.
type Ingester struct {
	svc   *Service
	run   IngestRun
	fault *fault.Injector

	mu      sync.Mutex // serializes Ingest (single-writer pipeline contract)
	batches atomic.Int64
}

// NewIngester builds an Ingester publishing run's snapshots to svc.
// fault, when non-nil, is consulted at the "serve.ingest" site once per
// Ingest call (chaos testing); nil is the production no-op.
func NewIngester(svc *Service, run IngestRun, fi *fault.Injector) *Ingester {
	return &Ingester{svc: svc, run: run, fault: fi}
}

// Batches returns the number of successfully ingested batches. It reads
// an atomic counter rather than taking the ingest mutex, so monitoring
// endpoints polling it never block behind an in-flight (possibly slow
// or wedged) pipeline checkpoint.
func (g *Ingester) Batches() int {
	return int(g.batches.Load())
}

// Ingest runs one pipeline checkpoint over the batch and publishes the
// resulting snapshot, returning its generation. On failure the
// service's snapshot is untouched and marked stale, and the error is
// returned for the transport layer to surface.
func (g *Ingester) Ingest(ctx context.Context, batch []corpus.Sentence) (generation uint64, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if err := g.fault.Hit("serve.ingest"); err != nil {
		g.svc.MarkStale(true)
		return 0, fmt.Errorf("serve: ingest failed: %w", err)
	}
	snap, err := g.run(ctx, batch)
	if err != nil {
		g.svc.MarkStale(true)
		return 0, fmt.Errorf("serve: ingest failed: %w", err)
	}
	g.svc.Swap(snap)
	g.batches.Add(1)
	return snap.Generation(), nil
}
