package serve

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"driftclean/internal/snapshot"
)

// blockingQuery issues one query through the service's shared do() path
// whose compute blocks until release is closed. Distinct qkeys keep the
// singleflight group from coalescing the requests.
func blockingQuery(svc *Service, qkey string, entered chan<- struct{}, release <-chan struct{}) error {
	_, err := svc.do(context.Background(), "stats", qkey, func(*snapshot.Snapshot) (any, error) {
		entered <- struct{}{}
		<-release
		return StatsResult{}, nil
	})
	return err
}

// TestAdmissionShedsBeyondQueueDepth: with MaxInflight=1 and
// QueueDepth=1, the first query executes, the second waits, and the
// third is shed immediately with ErrOverloaded — then everything
// settles once the slot frees.
func TestAdmissionShedsBeyondQueueDepth(t *testing.T) {
	svc, _ := testService(t, 4, Options{MaxInflight: 1, QueueDepth: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = blockingQuery(svc, "q0", entered, release) }()
	<-entered // first query holds the only execution slot

	wg.Add(1)
	go func() { defer wg.Done(); errs[1] = blockingQuery(svc, "q1", entered, release) }()
	waitFor(t, func() bool { return svc.adm.waiting.Load() == 1 })

	// Queue full: the third query must shed, not block.
	start := time.Now()
	_, err := svc.Stats(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v; must be immediate, not queued", d)
	}

	close(release)
	<-entered // queued query proceeds into compute once the slot frees
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	if got := svc.Metrics().Shed; got != 1 {
		t.Errorf("Metrics().Shed = %d, want 1", got)
	}
}

// TestAdmissionQueuedCallerCanGiveUp: a query waiting for a slot honors
// its context instead of waiting forever.
func TestAdmissionQueuedCallerCanGiveUp(t *testing.T) {
	svc, _ := testService(t, 4, Options{MaxInflight: 1, QueueDepth: 4})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)

	go func() { _ = blockingQuery(svc, "hold", entered, release) }()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.Stats(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return svc.adm.waiting.Load() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query err = %v, want context.Canceled", err)
	}
	if got := svc.Metrics().Shed; got != 0 {
		t.Errorf("a canceled wait is not a shed; Shed = %d", got)
	}
}

// TestAdmissionDisabledIsUnbounded: MaxInflight=0 leaves admission off
// — arbitrary concurrency, nothing shed.
func TestAdmissionDisabledIsUnbounded(t *testing.T) {
	svc, _ := testService(t, 4, Options{})
	if svc.adm != nil {
		t.Fatal("MaxInflight=0 must disable admission control")
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := svc.Drifted(context.Background(), "c", 1+i%4); err != nil {
				t.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := svc.Metrics().Shed; got != 0 {
		t.Errorf("Shed = %d, want 0", got)
	}
}

// TestAdmissionConcurrencyCap: with MaxInflight=2 and a deep queue, no
// more than two computes ever run at once even under a burst.
func TestAdmissionConcurrencyCap(t *testing.T) {
	svc, _ := testService(t, 4, Options{MaxInflight: 2, QueueDepth: 64})
	var mu sync.Mutex
	inflight, peak := 0, 0

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := svc.do(context.Background(), "stats", "burst-"+strconv.Itoa(i), func(*snapshot.Snapshot) (any, error) {
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
				inflight--
				mu.Unlock()
				return StatsResult{}, nil
			})
			if err != nil {
				t.Errorf("burst query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if peak > 2 {
		t.Errorf("peak inflight = %d, want <= 2", peak)
	}
}
