package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"driftclean/internal/fault"
	"driftclean/internal/snapshot"
)

// ErrBreakerOpen is returned by Reloader.Reload while the circuit
// breaker is open: enough consecutive reload attempts have failed that
// further tries are suppressed until the cooldown elapses. The service
// keeps serving its last-good snapshot (marked stale) the whole time.
var ErrBreakerOpen = errors.New("serve: reload circuit breaker open")

// ReloadConfig tunes the retry and circuit-breaker behavior of a
// Reloader. The zero value selects sensible production defaults.
type ReloadConfig struct {
	// MaxAttempts bounds the load attempts of one Reload call
	// (default 4).
	MaxAttempts int
	// BaseDelay is the first retry's backoff (default 50ms); each
	// further retry doubles it, capped at MaxDelay (default 2s). The
	// actual sleep is jittered deterministically into [delay/2, delay).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed seeds the deterministic backoff jitter; two Reloaders
	// with the same seed sleep identical schedules.
	JitterSeed int64
	// BreakerThreshold is the number of consecutive failed Reload calls
	// (each already MaxAttempts deep) that opens the breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a
	// half-open trial reload is allowed (default 5s).
	BreakerCooldown time.Duration
	// Sleep and Now are test seams; nil means time.Sleep and time.Now.
	Sleep func(time.Duration)
	Now   func() time.Time
	// Fault, when non-nil, is consulted at the "serve.reload" site once
	// per load attempt (chaos testing); nil is the production no-op.
	Fault *fault.Injector
}

// withDefaults fills the zero-valued knobs.
func (c ReloadConfig) withDefaults() ReloadConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Reloader wraps a snapshot loader with capped-exponential-backoff
// retries and a circuit breaker, publishing successful loads to a
// Service via Swap. While loads fail, the service's last-good snapshot
// keeps serving and is marked stale; the first success clears the flag.
// Reload is serialized — concurrent calls queue behind the mutex — which
// matches its use from an HTTP handler and a SIGHUP goroutine.
type Reloader struct {
	svc  *Service
	load func() (*snapshot.Snapshot, error)
	cfg  ReloadConfig

	mu          sync.Mutex
	consecFails int       // consecutive failed Reload calls
	openUntil   time.Time // breaker open until this instant (zero = closed)
	draws       uint64    // jitter stream position
}

// NewReloader builds a Reloader that publishes to svc whatever load
// returns.
func NewReloader(svc *Service, load func() (*snapshot.Snapshot, error), cfg ReloadConfig) *Reloader {
	return &Reloader{svc: svc, load: load, cfg: cfg.withDefaults()}
}

// Reload attempts to load and publish a fresh snapshot, retrying with
// capped exponential backoff and deterministic jitter. It returns nil on
// success, ErrBreakerOpen while the breaker is open, and otherwise the
// last load error (wrapped). Any failure marks the service stale; the
// BreakerThreshold-th consecutive failure opens the breaker for
// BreakerCooldown, after which the next call runs a half-open trial.
func (r *Reloader) Reload() error {
	r.mu.Lock()
	defer r.mu.Unlock()

	now := r.cfg.Now()
	if !r.openUntil.IsZero() && now.Before(r.openUntil) {
		return fmt.Errorf("%w until %s", ErrBreakerOpen, r.openUntil.Format(time.RFC3339))
	}

	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.cfg.Sleep(r.backoff(attempt))
		}
		if err := r.cfg.Fault.Hit("serve.reload"); err != nil {
			lastErr = err
			continue
		}
		snap, err := r.load()
		if err != nil {
			lastErr = err
			continue
		}
		r.svc.Swap(snap) // Swap clears the stale flag
		r.consecFails = 0
		r.openUntil = time.Time{}
		return nil
	}

	r.svc.MarkStale(true)
	r.consecFails++
	if r.consecFails >= r.cfg.BreakerThreshold {
		// Open (or re-open after a failed half-open trial). The cooldown
		// restarts from now.
		r.openUntil = r.cfg.Now().Add(r.cfg.BreakerCooldown)
	}
	return fmt.Errorf("serve: reload failed after %d attempts: %w", r.cfg.MaxAttempts, lastErr)
}

// BreakerOpen reports whether the breaker is currently open (a Reload
// call right now would be rejected without trying).
func (r *Reloader) BreakerOpen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.openUntil.IsZero() && r.cfg.Now().Before(r.openUntil)
}

// backoff computes the jittered delay before the given retry attempt
// (attempt >= 1): base·2^(attempt-1) capped at MaxDelay, then scaled
// deterministically into [1/2, 1) of itself so synchronized reloaders
// de-correlate without losing reproducibility.
func (r *Reloader) backoff(attempt int) time.Duration {
	d := r.cfg.BaseDelay << (attempt - 1)
	if d > r.cfg.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = r.cfg.MaxDelay
	}
	r.draws++
	u := jitterUnit(uint64(r.cfg.JitterSeed), r.draws)
	return d/2 + time.Duration(u*float64(d/2))
}

// jitterUnit maps (seed, draw index) onto [0, 1) with a splitmix64 mix —
// deterministic, dependency-free, and independent per draw.
func jitterUnit(seed, k uint64) float64 {
	z := seed + k*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
