package serve

import (
	"strconv"
	"testing"
)

// ringKeys generates a deterministic key population for distribution
// and consistency checks.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "concept-" + strconv.Itoa(i)
	}
	return keys
}

// TestRingDeterministic: two rings built from the same parameters agree
// on every owner — ownership is a pure function of (shards, replicas,
// concept), the property every process in the fleet relies on.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingOwnerInRange: every owner is a valid shard index, at every
// shard count including the degenerate ones.
func TestRingOwnerInRange(t *testing.T) {
	keys := ringKeys(500)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		r := NewRing(shards, 32)
		if r.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), shards)
		}
		for _, k := range keys {
			if o := r.Owner(k); o < 0 || o >= shards {
				t.Fatalf("Owner(%q) = %d, out of [0,%d)", k, o, shards)
			}
		}
	}
}

// TestRingClampsDegenerateInputs: shard counts below one collapse to a
// single shard that owns everything.
func TestRingClampsDegenerateInputs(t *testing.T) {
	for _, shards := range []int{0, -3} {
		r := NewRing(shards, 0)
		if r.Shards() != 1 {
			t.Fatalf("NewRing(%d) shards = %d, want 1", shards, r.Shards())
		}
		if o := r.Owner("anything"); o != 0 {
			t.Fatalf("single-shard owner = %d, want 0", o)
		}
	}
}

// TestRingDistribution: with the default vnode count, 8 shards over a
// few thousand keys each own a reasonable share — no shard starves and
// no shard hogs. The bound is loose (2x of uniform either way); the
// test guards against a broken hash or a wrap bug collapsing ownership,
// not against statistical noise.
func TestRingDistribution(t *testing.T) {
	const shards, nkeys = 8, 4000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for _, k := range ringKeys(nkeys) {
		counts[r.Owner(k)]++
	}
	uniform := nkeys / shards
	for s, c := range counts {
		if c < uniform/2 || c > uniform*2 {
			t.Errorf("shard %d owns %d keys (uniform %d): distribution collapsed (%v)",
				s, c, uniform, counts)
		}
	}
}

// TestRingConsistencyUnderGrowth: growing the fleet from n to n+1
// shards must remap roughly 1/(n+1) of the keys — the consistent-
// hashing property. A modulo-style hash would remap nearly all of them;
// the test allows up to twice the ideal fraction.
func TestRingConsistencyUnderGrowth(t *testing.T) {
	keys := ringKeys(4000)
	for _, n := range []int{3, 7} {
		before, after := NewRing(n, 0), NewRing(n+1, 0)
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != after.Owner(k) {
				moved++
			}
		}
		ideal := len(keys) / (n + 1)
		if moved > 2*ideal {
			t.Errorf("%d -> %d shards moved %d/%d keys, want <= %d (2x ideal %d)",
				n, n+1, moved, len(keys), 2*ideal, ideal)
		}
		if moved == 0 {
			t.Errorf("%d -> %d shards moved no keys: new shard owns nothing", n, n+1)
		}
	}
}
