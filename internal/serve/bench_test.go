package serve

import (
	"context"
	"testing"

	"driftclean/internal/snapshot"
)

// benchChainLen sizes the drift chain so the cold path does real
// traversal work (DriftDepth walks every provenance chain) while the
// cached path is a map lookup — the ≥10× p50 gap the serving layer
// exists to provide.
const benchChainLen = 600

// BenchmarkServeCold measures the uncached query path: caching disabled,
// every Drifted call re-ranks the whole concept.
func BenchmarkServeCold(b *testing.B) {
	svc := New(snapshot.Freeze(chainKB(benchChainLen)), Options{CacheSize: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Drifted(ctx, "c", 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCached measures the same query repeated against the LRU
// cache (first call primes it before the timer starts).
func BenchmarkServeCached(b *testing.B) {
	svc := New(snapshot.Freeze(chainKB(benchChainLen)), Options{})
	ctx := context.Background()
	if _, err := svc.Drifted(ctx, "c", 20); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Drifted(ctx, "c", 20); err != nil {
			b.Fatal(err)
		}
	}
}
