// Package serve is the embeddable KB query service behind the
// driftserve HTTP server. It holds an atomically-swappable current
// snapshot (internal/snapshot), so a hot reload is one pointer store
// and readers never block; an LRU result cache keyed by (snapshot
// generation, query), so repeated queries cost a map lookup and a swap
// implicitly invalidates everything; singleflight coalescing, so a
// stampede of identical cold queries computes once; and per-endpoint
// counters and latency histograms exposed via ExpvarHandler.
//
// Concurrency model: the KB itself stays single-writer and is never
// touched here — the pipeline mutates its *kb.KB wherever it likes,
// freezes a snapshot when a consistent view is ready, and hands it to
// Swap. Every read in this package goes to an immutable snapshot, which
// is why no query path takes a lock around KB state.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"driftclean/internal/fault"
	"driftclean/internal/kb"
	"driftclean/internal/snapshot"
)

// Typed sentinel errors; HTTP layers map these onto status codes.
var (
	// ErrNoSnapshot is returned while the service has no snapshot yet.
	ErrNoSnapshot = errors.New("serve: no snapshot loaded")
	// ErrNotFound is returned for unknown concepts or pairs.
	ErrNotFound = errors.New("serve: not found")
)

// DefaultCacheSize is the result-cache capacity used when Options leaves
// CacheSize zero.
const DefaultCacheSize = 4096

// Options configures a Service.
type Options struct {
	// CacheSize bounds the LRU result cache: 0 means DefaultCacheSize,
	// negative disables caching (every query recomputes).
	CacheSize int
	// MaxInflight caps the queries executing concurrently (admission
	// control); 0 means unlimited. When the cap is reached, up to
	// QueueDepth further queries wait for a slot and everything beyond
	// that is shed immediately with ErrOverloaded (HTTP 429).
	MaxInflight int
	// QueueDepth bounds the admission queue behind MaxInflight; it is
	// only meaningful when MaxInflight is positive.
	QueueDepth int
	// Fault, when non-nil, is consulted at the "serve.<endpoint>" site on
	// every query (chaos testing); an injected error surfaces to the
	// caller exactly like a compute failure. nil is the production no-op.
	Fault *fault.Injector
}

// endpointNames enumerate the query surface; each gets its own metrics.
var endpointNames = []string{"stats", "concepts", "instances", "explain", "drifted"}

// Service serves read queries over an atomically-swappable snapshot.
// Create with New; all methods are safe for concurrent use.
type Service struct {
	cur   atomic.Pointer[snapshot.Snapshot]
	swaps atomic.Int64
	// stale marks the published snapshot as last-good-but-outdated: a
	// reload has failed since it was published. Queries keep succeeding
	// against it; HTTP layers surface the flag (X-Driftclean-Stale).
	stale atomic.Bool

	mu    sync.Mutex // guards cache
	cache *lruCache

	flights *flightGroup
	metrics map[string]*endpointMetrics
	adm     *admission // nil when admission control is disabled
	fault   *fault.Injector
}

// New returns a Service serving the given snapshot (which may be nil;
// queries then fail with ErrNoSnapshot until the first Swap).
func New(snap *snapshot.Snapshot, opts Options) *Service {
	size := opts.CacheSize
	switch {
	case size == 0:
		size = DefaultCacheSize
	case size < 0:
		size = 0
	}
	s := &Service{
		cache:   newLRU(size),
		flights: newFlightGroup(),
		metrics: make(map[string]*endpointMetrics, len(endpointNames)),
		adm:     newAdmission(opts.MaxInflight, opts.QueueDepth),
		fault:   opts.Fault,
	}
	for _, name := range endpointNames {
		s.metrics[name] = new(endpointMetrics)
	}
	if snap != nil {
		s.cur.Store(snap)
	}
	return s
}

// Swap atomically publishes a new current snapshot and returns the
// previous one (nil on first load). In-flight queries keep reading the
// snapshot they started with; new queries see the new one. Cached
// results of older generations age out of the LRU naturally — their
// keys embed the generation, so they can never be returned for the new
// snapshot.
func (s *Service) Swap(snap *snapshot.Snapshot) (prev *snapshot.Snapshot) {
	prev = s.cur.Swap(snap)
	s.swaps.Add(1)
	s.stale.Store(false) // a successful publish is fresh by definition
	return prev
}

// MarkStale flags (or unflags) the current snapshot as stale — still
// served, but known to be outdated because a reload failed. Swap clears
// the flag.
func (s *Service) MarkStale(stale bool) { s.stale.Store(stale) }

// Stale reports whether the current snapshot is marked stale.
func (s *Service) Stale() bool { return s.stale.Load() }

// Current returns the currently-published snapshot (nil if none).
func (s *Service) Current() *snapshot.Snapshot { return s.cur.Load() }

// Generation returns the current snapshot's generation, 0 if none.
func (s *Service) Generation() uint64 {
	if snap := s.cur.Load(); snap != nil {
		return snap.Generation()
	}
	return 0
}

// StatsResult is the stats endpoint's payload.
type StatsResult struct {
	Generation uint64   `json:"generation"`
	Stats      kb.Stats `json:"stats"`
}

// ConceptInfo summarizes one concept for listings.
type ConceptInfo struct {
	Name      string `json:"name"`
	Instances int    `json:"instances"`
}

// InstanceInfo summarizes one instance of a concept.
type InstanceInfo struct {
	Name         string `json:"name"`
	Count        int    `json:"count"`
	SubInstances int    `json:"sub_instances"`
}

// DriftedInstance is one row of a drift ranking. Concept is set only in
// fleet-wide rankings (Drifted with an empty concept), where rows from
// different concepts mix; concept-scoped rankings omit it, keeping
// their wire format unchanged.
type DriftedInstance struct {
	Concept string `json:"concept,omitempty"`
	Name    string `json:"name"`
	Depth   int    `json:"depth"`
}

// Stats returns aggregate statistics of the current snapshot.
func (s *Service) Stats(ctx context.Context) (StatsResult, error) {
	v, err := s.do(ctx, "stats", "", func(snap *snapshot.Snapshot) (any, error) {
		return StatsResult{Generation: snap.Generation(), Stats: snap.Stats()}, nil
	})
	if err != nil {
		return StatsResult{}, err
	}
	return v.(StatsResult), nil
}

// Concepts lists every concept with its instance count.
func (s *Service) Concepts(ctx context.Context) ([]ConceptInfo, error) {
	v, err := s.do(ctx, "concepts", "", func(snap *snapshot.Snapshot) (any, error) {
		concepts := snap.Concepts()
		out := make([]ConceptInfo, 0, len(concepts))
		for i, c := range concepts {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out = append(out, ConceptInfo{Name: c, Instances: len(snap.Instances(c))})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]ConceptInfo), nil
}

// Instances lists a concept's instances with support counts and
// sub-instance fan-out. Unknown concepts yield ErrNotFound.
func (s *Service) Instances(ctx context.Context, concept string) ([]InstanceInfo, error) {
	v, err := s.do(ctx, "instances", concept, func(snap *snapshot.Snapshot) (any, error) {
		if !snap.HasConcept(concept) {
			return nil, fmt.Errorf("%w: concept %q", ErrNotFound, concept)
		}
		names := snap.Instances(concept)
		out := make([]InstanceInfo, 0, len(names))
		for i, e := range names {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out = append(out, InstanceInfo{
				Name:         e,
				Count:        snap.Count(concept, e),
				SubInstances: len(snap.SubInstances(concept, e)),
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]InstanceInfo), nil
}

// Explain traces the provenance of one isA pair. Missing pairs yield
// ErrNotFound. At most maxSupports supports are traced (0 means all).
func (s *Service) Explain(ctx context.Context, concept, instance string, maxSupports int) (kb.Explanation, error) {
	key := concept + "\x1f" + instance + "\x1f" + strconv.Itoa(maxSupports)
	v, err := s.do(ctx, "explain", key, func(snap *snapshot.Snapshot) (any, error) {
		ex, ok := snap.Explain(concept, instance, maxSupports)
		if !ok {
			return nil, fmt.Errorf("%w: pair (%s isA %s)", ErrNotFound, instance, concept)
		}
		return ex, nil
	})
	if err != nil {
		return kb.Explanation{}, err
	}
	return v.(kb.Explanation), nil
}

// Drifted ranks up to n instances by provenance-chain depth, deepest
// first. With a concept, the ranking is scoped to it and unknown
// concepts yield ErrNotFound. With an empty concept, the ranking spans
// every concept the service holds (rows carry their concept), ordered
// by depth descending, then concept, then instance — the deterministic
// order a sharded router's gather-merge reproduces exactly.
func (s *Service) Drifted(ctx context.Context, concept string, n int) ([]DriftedInstance, error) {
	key := concept + "\x1f" + strconv.Itoa(n)
	v, err := s.do(ctx, "drifted", key, func(snap *snapshot.Snapshot) (any, error) {
		if concept == "" {
			return driftedAll(ctx, snap, n)
		}
		if !snap.HasConcept(concept) {
			return nil, fmt.Errorf("%w: concept %q", ErrNotFound, concept)
		}
		depth := snap.DriftDepth(concept)
		names := snap.TopDrifted(concept, n)
		out := make([]DriftedInstance, 0, len(names))
		for i, e := range names {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out = append(out, DriftedInstance{Name: e, Depth: depth[e]})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]DriftedInstance), nil
}

// driftedAll computes the fleet-wide drift ranking of one snapshot: the
// n deepest provenance chains across every concept, ordered by depth
// descending, then concept, then instance name.
func driftedAll(ctx context.Context, snap *snapshot.Snapshot, n int) (any, error) {
	var rows []DriftedInstance
	for i, c := range snap.Concepts() {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		depth := snap.DriftDepth(c)
		// Instances() is the deterministic iteration surface; the depth
		// map itself must never be ranged into an ordered sink.
		for _, e := range snap.Instances(c) {
			rows = append(rows, DriftedInstance{Concept: c, Name: e, Depth: depth[e]})
		}
	}
	sortDrifted(rows)
	if len(rows) > n {
		rows = rows[:n:n]
	}
	if rows == nil {
		rows = []DriftedInstance{} // empty snapshots answer [], matching Router
	}
	return rows, nil
}

// sortDrifted orders fleet-wide drift rows canonically: depth
// descending, then concept, then instance name. Router merges and
// single-service rankings share this exact order, which is what makes
// scatter-gather responses byte-identical across shard counts.
func sortDrifted(rows []DriftedInstance) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Depth != b.Depth {
			return a.Depth > b.Depth
		}
		if a.Concept != b.Concept {
			return a.Concept < b.Concept
		}
		return a.Name < b.Name
	})
}

// Metrics returns an exported snapshot of all service metrics.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	m := Metrics{
		Generation: s.Generation(),
		Swaps:      s.swaps.Load(),
		CacheSize:  entries,
		Shed:       s.adm.shedCount(),
		Endpoints:  make(map[string]EndpointStats, len(s.metrics)),
	}
	for name, em := range s.metrics {
		m.Endpoints[name] = em.snapshot()
	}
	return m
}

// do is the shared query path: pass admission control, resolve the
// current snapshot, consult the (generation, query)-keyed cache,
// coalesce identical in-flight computations, record metrics. compute
// runs against one pinned snapshot, so a concurrent Swap never gives a
// query a torn view.
func (s *Service) do(ctx context.Context, endpoint, qkey string, compute func(*snapshot.Snapshot) (any, error)) (any, error) {
	m := s.metrics[endpoint]
	start := time.Now()
	if err := s.adm.acquire(ctx); err != nil {
		m.observe(time.Since(start), err)
		return nil, err
	}
	v, err := s.doPinned(ctx, m, endpoint, qkey, compute)
	s.adm.release()
	m.observe(time.Since(start), err)
	return v, err
}

func (s *Service) doPinned(ctx context.Context, m *endpointMetrics, endpoint, qkey string, compute func(*snapshot.Snapshot) (any, error)) (any, error) {
	if err := s.fault.Hit("serve." + endpoint); err != nil {
		return nil, fmt.Errorf("serve: %s: %w", endpoint, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap := s.cur.Load()
	if snap == nil {
		return nil, ErrNoSnapshot
	}
	key := endpoint + "\x1f" + strconv.FormatUint(snap.Generation(), 10) + "\x1f" + qkey
	s.mu.Lock()
	v, ok := s.cache.get(key)
	s.mu.Unlock()
	if ok {
		m.cacheHits.Add(1)
		return v, nil
	}
	v, err, shared := s.flights.do(key, func() (any, error) {
		v, err := compute(snap)
		if err != nil {
			return nil, err // never cache errors
		}
		s.mu.Lock()
		s.cache.add(key, v)
		s.mu.Unlock()
		return v, nil
	})
	if shared {
		m.coalesced.Add(1)
	} else {
		m.cacheMisses.Add(1)
	}
	return v, err
}
